// `p3gm bench` — the canonical micro-benchmark suite behind the
// BENCH_*.json trajectory. Every kernel the P3GM pipeline leans on
// (gemm, syrk, Cholesky, eigensolvers, the RDP accountant, Wishart
// sampling, DP-PCA, GMM-EM, the per-example clip step) is measured with
// warmup + repetitions, robust statistics, and — where the kernel
// permits — hardware counters and allocation attribution, then written
// as one versioned JSON document that tools/bench_compare diffs across
// commits:
//
//   p3gm bench --out BENCH_seed.json
//   p3gm bench --smoke --reps 2 --filter gemm
//
// Smoke mode (--smoke or P3GM_BENCH_SMOKE=1) shrinks every problem size
// so the whole suite finishes in seconds; smoke outputs are only ever
// compared against other smoke outputs (the bench names embed the
// actual sizes, so a mixed comparison degrades to "missing", not to a
// bogus verdict).
//
// Sampling is interleaved (BenchSuite::RunInterleaved): round r
// measures every benchmark once before any benchmark gets rep r+1, so
// each benchmark's samples span the full suite window and machine-load
// phases hit all benchmarks alike — the property bench_compare's drift
// normalization relies on.

#include "tools/bench_cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/release.h"
#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "infer/plan.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "nn/dp_sgd.h"
#include "nn/linear.h"
#include "obs/bench/harness.h"
#include "obs/flight_recorder.h"
#include "obs/prometheus.h"
#include "pca/pca.h"
#include "stats/gmm.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace cli {

namespace {

using linalg::Matrix;
namespace ob = obs::bench;

// Defeats dead-code elimination of a pure kernel result without
// perturbing the timed region (a single volatile store per rep).
void Keep(double v) {
  static volatile double sink;
  sink = v;
  (void)sink;
}

Matrix RandomMatrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal();
  return m;
}

// Serving-shaped decoder package for the decode micros: latent ->
// hidden -> output Gaussian head, fixed pseudo-random weights so the
// run is reproducible without training.
core::ReleasePackage DecodePackage(std::size_t dl, std::size_t h,
                                   std::size_t d) {
  util::Rng rng(37);
  Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  for (std::size_t i = 0; i < w1.size(); ++i) w1.data()[i] = 0.1 * rng.Normal();
  for (std::size_t i = 0; i < b1.size(); ++i) b1.data()[i] = 0.05 * rng.Normal();
  for (std::size_t i = 0; i < w2.size(); ++i) w2.data()[i] = 0.1 * rng.Normal();
  for (std::size_t i = 0; i < b2.size(); ++i) b2.data()[i] = 0.05 * rng.Normal();
  Matrix means(2, dl), variances(2, dl, 0.8);
  for (std::size_t j = 0; j < dl; ++j) {
    means(0, j) = -0.8;
    means(1, j) = 0.8;
  }
  auto prior = stats::GaussianMixture::Create({0.5, 0.5}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "bench_micro_decode", /*num_classes=*/2, core::DecoderType::kGaussian,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

// Well-conditioned SPD test matrix: B^T B + n I.
Matrix SpdMatrix(std::size_t n, std::uint64_t seed) {
  Matrix b = RandomMatrix(n, n, seed);
  Matrix a = linalg::MatmulTransB(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

struct BenchCliFlags {
  std::string out = "BENCH_micro.json";
  std::string filter;
  int reps = -1;    // < 0: keep the env/default value.
  int warmup = -1;
  bool smoke = false;
  bool list = false;
};

int BenchUsage() {
  std::fprintf(stderr,
               "usage: p3gm bench [options]\n"
               "  --out FILE       output JSON path (default "
               "BENCH_micro.json)\n"
               "  --filter SUBSTR  run only benchmarks whose name contains "
               "SUBSTR\n"
               "  --reps N         measured repetitions per benchmark\n"
               "  --warmup N       discarded warmup runs per benchmark\n"
               "  --smoke          tiny problem sizes (CI smoke; also "
               "P3GM_BENCH_SMOKE=1)\n"
               "  --list           print benchmark names and exit\n");
  return 2;
}

bool ParseBenchFlags(int argc, char** argv, int start,
                     BenchCliFlags* flags) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      flags->out = argv[++i];
    } else if (arg == "--filter" && i + 1 < argc) {
      flags->filter = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      flags->reps = std::atoi(argv[++i]);
    } else if (arg == "--warmup" && i + 1 < argc) {
      flags->warmup = std::atoi(argv[++i]);
    } else if (arg == "--smoke") {
      flags->smoke = true;
    } else if (arg == "--list") {
      flags->list = true;
    } else {
      std::fprintf(stderr, "unknown or malformed flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// A benchmark is a name plus a setup factory: `make()` allocates the
// inputs (outside any timed region) and returns the measured closure.
// Factories are only invoked for benchmarks that survive --filter, and
// the returned closures are handed to RunInterleaved together.
struct MicroBench {
  std::string name;
  std::function<std::function<void()>()> make;
};

// The suite. Sizes come in a (full, smoke) pair; the bench name embeds
// the size actually run so a smoke file never silently masquerades as a
// full one in comparisons.
std::vector<MicroBench> BuildSuite(bool smoke) {
  std::vector<MicroBench> benches;
  auto add = [&](std::string name,
                 std::function<std::function<void()>()> make) {
    benches.push_back({std::move(name), std::move(make)});
  };

  for (std::size_t n : smoke ? std::vector<std::size_t>{48}
                             : std::vector<std::size_t>{128, 256}) {
    add("gemm." + std::to_string(n), [n]() {
      auto a = std::make_shared<Matrix>(RandomMatrix(n, n, 1));
      auto b = std::make_shared<Matrix>(RandomMatrix(n, n, 2));
      return [a, b] { Keep(linalg::Matmul(*a, *b)(0, 0)); };
    });
  }

  {
    const std::size_t r = smoke ? 128 : 512;
    const std::size_t c = smoke ? 32 : 128;
    add("syrk." + std::to_string(r) + "x" + std::to_string(c), [r, c]() {
      auto a = std::make_shared<Matrix>(RandomMatrix(r, c, 3));
      return [a] { Keep(linalg::Syrk(*a)(0, 0)); };
    });
  }

  {
    const std::size_t n = smoke ? 64 : 256;
    add("cholesky." + std::to_string(n), [n]() {
      auto a = std::make_shared<Matrix>(SpdMatrix(n, 5));
      return [a] {
        auto l = linalg::Cholesky(*a);
        Keep(l.ok() ? (*l)(0, 0) : 0.0);
      };
    });
  }

  {
    const std::size_t n = smoke ? 32 : 96;
    add("eigen_sym." + std::to_string(n), [n]() {
      auto a = std::make_shared<Matrix>(SpdMatrix(n, 7));
      return [a] {
        auto e = linalg::EigenSym(*a);
        Keep(e.ok() ? e->values[0] : 0.0);
      };
    });
  }

  {
    const std::size_t n = smoke ? 64 : 256;
    add("topk_eigen." + std::to_string(n), [n]() {
      auto a = std::make_shared<Matrix>(SpdMatrix(n, 9));
      return [a] {
        auto e = linalg::TopKEigenSym(*a, 10, 100);
        Keep(e.ok() ? e->values[0] : 0.0);
      };
    });
  }

  add("rdp_compose", []() {
    auto params = std::make_shared<dp::P3gmPrivacyParams>();
    params->sgd_sampling_rate = 0.004;
    params->sgd_steps = 2600;
    return [params] {
      Keep(dp::ComputeP3gmEpsilonRdp(*params, 1e-5).epsilon);
    };
  });

  add("sigma_calibration", []() {
    auto params = std::make_shared<dp::P3gmPrivacyParams>();
    params->sgd_sampling_rate = 0.004;
    params->sgd_steps = 2600;
    return [params] {
      auto sigma = dp::CalibrateSgdSigma(*params, 1.0, 1e-5);
      Keep(sigma.ok() ? *sigma : 0.0);
    };
  });

  {
    const std::size_t d = smoke ? 16 : 64;
    add("wishart." + std::to_string(d), [d]() {
      auto rng = std::make_shared<util::Rng>(11);
      return [d, rng] {
        auto w = dp::SampleWishart(d, static_cast<double>(d) + 1.0, 0.01,
                                   rng.get());
        Keep(w.ok() ? (*w)(0, 0) : 0.0);
      };
    });
  }

  {
    const std::size_t rows = smoke ? 200 : 1000;
    const std::size_t cols = smoke ? 16 : 64;
    add("dp_pca." + std::to_string(rows) + "x" + std::to_string(cols),
        [rows, cols]() {
          auto x = std::make_shared<Matrix>(RandomMatrix(rows, cols, 13));
          auto rng = std::make_shared<util::Rng>(17);
          pca::DpPcaOptions opt;
          opt.num_components = 10;
          return [x, rng, opt] {
            auto m = pca::FitDpPca(*x, opt, rng.get());
            Keep(m.ok() ? 1.0 : 0.0);
          };
        });
  }

  {
    const std::size_t rows = smoke ? 300 : 2000;
    const std::size_t dim = smoke ? 5 : 10;
    const std::size_t iters = smoke ? 5 : 20;
    add("gmm_fit." + std::to_string(rows) + "x" + std::to_string(dim),
        [rows, dim, iters]() {
          util::Rng rng(19);
          auto x = std::make_shared<Matrix>(rows, dim);
          for (std::size_t i = 0; i < x->rows(); ++i) {
            const double shift =
                (i % 3 == 0) ? -1.0 : ((i % 3 == 1) ? 0.0 : 1.0);
            for (std::size_t j = 0; j < dim; ++j) {
              (*x)(i, j) = rng.Normal(shift, 0.3);
            }
          }
          stats::EmOptions opt;
          opt.num_components = 3;
          opt.max_iters = iters;
          return [x, opt] {
            auto g = stats::FitGmm(*x, opt);
            Keep(g.ok() ? g->weights()[0] : 0.0);
          };
        });
  }

  {
    const std::size_t in = smoke ? 128 : 784;
    const std::size_t out = smoke ? 32 : 200;
    const std::size_t batch = smoke ? 20 : 100;
    add("dpsgd_clip_step." + std::to_string(in) + "x" + std::to_string(out),
        [in, out, batch]() {
          struct State {
            util::Rng rng;
            nn::Linear lin;
            Matrix x, dy;
            nn::DpSgdOptions opt;
            State(std::size_t in, std::size_t out, std::size_t batch)
                : rng(23),
                  lin("l", in, out, &rng),
                  x(RandomMatrix(batch, in, 29)),
                  dy(RandomMatrix(batch, out, 31)) {}
          };
          auto st = std::make_shared<State>(in, out, batch);
          return [st, batch] {
            st->lin.Forward(st->x, true);
            st->lin.Backward(st->dy, /*accumulate=*/false);
            nn::DpSgdStep step(st->opt, &st->rng);
            Keep(step.CollectSquaredNorms({&st->lin}, batch).ok() ? 1.0
                                                                  : 0.0);
            std::vector<nn::Parameter*> params = st->lin.Parameters();
            for (auto* p : params) p->ZeroGrad();
            step.ApplyClippedAccumulation({&st->lin});
            step.AddNoiseAndAverage(params, batch);
          };
        });
  }

  // Decoder synthesis through both runtimes: the compiled inference
  // plan (packed weights, fused SIMD kernels) and the reference
  // nn/linalg forward pass, both via DecodeLatentInto — the serve
  // batcher's call. bench/bench_decode sweeps batch sizes; these micros
  // pin the serving-shaped batch into the cross-commit trajectory.
  {
    const std::size_t dl = smoke ? 16 : 64;
    const std::size_t h = smoke ? 64 : 512;
    const std::size_t d = smoke ? 48 : 786;
    const std::size_t batch = smoke ? 32 : 256;
    const std::string tag =
        std::to_string(batch) + "x" + std::to_string(d);
    for (const bool planned : {true, false}) {
      add(std::string(planned ? "decode.planned." : "decode.reference.") +
              tag,
          [dl, h, d, batch, planned]() {
            auto pkg = std::make_shared<core::ReleasePackage>(
                DecodePackage(dl, h, d));
            util::Rng rng(41);
            auto z = std::make_shared<Matrix>(pkg->SampleLatent(batch, &rng));
            auto out = std::make_shared<Matrix>();
            return [pkg, z, out, planned] {
              infer::SetPlannedDecodeEnabled(planned);
              const util::Status s = pkg->DecodeLatentInto(*z, out.get());
              infer::SetPlannedDecodeEnabled(true);
              Keep(s.ok() ? out->data()[0] : 0.0);
            };
          });
    }
  }

  // Observability hot paths: one flight-recorder append (the per-event
  // cost every request pays several times) and one Prometheus encode of
  // a serve-shaped snapshot (the cost of a scrape).
  add("obs.flight_append", []() {
    return [] {
      obs::FlightRecorder::Global().Record(
          obs::FlightRecorder::EventKind::kRequest, "bench.flight", 1, 2);
      Keep(1.0);
    };
  });
  add("obs.prom_encode", []() {
    auto snapshot = std::make_shared<obs::Snapshot>();
    for (int i = 0; i < 16; ++i) {
      snapshot->counters.push_back(
          {"serve.bench.counter_" + std::to_string(i),
           static_cast<std::uint64_t>(i * 1000)});
    }
    for (int i = 0; i < 8; ++i) {
      obs::HistogramSample h;
      h.name = "serve.bench.latency_seconds{endpoint=\"/v1/bench_" +
               std::to_string(i) + "\"}";
      h.bounds = {1e-4, 1e-3, 1e-2, 0.1, 1.0};
      h.bucket_counts = {5, 10, 20, 40, 80, 3};
      h.count = 158;
      h.sum = 12.5;
      snapshot->histograms.push_back(std::move(h));
    }
    return [snapshot] {
      Keep(static_cast<double>(obs::ToPrometheusText(*snapshot).size()));
    };
  });

  return benches;
}

}  // namespace

int RunBenchCommand(int argc, char** argv, int start) {
  BenchCliFlags flags;
  if (!ParseBenchFlags(argc, argv, start, &flags)) return BenchUsage();
  if (const char* env = std::getenv("P3GM_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    flags.smoke = true;
  }

  ob::BenchOptions options = ob::BenchOptions::FromEnv();
  if (flags.reps >= 0) options.reps = flags.reps;
  if (flags.warmup >= 0) options.warmup = flags.warmup;
  if (options.reps <= 0) {
    std::fprintf(stderr, "error: --reps must be positive\n");
    return BenchUsage();
  }

  const std::vector<MicroBench> benches = BuildSuite(flags.smoke);
  if (flags.list) {
    for (const auto& b : benches) std::printf("%s\n", b.name.c_str());
    return 0;
  }

  // Materialize the filtered closures (setup runs here, untimed), then
  // hand the whole batch to the interleaved sampler.
  std::vector<ob::BenchSuite::NamedBench> named;
  for (const auto& b : benches) {
    if (!flags.filter.empty() &&
        b.name.find(flags.filter) == std::string::npos) {
      continue;
    }
    named.push_back({b.name, b.make()});
  }
  if (named.empty()) {
    std::fprintf(stderr, "error: filter '%s' matched no benchmarks\n",
                 flags.filter.c_str());
    return 1;
  }

  ob::BenchSuite suite(flags.smoke ? "micro-smoke" : "micro");
  suite.runinfo().threads = static_cast<int>(util::NumThreads());
  std::printf(
      "p3gm bench: suite=%s reps=%d warmup=%d threads=%d hw_counters=%s "
      "(interleaved)\n",
      suite.runinfo().suite.c_str(), options.reps, options.warmup,
      suite.runinfo().threads,
      obs::perf::HardwareCountersAvailable() ? "yes" : "no (fallback)");

  util::Stopwatch sw;
  suite.RunInterleaved(named, options);
  suite.runinfo().wall_seconds = sw.ElapsedSeconds();

  for (const auto& r : suite.results()) {
    std::printf("  %-28s median %10.6fs  ci95 [%.6f, %.6f]  n=%zu\n",
                r.name.c_str(), r.stats.median, r.stats.ci95_lo,
                r.stats.ci95_hi, r.stats.n);
  }

  if (!suite.WriteJson(flags.out)) {
    std::fprintf(stderr, "error: cannot write %s\n", flags.out.c_str());
    return 1;
  }
  std::printf("%zu benchmarks in %.1fs -> %s\n", suite.results().size(),
              suite.runinfo().wall_seconds, flags.out.c_str());
  return 0;
}

}  // namespace cli
}  // namespace p3gm
