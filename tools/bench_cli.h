#ifndef P3GM_TOOLS_BENCH_CLI_H_
#define P3GM_TOOLS_BENCH_CLI_H_

namespace p3gm {
namespace cli {

/// `p3gm bench` subcommand: runs the substrate micro-suite (dense
/// kernels, eigensolver, accountant, DP-SGD clip step) under the
/// statistical harness in obs/bench and writes a BENCH_*.json
/// trajectory file. `argv[start]` is the first argument after "bench".
/// Returns a process exit code (0 ok, 1 runtime failure, 2 usage).
int RunBenchCommand(int argc, char** argv, int start);

}  // namespace cli
}  // namespace p3gm

#endif  // P3GM_TOOLS_BENCH_CLI_H_
