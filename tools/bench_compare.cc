// bench_compare — perf-regression gate over two BENCH_*.json files
// produced by `p3gm bench` or the bench_* binaries:
//
//   bench_compare BENCH_seed.json BENCH_candidate.json
//
// Exit codes: 0 = no regression, 1 = gate failed (a median regressed
// beyond both the relative slack and the pooled 95% CI), 2 = usage or
// parse error. The decision rule lives in src/obs/bench/compare.cc; this
// is a thin CLI around it.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/bench/compare.h"
#include "obs/bench/harness.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json> "
               "[options]\n"
               "  --max-regress PCT   relative slack on the median before a\n"
               "                      slowdown can count as a regression\n"
               "                      (default 35, i.e. 35%%)\n"
               "  --strict-missing    fail when a baseline benchmark is\n"
               "                      absent from the candidate\n"
               "  --no-normalize      do not divide out the suite-wide\n"
               "                      machine-drift factor (geometric mean\n"
               "                      of shared median ratios) before\n"
               "                      judging\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string base_path = argv[1];
  const std::string cand_path = argv[2];

  p3gm::obs::bench::CompareOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regress" && i + 1 < argc) {
      const double pct = std::atof(argv[++i]);
      if (pct < 0.0) {
        std::fprintf(stderr, "error: --max-regress must be >= 0\n");
        return Usage();
      }
      options.min_rel_regress = pct / 100.0;
    } else if (arg == "--strict-missing") {
      options.fail_on_missing = true;
    } else if (arg == "--no-normalize") {
      options.normalize_drift = false;
    } else {
      std::fprintf(stderr, "unknown or malformed flag: %s\n", arg.c_str());
      return Usage();
    }
  }

  p3gm::obs::bench::BenchFileData base, cand;
  std::string error;
  if (!p3gm::obs::bench::LoadBenchFile(base_path, &base, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", base_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!p3gm::obs::bench::LoadBenchFile(cand_path, &cand, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", cand_path.c_str(),
                 error.c_str());
    return 2;
  }

  const auto comparisons =
      p3gm::obs::bench::CompareFiles(base, cand, options);
  std::fputs(p3gm::obs::bench::FormatReport(comparisons, base, cand).c_str(),
             stdout);

  if (p3gm::obs::bench::GateFails(comparisons, options)) {
    std::fprintf(stderr, "bench_compare: FAIL (performance regression)\n");
    return 1;
  }
  std::printf("bench_compare: OK\n");
  return 0;
}
