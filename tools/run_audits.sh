#!/usr/bin/env bash
# Runs the full statistical audit suite, including the slow high-power
# variants that the default ctest run skips, and (optionally) repeats it
# under ASan+UBSan. See docs/testing.md for what each label covers.
#
# Usage:
#   tools/run_audits.sh [build_dir]          # slow audits in build_dir
#   P3GM_AUDIT_SANITIZE=1 tools/run_audits.sh
#       also configures build-asan/ with -DP3GM_SANITIZE=address,undefined
#       and reruns the audit labels there.
#
# Every suite runs even if an earlier one fails; the exit status is
# nonzero if any audit failed.

set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -f "$build_dir/CTestTestfile.cmake" ]; then
  echo "run_audits.sh: configuring $build_dir" >&2
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j

failures=0

echo "== audit suite (including slow high-power variants) =="
P3GM_RUN_SLOW_AUDITS=1 ctest --test-dir "$build_dir" -L audit \
  --output-on-failure -j4 || failures=$((failures + 1))

echo "== golden trace =="
P3GM_RUN_SLOW_AUDITS=1 ctest --test-dir "$build_dir" -L golden \
  --output-on-failure || failures=$((failures + 1))

echo "== inference runtime bit-exactness =="
ctest --test-dir "$build_dir" -L infer \
  --output-on-failure -j4 || failures=$((failures + 1))

echo "== synthesis-quality monitoring =="
ctest --test-dir "$build_dir" -L quality \
  --output-on-failure -j4 || failures=$((failures + 1))

echo "== profiler signal-handler safety =="
ctest --test-dir "$build_dir" -L profile \
  --output-on-failure || failures=$((failures + 1))

if [ "${P3GM_AUDIT_SANITIZE:-0}" != "0" ]; then
  asan_dir="$repo_root/build-asan"
  echo "== audit suite under ASan+UBSan ($asan_dir) =="
  cmake -B "$asan_dir" -S "$repo_root" \
    -DP3GM_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=Debug
  cmake --build "$asan_dir" -j
  P3GM_RUN_SLOW_AUDITS=1 ctest --test-dir "$asan_dir" -L audit \
    --output-on-failure -j4 || failures=$((failures + 1))
  echo "== inference runtime under ASan+UBSan ($asan_dir) =="
  ctest --test-dir "$asan_dir" -L infer \
    --output-on-failure -j4 || failures=$((failures + 1))
  echo "== synthesis-quality monitoring under ASan+UBSan ($asan_dir) =="
  ctest --test-dir "$asan_dir" -L quality \
    --output-on-failure -j4 || failures=$((failures + 1))
  echo "== profiler signal-handler safety under ASan+UBSan ($asan_dir) =="
  ctest --test-dir "$asan_dir" -L profile \
    --output-on-failure || failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "run_audits.sh: $failures audit suite(s) FAILED" >&2
  exit 1
fi
echo "run_audits.sh: all audits passed"
