// Regenerates the golden regression files: the fixed-seed P3GM training
// trace and the fixed-weight decode fixture (see src/audit/golden.h).
// Usage:
//
//   build/tools/regen_golden [trace_path [decode_path]]
//
// With no argument both fixtures are printed to stdout (trace first);
// with paths they are written there — normally
//
//   build/tools/regen_golden tests/golden/pgm_small.golden \
//                            tests/golden/decode_small.golden
//
// Run this after an *intentional* numeric change and commit the updated
// file(s) together with the change that caused it.

#include <cstdio>

#include "audit/golden.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    for (const std::string& line : p3gm::audit::GoldenPgmTraceLines()) {
      std::printf("%s\n", line.c_str());
    }
    for (const std::string& line : p3gm::audit::GoldenDecodeLines()) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }
  if (!p3gm::audit::WriteGoldenTrace(argv[1])) {
    std::fprintf(stderr, "regen_golden: cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("regen_golden: wrote %s\n", argv[1]);
  if (argc > 2) {
    if (!p3gm::audit::WriteGoldenDecode(argv[2])) {
      std::fprintf(stderr, "regen_golden: cannot write %s\n", argv[2]);
      return 1;
    }
    std::printf("regen_golden: wrote %s\n", argv[2]);
  }
  return 0;
}
