// Regenerates the golden-trace regression file for the fixed-seed P3GM
// run (see src/audit/golden.h). Usage:
//
//   build/tools/regen_golden [path]
//
// With no argument the trace is printed to stdout; with a path it is
// written there (normally tests/golden/pgm_small.golden). Run this after
// an *intentional* numeric change and commit the updated file together
// with the change that caused it.

#include <cstdio>

#include "audit/golden.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    for (const std::string& line : p3gm::audit::GoldenPgmTraceLines()) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }
  if (!p3gm::audit::WriteGoldenTrace(argv[1])) {
    std::fprintf(stderr, "regen_golden: cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("regen_golden: wrote %s\n", argv[1]);
  return 0;
}
