// p3gm — command-line front end for the library. Lets a data holder run
// the full Fig.-1 workflow without writing C++:
//
//   p3gm train data.csv model.release --epsilon 1.0 --epochs 40
//   p3gm inspect model.release
//   p3gm generate model.release synthetic.csv --n 10000
//
// `train` reads a numeric CSV (last column = integer label by default),
// calibrates DP-SGD for the requested (epsilon, delta), trains P3GM and
// writes a self-contained release package. `generate` samples from a
// package (pure post-processing: no further privacy cost).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/pgm.h"
#include "core/release.h"
#include "core/synthesizer.h"
#include "data/csv_loader.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/observability.h"
#include "obs/perf/alloc.h"
#include "obs/profile/heap.h"
#include "obs/profile/profiler.h"
#include "obs/quality/monitor.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "tools/bench_cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

namespace {

using namespace p3gm;  // NOLINT(build/namespaces)

struct Flags {
  double epsilon = 1.0;
  double delta = 1e-5;
  std::size_t epochs = 40;
  std::size_t batch = 200;
  std::size_t latent = 10;
  std::size_t hidden = 200;
  std::size_t mog = 3;
  std::size_t n = 1000;
  std::uint64_t seed = 42;
  bool use_pca = true;
  bool non_private = false;
  bool gaussian_decoder = false;
  int label_column = -1;
  std::string obs_prefix;  // Empty = observability off.
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  p3gm train <data.csv> <model.release> [options]\n"
               "  p3gm generate <model.release> <out.csv> --n N [--seed S]\n"
               "  p3gm inspect <model.release>\n"
               "  p3gm bench [--out FILE] [--filter SUBSTR] [--reps N]\n"
               "             [--warmup N] [--smoke] [--list]\n"
               "  p3gm serve <model.release>... [serve options]\n"
               "  p3gm quality <model.release> [quality options]\n"
               "  p3gm profile [profile options] -- <subcommand...>\n"
               "\n"
               "train options:\n"
               "  --epsilon E          target epsilon (default 1.0)\n"
               "  --delta D            target delta (default 1e-5)\n"
               "  --non-private        train without DP (PGM)\n"
               "  --epochs N           training epochs (default 40)\n"
               "  --batch B            lot size (default 200)\n"
               "  --latent L           PCA components d' (default 10)\n"
               "  --hidden H           MLP hidden width (default 200)\n"
               "  --mog K              MoG components (default 3)\n"
               "  --no-pca             skip dimensionality reduction\n"
               "  --gaussian-decoder   MSE/Gaussian observation model\n"
               "  --label-column I     label column index (default -1 = "
               "last)\n"
               "  --seed S             RNG seed (default 42)\n"
               "  --obs PREFIX         export training telemetry to\n"
               "                       PREFIX_metrics.{json,csv},\n"
               "                       PREFIX_trace.json (chrome://tracing)\n"
               "                       and PREFIX_ledger.{json,csv}\n"
               "\n"
               "serve options (see docs/serving.md):\n"
               "  --port P             TCP port, 1-65535 (default 8080)\n"
               "  --host H             bind address (default 127.0.0.1)\n"
               "  --max-batch N        coalesce up to N sample requests per\n"
               "                       decoder pass, 1-1024 (default 8)\n"
               "  --queue-limit N      pending sample jobs before 503,\n"
               "                       0-65536 (default 256)\n"
               "  --cache N            LRU sample-cache entries, 0 = off\n"
               "                       (default 0)\n"
               "  --max-n N            per-request row ceiling (default\n"
               "                       100000)\n"
               "  --seed S             stream seed for unseeded requests\n"
               "  --slow-ms N          WARN-log requests slower than N ms,\n"
               "                       0 = off (default 0)\n"
               "  --profile-on-slow DIR  when a --slow-ms WARN fires,\n"
               "                       capture a 1s CPU-profile burst and\n"
               "                       write slow-<traceid>.folded to DIR\n"
               "                       (skipped while a profile is already\n"
               "                       running)\n"
               "  --flight-dump PATH   flight-recorder dump file for\n"
               "                       SIGQUIT and fatal signals (default\n"
               "                       p3gm_flight.dump)\n"
               "  --no-obs             disable the metrics registry\n"
               "                       (/v1/metrics reports zeros)\n"
               "  --no-planned-decode  decode via the reference nn/linalg\n"
               "                       path instead of the compiled plan\n"
               "                       (bit-identical; see\n"
               "                       docs/inference.md)\n"
               "  --quality-threshold T  drift alarm threshold on the\n"
               "                       quality monitor, (0, 2] (default\n"
               "                       0.15)\n"
               "  --no-quality         disable synthesis-quality\n"
               "                       monitoring (P3GM_NO_QUALITY=1 does\n"
               "                       the same)\n"
               "\n"
               "profile options (see docs/observability.md \"Profiling\"):\n"
               "  --out PREFIX         write PREFIX_cpu.folded (and, in\n"
               "                       -DP3GM_ALLOC_TRACKING=ON builds,\n"
               "                       PREFIX_heap.folded) — folded stacks\n"
               "                       for flamegraph.pl (default\n"
               "                       p3gm_profile)\n"
               "  --hz N               CPU samples per second of CPU time,\n"
               "                       1-1000 (default 99)\n"
               "  --heap-stride BYTES  bytes between heap samples (default\n"
               "                       524288)\n"
               "  everything after `--` runs as a normal p3gm invocation\n"
               "  (train, generate, bench, quality, ...) under sampling.\n"
               "\n"
               "quality options (see docs/observability.md):\n"
               "  --score data.csv     score a CSV of samples against the\n"
               "                       fingerprint; exit 1 when drift\n"
               "                       exceeds the threshold. The CSV must\n"
               "                       already be in the model's output\n"
               "                       domain (e.g. from p3gm generate)\n"
               "  --threshold T        drift threshold for --score,\n"
               "                       (0, 2] (default 0.15)\n"
               "  --n N                reference rows when computing a\n"
               "                       fingerprint (default 4096)\n"
               "  --seed S             RNG seed for the reference draw\n"
               "                       (default 42)\n"
               "  --embed              recompute the fingerprint and save\n"
               "                       it into the package\n"
               "  --out PATH           write --embed output here instead\n"
               "                       of overwriting the input\n"
               "  --label-column I     label column of --score CSV\n"
               "                       (default -1 = last)\n"
               "\n"
               "serve answers POST /v1/sample, GET /v1/models, GET\n"
               "/v1/metrics[?format=prometheus], GET /v1/quality, GET\n"
               "/v1/profile[?seconds=N&hz=M], GET /v1/profile/heap, GET\n"
               "/healthz and POST /v1/reload; SIGHUP also hot-reloads\n"
               "packages, SIGQUIT dumps the flight recorder,\n"
               "SIGTERM/SIGINT drain gracefully. P3GM_LOG_LEVEL /\n"
               "P3GM_LOG_FORMAT (json) configure logging.\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, int start, Flags* flags) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double v = 0;
    if (arg == "--epsilon" && next(&v)) {
      flags->epsilon = v;
    } else if (arg == "--delta" && next(&v)) {
      flags->delta = v;
    } else if (arg == "--epochs" && next(&v)) {
      flags->epochs = static_cast<std::size_t>(v);
    } else if (arg == "--batch" && next(&v)) {
      flags->batch = static_cast<std::size_t>(v);
    } else if (arg == "--latent" && next(&v)) {
      flags->latent = static_cast<std::size_t>(v);
    } else if (arg == "--hidden" && next(&v)) {
      flags->hidden = static_cast<std::size_t>(v);
    } else if (arg == "--mog" && next(&v)) {
      flags->mog = static_cast<std::size_t>(v);
    } else if (arg == "--n" && next(&v)) {
      flags->n = static_cast<std::size_t>(v);
    } else if (arg == "--seed" && next(&v)) {
      flags->seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--label-column" && next(&v)) {
      flags->label_column = static_cast<int>(v);
    } else if (arg == "--obs") {
      if (i + 1 >= argc) return false;
      flags->obs_prefix = argv[++i];
    } else if (arg == "--no-pca") {
      flags->use_pca = false;
    } else if (arg == "--non-private") {
      flags->non_private = true;
    } else if (arg == "--gaussian-decoder") {
      flags->gaussian_decoder = true;
    } else {
      std::fprintf(stderr, "unknown or malformed flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const util::Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// Writes the metrics snapshot, trace and privacy ledger accumulated so
// far to <prefix>_*.{json,csv} files.
void ExportTelemetry(const std::string& prefix, double delta) {
  const obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
  snapshot.WriteJson(prefix + "_metrics.json");
  snapshot.WriteCsv(prefix + "_metrics.csv");
  obs::TraceRecorder::Global().WriteChromeJson(prefix + "_trace.json");
  const obs::PrivacyLedger& ledger = obs::PrivacyLedger::Global();
  if (ledger.size() > 0) {
    ledger.WriteJson(prefix + "_ledger.json");
    ledger.WriteCsv(prefix + "_ledger.csv");
    std::printf("ledger: %zu entries, cumulative epsilon %.6f at delta %g\n",
                ledger.size(), ledger.CumulativeEpsilon(), delta);
  }
  std::printf("telemetry written to %s_*.{json,csv}\n", prefix.c_str());
}

int CmdTrain(const std::string& csv_path, const std::string& out_path,
             const Flags& flags) {
  util::Stopwatch sw;
  if (!flags.obs_prefix.empty()) {
    obs::SetEnabled(true);
    obs::PrivacyLedger::Global().SetDelta(flags.delta);
  }
  data::CsvLoadOptions load;
  load.label_column = flags.label_column;
  auto dataset = data::LoadCsvDataset(csv_path, load);
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("loaded %zu rows x %zu features, %zu classes (%.1fs)\n",
              dataset->size(), dataset->dim(), dataset->num_classes,
              sw.ElapsedSeconds());

  core::PgmOptions opt;
  opt.hidden = flags.hidden;
  opt.latent_dim = flags.latent;
  opt.mog_components = flags.mog;
  opt.epochs = flags.epochs;
  opt.batch_size = std::min(flags.batch, dataset->size());
  opt.use_pca = flags.use_pca && flags.latent < dataset->dim();
  opt.decoder = flags.gaussian_decoder ? core::DecoderType::kGaussian
                                       : core::DecoderType::kBernoulli;
  opt.seed = flags.seed;
  opt.differentially_private = !flags.non_private;
  if (opt.differentially_private) {
    auto sigma = core::Pgm::CalibrateSigma(
        opt, dataset->size() , flags.epsilon, flags.delta);
    if (!sigma.ok()) return Fail(sigma.status());
    opt.sgd_sigma = *sigma;
    std::printf("calibrated sigma_s = %.4f for (%.3g, %.3g)-DP\n", *sigma,
                flags.epsilon, flags.delta);
  }

  sw.Restart();
  core::PgmSynthesizer synth(opt);
  if (auto st = synth.Fit(*dataset); !st.ok()) return Fail(st);
  const auto g = synth.ComputeEpsilon(flags.delta);
  std::printf("trained %s in %.1fs; privacy spent: (%.4f, %g)-DP\n",
              synth.name().c_str(), sw.ElapsedSeconds(), g.epsilon,
              flags.delta);

  auto pkg = core::ReleasePackage::FromPgm(&synth.model(),
                                           dataset->num_classes,
                                           synth.name() + ":" + csv_path);
  if (!pkg.ok()) return Fail(pkg.status());
  // Reference fingerprint for serve-time drift monitoring. Drawn from
  // the released model itself, so it is DP post-processing: zero
  // additional privacy cost.
  auto fp = core::BuildFingerprint(*pkg, 4096, flags.seed);
  if (!fp.ok()) return Fail(fp.status());
  pkg->SetFingerprint(std::move(*fp));
  if (auto st = pkg->Save(out_path); !st.ok()) return Fail(st);
  std::printf(
      "release package written to %s (quality fingerprint: 4096 rows)\n",
      out_path.c_str());
  if (!flags.obs_prefix.empty()) {
    ExportTelemetry(flags.obs_prefix, flags.delta);
  }
  return 0;
}

int CmdGenerate(const std::string& pkg_path, const std::string& out_path,
                const Flags& flags) {
  auto pkg = core::ReleasePackage::Load(pkg_path);
  if (!pkg.ok()) return Fail(pkg.status());
  util::Rng rng(flags.seed);
  auto dataset = pkg->Generate(flags.n, &rng);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto st = data::SaveCsvDataset(*dataset, out_path); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu synthetic rows to %s\n", dataset->size(),
              out_path.c_str());
  return 0;
}

int CmdInspect(const std::string& pkg_path) {
  auto pkg = core::ReleasePackage::Load(pkg_path);
  if (!pkg.ok()) return Fail(pkg.status());
  std::printf("release package: %s\n", pkg->name().c_str());
  std::printf("  decoder:       %zu -> %zu (%s observation model)\n",
              pkg->latent_dim(), pkg->output_dim(),
              pkg->decoder_type() == core::DecoderType::kBernoulli
                  ? "Bernoulli"
                  : "Gaussian");
  std::printf("  features:      %zu (+ %zu-class one-hot label block)\n",
              pkg->feature_dim(), pkg->num_classes());
  std::printf("  latent prior:  MoG with %zu components over %zu dims\n",
              pkg->prior().num_components(), pkg->prior().dim());
  for (std::size_t k = 0; k < pkg->prior().num_components(); ++k) {
    std::printf("    component %zu: weight %.4f\n", k,
                pkg->prior().weights()[k]);
  }
  if (const auto* fp = pkg->fingerprint()) {
    std::printf("  fingerprint:   %llu reference rows (seed %llu)\n",
                static_cast<unsigned long long>(fp->reference_rows()),
                static_cast<unsigned long long>(fp->seed()));
  } else {
    std::printf("  fingerprint:   none (format v1 or stripped; run "
                "`p3gm quality %s --embed`)\n",
                pkg_path.c_str());
  }
  return 0;
}


// Strict numeric flag parsing for the daemon (mirrors the
// P3GM_NUM_THREADS hardening): non-numeric, negative, overflowing or
// out-of-range values are a usage error, never silently truncated the
// way train/generate's atof-based flags are.
bool ParseServeUintFlag(const char* flag, const char* text,
                        std::uint64_t min, std::uint64_t max,
                        std::uint64_t* out) {
  if (!util::ParseUint64(text, min, max, out)) {
    std::fprintf(stderr,
                 "invalid value for %s: \"%s\" (expected integer in "
                 "[%llu, %llu])\n",
                 flag, text, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  return true;
}

// Strict double parsing for serve/quality flags: the whole token must
// be a finite number inside [min, max].
bool ParseDoubleFlag(const char* flag, const char* text, double min,
                     double max, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v >= min) || !(v <= max)) {
    std::fprintf(stderr,
                 "invalid value for %s: \"%s\" (expected number in "
                 "[%g, %g])\n",
                 flag, text, min, max);
    return false;
  }
  *out = v;
  return true;
}

// p3gm quality: offline fingerprint + drift tooling for a release
// package. Without --score it just computes (or reads) the fingerprint
// and prints it; --embed re-saves the package with a freshly computed
// fingerprint; --score folds a CSV of samples into a QualityMonitor and
// exits 1 when drift exceeds the threshold — the CI-able regression
// check described in docs/observability.md.
int CmdQuality(int argc, char** argv) {
  const std::string pkg_path = argv[2];
  std::string score_path;
  std::string out_path = pkg_path;
  bool embed = false;
  std::size_t n = 4096;
  std::uint64_t seed = 42;
  double threshold = 0.15;
  int label_column = -1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t v = 0;
    double d = 0;
    if (arg == "--score") {
      const char* text = value();
      if (text == nullptr) return Usage();
      score_path = text;
    } else if (arg == "--out") {
      const char* text = value();
      if (text == nullptr) return Usage();
      out_path = text;
    } else if (arg == "--embed") {
      embed = true;
    } else if (arg == "--n") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--n", text, 1, 100000000, &v)) {
        return Usage();
      }
      n = static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--seed", text, 0, UINT64_MAX, &v)) {
        return Usage();
      }
      seed = v;
    } else if (arg == "--threshold") {
      const char* text = value();
      if (text == nullptr ||
          !ParseDoubleFlag("--threshold", text, 1e-9, 2.0, &d)) {
        return Usage();
      }
      threshold = d;
    } else if (arg == "--label-column") {
      const char* text = value();
      if (text == nullptr) return Usage();
      label_column = std::atoi(text);
    } else {
      std::fprintf(stderr, "unknown quality flag: %s\n", arg.c_str());
      return Usage();
    }
  }

  auto pkg = core::ReleasePackage::Load(pkg_path);
  if (!pkg.ok()) return Fail(pkg.status());

  // Embedded fingerprint when present (and not refreshing); otherwise a
  // fresh reference draw — pure post-processing, zero privacy cost.
  std::shared_ptr<const obs::quality::Fingerprint> fingerprint;
  if (pkg->fingerprint() != nullptr && !embed) {
    fingerprint = pkg->fingerprint_ptr();
    std::printf("using embedded fingerprint (%llu reference rows)\n",
                static_cast<unsigned long long>(
                    fingerprint->reference_rows()));
  } else {
    auto fp = core::BuildFingerprint(*pkg, n, seed);
    if (!fp.ok()) return Fail(fp.status());
    std::printf("computed fingerprint from %zu reference rows (seed "
                "%llu)\n",
                n, static_cast<unsigned long long>(seed));
    if (embed) {
      pkg->SetFingerprint(*fp);
      if (auto st = pkg->Save(out_path); !st.ok()) return Fail(st);
      std::printf("fingerprint embedded into %s\n", out_path.c_str());
    }
    fingerprint =
        std::make_shared<const obs::quality::Fingerprint>(std::move(*fp));
  }

  std::printf("  features: %zu, classes: %zu\n", fingerprint->feature_dim(),
              fingerprint->num_classes());
  for (std::size_t f = 0; f < fingerprint->feature_dim(); ++f) {
    const auto& ff = fingerprint->feature(f);
    std::printf("    f%-3zu mean %8.4f  stddev %8.4f  range [%.4f, %.4f]\n",
                f, ff.mean, ff.stddev, ff.min, ff.max);
  }

  if (score_path.empty()) return 0;

  data::CsvLoadOptions load;
  load.label_column = label_column;
  // The CSV must already live in the model's output domain (p3gm
  // generate output does); min-max rescaling here would mask exactly
  // the marginal shifts this command exists to detect.
  load.scale_features = false;
  auto dataset = data::LoadCsvDataset(score_path, load);
  if (!dataset.ok()) return Fail(dataset.status());
  if (dataset->dim() != fingerprint->feature_dim()) {
    std::fprintf(stderr,
                 "error: %s has %zu features but the fingerprint has "
                 "%zu\n",
                 score_path.c_str(), dataset->dim(),
                 fingerprint->feature_dim());
    return 1;
  }

  obs::quality::MonitorOptions mopt;
  mopt.stride = 1;  // Offline: fold every row.
  obs::quality::QualityMonitor monitor(fingerprint,
                                       fingerprint->feature_dim(),
                                       pkg->num_classes(), mopt);
  monitor.ObserveDataset(dataset->features, dataset->labels);
  const obs::quality::DriftReport report = monitor.Score();
  std::printf("scored %llu rows from %s\n",
              static_cast<unsigned long long>(report.rows_observed),
              score_path.c_str());
  for (std::size_t f = 0; f < report.features.size(); ++f) {
    const auto& fd = report.features[f];
    std::printf("    f%-3zu ks %.4f  mean_z %.3f  sigma_ratio %.3f\n", f,
                fd.ks, fd.mean_z, fd.sigma_ratio);
  }
  std::printf("  worst ks:  %.4f (feature %zu)\n", report.worst_ks,
              report.worst_feature);
  std::printf("  label tv:  %.4f\n", report.label_tv);
  std::printf("  drift:     %.4f (threshold %.4f)\n", report.drift(),
              threshold);
  if (report.drift() > threshold) {
    std::printf("DRIFT: threshold exceeded\n");
    return 1;
  }
  std::printf("OK: within threshold\n");
  return 0;
}

int CmdServe(int argc, char** argv) {
  serve::ServerOptions options;
  options.port = 8080;
  bool obs_enabled = true;
  std::string flight_dump_path = "p3gm_flight.dump";
  std::vector<std::string> packages;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t v = 0;
    if (arg == "--port") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--port", text, 1, 65535, &v)) {
        return Usage();
      }
      options.port = static_cast<std::uint16_t>(v);
    } else if (arg == "--host") {
      const char* text = value();
      if (text == nullptr) return Usage();
      options.host = text;
    } else if (arg == "--max-batch") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--max-batch", text, 1, 1024, &v)) {
        return Usage();
      }
      options.max_batch = static_cast<std::size_t>(v);
    } else if (arg == "--queue-limit") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--queue-limit", text, 0, 65536, &v)) {
        return Usage();
      }
      options.queue_limit = static_cast<std::size_t>(v);
    } else if (arg == "--cache") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--cache", text, 0, 65536, &v)) {
        return Usage();
      }
      options.cache_entries = static_cast<std::size_t>(v);
    } else if (arg == "--max-n") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--max-n", text, 1, 100000000, &v)) {
        return Usage();
      }
      options.max_n = static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--seed", text, 0, UINT64_MAX, &v)) {
        return Usage();
      }
      options.seed = v;
    } else if (arg == "--slow-ms") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--slow-ms", text, 0, 3600000, &v)) {
        return Usage();
      }
      options.slow_request_ms = static_cast<int>(v);
    } else if (arg == "--profile-on-slow") {
      const char* text = value();
      if (text == nullptr) return Usage();
      options.profile_on_slow_dir = text;
    } else if (arg == "--flight-dump") {
      const char* text = value();
      if (text == nullptr) return Usage();
      flight_dump_path = text;
    } else if (arg == "--no-obs") {
      obs_enabled = false;
    } else if (arg == "--no-planned-decode") {
      options.planned_decode = false;
    } else if (arg == "--quality-threshold") {
      const char* text = value();
      double d = 0;
      if (text == nullptr ||
          !ParseDoubleFlag("--quality-threshold", text, 1e-9, 2.0, &d)) {
        return Usage();
      }
      options.quality.threshold = d;
    } else if (arg == "--no-quality") {
      options.quality.enabled = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown serve flag: %s\n", arg.c_str());
      return Usage();
    } else {
      packages.push_back(arg);
    }
  }
  if (packages.empty()) {
    std::fprintf(stderr, "serve: at least one <model.release> required\n");
    return Usage();
  }
  // Environment escape hatch, for turning monitoring off without
  // touching the service's command line.
  if (const char* env = std::getenv("P3GM_NO_QUALITY");
      env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    options.quality.enabled = false;
  }
  obs::SetEnabled(obs_enabled);
  util::InitLoggingFromEnv();
  obs::InstallFlightDumpHandlers(flight_dump_path);

  serve::Server server(options);
  if (auto st = server.Init(packages); !st.ok()) return Fail(st);
  serve::Server::InstallSignalHandlers(&server);
  if (auto st = server.Start(); !st.ok()) return Fail(st);
  std::printf("p3gm serve: %zu model(s) on %s:%d\n",
              server.registry().size(), options.host.c_str(),
              server.port());
  server.WaitUntilStopped();
  serve::Server::InstallSignalHandlers(nullptr);
  server.Stop();
  std::printf("p3gm serve: stopped\n");
  return 0;
}
int Dispatch(int argc, char** argv);

// p3gm profile [--out PREFIX] [--hz N] [--heap-stride BYTES] -- <verb...>
//
// Runs any other p3gm invocation under the sampling CPU profiler (and,
// in -DP3GM_ALLOC_TRACKING=ON builds, the sampled heap profiler),
// writing flamegraph-ready folded stacks next to the verb's own output.
// The wrapped verb's exit code is passed through; profiling failures
// only warn — a profile must never fail the run it observes.
int CmdProfile(int argc, char** argv) {
  std::string prefix = "p3gm_profile";
  std::uint64_t hz = 99;
  std::uint64_t heap_stride = 512 * 1024;
  int sep = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--") {
      sep = i;
      break;
    }
    if (arg == "--out") {
      const char* text = value();
      if (text == nullptr) return Usage();
      prefix = text;
    } else if (arg == "--hz") {
      const char* text = value();
      if (text == nullptr ||
          !ParseServeUintFlag("--hz", text, 1, 1000, &hz)) {
        return Usage();
      }
    } else if (arg == "--heap-stride") {
      const char* text = value();
      if (text == nullptr || !ParseServeUintFlag("--heap-stride", text, 1,
                                                 1ull << 40, &heap_stride)) {
        return Usage();
      }
    } else {
      std::fprintf(stderr, "unknown profile flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (sep < 0 || sep + 1 >= argc) {
    std::fprintf(stderr,
                 "profile: missing `-- <subcommand>` to profile\n");
    return Usage();
  }

  obs::profile::CpuProfileOptions cpu_options;
  cpu_options.hz = static_cast<int>(hz);
  if (auto st = obs::profile::CpuProfiler::Global().Start(cpu_options);
      !st.ok()) {
    std::fprintf(stderr, "profile: %s\n", st.ToString().c_str());
    return 1;
  }
  bool heap_on = false;
  if (obs::perf::AllocTrackingCompiledIn()) {
    obs::profile::HeapProfileOptions heap_options;
    heap_options.stride_bytes = heap_stride;
    heap_on =
        obs::profile::HeapProfiler::Global().Start(heap_options).ok();
  }

  // Re-dispatch the tail as a fresh p3gm invocation: argv[0] stays the
  // binary name, argv[1] becomes the wrapped verb.
  std::vector<char*> inner;
  inner.push_back(argv[0]);
  for (int i = sep + 1; i < argc; ++i) inner.push_back(argv[i]);
  const int rc = Dispatch(static_cast<int>(inner.size()), inner.data());

  auto cpu = obs::profile::CpuProfiler::Global().Stop();
  if (cpu.ok()) {
    const std::string path = prefix + "_cpu.folded";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      const std::string text = cpu->ToFoldedText();
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf(
          "profile: %llu cpu samples (%llu dropped, %s walker) -> %s\n",
          static_cast<unsigned long long>(cpu->samples),
          static_cast<unsigned long long>(cpu->dropped),
          obs::profile::UsingFramePointerWalk() ? "frame-pointer"
                                                : "backtrace",
          path.c_str());
    } else {
      std::fprintf(stderr, "profile: cannot write %s\n", path.c_str());
    }
  } else {
    std::fprintf(stderr, "profile: cpu collection failed: %s\n",
                 cpu.status().ToString().c_str());
  }
  if (heap_on) {
    auto heap = obs::profile::HeapProfiler::Global().Snapshot();
    obs::profile::HeapProfiler::Global().Stop();
    if (heap.ok()) {
      const std::string path = prefix + "_heap.folded";
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f != nullptr) {
        const std::string text = heap->ToFoldedText();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf(
            "profile: %llu heap samples (%llu bytes attributed) -> %s\n",
            static_cast<unsigned long long>(heap->samples),
            static_cast<unsigned long long>(heap->sampled_bytes),
            path.c_str());
      } else {
        std::fprintf(stderr, "profile: cannot write %s\n", path.c_str());
      }
    }
  } else if (!obs::perf::AllocTrackingCompiledIn()) {
    std::printf(
        "profile: heap profile skipped (build with "
        "-DP3GM_ALLOC_TRACKING=ON to enable)\n");
  }
  return rc;
}

// The verb table, shared by main() and the `profile` wrapper.
int Dispatch(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Flags flags;
  if (cmd == "train" && argc >= 4) {
    if (!ParseFlags(argc, argv, 4, &flags)) return Usage();
    return CmdTrain(argv[2], argv[3], flags);
  }
  if (cmd == "generate" && argc >= 4) {
    if (!ParseFlags(argc, argv, 4, &flags)) return Usage();
    return CmdGenerate(argv[2], argv[3], flags);
  }
  if (cmd == "inspect" && argc >= 3) {
    return CmdInspect(argv[2]);
  }
  if (cmd == "bench") {
    return cli::RunBenchCommand(argc, argv, 2);
  }
  if (cmd == "serve") {
    return CmdServe(argc, argv);
  }
  if (cmd == "quality" && argc >= 3) {
    return CmdQuality(argc, argv);
  }
  if (cmd == "profile") {
    return CmdProfile(argc, argv);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Dispatch(argc, argv); }
