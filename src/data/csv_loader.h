#ifndef P3GM_DATA_CSV_LOADER_H_
#define P3GM_DATA_CSV_LOADER_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace p3gm {
namespace data {

/// Options for loading a real tabular dataset from CSV — the path a
/// downstream user takes to run P3GM on their own data instead of the
/// bundled synthetic generators.
struct CsvLoadOptions {
  /// Whether the first row is a header (skipped).
  bool has_header = true;
  /// Zero-based index of the label column; negative counts from the end
  /// (-1 = last column).
  int label_column = -1;
  /// When true, features are min-max scaled to [0, 1] (the input domain
  /// the generative models assume). Labels are never scaled.
  bool scale_features = true;
  /// Field separator.
  char separator = ',';
};

/// Loads a numeric CSV into a Dataset. Labels must be non-negative
/// integers; num_classes is 1 + the maximum label. Fails on ragged rows,
/// non-numeric cells, an out-of-range label column, or an empty file.
util::Result<Dataset> LoadCsvDataset(const std::string& path,
                                     const CsvLoadOptions& options = {});

/// Writes a Dataset to CSV (features then a final "label" column), the
/// inverse of LoadCsvDataset for releasing synthetic data as a file.
util::Status SaveCsvDataset(const Dataset& dataset, const std::string& path);

}  // namespace data
}  // namespace p3gm

#endif  // P3GM_DATA_CSV_LOADER_H_
