#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "data/transforms.h"
#include "linalg/ops.h"

namespace p3gm {
namespace data {

namespace {

// Scales every column of `features` to [0, 1] in place (generation-time
// normalization; the scaler is not retained because synthetic generators
// define their own canonical scale).
void ScaleToUnit(linalg::Matrix* features) {
  auto scaler = MinMaxScaler::Fit(*features);
  P3GM_CHECK(scaler.ok());
  *features = scaler.ValueOrDie().Transform(*features);
}

}  // namespace

Dataset MakeCreditLike(std::size_t n, std::uint64_t seed,
                       double positive_rate) {
  P3GM_CHECK(n >= 100);
  P3GM_CHECK(positive_rate > 0.0 && positive_rate < 0.5);
  util::Rng rng(seed);
  constexpr std::size_t kDim = 29;
  const double kPositiveRate = positive_rate;

  Dataset out;
  out.name = "credit-like";
  out.num_classes = 2;
  out.features = linalg::Matrix(n, kDim);
  out.labels.assign(n, 0);

  // Decaying per-component scales, mimicking PCA-ordered components.
  std::vector<double> comp_scale(28);
  for (std::size_t j = 0; j < 28; ++j) {
    comp_scale[j] = 2.0 * std::exp(-0.08 * static_cast<double>(j)) + 0.2;
  }
  // Fraud signature: a fixed shift direction in 8 of the 28 components.
  // The shift is moderate so the classes overlap — real Credit is not
  // perfectly separable (original AUROC ~0.97 in the paper, not 1.0).
  util::Rng dir_rng(seed ^ 0xf00d);
  std::vector<double> fraud_shift(28, 0.0);
  for (std::size_t j = 0; j < 8; ++j) {
    fraud_shift[j * 3] = dir_rng.Normal(0.0, 1.0) > 0 ? 1.3 : -1.3;
  }

  const auto num_pos = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::round(kPositiveRate * n)));
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i < num_pos;
    out.labels[i] = positive ? 1 : 0;
    double* row = out.features.row_data(i);
    for (std::size_t j = 0; j < 28; ++j) {
      double v = rng.Normal(0.0, comp_scale[j]);
      if (positive) v = 0.85 * v + fraud_shift[j] * comp_scale[j];
      row[j] = v;
    }
    // Amount: lognormal-ish, slightly heavier for fraud.
    const double log_amount =
        rng.Normal(positive ? 3.8 : 3.4, positive ? 1.2 : 1.0);
    row[28] = std::exp(std::min(log_amount, 9.0));
  }

  // Shuffle so positives are interleaved.
  std::vector<std::size_t> perm = rng.Permutation(n);
  out.features = out.features.SelectRows(perm);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = out.labels[perm[i]];
  out.labels = std::move(labels);

  ScaleToUnit(&out.features);
  return out;
}

Dataset MakeAdultLike(std::size_t n, std::uint64_t seed) {
  P3GM_CHECK(n >= 100);
  util::Rng rng(seed);
  constexpr std::size_t kDim = 15;

  Dataset out;
  out.name = "adult-like";
  out.num_classes = 2;
  out.features = linalg::Matrix(n, kDim);
  out.labels.assign(n, 0);

  std::vector<double> logits(n);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = out.features.row_data(i);
    // 0: age (years), correlated driver of several other columns.
    const double age = std::clamp(rng.Normal(38.0, 13.0), 17.0, 90.0);
    // 1: workclass (8 categories).
    const double workclass = static_cast<double>(rng.UniformInt(8));
    // 2: fnlwgt-like weight.
    const double weight = std::exp(rng.Normal(11.0, 0.6));
    // 3: education level (16 ordered categories), mildly age-linked.
    double edu = rng.Normal(9.5 + (age - 38.0) * 0.02, 2.8);
    edu = std::clamp(std::round(edu), 1.0, 16.0);
    // 4: education-num equals the ordered code (deterministic copy — a
    // real Adult redundancy PrivBayes can exploit).
    const double edu_num = edu;
    // 5: marital status (7 categories), age-linked.
    const double marital =
        age > 28.0 && rng.Bernoulli(0.62) ? 1.0
            : static_cast<double>(rng.UniformInt(7));
    // 6: occupation (14 categories), education-linked.
    double occupation = std::round(rng.Normal(edu * 0.7, 2.5));
    occupation = std::clamp(occupation, 0.0, 13.0);
    // 7: relationship (6), 8: race (5), 9: sex (2).
    const double relationship = static_cast<double>(rng.UniformInt(6));
    const double race = static_cast<double>(rng.UniformInt(5));
    const double sex = rng.Bernoulli(0.67) ? 1.0 : 0.0;
    // 10: capital gain — sparse spikes.
    const double cap_gain =
        rng.Bernoulli(0.08) ? std::exp(rng.Normal(8.5, 1.0)) : 0.0;
    // 11: capital loss — sparser spikes.
    const double cap_loss =
        rng.Bernoulli(0.04) ? std::exp(rng.Normal(7.4, 0.5)) : 0.0;
    // 12: hours per week.
    const double hours = std::clamp(rng.Normal(40.0, 11.0), 1.0, 99.0);
    // 13: native country (binary US/other dominant mass).
    const double country = rng.Bernoulli(0.9) ? 0.0
                               : static_cast<double>(1 + rng.UniformInt(10));
    // 14: age bucket (decade) — another deterministic redundancy.
    const double age_bucket = std::floor(age / 10.0);

    const double values[kDim] = {age,   workclass, weight,  edu,
                                 edu_num, marital, occupation, relationship,
                                 race,  sex,       cap_gain, cap_loss,
                                 hours, country,   age_bucket};
    for (std::size_t j = 0; j < kDim; ++j) row[j] = values[j];

    // Income logit: sparse dependence on a few columns, like real Adult.
    logits[i] = 0.045 * (age - 38.0) + 0.38 * (edu - 9.5) +
                0.055 * (hours - 40.0) + (cap_gain > 0.0 ? 2.4 : 0.0) +
                (marital == 1.0 ? 1.1 : -0.4) + 0.35 * sex +
                rng.Normal(0.0, 0.8);
  }

  // Calibrate the intercept so the positive rate lands at ~24.1 %.
  std::vector<double> sorted = logits;
  std::sort(sorted.begin(), sorted.end());
  const double intercept =
      -sorted[static_cast<std::size_t>(0.759 * static_cast<double>(n))];
  for (std::size_t i = 0; i < n; ++i) {
    out.labels[i] = (logits[i] + intercept > 0.0) ? 1 : 0;
  }

  ScaleToUnit(&out.features);
  return out;
}

Dataset MakeIsoletLike(std::size_t n, std::uint64_t seed) {
  P3GM_CHECK(n >= 100);
  util::Rng rng(seed);
  constexpr std::size_t kDim = 617;
  constexpr std::size_t kRank = 25;
  constexpr std::size_t kLetters = 26;

  Dataset out;
  out.name = "isolet-like";
  out.num_classes = 2;
  out.features = linalg::Matrix(n, kDim);
  out.labels.assign(n, 0);

  // Shared loading matrix F (kDim x kRank) and per-letter latent means.
  util::Rng model_rng(seed ^ 0x150137);
  linalg::Matrix loadings(kDim, kRank);
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kRank; ++j) {
      loadings(i, j) = model_rng.Normal(0.0, 1.0 / std::sqrt(kRank));
    }
  }
  // Letter clusters overlap (sd comparable to within-letter spread) so
  // the binarized task is hard but learnable, like real ISOLET.
  linalg::Matrix letter_means(kLetters, kRank);
  for (std::size_t c = 0; c < kLetters; ++c) {
    for (std::size_t j = 0; j < kRank; ++j) {
      letter_means(c, j) = model_rng.Normal(0.0, 0.9);
    }
  }
  // 5 of 26 letters positive ~= 19.2 %.
  auto is_positive = [](std::size_t letter) { return letter < 5; };

  std::vector<double> z(kRank);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t letter = rng.UniformInt(kLetters);
    out.labels[i] = is_positive(letter) ? 1 : 0;
    for (std::size_t j = 0; j < kRank; ++j) {
      z[j] = letter_means(letter, j) +
             rng.Normal(0.0, 0.8 * std::exp(-0.05 * static_cast<double>(j)));
    }
    const std::vector<double> x = linalg::MatVec(loadings, z);
    double* row = out.features.row_data(i);
    for (std::size_t j = 0; j < kDim; ++j) {
      row[j] = x[j] + rng.Normal(0.0, 0.15);
    }
  }

  ScaleToUnit(&out.features);
  return out;
}

Dataset MakeEsrLike(std::size_t n, std::uint64_t seed) {
  P3GM_CHECK(n >= 100);
  util::Rng rng(seed);
  constexpr std::size_t kSeries = 178;
  constexpr std::size_t kDim = kSeries + 1;
  constexpr double kPositiveRate = 0.20;

  Dataset out;
  out.name = "esr-like";
  out.num_classes = 2;
  out.features = linalg::Matrix(n, kDim);
  out.labels.assign(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const bool seizure = rng.Uniform() < kPositiveRate;
    out.labels[i] = seizure ? 1 : 0;
    // AR(2): x_t = a1 x_{t-1} + a2 x_{t-2} + e_t. Seizure windows have a
    // slower oscillation (poles nearer the unit circle) plus occasional
    // spikes, and a larger amplitude *on average* — a per-window random
    // gain makes the amplitude distributions overlap so the task is hard
    // but not trivial (paper's original ESR AUROC ~0.87).
    const double a1 = seizure ? 1.55 : 1.35;
    const double a2 = seizure ? -0.72 : -0.58;
    const double gain = std::exp(rng.Normal(0.0, 0.5));
    const double noise_scale = gain * (seizure ? 1.6 : 1.0);
    double prev1 = rng.Normal(0.0, noise_scale);
    double prev2 = rng.Normal(0.0, noise_scale);
    double* row = out.features.row_data(i);
    double abs_sum = 0.0;
    for (std::size_t t = 0; t < kSeries; ++t) {
      double x = a1 * prev1 + a2 * prev2 + rng.Normal(0.0, noise_scale);
      if (seizure && rng.Bernoulli(0.02)) x += rng.Normal(0.0, 12.0);
      row[t] = x;
      abs_sum += std::fabs(x);
      prev2 = prev1;
      prev1 = x;
    }
    // Amplitude summary channel.
    row[kSeries] = abs_sum / static_cast<double>(kSeries);
  }

  ScaleToUnit(&out.features);
  return out;
}

}  // namespace data
}  // namespace p3gm
