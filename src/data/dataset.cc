#include "data/dataset.h"

#include <algorithm>
#include <cmath>

namespace p3gm {
namespace data {

double Dataset::PositiveRate() const {
  if (labels.empty()) return 0.0;
  std::size_t pos = 0;
  for (std::size_t y : labels) pos += (y == 1) ? 1 : 0;
  return static_cast<double>(pos) / static_cast<double>(labels.size());
}

std::vector<std::size_t> Dataset::ClassCounts() const {
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t y : labels) {
    P3GM_CHECK(y < num_classes);
    ++counts[y];
  }
  return counts;
}

Dataset Dataset::FilterByLabel(std::size_t label) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) idx.push_back(i);
  }
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.features = features.SelectRows(idx);
  out.labels.assign(idx.size(), label);
  return out;
}

Dataset Dataset::Head(std::size_t n) const {
  n = std::min(n, size());
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.features = features.SelectRows(idx);
  out.labels.assign(labels.begin(),
                    labels.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

util::Result<Split> StratifiedSplit(const Dataset& dataset,
                                    double test_fraction,
                                    std::uint64_t seed) {
  if (dataset.size() == 0) {
    return util::Status::InvalidArgument("StratifiedSplit: empty dataset");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return util::Status::InvalidArgument(
        "StratifiedSplit: test_fraction must be in (0, 1)");
  }
  if (dataset.labels.size() != dataset.size()) {
    return util::Status::InvalidArgument(
        "StratifiedSplit: labels/features size mismatch");
  }
  util::Rng rng(seed);
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t c = 0; c < dataset.num_classes; ++c) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      if (dataset.labels[i] == c) idx.push_back(i);
    }
    rng.Shuffle(&idx);
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(idx.size()) * test_fraction);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < n_test ? test_idx : train_idx).push_back(idx[i]);
    }
  }
  rng.Shuffle(&train_idx);
  rng.Shuffle(&test_idx);

  auto subset = [&](const std::vector<std::size_t>& idx) {
    Dataset out;
    out.name = dataset.name;
    out.num_classes = dataset.num_classes;
    out.features = dataset.features.SelectRows(idx);
    out.labels.reserve(idx.size());
    for (std::size_t i : idx) out.labels.push_back(dataset.labels[i]);
    return out;
  };
  return Split{subset(train_idx), subset(test_idx)};
}

Dataset StratifiedResample(const Dataset& dataset, std::size_t n,
                           util::Rng* rng) {
  P3GM_CHECK(dataset.size() > 0);
  const std::vector<std::size_t> counts = dataset.ClassCounts();
  std::vector<std::vector<std::size_t>> by_class(dataset.num_classes);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[dataset.labels[i]].push_back(i);
  }
  std::vector<std::size_t> idx;
  idx.reserve(n);
  for (std::size_t c = 0; c < dataset.num_classes; ++c) {
    if (by_class[c].empty()) continue;
    const auto want = static_cast<std::size_t>(
        std::round(static_cast<double>(n) * static_cast<double>(counts[c]) /
                   static_cast<double>(dataset.size())));
    for (std::size_t i = 0; i < want; ++i) {
      idx.push_back(by_class[c][rng->UniformInt(by_class[c].size())]);
    }
  }
  while (idx.size() < n) {
    idx.push_back(rng->UniformInt(dataset.size()));
  }
  rng->Shuffle(&idx);
  idx.resize(n);

  Dataset out;
  out.name = dataset.name;
  out.num_classes = dataset.num_classes;
  out.features = dataset.features.SelectRows(idx);
  out.labels.reserve(n);
  for (std::size_t i : idx) out.labels.push_back(dataset.labels[i]);
  return out;
}

}  // namespace data
}  // namespace p3gm
