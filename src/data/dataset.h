#ifndef P3GM_DATA_DATASET_H_
#define P3GM_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace data {

/// A supervised dataset: an (n x d) feature matrix plus integer class
/// labels. All generators in this library produce features already scaled
/// to [0, 1] (the input domain P3GM's Bernoulli decoder assumes).
struct Dataset {
  std::string name;
  linalg::Matrix features;
  std::vector<std::size_t> labels;
  std::size_t num_classes = 2;

  std::size_t size() const { return features.rows(); }
  std::size_t dim() const { return features.cols(); }

  /// Fraction of examples with label 1 (binary datasets).
  double PositiveRate() const;

  /// Per-class example counts.
  std::vector<std::size_t> ClassCounts() const;

  /// Rows with the given label.
  Dataset FilterByLabel(std::size_t label) const;

  /// The first `n` rows (n clamped to size()).
  Dataset Head(std::size_t n) const;
};

/// Train/test split preserving class ratios. `test_fraction` in (0, 1).
struct Split {
  Dataset train;
  Dataset test;
};
util::Result<Split> StratifiedSplit(const Dataset& dataset,
                                    double test_fraction, std::uint64_t seed);

/// Draws a class-stratified bootstrap of `n` rows — used to make synthetic
/// datasets "so that the label ratio is the same as the real training
/// dataset" (paper Section VI).
Dataset StratifiedResample(const Dataset& dataset, std::size_t n,
                           util::Rng* rng);

}  // namespace data
}  // namespace p3gm

#endif  // P3GM_DATA_DATASET_H_
