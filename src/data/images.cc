#include "data/images.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

namespace p3gm {
namespace data {

namespace {

constexpr std::size_t kS = kImageSide;

/// Scratch raster for building one glyph. Coordinates are in glyph space
/// [0,1]^2 with (x right, y down); an affine jitter maps glyph space to
/// pixel space.
class Canvas {
 public:
  Canvas() : pix_(kS * kS, 0.0) {}

  /// Sets the per-sample affine: rotation (radians), anisotropic scale,
  /// translation (pixels).
  void SetAffine(double rot, double sx, double sy, double tx, double ty) {
    cos_ = std::cos(rot);
    sin_ = std::sin(rot);
    sx_ = sx;
    sy_ = sy;
    tx_ = tx;
    ty_ = ty;
  }

  /// Stamps a filled disc of the given radius (pixels) at glyph point
  /// (x, y); intensity accumulates and saturates at 1.
  void Dot(double x, double y, double radius) {
    const auto [px, py] = Map(x, y);
    const int lo_i = static_cast<int>(std::floor(py - radius - 1));
    const int hi_i = static_cast<int>(std::ceil(py + radius + 1));
    const int lo_j = static_cast<int>(std::floor(px - radius - 1));
    const int hi_j = static_cast<int>(std::ceil(px + radius + 1));
    for (int i = std::max(lo_i, 0); i <= std::min<int>(hi_i, kS - 1); ++i) {
      for (int j = std::max(lo_j, 0); j <= std::min<int>(hi_j, kS - 1);
           ++j) {
        const double dx = static_cast<double>(j) - px;
        const double dy = static_cast<double>(i) - py;
        const double dist = std::sqrt(dx * dx + dy * dy);
        // Soft brush edge over one pixel.
        const double v = std::clamp(radius + 0.5 - dist, 0.0, 1.0);
        double& p = pix_[static_cast<std::size_t>(i) * kS +
                         static_cast<std::size_t>(j)];
        p = std::min(1.0, p + v);
      }
    }
  }

  /// Thick line from (x0,y0) to (x1,y1) in glyph space.
  void Line(double x0, double y0, double x1, double y1, double radius) {
    const double len = std::hypot(x1 - x0, y1 - y0);
    const int steps = std::max(2, static_cast<int>(len * kS * 2.0));
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      Dot(x0 + t * (x1 - x0), y0 + t * (y1 - y0), radius);
    }
  }

  /// Elliptic arc centered at (cx, cy) with radii (rx, ry), from angle a0
  /// to a1 (radians, y-down screen convention).
  void Arc(double cx, double cy, double rx, double ry, double a0, double a1,
           double radius) {
    const int steps = 40;
    for (int s = 0; s <= steps; ++s) {
      const double a = a0 + (a1 - a0) * static_cast<double>(s) / steps;
      Dot(cx + rx * std::cos(a), cy + ry * std::sin(a), radius);
    }
  }

  /// Axis-aligned filled rectangle in glyph space (for silhouettes).
  void FillRect(double x0, double y0, double x1, double y1) {
    const int steps = static_cast<int>(kS * 1.6);
    for (int a = 0; a <= steps; ++a) {
      for (int b = 0; b <= steps; ++b) {
        const double x = x0 + (x1 - x0) * a / static_cast<double>(steps);
        const double y = y0 + (y1 - y0) * b / static_cast<double>(steps);
        Dot(x, y, 0.55);
      }
    }
  }

  /// Filled ellipse in glyph space.
  void FillEllipse(double cx, double cy, double rx, double ry) {
    const int steps = static_cast<int>(kS * 1.6);
    for (int a = 0; a <= steps; ++a) {
      for (int b = 0; b <= steps; ++b) {
        const double u = -1.0 + 2.0 * a / static_cast<double>(steps);
        const double v = -1.0 + 2.0 * b / static_cast<double>(steps);
        if (u * u + v * v <= 1.0) Dot(cx + rx * u, cy + ry * v, 0.55);
      }
    }
  }

  /// 3x3 box blur followed by additive pixel noise and clamping.
  void Finish(double noise_std, util::Rng* rng) {
    std::vector<double> blurred(kS * kS, 0.0);
    for (std::size_t i = 0; i < kS; ++i) {
      for (std::size_t j = 0; j < kS; ++j) {
        double total = 0.0;
        int count = 0;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            const int ii = static_cast<int>(i) + di;
            const int jj = static_cast<int>(j) + dj;
            if (ii < 0 || jj < 0 || ii >= static_cast<int>(kS) ||
                jj >= static_cast<int>(kS)) {
              continue;
            }
            total += pix_[static_cast<std::size_t>(ii) * kS +
                          static_cast<std::size_t>(jj)];
            ++count;
          }
        }
        blurred[i * kS + j] = total / count;
      }
    }
    for (std::size_t k = 0; k < pix_.size(); ++k) {
      pix_[k] = std::clamp(blurred[k] + rng->Normal(0.0, noise_std), 0.0, 1.0);
    }
  }

  const std::vector<double>& pixels() const { return pix_; }

 private:
  std::pair<double, double> Map(double x, double y) const {
    // Glyph space [0,1]^2 -> centered -> rotate/scale -> pixel space.
    const double cxg = x - 0.5, cyg = y - 0.5;
    const double rx = cos_ * cxg - sin_ * cyg;
    const double ry = sin_ * cxg + cos_ * cyg;
    const double margin = 4.0;
    const double span = static_cast<double>(kS) - 2.0 * margin;
    return {margin + (rx * sx_ + 0.5) * span + tx_,
            margin + (ry * sy_ + 0.5) * span + ty_};
  }

  std::vector<double> pix_;
  double cos_ = 1.0, sin_ = 0.0, sx_ = 1.0, sy_ = 1.0, tx_ = 0.0, ty_ = 0.0;
};

constexpr double kPi = 3.14159265358979323846;

void DrawDigit(std::size_t digit, double r, Canvas* c) {
  switch (digit) {
    case 0:
      c->Arc(0.5, 0.5, 0.32, 0.45, 0.0, 2.0 * kPi, r);
      break;
    case 1:
      c->Line(0.35, 0.25, 0.55, 0.05, r);
      c->Line(0.55, 0.05, 0.55, 0.95, r);
      break;
    case 2:
      c->Arc(0.5, 0.28, 0.3, 0.25, -kPi, 0.35, r);
      c->Line(0.76, 0.38, 0.22, 0.95, r);
      c->Line(0.22, 0.95, 0.8, 0.95, r);
      break;
    case 3:
      c->Arc(0.45, 0.27, 0.3, 0.24, -kPi * 0.9, kPi * 0.5, r);
      c->Arc(0.45, 0.73, 0.32, 0.26, -kPi * 0.5, kPi * 0.9, r);
      break;
    case 4:
      c->Line(0.62, 0.05, 0.2, 0.62, r);
      c->Line(0.2, 0.62, 0.85, 0.62, r);
      c->Line(0.62, 0.05, 0.62, 0.95, r);
      break;
    case 5:
      c->Line(0.75, 0.08, 0.3, 0.08, r);
      c->Line(0.3, 0.08, 0.28, 0.45, r);
      c->Arc(0.48, 0.68, 0.28, 0.26, -kPi * 0.6, kPi * 0.85, r);
      break;
    case 6:
      c->Arc(0.55, 0.2, 0.3, 0.3, kPi * 0.85, kPi * 1.45, r);
      c->Line(0.28, 0.33, 0.24, 0.68, r);
      c->Arc(0.5, 0.7, 0.26, 0.24, 0.0, 2.0 * kPi, r);
      break;
    case 7:
      c->Line(0.18, 0.08, 0.82, 0.08, r);
      c->Line(0.82, 0.08, 0.42, 0.95, r);
      break;
    case 8:
      c->Arc(0.5, 0.28, 0.24, 0.21, 0.0, 2.0 * kPi, r);
      c->Arc(0.5, 0.72, 0.29, 0.25, 0.0, 2.0 * kPi, r);
      break;
    case 9:
      c->Arc(0.5, 0.3, 0.26, 0.24, 0.0, 2.0 * kPi, r);
      c->Line(0.76, 0.3, 0.68, 0.92, r);
      break;
    default:
      P3GM_CHECK(false);
  }
}

void DrawGarment(std::size_t cls, util::Rng* rng, Canvas* c) {
  const double j1 = rng->Uniform(-0.03, 0.03);
  const double j2 = rng->Uniform(-0.03, 0.03);
  switch (cls) {
    case 0:  // T-shirt: torso + short sleeves.
      c->FillRect(0.3 + j1, 0.25, 0.7 + j2, 0.85);
      c->FillRect(0.1, 0.25, 0.32, 0.45 + j1);
      c->FillRect(0.68, 0.25, 0.9, 0.45 + j2);
      break;
    case 1:  // Trouser: two legs.
      c->FillRect(0.32 + j1, 0.1, 0.48, 0.92);
      c->FillRect(0.54, 0.1, 0.7 + j2, 0.92);
      c->FillRect(0.32 + j1, 0.1, 0.7 + j2, 0.3);
      break;
    case 2:  // Pullover: torso + long sleeves.
      c->FillRect(0.3 + j1, 0.2, 0.7 + j2, 0.85);
      c->FillRect(0.08, 0.2, 0.32, 0.8 + j1);
      c->FillRect(0.68, 0.2, 0.92, 0.8 + j2);
      break;
    case 3:  // Dress: narrow top widening down.
      c->FillRect(0.4 + j1, 0.1, 0.6 + j2, 0.4);
      c->FillEllipse(0.5 + j1, 0.72, 0.26, 0.26);
      c->FillRect(0.34, 0.45, 0.66, 0.75 + j2);
      break;
    case 4:  // Coat: long torso, long sleeves, open front line.
      c->FillRect(0.28 + j1, 0.15, 0.72 + j2, 0.95);
      c->FillRect(0.06, 0.15, 0.3, 0.85 + j1);
      c->FillRect(0.7, 0.15, 0.94, 0.85 + j2);
      break;
    case 5:  // Sandal: strips.
      c->FillRect(0.1 + j1, 0.62, 0.9 + j2, 0.72);
      c->FillRect(0.2, 0.45, 0.35 + j1, 0.65);
      c->FillRect(0.5, 0.45, 0.65 + j2, 0.65);
      c->FillRect(0.75, 0.5, 0.9, 0.65);
      break;
    case 6:  // Shirt: torso + sleeves + collar gap.
      c->FillRect(0.32 + j1, 0.2, 0.68 + j2, 0.88);
      c->FillRect(0.12, 0.2, 0.34, 0.6 + j1);
      c->FillRect(0.66, 0.2, 0.88, 0.6 + j2);
      c->FillRect(0.46, 0.2, 0.54, 0.34);
      break;
    case 7:  // Sneaker: low wedge.
      c->FillEllipse(0.4 + j1, 0.68, 0.32, 0.14);
      c->FillRect(0.1, 0.68, 0.9 + j2, 0.82);
      c->FillRect(0.6, 0.55, 0.9 + j2, 0.72);
      break;
    case 8:  // Bag: body + handle arc.
      c->FillRect(0.2 + j1, 0.45, 0.8 + j2, 0.88);
      c->Arc(0.5, 0.45, 0.2, 0.22, -kPi, 0.0, 1.2);
      break;
    case 9:  // Ankle boot: L-shaped.
      c->FillRect(0.35 + j1, 0.2, 0.6 + j2, 0.8);
      c->FillRect(0.35 + j1, 0.62, 0.88, 0.84);
      break;
    default:
      P3GM_CHECK(false);
  }
}

Dataset MakeImageDataset(std::size_t n, std::uint64_t seed, bool fashion,
                         const std::string& name) {
  P3GM_CHECK(n >= 10);
  util::Rng rng(seed);
  Dataset out;
  out.name = name;
  out.num_classes = 10;
  out.features = linalg::Matrix(n, kImagePixels);
  out.labels.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = rng.UniformInt(10);
    out.labels[i] = cls;
    Canvas canvas;
    canvas.SetAffine(rng.Uniform(-0.22, 0.22), rng.Uniform(0.82, 1.08),
                     rng.Uniform(0.82, 1.08), rng.Uniform(-1.8, 1.8),
                     rng.Uniform(-1.8, 1.8));
    if (fashion) {
      DrawGarment(cls, &rng, &canvas);
    } else {
      DrawDigit(cls, rng.Uniform(0.7, 1.5), &canvas);
    }
    canvas.Finish(/*noise_std=*/0.03, &rng);
    const std::vector<double>& pix = canvas.pixels();
    double* row = out.features.row_data(i);
    std::copy(pix.begin(), pix.end(), row);
  }
  return out;
}

}  // namespace

Dataset MakeMnistLike(std::size_t n, std::uint64_t seed) {
  return MakeImageDataset(n, seed, /*fashion=*/false, "mnist-like");
}

Dataset MakeFashionLike(std::size_t n, std::uint64_t seed) {
  return MakeImageDataset(n, seed, /*fashion=*/true, "fashion-like");
}

std::string AsciiImage(const double* pixels, std::size_t side) {
  static const char kShades[] = " .:-=+*#%@";
  std::string out;
  out.reserve(side * (side + 1));
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      const double v = std::clamp(pixels[i * side + j], 0.0, 1.0);
      out += kShades[static_cast<std::size_t>(v * 9.999)];
    }
    out += '\n';
  }
  return out;
}

util::Status SaveImageGridPgm(const linalg::Matrix& images,
                              std::size_t grid_cols, const std::string& path,
                              std::size_t side) {
  if (images.rows() == 0 || images.cols() != side * side) {
    return util::Status::InvalidArgument(
        "SaveImageGridPgm: rows must be flattened side*side images");
  }
  if (grid_cols == 0) {
    return util::Status::InvalidArgument("SaveImageGridPgm: grid_cols == 0");
  }
  const std::size_t grid_rows =
      (images.rows() + grid_cols - 1) / grid_cols;
  const std::size_t width = grid_cols * (side + 1) - 1;
  const std::size_t height = grid_rows * (side + 1) - 1;
  std::vector<unsigned char> raster(width * height, 32);  // Dim separator.
  for (std::size_t k = 0; k < images.rows(); ++k) {
    const std::size_t gr = k / grid_cols;
    const std::size_t gc = k % grid_cols;
    const double* img = images.row_data(k);
    for (std::size_t i = 0; i < side; ++i) {
      for (std::size_t j = 0; j < side; ++j) {
        const double v = std::clamp(img[i * side + j], 0.0, 1.0);
        raster[(gr * (side + 1) + i) * width + gc * (side + 1) + j] =
            static_cast<unsigned char>(v * 255.0);
      }
    }
  }
  std::ofstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return util::Status::IoError("cannot open " + path);
  }
  f << "P5\n" << width << " " << height << "\n255\n";
  f.write(reinterpret_cast<const char*>(raster.data()),
          static_cast<std::streamsize>(raster.size()));
  if (!f) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

}  // namespace data
}  // namespace p3gm
