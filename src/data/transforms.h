#ifndef P3GM_DATA_TRANSFORMS_H_
#define P3GM_DATA_TRANSFORMS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace p3gm {
namespace data {

/// Per-column min-max scaler mapping features to [0, 1]. Constant columns
/// map to 0.
class MinMaxScaler {
 public:
  /// Learns per-column ranges from `x`.
  static util::Result<MinMaxScaler> Fit(const linalg::Matrix& x);

  linalg::Matrix Transform(const linalg::Matrix& x) const;
  linalg::Matrix InverseTransform(const linalg::Matrix& x) const;

  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// One-hot encodes integer labels to an (n x num_classes) 0/1 matrix.
linalg::Matrix LabelsToOneHot(const std::vector<std::size_t>& labels,
                              std::size_t num_classes);

/// Argmax decode of (possibly soft) one-hot rows back to labels.
std::vector<std::size_t> OneHotToLabels(const linalg::Matrix& one_hot);

/// [features | one-hot(labels)] — the paper trains P3GM "with
/// one-hot-encoding of the label" so generated rows carry a label
/// (Section IV-E).
linalg::Matrix AttachLabels(const linalg::Matrix& features,
                            const std::vector<std::size_t>& labels,
                            std::size_t num_classes);

/// Splits [features | one-hot] back apart; the label block is the last
/// `num_classes` columns, decoded by argmax.
struct LabeledRows {
  linalg::Matrix features;
  std::vector<std::size_t> labels;
};
LabeledRows DetachLabels(const linalg::Matrix& joint,
                         std::size_t num_classes);

/// Clamps every element of `m` into [lo, hi] in place.
void Clamp(double lo, double hi, linalg::Matrix* m);

}  // namespace data
}  // namespace p3gm

#endif  // P3GM_DATA_TRANSFORMS_H_
