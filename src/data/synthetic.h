#ifndef P3GM_DATA_SYNTHETIC_H_
#define P3GM_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"

namespace p3gm {
namespace data {

/// Synthetic stand-ins for the paper's four tabular datasets (Table III).
/// The real datasets are not redistributable here; each generator
/// reproduces the statistical *shape* that drives the paper's results —
/// dimensionality, class imbalance, and the kind of feature dependence —
/// as documented in DESIGN.md §4. All features are scaled to [0, 1] and
/// all generators are deterministic in (n, seed).

/// Kaggle-Credit-like: 29 features (28 decorrelated "PCA component"
/// Gaussians + an amount column), binary label with rare positives whose
/// distribution is shifted in a handful of dimensions. Exercises extreme
/// class imbalance at moderate dimensionality.
///
/// `positive_rate` defaults to the real dataset's 0.2 %. At bench scale
/// (thousands of rows instead of 284 807) that would leave single-digit
/// positives, so the benches raise it to ~1 % — the imbalance *shape* is
/// preserved while keeping the metrics estimable (see EXPERIMENTS.md).
Dataset MakeCreditLike(std::size_t n, std::uint64_t seed,
                       double positive_rate = 0.002);

/// Adult-like: 15 mixed categorical/numeric columns (categoricals as
/// scaled integer codes) with a label that is a logistic function of a few
/// columns — the simple, sparse dependence structure on which PrivBayes
/// is competitive. Positive rate ~24 %.
Dataset MakeAdultLike(std::size_t n, std::uint64_t seed);

/// ISOLET-like: 617 features from a rank-25 class-conditional factor
/// model over 26 latent "letter" clusters, binarized to ~19 % positive.
/// Exercises d >> effective rank with small n.
Dataset MakeIsoletLike(std::size_t n, std::uint64_t seed);

/// ESR-like: 178-sample AR(2) EEG-style windows plus one amplitude
/// summary (179 features). The positive ("seizure") class has larger
/// amplitude and a different spectral shape. Positive rate 20 %.
Dataset MakeEsrLike(std::size_t n, std::uint64_t seed);

}  // namespace data
}  // namespace p3gm

#endif  // P3GM_DATA_SYNTHETIC_H_
