#include "data/csv_loader.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "data/transforms.h"
#include "util/string_utils.h"

namespace p3gm {
namespace data {

namespace {

util::Result<double> ParseCell(const std::string& cell, std::size_t line) {
  if (cell.empty()) {
    return util::Status::InvalidArgument(
        util::Format("CSV line %zu: empty cell", line));
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end == cell.c_str() || *end != '\0' ||
      !std::isfinite(v)) {
    return util::Status::InvalidArgument(
        util::Format("CSV line %zu: non-numeric cell '%s'", line,
                     cell.c_str()));
  }
  return v;
}

}  // namespace

util::Result<Dataset> LoadCsvDataset(const std::string& path,
                                     const CsvLoadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open CSV: " + path);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  std::size_t line_no = 0;
  bool skipped_header = !options.has_header;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const std::vector<std::string> cells =
        util::Split(line, options.separator);
    if (width == 0) {
      width = cells.size();
      if (width < 2) {
        return util::Status::InvalidArgument(
            "CSV needs at least one feature and one label column");
      }
    } else if (cells.size() != width) {
      return util::Status::InvalidArgument(
          util::Format("CSV line %zu: expected %zu cells, got %zu", line_no,
                       width, cells.size()));
    }
    std::vector<double> row(width);
    for (std::size_t j = 0; j < width; ++j) {
      P3GM_ASSIGN_OR_RETURN(row[j], ParseCell(cells[j], line_no));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return util::Status::InvalidArgument("CSV has no data rows: " + path);
  }

  int label_col = options.label_column;
  if (label_col < 0) label_col += static_cast<int>(width);
  if (label_col < 0 || static_cast<std::size_t>(label_col) >= width) {
    return util::Status::InvalidArgument("label column out of range");
  }
  const auto lc = static_cast<std::size_t>(label_col);

  Dataset out;
  out.name = path;
  out.features = linalg::Matrix(rows.size(), width - 1);
  out.labels.resize(rows.size());
  std::size_t max_label = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double label_value = rows[i][lc];
    const double rounded = std::round(label_value);
    if (label_value < 0.0 || std::fabs(label_value - rounded) > 1e-9 ||
        rounded > 1e6) {
      return util::Status::InvalidArgument(util::Format(
          "row %zu: label %g is not a small non-negative integer", i,
          label_value));
    }
    out.labels[i] = static_cast<std::size_t>(rounded);
    max_label = std::max(max_label, out.labels[i]);
    std::size_t col = 0;
    for (std::size_t j = 0; j < width; ++j) {
      if (j == lc) continue;
      out.features(i, col++) = rows[i][j];
    }
  }
  out.num_classes = max_label + 1;
  if (options.scale_features) {
    P3GM_ASSIGN_OR_RETURN(MinMaxScaler scaler,
                          MinMaxScaler::Fit(out.features));
    out.features = scaler.Transform(out.features);
  }
  return out;
}

util::Status SaveCsvDataset(const Dataset& dataset, const std::string& path) {
  if (dataset.size() == 0) {
    return util::Status::InvalidArgument("SaveCsvDataset: empty dataset");
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open for writing: " + path);
  }
  for (std::size_t j = 0; j < dataset.dim(); ++j) {
    out << "f" << j << ",";
  }
  out << "label\n";
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const double* row = dataset.features.row_data(i);
    for (std::size_t j = 0; j < dataset.dim(); ++j) {
      out << util::Format("%.9g", row[j]) << ",";
    }
    out << dataset.labels[i] << "\n";
  }
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

}  // namespace data
}  // namespace p3gm
