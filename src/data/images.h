#ifndef P3GM_DATA_IMAGES_H_
#define P3GM_DATA_IMAGES_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace p3gm {
namespace data {

/// Side length of all generated images (matching MNIST's 28 x 28).
constexpr std::size_t kImageSide = 28;
constexpr std::size_t kImagePixels = kImageSide * kImageSide;

/// MNIST-like synthetic digits: each of the 10 classes is a procedural
/// stroke glyph (lines/arcs) rendered at 28 x 28 with per-sample random
/// affine jitter, stroke thickness, blur and pixel noise. Preserves what
/// the paper's Fig. 2 / Table VII need from MNIST: 784 dimensions, ten
/// visually distinct modes, and within-class diversity.
Dataset MakeMnistLike(std::size_t n, std::uint64_t seed);

/// Fashion-MNIST-like synthetic garments: ten filled-silhouette classes
/// (t-shirt, trouser, pullover, dress, coat, sandal, shirt, sneaker, bag,
/// boot) with per-sample shape jitter, blur and noise.
Dataset MakeFashionLike(std::size_t n, std::uint64_t seed);

/// Renders one flattened image row as ASCII art (dark = '#').
std::string AsciiImage(const double* pixels, std::size_t side = kImageSide);

/// Writes a grid of flattened images (rows of `images`) as a binary PGM
/// file, `grid_cols` images per row, 1-pixel separators.
util::Status SaveImageGridPgm(const linalg::Matrix& images,
                              std::size_t grid_cols, const std::string& path,
                              std::size_t side = kImageSide);

}  // namespace data
}  // namespace p3gm

#endif  // P3GM_DATA_IMAGES_H_
