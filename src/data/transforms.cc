#include "data/transforms.h"

#include <algorithm>

namespace p3gm {
namespace data {

util::Result<MinMaxScaler> MinMaxScaler::Fit(const linalg::Matrix& x) {
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("MinMaxScaler: empty data");
  }
  MinMaxScaler s;
  s.lo_.assign(x.cols(), 0.0);
  s.hi_.assign(x.cols(), 0.0);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double lo = x(0, j), hi = x(0, j);
    for (std::size_t i = 1; i < x.rows(); ++i) {
      lo = std::min(lo, x(i, j));
      hi = std::max(hi, x(i, j));
    }
    s.lo_[j] = lo;
    s.hi_[j] = hi;
  }
  return s;
}

linalg::Matrix MinMaxScaler::Transform(const linalg::Matrix& x) const {
  P3GM_CHECK(x.cols() == lo_.size());
  linalg::Matrix out = x;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const double range = hi_[j] - lo_[j];
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out(i, j) = range > 0.0 ? (x(i, j) - lo_[j]) / range : 0.0;
    }
  }
  return out;
}

linalg::Matrix MinMaxScaler::InverseTransform(const linalg::Matrix& x) const {
  P3GM_CHECK(x.cols() == lo_.size());
  linalg::Matrix out = x;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const double range = hi_[j] - lo_[j];
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out(i, j) = lo_[j] + x(i, j) * range;
    }
  }
  return out;
}

linalg::Matrix LabelsToOneHot(const std::vector<std::size_t>& labels,
                              std::size_t num_classes) {
  linalg::Matrix out(labels.size(), num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    P3GM_CHECK(labels[i] < num_classes);
    out(i, labels[i]) = 1.0;
  }
  return out;
}

std::vector<std::size_t> OneHotToLabels(const linalg::Matrix& one_hot) {
  std::vector<std::size_t> labels(one_hot.rows(), 0);
  for (std::size_t i = 0; i < one_hot.rows(); ++i) {
    const double* row = one_hot.row_data(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < one_hot.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    labels[i] = best;
  }
  return labels;
}

linalg::Matrix AttachLabels(const linalg::Matrix& features,
                            const std::vector<std::size_t>& labels,
                            std::size_t num_classes) {
  P3GM_CHECK(features.rows() == labels.size());
  return features.ConcatCols(LabelsToOneHot(labels, num_classes));
}

LabeledRows DetachLabels(const linalg::Matrix& joint,
                         std::size_t num_classes) {
  P3GM_CHECK(joint.cols() > num_classes);
  const std::size_t d = joint.cols() - num_classes;
  LabeledRows out;
  out.features = joint.FirstCols(d);
  linalg::Matrix one_hot(joint.rows(), num_classes);
  for (std::size_t i = 0; i < joint.rows(); ++i) {
    for (std::size_t j = 0; j < num_classes; ++j) {
      one_hot(i, j) = joint(i, d + j);
    }
  }
  out.labels = OneHotToLabels(one_hot);
  return out;
}

void Clamp(double lo, double hi, linalg::Matrix* m) {
  double* data = m->data();
  for (std::size_t i = 0; i < m->size(); ++i) {
    data[i] = std::clamp(data[i], lo, hi);
  }
}

}  // namespace data
}  // namespace p3gm
