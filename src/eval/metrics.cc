#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace p3gm {
namespace eval {

util::Result<double> Auroc(const std::vector<double>& scores,
                           const std::vector<std::size_t>& labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    return util::Status::InvalidArgument("Auroc: size mismatch or empty");
  }
  std::size_t pos = 0;
  for (std::size_t y : labels) pos += (y == 1) ? 1 : 0;
  const std::size_t neg = labels.size() - pos;
  if (pos == 0 || neg == 0) {
    return util::Status::InvalidArgument(
        "Auroc: needs both positive and negative examples");
  }
  // Midranks of scores.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(scores.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = midrank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) rank_sum_pos += rank[k];
  }
  const double auc =
      (rank_sum_pos - static_cast<double>(pos) *
                          (static_cast<double>(pos) + 1.0) / 2.0) /
      (static_cast<double>(pos) * static_cast<double>(neg));
  return auc;
}

util::Result<double> Auprc(const std::vector<double>& scores,
                           const std::vector<std::size_t>& labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    return util::Status::InvalidArgument("Auprc: size mismatch or empty");
  }
  std::size_t total_pos = 0;
  for (std::size_t y : labels) total_pos += (y == 1) ? 1 : 0;
  if (total_pos == 0) {
    return util::Status::InvalidArgument("Auprc: needs positive examples");
  }
  // Average precision: sum over descending thresholds of
  // (recall_k - recall_{k-1}) * precision_k, grouping tied scores.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  double ap = 0.0;
  std::size_t tp = 0, fp = 0;
  double prev_recall = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) {
        ++tp;
      } else {
        ++fp;
      }
    }
    const double recall = static_cast<double>(tp) / total_pos;
    const double precision =
        static_cast<double>(tp) / static_cast<double>(tp + fp);
    ap += (recall - prev_recall) * precision;
    prev_recall = recall;
    i = j + 1;
  }
  return ap;
}

double Accuracy(const std::vector<std::size_t>& predicted,
                const std::vector<std::size_t>& actual) {
  P3GM_CHECK(predicted.size() == actual.size() && !predicted.empty());
  std::size_t hit = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    hit += (predicted[i] == actual[i]) ? 1 : 0;
  }
  return static_cast<double>(hit) / static_cast<double>(predicted.size());
}

double F1Score(const std::vector<std::size_t>& predicted,
               const std::vector<std::size_t>& actual) {
  P3GM_CHECK(predicted.size() == actual.size());
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == 1 && actual[i] == 1) ++tp;
    if (predicted[i] == 1 && actual[i] == 0) ++fp;
    if (predicted[i] == 0 && actual[i] == 1) ++fn;
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom > 0.0 ? 2.0 * tp / denom : 0.0;
}

std::vector<std::size_t> ConfusionMatrix(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& actual, std::size_t num_classes) {
  P3GM_CHECK(predicted.size() == actual.size());
  std::vector<std::size_t> cm(num_classes * num_classes, 0);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    P3GM_CHECK(predicted[i] < num_classes && actual[i] < num_classes);
    ++cm[actual[i] * num_classes + predicted[i]];
  }
  return cm;
}

}  // namespace eval
}  // namespace p3gm
