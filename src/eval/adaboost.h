#ifndef P3GM_EVAL_ADABOOST_H_
#define P3GM_EVAL_ADABOOST_H_

#include <vector>

#include "eval/classifier.h"

namespace p3gm {
namespace eval {

/// Discrete AdaBoost (Freund & Schapire) over decision stumps — the
/// stand-in for sklearn.ensemble.AdaBoostClassifier. Scores are the
/// weighted stump margin squashed through a sigmoid so PredictProba is
/// rank-consistent with the boosted decision function.
class AdaBoost : public BinaryClassifier {
 public:
  struct Options {
    std::size_t num_stumps = 50;
  };

  AdaBoost() = default;
  explicit AdaBoost(const Options& options) : options_(options) {}

  util::Status Fit(const linalg::Matrix& x,
                   const std::vector<std::size_t>& y) override;
  std::vector<double> PredictProba(const linalg::Matrix& x) const override;
  std::string name() const override { return "AdaBoost"; }

  std::size_t num_stumps() const { return stumps_.size(); }

 private:
  struct Stump {
    std::size_t feature = 0;
    double threshold = 0.0;
    /// +1: predict positive above threshold; -1: below.
    double polarity = 1.0;
    double alpha = 0.0;
  };

  static double StumpPredict(const Stump& s, const double* row) {
    const double side = (row[s.feature] > s.threshold) ? 1.0 : -1.0;
    return side * s.polarity;
  }

  Options options_;
  std::vector<Stump> stumps_;
};

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_ADABOOST_H_
