#include "eval/adaboost.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/activations.h"

namespace p3gm {
namespace eval {

util::Status AdaBoost::Fit(const linalg::Matrix& x,
                           const std::vector<std::size_t>& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return util::Status::InvalidArgument(
        "AdaBoost: empty data or label size mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  stumps_.clear();

  std::vector<double> sign(n);
  for (std::size_t i = 0; i < n; ++i) sign[i] = (y[i] == 1) ? 1.0 : -1.0;
  std::vector<double> w(n, 1.0 / static_cast<double>(n));

  // Pre-sort each feature once; reused every round.
  std::vector<std::vector<std::size_t>> order(d);
  for (std::size_t f = 0; f < d; ++f) {
    order[f].resize(n);
    std::iota(order[f].begin(), order[f].end(), 0);
    std::sort(order[f].begin(), order[f].end(),
              [&](std::size_t a, std::size_t b) { return x(a, f) < x(b, f); });
  }

  for (std::size_t round = 0; round < options_.num_stumps; ++round) {
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    double total_pos = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (sign[i] > 0) total_pos += w[i];
    }

    Stump best;
    double best_err = 0.5;
    bool found = false;
    for (std::size_t f = 0; f < d; ++f) {
      // One linear sweep per feature: maintain the weight mass and
      // positive mass strictly below each candidate cut.
      double below = 0.0;
      double pos_below = 0.0;
      for (std::size_t k = 0; k + 1 < n; ++k) {
        const std::size_t idx = order[f][k];
        below += w[idx];
        if (sign[idx] > 0) pos_below += w[idx];
        if (x(order[f][k], f) == x(order[f][k + 1], f)) continue;
        // Polarity +1 predicts positive above the cut. Its weighted error
        // is the positives below plus the negatives above.
        const double neg_above = (total - below) - (total_pos - pos_below);
        const double err_plus = pos_below + neg_above;
        const double err = std::min(err_plus, total - err_plus);
        if (err < best_err - 1e-12) {
          best_err = err;
          best.feature = f;
          best.threshold = 0.5 * (x(order[f][k], f) + x(order[f][k + 1], f));
          best.polarity = (err_plus <= total - err_plus) ? 1.0 : -1.0;
          found = true;
        }
      }
    }
    if (!found) break;
    if (best_err <= 1e-10) {
      // Perfect stump: give it a large finite vote and stop.
      best.alpha = 10.0;
      stumps_.push_back(best);
      break;
    }
    best.alpha = 0.5 * std::log((1.0 - best_err) / best_err);
    stumps_.push_back(best);

    // Reweight and renormalize.
    double z = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double h = StumpPredict(best, x.row_data(i));
      w[i] *= std::exp(-best.alpha * sign[i] * h);
      z += w[i];
    }
    for (double& wi : w) wi /= z;
  }
  return util::Status::OK();
}

std::vector<double> AdaBoost::PredictProba(const linalg::Matrix& x) const {
  std::vector<double> p(x.rows(), 0.5);
  if (stumps_.empty()) return p;
  double alpha_total = 0.0;
  for (const Stump& s : stumps_) alpha_total += s.alpha;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double margin = 0.0;
    for (const Stump& s : stumps_) {
      margin += s.alpha * StumpPredict(s, x.row_data(i));
    }
    p[i] = nn::SigmoidScalar(2.0 * margin / std::max(alpha_total, 1e-12));
  }
  return p;
}

}  // namespace eval
}  // namespace p3gm
