#ifndef P3GM_EVAL_CLASSIFIER_H_
#define P3GM_EVAL_CLASSIFIER_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace p3gm {
namespace eval {

/// Interface of the downstream binary classifiers used in the paper's
/// synthetic-data evaluation protocol (train on synthetic, test on real).
/// These classifiers are NOT part of the privacy mechanism; they play the
/// role of sklearn/xgboost in the paper's Table V/VI.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on (n x d) features with 0/1 labels.
  virtual util::Status Fit(const linalg::Matrix& x,
                           const std::vector<std::size_t>& y) = 0;

  /// P(y = 1 | x) per row; valid after a successful Fit.
  virtual std::vector<double> PredictProba(const linalg::Matrix& x) const = 0;

  /// Thresholded labels at 0.5.
  std::vector<std::size_t> Predict(const linalg::Matrix& x) const {
    const std::vector<double> p = PredictProba(x);
    std::vector<std::size_t> labels(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) labels[i] = p[i] >= 0.5;
    return labels;
  }

  virtual std::string name() const = 0;
};

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_CLASSIFIER_H_
