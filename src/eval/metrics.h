#ifndef P3GM_EVAL_METRICS_H_
#define P3GM_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace p3gm {
namespace eval {

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic with
/// midrank tie handling — identical to sklearn.metrics.roc_auc_score.
/// Labels are 0/1; requires at least one example of each class.
util::Result<double> Auroc(const std::vector<double>& scores,
                           const std::vector<std::size_t>& labels);

/// Area under the precision-recall curve computed as average precision
/// (step-wise interpolation, sklearn.metrics.average_precision_score).
/// Requires at least one positive example.
util::Result<double> Auprc(const std::vector<double>& scores,
                           const std::vector<std::size_t>& labels);

/// Fraction of exact label matches.
double Accuracy(const std::vector<std::size_t>& predicted,
                const std::vector<std::size_t>& actual);

/// Binary F1 score of class 1 (0 when precision + recall is 0).
double F1Score(const std::vector<std::size_t>& predicted,
               const std::vector<std::size_t>& actual);

/// num_classes x num_classes confusion counts; entry (i, j) counts
/// examples of actual class i predicted as class j (row-major flat).
std::vector<std::size_t> ConfusionMatrix(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& actual, std::size_t num_classes);

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_METRICS_H_
