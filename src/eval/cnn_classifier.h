#ifndef P3GM_EVAL_CNN_CLASSIFIER_H_
#define P3GM_EVAL_CNN_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace eval {

/// The paper's image classifier (Section VI, "Implementations of
/// Classifiers"): one convolution with 28 kernels of size (3,3), 2x2 max
/// pooling, and two fully connected layers [128, 10] with ReLU and
/// dropout, trained with softmax cross-entropy. Used for the Table VII /
/// Fig. 5 accuracy numbers.
class CnnClassifier {
 public:
  struct Options {
    std::size_t image_side = 28;
    std::size_t num_classes = 10;
    std::size_t conv_channels = 28;
    std::size_t hidden = 128;
    double dropout = 0.3;
    std::size_t epochs = 4;
    std::size_t batch_size = 64;
    double lr = 1e-3;
    std::uint64_t seed = 41;
  };

  explicit CnnClassifier(const Options& options);

  /// Trains on flattened image rows with integer labels.
  util::Status Fit(const linalg::Matrix& x,
                   const std::vector<std::size_t>& y);

  /// Class-probability rows (n x num_classes).
  linalg::Matrix PredictProba(const linalg::Matrix& x);

  /// Argmax labels.
  std::vector<std::size_t> Predict(const linalg::Matrix& x);

 private:
  Options options_;
  nn::Sequential net_;
  nn::Adam optimizer_;
  util::Rng rng_;
};

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_CNN_CLASSIFIER_H_
