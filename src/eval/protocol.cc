#include "eval/protocol.h"

#include <memory>

#include "eval/adaboost.h"
#include "eval/boosting.h"
#include "eval/logistic_regression.h"
#include "eval/metrics.h"
#include "util/string_utils.h"

namespace p3gm {
namespace eval {

util::Result<ProtocolResult> EvaluateSyntheticData(const data::Dataset& train,
                                                   const data::Dataset& test,
                                                   bool fast,
                                                   std::uint64_t seed) {
  if (train.size() == 0 || test.size() == 0) {
    return util::Status::InvalidArgument(
        "EvaluateSyntheticData: empty train or test set");
  }
  std::vector<std::unique_ptr<BinaryClassifier>> roster;
  roster.push_back(std::make_unique<LogisticRegression>());
  {
    AdaBoost::Options opt;
    opt.num_stumps = fast ? 20 : 50;
    roster.push_back(std::make_unique<AdaBoost>(opt));
  }
  {
    auto gbm = MakeGbmClassifier(seed);
    if (fast) {
      GradientBoostedTrees::Options opt;
      opt.num_rounds = 30;
      opt.learning_rate = 0.1;
      opt.tree.max_depth = 4;
      opt.tree.min_samples_leaf = 20;
      opt.tree.min_samples_split = 40;
      opt.tree.max_features = TreeOptions::kSqrt;
      opt.seed = seed;
      opt.display_name = "GBM";
      gbm = std::make_unique<GradientBoostedTrees>(opt);
    }
    roster.push_back(std::move(gbm));
  }
  {
    auto xgb = MakeXgboostClassifier(seed + 1);
    if (fast) {
      GradientBoostedTrees::Options opt;
      opt.num_rounds = 30;
      opt.learning_rate = 0.3;
      opt.second_order = true;
      opt.tree.max_depth = 3;
      opt.tree.lambda = 1.0;
      opt.seed = seed + 1;
      opt.display_name = "XGBoost";
      xgb = std::make_unique<GradientBoostedTrees>(opt);
    }
    roster.push_back(std::move(xgb));
  }

  ProtocolResult out;
  for (auto& clf : roster) {
    P3GM_RETURN_NOT_OK(clf->Fit(train.features, train.labels));
    const std::vector<double> scores = clf->PredictProba(test.features);
    // A degenerate synthetic set (single class) can make a metric
    // undefined; score it 0.5 / 0-ish via the label base rate instead of
    // failing the whole table.
    ClassifierScore cs;
    cs.classifier = clf->name();
    auto auroc = Auroc(scores, test.labels);
    cs.auroc = auroc.ok() ? *auroc : 0.5;
    auto auprc = Auprc(scores, test.labels);
    cs.auprc = auprc.ok() ? *auprc : test.PositiveRate();
    out.per_classifier.push_back(cs);
    out.mean_auroc += cs.auroc;
    out.mean_auprc += cs.auprc;
  }
  out.mean_auroc /= static_cast<double>(out.per_classifier.size());
  out.mean_auprc /= static_cast<double>(out.per_classifier.size());
  return out;
}

std::string FormatProtocolResult(const ProtocolResult& result) {
  std::string out;
  out += util::Pad("classifier", -22) + util::Pad("AUROC", 8) +
         util::Pad("AUPRC", 8) + "\n";
  for (const ClassifierScore& cs : result.per_classifier) {
    out += util::Pad(cs.classifier, -22) +
           util::Pad(util::FormatDouble(cs.auroc, 4), 8) +
           util::Pad(util::FormatDouble(cs.auprc, 4), 8) + "\n";
  }
  out += util::Pad("mean", -22) +
         util::Pad(util::FormatDouble(result.mean_auroc, 4), 8) +
         util::Pad(util::FormatDouble(result.mean_auprc, 4), 8) + "\n";
  return out;
}

}  // namespace eval
}  // namespace p3gm
