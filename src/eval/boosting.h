#ifndef P3GM_EVAL_BOOSTING_H_
#define P3GM_EVAL_BOOSTING_H_

#include <memory>
#include <vector>

#include "eval/classifier.h"
#include "eval/regression_tree.h"

namespace p3gm {
namespace eval {

/// Tree-boosted binary classifier on the logistic loss. One engine serves
/// two presets:
///
///  * GradientBoostingClassifier() — first-order boosting (hessian fixed
///    to 1 in split search, Newton leaves), shrinkage 0.1, sqrt feature
///    subsampling, tree limits per the paper's sklearn settings.
///  * XgboostClassifier() — second-order boosting with logistic hessians
///    and L2 leaf regularization (lambda = 1), xgboost 0.90-ish defaults
///    (depth 3, eta 0.3, 100 rounds).
class GradientBoostedTrees : public BinaryClassifier {
 public:
  struct Options {
    std::size_t num_rounds = 100;
    double learning_rate = 0.1;
    TreeOptions tree;
    /// Use logistic hessians in the split search (XGBoost) rather than
    /// unit hessians (classic GBM).
    bool second_order = false;
    std::uint64_t seed = 31;
    std::string display_name = "GradientBoostedTrees";
  };

  explicit GradientBoostedTrees(const Options& options) : options_(options) {}

  util::Status Fit(const linalg::Matrix& x,
                   const std::vector<std::size_t>& y) override;
  std::vector<double> PredictProba(const linalg::Matrix& x) const override;
  std::string name() const override { return options_.display_name; }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  Options options_;
  double base_score_ = 0.0;  // Initial log-odds.
  std::vector<RegressionTree> trees_;
};

/// Factory presets matching the paper's classifier roster.
std::unique_ptr<GradientBoostedTrees> MakeGbmClassifier(
    std::uint64_t seed = 31);
std::unique_ptr<GradientBoostedTrees> MakeXgboostClassifier(
    std::uint64_t seed = 37);

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_BOOSTING_H_
