#include "eval/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace p3gm {
namespace eval {

namespace {

double LeafWeight(double g, double h, double lambda) {
  return -g / (h + lambda + 1e-12);
}

double ScoreHalf(double g, double h, double lambda) {
  return g * g / (h + lambda + 1e-12);
}

}  // namespace

util::Status RegressionTree::Fit(const linalg::Matrix& x,
                                 const std::vector<double>& grad,
                                 const std::vector<double>& hess,
                                 const TreeOptions& options, util::Rng* rng) {
  if (x.rows() == 0 || grad.size() != x.rows() || hess.size() != x.rows()) {
    return util::Status::InvalidArgument(
        "RegressionTree: empty data or grad/hess size mismatch");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  Build(x, grad, hess, &indices, 0, options, rng);
  return util::Status::OK();
}

std::size_t RegressionTree::Build(const linalg::Matrix& x,
                                  const std::vector<double>& grad,
                                  const std::vector<double>& hess,
                                  std::vector<std::size_t>* indices,
                                  std::size_t depth,
                                  const TreeOptions& options, util::Rng* rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();

  double g_total = 0.0, h_total = 0.0;
  for (std::size_t i : *indices) {
    g_total += grad[i];
    h_total += hess[i];
  }
  nodes_[node_id].value = LeafWeight(g_total, h_total, options.lambda);

  if (depth >= options.max_depth ||
      indices->size() < options.min_samples_split ||
      indices->size() < 2 * options.min_samples_leaf) {
    return node_id;
  }

  // Candidate feature subset.
  const std::size_t d = x.cols();
  std::size_t n_features = options.max_features;
  if (n_features == TreeOptions::kSqrt) {
    n_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(std::sqrt(d))));
  } else if (n_features == 0 || n_features > d) {
    n_features = d;
  }
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (n_features < d) {
    rng->Shuffle(&features);
    features.resize(n_features);
  }

  // Exact greedy split search.
  const double parent_score = ScoreHalf(g_total, h_total, options.lambda);
  double best_gain = options.min_gain;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<std::size_t> sorted = *indices;

  for (std::size_t f : features) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x(a, f) < x(b, f); });
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      g_left += grad[sorted[k]];
      h_left += hess[sorted[k]];
      // Only split between distinct values.
      if (x(sorted[k], f) == x(sorted[k + 1], f)) continue;
      const std::size_t n_left = k + 1;
      const std::size_t n_right = sorted.size() - n_left;
      if (n_left < options.min_samples_leaf ||
          n_right < options.min_samples_leaf) {
        continue;
      }
      const double gain =
          0.5 * (ScoreHalf(g_left, h_left, options.lambda) +
                 ScoreHalf(g_total - g_left, h_total - h_left,
                           options.lambda) -
                 parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (x(sorted[k], f) + x(sorted[k + 1], f));
      }
    }
  }

  if (best_gain <= options.min_gain) return node_id;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : *indices) {
    (x(i, best_feature) <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  indices->clear();
  indices->shrink_to_fit();
  const std::size_t left_id =
      Build(x, grad, hess, &left_idx, depth + 1, options, rng);
  const std::size_t right_id =
      Build(x, grad, hess, &right_idx, depth + 1, options, rng);
  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left_id;
  nodes_[node_id].right = right_id;
  return node_id;
}

double RegressionTree::PredictRow(const double* row) const {
  P3GM_CHECK(!nodes_.empty());
  std::size_t id = 0;
  while (!nodes_[id].is_leaf) {
    id = (row[nodes_[id].feature] <= nodes_[id].threshold) ? nodes_[id].left
                                                           : nodes_[id].right;
  }
  return nodes_[id].value;
}

std::vector<double> RegressionTree::Predict(const linalg::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = PredictRow(x.row_data(i));
  }
  return out;
}

}  // namespace eval
}  // namespace p3gm
