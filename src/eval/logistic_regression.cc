#include "eval/logistic_regression.h"

#include <cmath>

#include "nn/activations.h"
#include "util/check.h"

namespace p3gm {
namespace eval {

util::Status LogisticRegression::Fit(const linalg::Matrix& x,
                                     const std::vector<std::size_t>& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return util::Status::InvalidArgument(
        "LogisticRegression: empty data or label size mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  // Adam state.
  std::vector<double> m(d + 1, 0.0), v(d + 1, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double inv_n = 1.0 / static_cast<double>(n);

  for (std::size_t t = 1; t <= options_.iters; ++t) {
    std::vector<double> grad_w(d, 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = x.row_data(i);
      double logit = b_;
      for (std::size_t j = 0; j < d; ++j) logit += w_[j] * row[j];
      const double err =
          nn::SigmoidScalar(logit) - static_cast<double>(y[i] == 1);
      for (std::size_t j = 0; j < d; ++j) grad_w[j] += err * row[j];
      grad_b += err;
    }
    for (std::size_t j = 0; j < d; ++j) {
      grad_w[j] = grad_w[j] * inv_n + options_.l2 * w_[j];
    }
    grad_b *= inv_n;

    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (std::size_t j = 0; j <= d; ++j) {
      const double g = (j < d) ? grad_w[j] : grad_b;
      m[j] = beta1 * m[j] + (1.0 - beta1) * g;
      v[j] = beta2 * v[j] + (1.0 - beta2) * g * g;
      const double step =
          options_.lr * (m[j] / bc1) / (std::sqrt(v[j] / bc2) + eps);
      if (j < d) {
        w_[j] -= step;
      } else {
        b_ -= step;
      }
    }
  }
  return util::Status::OK();
}

std::vector<double> LogisticRegression::PredictProba(
    const linalg::Matrix& x) const {
  P3GM_CHECK(x.cols() == w_.size());
  std::vector<double> p(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    double logit = b_;
    for (std::size_t j = 0; j < w_.size(); ++j) logit += w_[j] * row[j];
    p[i] = nn::SigmoidScalar(logit);
  }
  return p;
}

}  // namespace eval
}  // namespace p3gm
