#include "eval/boosting.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"

namespace p3gm {
namespace eval {

util::Status GradientBoostedTrees::Fit(const linalg::Matrix& x,
                                       const std::vector<std::size_t>& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return util::Status::InvalidArgument(
        "GradientBoostedTrees: empty data or label size mismatch");
  }
  const std::size_t n = x.rows();
  trees_.clear();

  // Base score: log-odds of the positive rate (clamped away from 0/1).
  double pos = 0.0;
  for (std::size_t label : y) pos += (label == 1) ? 1.0 : 0.0;
  const double p0 =
      std::clamp(pos / static_cast<double>(n), 1e-4, 1.0 - 1e-4);
  base_score_ = std::log(p0 / (1.0 - p0));

  util::Rng rng(options_.seed);
  std::vector<double> margin(n, base_score_);
  std::vector<double> grad(n), hess(n);
  for (std::size_t round = 0; round < options_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = nn::SigmoidScalar(margin[i]);
      grad[i] = p - static_cast<double>(y[i] == 1);
      hess[i] = options_.second_order ? std::max(p * (1.0 - p), 1e-6) : 1.0;
    }
    RegressionTree tree;
    P3GM_RETURN_NOT_OK(tree.Fit(x, grad, hess, options_.tree, &rng));
    const std::vector<double> update = tree.Predict(x);
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * update[i];
    }
    trees_.push_back(std::move(tree));
  }
  return util::Status::OK();
}

std::vector<double> GradientBoostedTrees::PredictProba(
    const linalg::Matrix& x) const {
  std::vector<double> p(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double margin = base_score_;
    const double* row = x.row_data(i);
    for (const RegressionTree& tree : trees_) {
      margin += options_.learning_rate * tree.PredictRow(row);
    }
    p[i] = nn::SigmoidScalar(margin);
  }
  return p;
}

std::unique_ptr<GradientBoostedTrees> MakeGbmClassifier(std::uint64_t seed) {
  GradientBoostedTrees::Options opt;
  opt.num_rounds = 100;
  opt.learning_rate = 0.1;
  opt.second_order = false;
  // Paper's sklearn settings: max_depth=8, min_samples_leaf=50,
  // min_samples_split=200, max_features="sqrt".
  opt.tree.max_depth = 8;
  opt.tree.min_samples_leaf = 50;
  opt.tree.min_samples_split = 200;
  opt.tree.max_features = TreeOptions::kSqrt;
  opt.tree.lambda = 0.0;
  opt.seed = seed;
  opt.display_name = "GBM";
  return std::make_unique<GradientBoostedTrees>(opt);
}

std::unique_ptr<GradientBoostedTrees> MakeXgboostClassifier(
    std::uint64_t seed) {
  GradientBoostedTrees::Options opt;
  opt.num_rounds = 100;
  opt.learning_rate = 0.3;  // xgboost 0.90 default eta.
  opt.second_order = true;
  opt.tree.max_depth = 3;
  opt.tree.min_samples_leaf = 1;
  opt.tree.min_samples_split = 2;
  opt.tree.max_features = 0;  // All features.
  opt.tree.lambda = 1.0;
  opt.seed = seed;
  opt.display_name = "XGBoost";
  return std::make_unique<GradientBoostedTrees>(opt);
}

}  // namespace eval
}  // namespace p3gm
