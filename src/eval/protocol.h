#ifndef P3GM_EVAL_PROTOCOL_H_
#define P3GM_EVAL_PROTOCOL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace p3gm {
namespace eval {

/// One classifier's scores under the synthetic-data protocol.
struct ClassifierScore {
  std::string classifier;
  double auroc = 0.0;
  double auprc = 0.0;
};

/// Scores of the full roster plus their averages — one cell of the
/// paper's Table V / VI.
struct ProtocolResult {
  std::vector<ClassifierScore> per_classifier;
  double mean_auroc = 0.0;
  double mean_auprc = 0.0;
};

/// The evaluation protocol of Jordon et al. that the paper adopts
/// (Section VI): train the four classifiers (LogisticRegression,
/// AdaBoost, GBM, XGBoost) on `train` — which is synthetic data in the
/// private settings, or real data for the "original" column — and score
/// AUROC / AUPRC on the real `test` set.
///
/// `fast` trims boosting rounds for the sweep benches (Fig. 4) where the
/// full roster would dominate runtime.
util::Result<ProtocolResult> EvaluateSyntheticData(const data::Dataset& train,
                                                   const data::Dataset& test,
                                                   bool fast = false,
                                                   std::uint64_t seed = 101);

/// Pretty-prints one ProtocolResult as an aligned table block.
std::string FormatProtocolResult(const ProtocolResult& result);

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_PROTOCOL_H_
