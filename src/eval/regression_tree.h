#ifndef P3GM_EVAL_REGRESSION_TREE_H_
#define P3GM_EVAL_REGRESSION_TREE_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace eval {

/// Growth limits and regularization of one regression tree. The defaults
/// for the GBM preset mirror the paper's sklearn settings
/// (max_depth=8, min_samples_leaf=50, min_samples_split=200,
/// max_features="sqrt").
struct TreeOptions {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 50;
  std::size_t min_samples_split = 200;
  /// Number of candidate features per split; 0 means all, kSqrt means
  /// round(sqrt(d)).
  std::size_t max_features = 0;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double lambda = 0.0;
  /// Minimum gain to accept a split (XGBoost's gamma).
  double min_gain = 1e-12;

  static constexpr std::size_t kSqrt = static_cast<std::size_t>(-1);
};

/// CART-style regression tree fitted to per-example gradients and
/// hessians with Newton leaf weights w = -G / (H + lambda) and split gain
///   1/2 [ G_L^2/(H_L+l) + G_R^2/(H_R+l) - G^2/(H+l) ].
/// With hessian = 1 this reduces to least-squares fitting of the negative
/// gradient (classic GBM); with logistic hessians it is XGBoost's exact
/// greedy algorithm.
class RegressionTree {
 public:
  /// Builds the tree. `grad` and `hess` have one entry per row of `x`.
  util::Status Fit(const linalg::Matrix& x, const std::vector<double>& grad,
                   const std::vector<double>& hess, const TreeOptions& options,
                   util::Rng* rng);

  /// Leaf weight for one feature row.
  double PredictRow(const double* row) const;

  /// Leaf weights for all rows of `x`.
  std::vector<double> Predict(const linalg::Matrix& x) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t depth() const { return depth_; }

 private:
  struct Node {
    bool is_leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  // Leaf weight.
    std::size_t left = 0;
    std::size_t right = 0;
  };

  std::size_t Build(const linalg::Matrix& x, const std::vector<double>& grad,
                    const std::vector<double>& hess,
                    std::vector<std::size_t>* indices, std::size_t depth,
                    const TreeOptions& options, util::Rng* rng);

  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
};

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_REGRESSION_TREE_H_
