#ifndef P3GM_EVAL_LOGISTIC_REGRESSION_H_
#define P3GM_EVAL_LOGISTIC_REGRESSION_H_

#include <vector>

#include "eval/classifier.h"

namespace p3gm {
namespace eval {

/// L2-regularized logistic regression trained by full-batch gradient
/// descent with Adam-style adaptive steps — the stand-in for
/// sklearn.linear_model.LogisticRegression in Table V/VI.
class LogisticRegression : public BinaryClassifier {
 public:
  struct Options {
    std::size_t iters = 300;
    double lr = 0.1;
    double l2 = 1e-4;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(const Options& options) : options_(options) {}

  util::Status Fit(const linalg::Matrix& x,
                   const std::vector<std::size_t>& y) override;
  std::vector<double> PredictProba(const linalg::Matrix& x) const override;
  std::string name() const override { return "LogisticRegression"; }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  Options options_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace eval
}  // namespace p3gm

#endif  // P3GM_EVAL_LOGISTIC_REGRESSION_H_
