#include "eval/cnn_classifier.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/losses.h"

namespace p3gm {
namespace eval {

CnnClassifier::CnnClassifier(const Options& options)
    : options_(options),
      net_("cnn"),
      optimizer_(options.lr),
      rng_(options.seed) {
  const std::size_t side = options.image_side;
  auto* conv = net_.Emplace<nn::Conv2d>("conv1", 1, side, side,
                                        options.conv_channels, 3,
                                        /*padding=*/1, &rng_);
  net_.Emplace<nn::Relu>();
  auto* pool = net_.Emplace<nn::MaxPool2d>(options.conv_channels,
                                           conv->out_height(),
                                           conv->out_width());
  const std::size_t flat =
      options.conv_channels * pool->out_height() * pool->out_width();
  net_.Emplace<nn::Linear>("fc1", flat, options.hidden, &rng_);
  net_.Emplace<nn::Relu>();
  net_.Emplace<nn::Dropout>(options.dropout, options.seed ^ 0xd0);
  net_.Emplace<nn::Linear>("fc2", options.hidden, options.num_classes, &rng_);
}

util::Status CnnClassifier::Fit(const linalg::Matrix& x,
                                const std::vector<std::size_t>& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return util::Status::InvalidArgument(
        "CnnClassifier: empty data or label size mismatch");
  }
  if (x.cols() != options_.image_side * options_.image_side) {
    return util::Status::InvalidArgument(
        "CnnClassifier: rows must be flattened side*side images");
  }
  const std::size_t n = x.rows();
  const std::size_t batch = std::min(options_.batch_size, n);
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<std::size_t> perm = rng_.Permutation(n);
    for (std::size_t start = 0; start + batch <= n; start += batch) {
      std::vector<std::size_t> idx(perm.begin() + start,
                                   perm.begin() + start + batch);
      const linalg::Matrix xb = x.SelectRows(idx);
      std::vector<std::size_t> yb(batch);
      for (std::size_t i = 0; i < batch; ++i) yb[i] = y[idx[i]];

      net_.ZeroGrad();
      const linalg::Matrix logits = net_.Forward(xb, /*train=*/true);
      const nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, yb);
      net_.Backward(loss.grad, /*accumulate=*/true);
      optimizer_.Step(net_.Parameters());
    }
  }
  return util::Status::OK();
}

linalg::Matrix CnnClassifier::PredictProba(const linalg::Matrix& x) {
  // Evaluate in chunks to bound im2col scratch memory.
  const std::size_t chunk = 128;
  linalg::Matrix probs(x.rows(), options_.num_classes);
  for (std::size_t start = 0; start < x.rows(); start += chunk) {
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < std::min(start + chunk, x.rows()); ++i) {
      idx.push_back(i);
    }
    const linalg::Matrix logits =
        net_.Forward(x.SelectRows(idx), /*train=*/false);
    const linalg::Matrix p = nn::Softmax(logits);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      for (std::size_t j = 0; j < options_.num_classes; ++j) {
        probs(idx[i], j) = p(i, j);
      }
    }
  }
  return probs;
}

std::vector<std::size_t> CnnClassifier::Predict(const linalg::Matrix& x) {
  const linalg::Matrix probs = PredictProba(x);
  std::vector<std::size_t> labels(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = probs.row_data(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < probs.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    labels[i] = best;
  }
  return labels;
}

}  // namespace eval
}  // namespace p3gm
