#ifndef P3GM_STATS_DISCRETIZER_H_
#define P3GM_STATS_DISCRETIZER_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {

/// Equal-width per-column discretizer mapping continuous features to bin
/// indices. PrivBayes operates on categorical data, so continuous inputs
/// are discretized through this class and decoded back by sampling
/// uniformly inside the chosen bin.
class Discretizer {
 public:
  /// Learns per-column [min, max] ranges from `x` and fixes `bins` equal
  /// width bins per column. Degenerate (constant) columns get one bin.
  static util::Result<Discretizer> Fit(const linalg::Matrix& x,
                                       std::size_t bins);

  /// Bin index of value `v` in column `col`, clamped to the fitted range.
  std::size_t Encode(std::size_t col, double v) const;

  /// Encodes every element; output has the same shape with integer codes.
  std::vector<std::vector<int>> Transform(const linalg::Matrix& x) const;

  /// Decodes a bin index to a uniform sample inside the bin.
  double Decode(std::size_t col, std::size_t bin, util::Rng* rng) const;

  /// Decodes a full codes table back to continuous values.
  linalg::Matrix InverseTransform(const std::vector<std::vector<int>>& codes,
                                  util::Rng* rng) const;

  std::size_t bins() const { return bins_; }
  std::size_t num_columns() const { return lo_.size(); }

 private:
  std::size_t bins_ = 0;
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace stats
}  // namespace p3gm

#endif  // P3GM_STATS_DISCRETIZER_H_
