#include "stats/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/ops.h"
#include "obs/trace.h"
#include "stats/kmeans.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace stats {

namespace {

constexpr double kLog2Pi = 1.8378770664093454836;

double LogSumExp(const std::vector<double>& v) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double t : v) mx = std::max(mx, t);
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double t : v) s += std::exp(t - mx);
  return mx + std::log(s);
}

// log N(x; mu, diag(var)) for one component row.
double DiagGaussianLogPdf(const std::vector<double>& x, const double* mu,
                          const double* var) {
  double s = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double d = x[j] - mu[j];
    s += std::log(var[j]) + d * d / var[j];
  }
  return -0.5 * (static_cast<double>(x.size()) * kLog2Pi + s);
}

}  // namespace

util::Result<GaussianMixture> GaussianMixture::Create(
    std::vector<double> weights, linalg::Matrix means,
    linalg::Matrix variances) {
  if (weights.empty() || means.rows() != weights.size() ||
      variances.rows() != weights.size() ||
      variances.cols() != means.cols()) {
    return util::Status::InvalidArgument(
        "GaussianMixture: inconsistent parameter shapes");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return util::Status::InvalidArgument(
          "GaussianMixture: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    return util::Status::InvalidArgument(
        "GaussianMixture: weights sum to zero");
  }
  for (double& w : weights) w /= total;
  for (std::size_t i = 0; i < variances.size(); ++i) {
    if (variances.data()[i] <= 0.0) {
      return util::Status::InvalidArgument(
          "GaussianMixture: non-positive variance");
    }
  }
  GaussianMixture g;
  g.weights_ = std::move(weights);
  g.means_ = std::move(means);
  g.variances_ = std::move(variances);
  return g;
}

std::vector<double> GaussianMixture::ComponentLogJoint(
    const std::vector<double>& x) const {
  P3GM_CHECK(x.size() == dim());
  std::vector<double> out(num_components());
  for (std::size_t k = 0; k < num_components(); ++k) {
    out[k] = std::log(std::max(weights_[k], 1e-300)) +
             DiagGaussianLogPdf(x, means_.row_data(k), variances_.row_data(k));
  }
  return out;
}

double GaussianMixture::LogPdf(const std::vector<double>& x) const {
  return LogSumExp(ComponentLogJoint(x));
}

std::vector<double> GaussianMixture::Responsibilities(
    const std::vector<double>& x) const {
  std::vector<double> lj = ComponentLogJoint(x);
  const double lse = LogSumExp(lj);
  for (double& v : lj) v = std::exp(v - lse);
  return lj;
}

std::vector<double> GaussianMixture::Sample(util::Rng* rng) const {
  const std::size_t k = rng->Categorical(weights_);
  std::vector<double> x(dim());
  const double* mu = means_.row_data(k);
  const double* var = variances_.row_data(k);
  for (std::size_t j = 0; j < dim(); ++j) {
    x[j] = rng->Normal(mu[j], std::sqrt(var[j]));
  }
  return x;
}

linalg::Matrix GaussianMixture::SampleN(std::size_t n, util::Rng* rng) const {
  linalg::Matrix out(n, dim());
  for (std::size_t i = 0; i < n; ++i) out.SetRow(i, Sample(rng));
  return out;
}

double GaussianMixture::MeanLogLikelihood(const linalg::Matrix& x) const {
  P3GM_CHECK(x.rows() > 0);
  // Per-row log-densities are filled in parallel (disjoint slots), then
  // summed serially in index order — bit-identical for any thread count.
  std::vector<double> row_ll(x.rows());
  util::ParallelFor(0, x.rows(), 16, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) row_ll[i] = LogPdf(x.Row(i));
  });
  double total = 0.0;
  for (double v : row_ll) total += v;
  return total / static_cast<double>(x.rows());
}

namespace {

// One EM run from a k-means initialization. `final_ll` receives the mean
// log-likelihood of the returned model on `x`.
util::Result<GaussianMixture> FitGmmOnce(const linalg::Matrix& x,
                                         const EmOptions& options,
                                         std::uint64_t seed,
                                         double* final_ll) {
  P3GM_TRACE_SPAN("gmm.fit_once");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t kk = options.num_components;

  // k-means partition supplies means, per-cluster variances, weights.
  KMeansOptions km_opts;
  km_opts.num_clusters = kk;
  km_opts.max_iters = 15;
  km_opts.seed = seed;
  P3GM_ASSIGN_OR_RETURN(KMeansResult km, KMeans(x, km_opts));

  linalg::Matrix means = km.centroids;
  linalg::Matrix variances(kk, d);
  std::vector<double> weights(kk, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = km.assignment[i];
    weights[k] += 1.0;
    const double* xi = x.row_data(i);
    const double* mk = means.row_data(k);
    double* vk = variances.row_data(k);
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = xi[j] - mk[j];
      vk[j] += diff * diff;
    }
  }
  for (std::size_t k = 0; k < kk; ++k) {
    const double denom = std::max(weights[k], 1.0);
    double* vk = variances.row_data(k);
    for (std::size_t j = 0; j < d; ++j) {
      vk[j] = std::max(vk[j] / denom, options.min_variance);
    }
    weights[k] = std::max(weights[k] / static_cast<double>(n), 1e-6);
  }

  P3GM_ASSIGN_OR_RETURN(
      GaussianMixture model,
      GaussianMixture::Create(weights, means, variances));

  double prev_ll = -std::numeric_limits<double>::infinity();
  linalg::Matrix resp(n, kk);
  std::vector<double> row_lse(n);
  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    // E-step: each worker fills a disjoint block of responsibility rows
    // (and that row's log-sum-exp); the likelihood reduction then runs
    // serially in index order so the result is bit-identical for any
    // thread count.
    util::ParallelFor(0, n, 16, [&](std::size_t rb, std::size_t re) {
      for (std::size_t i = rb; i < re; ++i) {
        std::vector<double> lj = model.ComponentLogJoint(x.Row(i));
        const double lse = LogSumExp(lj);
        row_lse[i] = lse;
        for (std::size_t k = 0; k < kk; ++k) {
          resp(i, k) = std::exp(lj[k] - lse);
        }
      }
    });
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) ll += row_lse[i];
    ll /= static_cast<double>(n);

    // M-step: components are independent — each worker owns disjoint
    // rows of new_means/new_vars and disjoint nk/weights slots, and
    // accumulates its i-loop in the serial ascending order.
    linalg::Matrix new_means(kk, d);
    linalg::Matrix new_vars(kk, d);
    std::vector<double> nk(kk, 0.0);
    util::ParallelFor(0, kk, 1, [&](std::size_t cb, std::size_t ce) {
      for (std::size_t k = cb; k < ce; ++k) {
        for (std::size_t i = 0; i < n; ++i) nk[k] += resp(i, k);
        const double denom = std::max(nk[k], 1e-12);
        for (std::size_t i = 0; i < n; ++i) {
          const double r = resp(i, k);
          if (r == 0.0) continue;
          const double* xi = x.row_data(i);
          double* mk = new_means.row_data(k);
          for (std::size_t j = 0; j < d; ++j) mk[j] += r * xi[j];
        }
        double* mk = new_means.row_data(k);
        for (std::size_t j = 0; j < d; ++j) mk[j] /= denom;
        for (std::size_t i = 0; i < n; ++i) {
          const double r = resp(i, k);
          if (r == 0.0) continue;
          const double* xi = x.row_data(i);
          double* vk = new_vars.row_data(k);
          for (std::size_t j = 0; j < d; ++j) {
            const double diff = xi[j] - mk[j];
            vk[j] += r * diff * diff;
          }
        }
        double* vk = new_vars.row_data(k);
        for (std::size_t j = 0; j < d; ++j) {
          vk[j] = std::max(vk[j] / denom, options.min_variance);
        }
        weights[k] = nk[k] / static_cast<double>(n);
      }
    });
    P3GM_ASSIGN_OR_RETURN(
        model, GaussianMixture::Create(weights, new_means, new_vars));

    if (ll - prev_ll < options.tol && iter > 0) break;
    prev_ll = ll;
  }
  *final_ll = model.MeanLogLikelihood(x);
  return model;
}

}  // namespace

util::Result<GaussianMixture> FitGmm(const linalg::Matrix& x,
                                     const EmOptions& options) {
  P3GM_TRACE_SPAN("gmm.fit");
  const std::size_t n = x.rows();
  const std::size_t kk = options.num_components;
  if (n == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("FitGmm: empty data");
  }
  if (kk == 0 || kk > n) {
    return util::Status::InvalidArgument(
        "FitGmm: num_components must be in [1, n]");
  }
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  util::Rng seed_rng(options.seed);
  GaussianMixture best;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < restarts; ++r) {
    double ll = 0.0;
    P3GM_ASSIGN_OR_RETURN(GaussianMixture model,
                          FitGmmOnce(x, options, seed_rng.NextU64(), &ll));
    if (ll > best_ll) {
      best_ll = ll;
      best = std::move(model);
    }
  }
  return best;
}

double DiagGaussianKl(const std::vector<double>& mu_a,
                      const std::vector<double>& var_a,
                      const std::vector<double>& mu_b,
                      const std::vector<double>& var_b) {
  P3GM_CHECK(mu_a.size() == var_a.size() && mu_a.size() == mu_b.size() &&
             mu_a.size() == var_b.size());
  double kl = 0.0;
  for (std::size_t j = 0; j < mu_a.size(); ++j) {
    const double diff = mu_a[j] - mu_b[j];
    kl += std::log(var_b[j] / var_a[j]) + (var_a[j] + diff * diff) / var_b[j] -
          1.0;
  }
  return 0.5 * kl;
}

double GaussianToMixtureKl(const std::vector<double>& mu,
                           const std::vector<double>& var,
                           const GaussianMixture& mixture) {
  // Hershey–Olsen variational approximation with a single-component
  // "mixture" on the left: D ≈ -log sum_b pi_b exp(-KL(N || N_b)).
  std::vector<double> terms(mixture.num_components());
  for (std::size_t b = 0; b < mixture.num_components(); ++b) {
    std::vector<double> mu_b = mixture.means().Row(b);
    std::vector<double> var_b = mixture.variances().Row(b);
    terms[b] = std::log(std::max(mixture.weights()[b], 1e-300)) -
               DiagGaussianKl(mu, var, mu_b, var_b);
  }
  return -LogSumExp(terms);
}

}  // namespace stats
}  // namespace p3gm
