#ifndef P3GM_STATS_MUTUAL_INFORMATION_H_
#define P3GM_STATS_MUTUAL_INFORMATION_H_

#include <cstddef>
#include <vector>

namespace p3gm {
namespace stats {

/// Helpers for contingency tables over integer-coded categorical columns.
/// Used by the PrivBayes baseline to score candidate parent sets.

/// Encodes a tuple of categorical codes into one flat index, given the
/// cardinality of each position. The empty tuple encodes to 0.
std::size_t EncodeTuple(const std::vector<int>& codes,
                        const std::vector<std::size_t>& cardinalities);

/// Joint distribution of (a, b) estimated from paired code columns
/// (lengths must match). Returns a flattened card_a x card_b probability
/// table.
std::vector<double> JointDistribution(const std::vector<int>& a,
                                      const std::vector<int>& b,
                                      std::size_t card_a, std::size_t card_b);

/// Empirical mutual information I(A; B) in nats between two code columns.
double MutualInformation(const std::vector<int>& a, const std::vector<int>& b,
                         std::size_t card_a, std::size_t card_b);

/// Mutual information I(X; Parents) where the parent set is a tuple of
/// columns. `columns[i]` is the full code column for attribute i;
/// `cardinalities[i]` its domain size. The parent tuple is flattened via
/// EncodeTuple.
double MutualInformationWithParents(
    const std::vector<std::vector<int>>& columns,
    const std::vector<std::size_t>& cardinalities, std::size_t x,
    const std::vector<std::size_t>& parents);

}  // namespace stats
}  // namespace p3gm

#endif  // P3GM_STATS_MUTUAL_INFORMATION_H_
