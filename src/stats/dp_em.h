#ifndef P3GM_STATS_DP_EM_H_
#define P3GM_STATS_DP_EM_H_

#include "stats/gmm.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace dp {
class RdpAccountant;
}  // namespace dp

namespace stats {

/// Options for differentially private EM (Park et al., AISTATS 2017),
/// paper Section II-D. Each of the `iters` iterations perturbs the M-step
/// parameters — the K means, the K (diagonal) covariances and the weight
/// vector, i.e. 2K+1 Gaussian releases — with noise scaled by
/// `noise_multiplier` (sigma_e). The paper's Eq. (3) bounds the resulting
/// per-iteration moments: see dp::DpEmRdp.
struct DpEmOptions {
  std::size_t num_components = 3;
  /// Fixed iteration count Te (privacy is accounted per iteration, so the
  /// count must be fixed in advance — no data-dependent early stopping).
  std::size_t iters = 20;
  /// Noise multiplier sigma_e of the M-step Gaussian mechanism.
  double noise_multiplier = 100.0;
  /// Variance floor after noising.
  double min_variance = 1e-4;
  /// Weight floor after noising (renormalized afterwards).
  double min_weight = 1e-3;
  std::uint64_t seed = 29;
  /// When set, each iteration's Gaussian release is composed onto this
  /// accountant as it happens (live accounting / privacy ledger). The
  /// caller owns the pointer; it never affects the fitted model.
  dp::RdpAccountant* accountant = nullptr;
};

/// Result of a DP-EM run: the private mixture plus the exact L2 clipping
/// bound that was applied to rows of the input so that every released
/// statistic has sensitivity <= 1 (the paper's footnote 1).
struct DpEmResult {
  GaussianMixture mixture;
  /// Rows of the input were clipped to this L2 norm before fitting.
  double clip_norm = 1.0;
};

/// Fits a diagonal-covariance GMM with differentially private EM.
///
/// Sensitivity handling: input rows are L2-clipped to norm 1
/// (pre-processing, no privacy cost by post-processing of the clipping
/// constant), under which one record changes each released mean /
/// covariance row by at most O(1/n_k); we follow the paper and Park et al.
/// in scaling noise to sensitivity 1 before the 1/n_k normalization.
///
/// Fails on empty data or num_components > n.
util::Result<DpEmResult> FitGmmDpEm(const linalg::Matrix& x,
                                    const DpEmOptions& options,
                                    util::Rng* rng);

}  // namespace stats
}  // namespace p3gm

#endif  // P3GM_STATS_DP_EM_H_
