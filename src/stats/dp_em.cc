#include "stats/dp_em.h"

#include <algorithm>
#include <cmath>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "linalg/ops.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace stats {

util::Result<DpEmResult> FitGmmDpEm(const linalg::Matrix& x,
                                    const DpEmOptions& options,
                                    util::Rng* rng) {
  P3GM_TRACE_SPAN("dp_em.fit");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t kk = options.num_components;
  if (n == 0 || d == 0) {
    return util::Status::InvalidArgument("FitGmmDpEm: empty data");
  }
  if (kk == 0 || kk > n) {
    return util::Status::InvalidArgument(
        "FitGmmDpEm: num_components must be in [1, n]");
  }
  if (options.noise_multiplier < 0.0) {
    return util::Status::InvalidArgument(
        "FitGmmDpEm: noise multiplier must be non-negative");
  }

  // Clip every row to the unit L2 ball so each record contributes at most
  // 1 to every released sufficient statistic (paper footnote 1).
  DpEmResult result;
  result.clip_norm = 1.0;
  linalg::Matrix clipped = x;
  util::ParallelFor(0, n, 64, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      std::vector<double> row = clipped.Row(i);
      dp::ClipL2(result.clip_norm, &row);
      clipped.SetRow(i, row);
    }
  });

  // Data-independent initialization (a data-dependent one would leak):
  // means scattered inside the unit ball, unit variances, uniform weights.
  util::Rng init_rng(options.seed);
  linalg::Matrix means(kk, d);
  for (std::size_t k = 0; k < kk; ++k) {
    for (std::size_t j = 0; j < d; ++j) {
      means(k, j) = init_rng.Normal(0.0, 0.3);
    }
  }
  linalg::Matrix variances(kk, d, 0.5);
  std::vector<double> weights(kk, 1.0 / static_cast<double>(kk));
  P3GM_ASSIGN_OR_RETURN(
      GaussianMixture model,
      GaussianMixture::Create(weights, means, variances));

  const double sigma = options.noise_multiplier;
  const double inv_n = 1.0 / static_cast<double>(n);

  for (std::size_t iter = 0; iter < options.iters; ++iter) {
    P3GM_TRACE_SPAN("dp_em.iter");
    static obs::Counter* iters =
        obs::Registry::Global().counter("dp_em.iters");
    iters->Add();
    // E-step: responsibilities under the current (already private) model.
    // M-step sufficient statistics, each with per-record sensitivity <= 1:
    //   nk[k]  = sum_i r_ik                      (the weight release)
    //   s1[k]  = sum_i r_ik x_i                  (K mean releases)
    //   s2[k]  = sum_i r_ik x_i^2 (elementwise)  (K covariance releases)
    std::vector<double> nk(kk, 0.0);
    linalg::Matrix s1(kk, d);
    linalg::Matrix s2(kk, d);
    // The expensive per-row responsibilities (exp/log per component) fill
    // disjoint rows in parallel; the sufficient statistics are then
    // accumulated serially in ascending row order, which keeps the sums
    // bit-identical for any thread count. No noise is drawn inside the
    // parallel region — the Gaussian mechanism below consumes the shared
    // rng strictly serially.
    linalg::Matrix resp(n, kk);
    util::ParallelFor(0, n, 16, [&](std::size_t rb, std::size_t re) {
      for (std::size_t i = rb; i < re; ++i) {
        const std::vector<double> r = model.Responsibilities(clipped.Row(i));
        for (std::size_t k = 0; k < kk; ++k) resp(i, k) = r[k];
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = clipped.row_data(i);
      for (std::size_t k = 0; k < kk; ++k) {
        const double r = resp(i, k);
        if (r == 0.0) continue;
        nk[k] += r;
        double* s1k = s1.row_data(k);
        double* s2k = s2.row_data(k);
        for (std::size_t j = 0; j < d; ++j) {
          s1k[j] += r * xi[j];
          s2k[j] += r * xi[j] * xi[j];
        }
      }
    }

    // Gaussian mechanism on the 2K+1 statistics (sensitivity 1 each).
    if (sigma > 0.0) {
      dp::GaussianMechanism(1.0, sigma, &nk, rng);
      dp::GaussianMechanism(1.0, sigma, &s1, rng);
      dp::GaussianMechanism(1.0, sigma, &s2, rng);
      // Live accounting: this iteration's release, as it happens.
      if (options.accountant != nullptr) {
        options.accountant->AddDpEm(sigma, kk, 1);
      }
    }

    // Re-derive parameters from the noisy statistics.
    linalg::Matrix new_means(kk, d);
    linalg::Matrix new_vars(kk, d);
    std::vector<double> new_weights(kk);
    for (std::size_t k = 0; k < kk; ++k) {
      const double denom = std::max(nk[k], 1.0);  // Guard tiny/negative nk.
      new_weights[k] =
          std::max(nk[k] * inv_n, options.min_weight);
      const double* s1k = s1.row_data(k);
      const double* s2k = s2.row_data(k);
      double* mk = new_means.row_data(k);
      double* vk = new_vars.row_data(k);
      for (std::size_t j = 0; j < d; ++j) {
        mk[j] = s1k[j] / denom;
        const double ex2 = s2k[j] / denom;
        vk[j] = std::max(ex2 - mk[j] * mk[j], options.min_variance);
      }
      // Keep means inside the (clipped) data domain for stability.
      std::vector<double> mrow(mk, mk + d);
      dp::ClipL2(result.clip_norm, &mrow);
      for (std::size_t j = 0; j < d; ++j) mk[j] = mrow[j];
    }
    P3GM_ASSIGN_OR_RETURN(
        model, GaussianMixture::Create(new_weights, new_means, new_vars));
  }

  result.mixture = std::move(model);
  return result;
}

}  // namespace stats
}  // namespace p3gm
