#include "stats/discretizer.h"

#include <algorithm>
#include <cmath>

namespace p3gm {
namespace stats {

util::Result<Discretizer> Discretizer::Fit(const linalg::Matrix& x,
                                           std::size_t bins) {
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("Discretizer: empty data");
  }
  if (bins == 0) {
    return util::Status::InvalidArgument("Discretizer: bins must be >= 1");
  }
  Discretizer d;
  d.bins_ = bins;
  d.lo_.assign(x.cols(), 0.0);
  d.hi_.assign(x.cols(), 0.0);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double lo = x(0, j), hi = x(0, j);
    for (std::size_t i = 1; i < x.rows(); ++i) {
      lo = std::min(lo, x(i, j));
      hi = std::max(hi, x(i, j));
    }
    d.lo_[j] = lo;
    d.hi_[j] = hi;
  }
  return d;
}

std::size_t Discretizer::Encode(std::size_t col, double v) const {
  P3GM_CHECK(col < lo_.size());
  const double lo = lo_[col], hi = hi_[col];
  if (hi <= lo) return 0;
  const double t = (v - lo) / (hi - lo);
  const auto bin = static_cast<long>(std::floor(t * static_cast<double>(bins_)));
  return static_cast<std::size_t>(
      std::clamp<long>(bin, 0, static_cast<long>(bins_) - 1));
}

std::vector<std::vector<int>> Discretizer::Transform(
    const linalg::Matrix& x) const {
  std::vector<std::vector<int>> codes(x.rows(),
                                      std::vector<int>(x.cols(), 0));
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      codes[i][j] = static_cast<int>(Encode(j, x(i, j)));
    }
  }
  return codes;
}

double Discretizer::Decode(std::size_t col, std::size_t bin,
                           util::Rng* rng) const {
  P3GM_CHECK(col < lo_.size() && bin < bins_);
  const double lo = lo_[col], hi = hi_[col];
  if (hi <= lo) return lo;
  const double width = (hi - lo) / static_cast<double>(bins_);
  return lo + (static_cast<double>(bin) + rng->Uniform()) * width;
}

linalg::Matrix Discretizer::InverseTransform(
    const std::vector<std::vector<int>>& codes, util::Rng* rng) const {
  if (codes.empty()) return linalg::Matrix();
  linalg::Matrix out(codes.size(), codes[0].size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    P3GM_CHECK(codes[i].size() == out.cols());
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(i, j) = Decode(j, static_cast<std::size_t>(codes[i][j]), rng);
    }
  }
  return out;
}

}  // namespace stats
}  // namespace p3gm
