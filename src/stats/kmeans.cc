#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/mechanisms.h"
#include "linalg/ops.h"

namespace p3gm {
namespace stats {

namespace {

// Index of the centroid nearest to row i, plus the squared distance.
std::pair<std::size_t, double> Nearest(const linalg::Matrix& x, std::size_t i,
                                       const linalg::Matrix& centroids) {
  const double* xi = x.row_data(i);
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < centroids.rows(); ++k) {
    const double* ck = centroids.row_data(k);
    double dist = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double diff = xi[j] - ck[j];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = k;
    }
  }
  return {best, best_dist};
}

}  // namespace

util::Result<KMeansResult> KMeans(const linalg::Matrix& x,
                                  const KMeansOptions& options) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t kk = options.num_clusters;
  if (n == 0 || d == 0) {
    return util::Status::InvalidArgument("KMeans: empty data");
  }
  if (kk == 0 || kk > n) {
    return util::Status::InvalidArgument(
        "KMeans: num_clusters must be in [1, n]");
  }

  util::Rng rng(options.seed);

  // k-means++ seeding.
  linalg::Matrix centroids(kk, d);
  centroids.SetRow(0, x.Row(static_cast<std::size_t>(rng.UniformInt(n))));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < kk; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = x.row_data(i);
      const double* prev = centroids.row_data(c - 1);
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = xi[j] - prev[j];
        dist += diff * diff;
      }
      min_dist[i] = std::min(min_dist[i], dist);
    }
    double total = 0.0;
    for (double v : min_dist) total += v;
    std::size_t pick;
    if (total > 0.0) {
      double r = rng.Uniform() * total;
      pick = 0;
      while (pick + 1 < n && (r -= min_dist[pick]) >= 0.0) ++pick;
    } else {
      pick = static_cast<std::size_t>(rng.UniformInt(n));
    }
    centroids.SetRow(c, x.Row(pick));
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    bool changed = false;
    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      auto [best, dist] = Nearest(x, i, centroids);
      if (best != result.assignment[i]) {
        changed = true;
        result.assignment[i] = best;
      }
      result.inertia += dist;
    }
    if (!changed && iter > 0) break;

    linalg::Matrix sums(kk, d);
    std::vector<double> counts(kk, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = result.assignment[i];
      counts[k] += 1.0;
      const double* xi = x.row_data(i);
      double* sk = sums.row_data(k);
      for (std::size_t j = 0; j < d; ++j) sk[j] += xi[j];
    }
    for (std::size_t k = 0; k < kk; ++k) {
      if (counts[k] == 0.0) continue;  // Keep empty clusters in place.
      double* ck = centroids.row_data(k);
      const double* sk = sums.row_data(k);
      for (std::size_t j = 0; j < d; ++j) ck[j] = sk[j] / counts[k];
    }
  }
  result.centroids = std::move(centroids);
  return result;
}

util::Result<KMeansResult> DpKMeans(const linalg::Matrix& x,
                                    const DpKMeansOptions& options,
                                    util::Rng* rng) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t kk = options.num_clusters;
  if (n == 0 || d == 0) {
    return util::Status::InvalidArgument("DpKMeans: empty data");
  }
  if (kk == 0 || kk > n) {
    return util::Status::InvalidArgument(
        "DpKMeans: num_clusters must be in [1, n]");
  }
  if (options.noise_multiplier < 0.0) {
    return util::Status::InvalidArgument(
        "DpKMeans: noise multiplier must be non-negative");
  }

  // Clip rows to the unit ball so per-record sensitivity of sums is 1.
  linalg::Matrix clipped = x;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row = clipped.Row(i);
    dp::ClipL2(1.0, &row);
    clipped.SetRow(i, row);
  }

  // Data-independent initialization inside the unit ball.
  util::Rng init_rng(options.seed);
  linalg::Matrix centroids(kk, d);
  for (std::size_t k = 0; k < kk; ++k) {
    for (std::size_t j = 0; j < d; ++j) {
      centroids(k, j) = init_rng.Normal(0.0, 0.3);
    }
  }

  for (std::size_t iter = 0; iter < options.iters; ++iter) {
    linalg::Matrix sums(kk, d);
    std::vector<double> counts(kk, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      auto [best, dist] = Nearest(clipped, i, centroids);
      (void)dist;
      counts[best] += 1.0;
      const double* xi = clipped.row_data(i);
      double* sk = sums.row_data(best);
      for (std::size_t j = 0; j < d; ++j) sk[j] += xi[j];
    }
    if (options.noise_multiplier > 0.0) {
      dp::GaussianMechanism(1.0, options.noise_multiplier, &sums, rng);
      dp::GaussianMechanism(1.0, options.noise_multiplier, &counts, rng);
    }
    for (std::size_t k = 0; k < kk; ++k) {
      const double denom = std::max(counts[k], 1.0);
      double* ck = centroids.row_data(k);
      const double* sk = sums.row_data(k);
      for (std::size_t j = 0; j < d; ++j) ck[j] = sk[j] / denom;
      std::vector<double> crow(ck, ck + d);
      dp::ClipL2(1.0, &crow);
      for (std::size_t j = 0; j < d; ++j) ck[j] = crow[j];
    }
  }

  // Final assignment against private centroids (post-processing).
  KMeansResult result;
  result.centroids = std::move(centroids);
  result.assignment.assign(n, 0);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    auto [best, dist] = Nearest(clipped, i, result.centroids);
    result.assignment[i] = best;
    result.inertia += dist;
  }
  return result;
}

}  // namespace stats
}  // namespace p3gm
