#ifndef P3GM_STATS_GMM_H_
#define P3GM_STATS_GMM_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {

/// Mixture of axis-aligned (diagonal-covariance) Gaussians. This is the
/// latent prior r_lambda(z) of P3GM: fitted with (DP-)EM over the
/// PCA-reduced data, sampled from during data synthesis, and differenced
/// against the encoder posterior in the decoding-phase KL term.
class GaussianMixture {
 public:
  GaussianMixture() = default;

  /// Constructs a mixture with the given parameters. `means` and
  /// `variances` are (K x d); `weights` has length K, sums to 1, and all
  /// variances must be positive.
  static util::Result<GaussianMixture> Create(std::vector<double> weights,
                                              linalg::Matrix means,
                                              linalg::Matrix variances);

  std::size_t num_components() const { return weights_.size(); }
  std::size_t dim() const { return means_.cols(); }

  const std::vector<double>& weights() const { return weights_; }
  const linalg::Matrix& means() const { return means_; }
  const linalg::Matrix& variances() const { return variances_; }

  /// log r(x) of the mixture density at `x` (log-sum-exp over components).
  double LogPdf(const std::vector<double>& x) const;

  /// Per-component log N(x; mu_k, diag(var_k)) + log pi_k (length K).
  std::vector<double> ComponentLogJoint(const std::vector<double>& x) const;

  /// Posterior responsibilities p(k | x) (length K).
  std::vector<double> Responsibilities(const std::vector<double>& x) const;

  /// Draws one sample: component k ~ pi, then x ~ N(mu_k, diag(var_k)).
  std::vector<double> Sample(util::Rng* rng) const;

  /// Draws `n` samples as rows of a matrix.
  linalg::Matrix SampleN(std::size_t n, util::Rng* rng) const;

  /// Mean log-likelihood of the rows of `x` under the mixture.
  double MeanLogLikelihood(const linalg::Matrix& x) const;

 private:
  std::vector<double> weights_;
  linalg::Matrix means_;      // K x d
  linalg::Matrix variances_;  // K x d, diagonal covariances
};

/// Options for the (non-private) EM fitter.
struct EmOptions {
  std::size_t num_components = 3;
  std::size_t max_iters = 50;
  /// Stop when the mean log-likelihood improves by less than this.
  double tol = 1e-5;
  /// Lower bound applied to every variance (numerical floor).
  double min_variance = 1e-6;
  /// Independent k-means-seeded restarts; the run with the best final
  /// log-likelihood wins. Guards against the symmetric stationary point
  /// EM falls into from poor initializations.
  std::size_t restarts = 3;
  std::uint64_t seed = 13;
};

/// Fits a diagonal-covariance GMM by expectation-maximization,
/// initialized from a k-means partition (means = centroids, variances =
/// within-cluster variances, weights = cluster fractions) with
/// `restarts` independent attempts. Fails on empty data or
/// num_components > n.
util::Result<GaussianMixture> FitGmm(const linalg::Matrix& x,
                                     const EmOptions& options);

/// KL(N(mu_a, diag(var_a)) || N(mu_b, diag(var_b))) between diagonal
/// Gaussians, in closed form.
double DiagGaussianKl(const std::vector<double>& mu_a,
                      const std::vector<double>& var_a,
                      const std::vector<double>& mu_b,
                      const std::vector<double>& var_b);

/// Variational upper-bound approximation of KL(N(mu, diag(var)) || MoG)
/// (Hershey & Olsen 2007), the analytic form P3GM uses for the second ELBO
/// term: -log sum_b pi_b exp(-KL(N || N_b)).
double GaussianToMixtureKl(const std::vector<double>& mu,
                           const std::vector<double>& var,
                           const GaussianMixture& mixture);

}  // namespace stats
}  // namespace p3gm

#endif  // P3GM_STATS_GMM_H_
