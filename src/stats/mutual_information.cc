#include "stats/mutual_information.h"

#include <cmath>

#include "util/check.h"

namespace p3gm {
namespace stats {

std::size_t EncodeTuple(const std::vector<int>& codes,
                        const std::vector<std::size_t>& cardinalities) {
  P3GM_CHECK(codes.size() == cardinalities.size());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    P3GM_DCHECK(codes[i] >= 0 &&
                static_cast<std::size_t>(codes[i]) < cardinalities[i]);
    idx = idx * cardinalities[i] + static_cast<std::size_t>(codes[i]);
  }
  return idx;
}

std::vector<double> JointDistribution(const std::vector<int>& a,
                                      const std::vector<int>& b,
                                      std::size_t card_a,
                                      std::size_t card_b) {
  P3GM_CHECK(a.size() == b.size() && !a.empty());
  std::vector<double> joint(card_a * card_b, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ia = static_cast<std::size_t>(a[i]);
    const auto ib = static_cast<std::size_t>(b[i]);
    P3GM_DCHECK(ia < card_a && ib < card_b);
    joint[ia * card_b + ib] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(a.size());
  for (double& v : joint) v *= inv;
  return joint;
}

double MutualInformation(const std::vector<int>& a, const std::vector<int>& b,
                         std::size_t card_a, std::size_t card_b) {
  const std::vector<double> joint = JointDistribution(a, b, card_a, card_b);
  std::vector<double> pa(card_a, 0.0), pb(card_b, 0.0);
  for (std::size_t i = 0; i < card_a; ++i) {
    for (std::size_t j = 0; j < card_b; ++j) {
      pa[i] += joint[i * card_b + j];
      pb[j] += joint[i * card_b + j];
    }
  }
  double mi = 0.0;
  for (std::size_t i = 0; i < card_a; ++i) {
    for (std::size_t j = 0; j < card_b; ++j) {
      const double p = joint[i * card_b + j];
      if (p <= 0.0 || pa[i] <= 0.0 || pb[j] <= 0.0) continue;
      mi += p * std::log(p / (pa[i] * pb[j]));
    }
  }
  return std::max(mi, 0.0);
}

double MutualInformationWithParents(
    const std::vector<std::vector<int>>& columns,
    const std::vector<std::size_t>& cardinalities, std::size_t x,
    const std::vector<std::size_t>& parents) {
  P3GM_CHECK(x < columns.size());
  if (parents.empty()) return 0.0;
  const std::size_t n = columns[x].size();
  std::size_t parent_card = 1;
  std::vector<std::size_t> parent_cards;
  for (std::size_t p : parents) {
    P3GM_CHECK(p < columns.size());
    parent_card *= cardinalities[p];
    parent_cards.push_back(cardinalities[p]);
  }
  std::vector<int> parent_codes(n);
  std::vector<int> tuple(parents.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < parents.size(); ++t) {
      tuple[t] = columns[parents[t]][i];
    }
    parent_codes[i] = static_cast<int>(EncodeTuple(tuple, parent_cards));
  }
  return MutualInformation(columns[x], parent_codes, cardinalities[x],
                           parent_card);
}

}  // namespace stats
}  // namespace p3gm
