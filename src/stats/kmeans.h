#ifndef P3GM_STATS_KMEANS_H_
#define P3GM_STATS_KMEANS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {

/// Output of a (DP-)k-means run.
struct KMeansResult {
  /// (k x d) centroid matrix.
  linalg::Matrix centroids;
  /// Cluster index of each input row.
  std::vector<std::size_t> assignment;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
};

struct KMeansOptions {
  std::size_t num_clusters = 10;
  std::size_t max_iters = 25;
  std::uint64_t seed = 17;
};

/// Lloyd's algorithm with k-means++ seeding. Fails on empty data or
/// num_clusters > n.
util::Result<KMeansResult> KMeans(const linalg::Matrix& x,
                                  const KMeansOptions& options);

/// Options for differentially private k-means (the partitioning step of
/// DP-GM, Acs et al. 2018). Each iteration releases per-cluster noisy
/// sums and noisy counts via the Gaussian mechanism; rows are pre-clipped
/// to the unit L2 ball so both releases have sensitivity 1.
struct DpKMeansOptions {
  std::size_t num_clusters = 10;
  /// Fixed iteration count (accounted per iteration).
  std::size_t iters = 10;
  /// Gaussian noise multiplier per released statistic.
  double noise_multiplier = 4.0;
  std::uint64_t seed = 19;
};

/// Differentially private Lloyd iterations with data-independent
/// initialization. The final assignment is computed against the private
/// centroids (post-processing, no extra privacy cost).
util::Result<KMeansResult> DpKMeans(const linalg::Matrix& x,
                                    const DpKMeansOptions& options,
                                    util::Rng* rng);

}  // namespace stats
}  // namespace p3gm

#endif  // P3GM_STATS_KMEANS_H_
