#include "dp/rdp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace p3gm {
namespace dp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// log(n choose k) via lgamma.
double LogBinom(std::size_t n, std::size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

// Numerically stable log(sum exp(terms)).
double LogSumExp(const std::vector<double>& terms) {
  double mx = -kInf;
  for (double t : terms) mx = std::max(mx, t);
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double t : terms) s += std::exp(t - mx);
  return mx + std::log(s);
}

// log of the double factorial (t-1)!! for t >= 1.
double LogDoubleFactorial(std::size_t t) {
  double s = 0.0;
  for (std::size_t v = t; v >= 2; v -= 2) s += std::log(static_cast<double>(v));
  return s;
}

}  // namespace

double GaussianRdp(double alpha, double sigma) {
  P3GM_CHECK(alpha > 1.0 && sigma > 0.0);
  return alpha / (2.0 * sigma * sigma);
}

double SampledGaussianRdp(std::size_t alpha, double q, double sigma) {
  P3GM_CHECK(alpha >= 2);
  P3GM_CHECK(q >= 0.0 && q <= 1.0);
  P3GM_CHECK(sigma > 0.0);
  if (q == 0.0) return 0.0;
  if (q == 1.0) return GaussianRdp(static_cast<double>(alpha), sigma);

  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  std::vector<double> terms;
  terms.reserve(alpha + 1);
  for (std::size_t k = 0; k <= alpha; ++k) {
    const double kk = static_cast<double>(k);
    terms.push_back(LogBinom(alpha, k) +
                    static_cast<double>(alpha - k) * log_1mq + kk * log_q +
                    kk * (kk - 1.0) / (2.0 * sigma * sigma));
  }
  const double log_moment = LogSumExp(terms);
  return std::max(0.0, log_moment / (static_cast<double>(alpha) - 1.0));
}

double DpEmRdp(double alpha, double sigma_e, std::size_t num_components) {
  P3GM_CHECK(alpha > 1.0 && sigma_e > 0.0 && num_components > 0);
  // Eq. (3): MA(lambda) <= (2K+1)(lambda^2+lambda)/(2 sigma_e^2); by
  // Theorem 3 the mechanism is (lambda+1, MA(lambda)/lambda)-RDP, i.e.
  // eps(alpha) = (2K+1) * alpha / (2 sigma_e^2) at alpha = lambda + 1.
  const double k_factor = 2.0 * static_cast<double>(num_components) + 1.0;
  return k_factor * alpha / (2.0 * sigma_e * sigma_e);
}

double PureDpRdp(double alpha, double eps) {
  P3GM_CHECK(alpha > 1.0 && eps >= 0.0);
  return std::min(2.0 * alpha * eps * eps, eps);
}

double RdpToDp(double alpha, double rdp_eps, double delta) {
  P3GM_CHECK(alpha > 1.0);
  P3GM_CHECK(delta > 0.0 && delta < 1.0);
  return rdp_eps + std::log(1.0 / delta) / (alpha - 1.0);
}

double MomentsAccountantEq4(std::size_t lambda, double s, double sigma) {
  P3GM_CHECK(lambda >= 1);
  P3GM_CHECK(s > 0.0 && s < 1.0 && sigma > 0.0);
  const double lam = static_cast<double>(lambda);
  const double one_ms = 1.0 - s;
  // First term: s^2 lambda (lambda+1) / ((1-s) sigma^2).
  // (The paper prints alpha(alpha-1); Abadi et al.'s Lemma 3 derivation
  // gives lambda(lambda+1) — we keep the paper's printed form.)
  double total = s * s * lam * (lam - 1.0) / (one_ms * sigma * sigma);
  // Tail: t = 3 .. lambda + 1. Evaluate each addend in log space and bail
  // to +inf if any term overflows.
  for (std::size_t t = 3; t <= lambda + 1; ++t) {
    const double td = static_cast<double>(t);
    const double log_2s_t = td * std::log(2.0 * s);
    const double log_dfact = LogDoubleFactorial(t - 1);
    const double log_one_ms_tm1 = (td - 1.0) * std::log(one_ms);

    const double term1 =
        log_2s_t + log_dfact - std::log(2.0) - log_one_ms_tm1 -
        td * std::log(sigma);
    const double term2 =
        td * std::log(s) - td * std::log(one_ms) -
        2.0 * td * std::log(sigma);
    const double inner = LogSumExp(
        {td * std::log(sigma) + log_dfact, td * std::log(td)});
    const double term3 = log_2s_t + (td * td - td) / (2.0 * sigma * sigma) +
                         inner - std::log(2.0) - log_one_ms_tm1 -
                         2.0 * td * std::log(sigma);
    const double addend = LogSumExp({term1, term2, term3});
    if (addend > 700.0) return kInf;
    total += std::exp(addend);
    if (!std::isfinite(total)) return kInf;
  }
  return total;
}

double ZcdpToDp(double rho, double delta) {
  P3GM_CHECK(rho >= 0.0);
  P3GM_CHECK(delta > 0.0 && delta < 1.0);
  return rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
}

std::vector<double> DefaultRdpOrders() {
  std::vector<double> orders;
  for (int a = 2; a <= 64; ++a) orders.push_back(static_cast<double>(a));
  for (int a = 80; a <= 1024; a *= 2) orders.push_back(static_cast<double>(a));
  return orders;
}

}  // namespace dp
}  // namespace p3gm
