#ifndef P3GM_DP_ACCOUNTANT_H_
#define P3GM_DP_ACCOUNTANT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "dp/rdp.h"
#include "util/result.h"

namespace p3gm {
namespace dp {

/// An (epsilon, delta) guarantee together with the Rényi order that
/// achieved it.
struct DpGuarantee {
  double epsilon = 0.0;
  double delta = 0.0;
  double best_order = 0.0;
};

/// Metadata describing one batch of mechanism invocations, for the
/// privacy-budget ledger (obs::PrivacyLedger). The label must be a
/// string literal (stored by pointer until the ledger copies it).
struct MechanismEvent {
  const char* mechanism = "";
  /// Invocations composed by this event (all with the same parameters).
  std::size_t count = 1;
  /// Noise multiplier, 0 when not applicable.
  double sigma = 0.0;
  /// Poisson sampling rate of the subsampled Gaussian, 0 otherwise.
  double sampling_rate = 0.0;
  /// Pure-DP epsilon for (eps, 0)-DP mechanisms, 0 otherwise.
  double pure_eps = 0.0;
};

/// Tracks cumulative Rényi-DP cost over a grid of orders and converts to
/// (epsilon, delta)-DP at the end (Theorem 2). Mechanisms compose by
/// adding their per-order costs (Theorem 1), which is the tight
/// composition P3GM's Theorem 4 uses.
class RdpAccountant {
 public:
  /// Uses DefaultRdpOrders() when `orders` is empty.
  explicit RdpAccountant(std::vector<double> orders = {});

  /// Copyable: copies the accounting state (orders, accumulated RDP,
  /// ledger settings) under the source's lock; each instance has its own
  /// lock. Vae/Pgm hold accountants by value and rely on this.
  RdpAccountant(const RdpAccountant& other);
  RdpAccountant& operator=(const RdpAccountant& other);

  /// Composes `count` releases of the plain Gaussian mechanism with noise
  /// multiplier `sigma`.
  void AddGaussian(double sigma, std::size_t count = 1,
                   const char* mechanism = "gaussian");

  /// Composes `steps` DP-SGD steps with Poisson sampling rate `q` and noise
  /// multiplier `sigma`.
  void AddSampledGaussian(double q, double sigma, std::size_t steps,
                          const char* mechanism = "sampled_gaussian");

  /// Composes `steps` DP-EM iterations with `num_components` Gaussians and
  /// noise multiplier `sigma_e` (paper Eq. 3).
  void AddDpEm(double sigma_e, std::size_t num_components, std::size_t steps,
               const char* mechanism = "dp_em_gaussian");

  /// Composes one (eps, 0)-DP release (e.g. DP-PCA's Wishart mechanism).
  void AddPureDp(double eps, const char* mechanism = "pure_dp");

  /// Adds arbitrary per-order RDP costs; `eps_per_order` must match the
  /// accountant's order grid.
  void AddRdp(const std::vector<double>& eps_per_order,
              const char* mechanism = "rdp");

  /// Per-invocation RDP cost curves over this accountant's order grid.
  /// Useful with AddEvent to compose many identical invocations without
  /// recomputing the curve (DP-SGD records one event per step).
  std::vector<double> GaussianCurve(double sigma) const;
  std::vector<double> SampledGaussianCurve(double q, double sigma) const;
  std::vector<double> DpEmCurve(double sigma_e,
                                std::size_t num_components) const;
  std::vector<double> PureDpCurve(double eps) const;

  /// Core composition primitive (every Add* funnels through here):
  /// accumulates event.count * per_invocation_cost onto the RDP state
  /// and, when the ledger hook is on, appends a ledger entry carrying
  /// this accountant's cumulative guarantee. Thread-safe: concurrent
  /// AddEvent / GetEpsilon / rdp() calls on one accountant are
  /// serialized by an internal lock.
  void AddEvent(const MechanismEvent& event,
                const std::vector<double>& per_invocation_cost);

  /// Ledger hook, default off so throwaway accountants (sigma
  /// calibration, epsilon planning) stay silent. Enabling assigns this
  /// accountant a process-unique run id for ledger attribution; entries
  /// are still only recorded while obs::Enabled().
  void set_ledger_enabled(bool enabled);
  bool ledger_enabled() const;
  std::uint64_t run_id() const;

  /// Converts the accumulated RDP to (epsilon, delta)-DP, minimizing over
  /// the order grid. Requires 0 < delta < 1.
  DpGuarantee GetEpsilon(double delta) const;

  const std::vector<double>& orders() const { return orders_; }
  /// Copy of the accumulated per-order RDP (a snapshot, so concurrent
  /// writers cannot race the read).
  std::vector<double> rdp() const;

 private:
  DpGuarantee GetEpsilonLocked(double delta) const;

  std::vector<double> orders_;  // Immutable after construction.
  std::vector<double> rdp_;     // Guarded by mutex_.
  bool ledger_enabled_ = false;
  std::uint64_t run_ = 0;
  mutable std::mutex mutex_;
};

/// All privacy knobs of one P3GM run (Algorithm 1 / Theorem 4).
struct P3gmPrivacyParams {
  /// Pure-DP budget of the DP-PCA Wishart mechanism; 0 disables PCA
  /// accounting (e.g. Kaggle Credit, where no reduction is applied).
  double pca_epsilon = 0.1;
  /// Noise multiplier of DP-EM's M-step Gaussian mechanism.
  double em_sigma = 100.0;
  /// Number of DP-EM iterations (Te).
  std::size_t em_iters = 20;
  /// Number of MoG components (K).
  std::size_t mog_components = 3;
  /// DP-SGD noise multiplier (sigma_s); the knob calibration solves for.
  double sgd_sigma = 1.5;
  /// DP-SGD sampling probability (batch size / N).
  double sgd_sampling_rate = 0.01;
  /// Number of DP-SGD steps (Ts = epochs * N / B).
  std::size_t sgd_steps = 1000;
};

/// Total (epsilon, delta)-DP of a P3GM run via RDP composition of
/// DP-PCA + DP-EM + DP-SGD (the paper's Theorem 4).
DpGuarantee ComputeP3gmEpsilonRdp(const P3gmPrivacyParams& params,
                                  double delta);

/// The paper's Fig. 6 baseline: DP-SGD accounted with the moments
/// accountant (Eq. 4, delta/2), DP-EM with zCDP (Bun–Steinke conversion,
/// delta/2), DP-PCA as pure DP, composed sequentially.
double ComputeP3gmEpsilonBaseline(const P3gmPrivacyParams& params,
                                  double delta);

/// Finds the DP-SGD noise multiplier sigma_s such that the full P3GM
/// composition (RDP) meets `target_epsilon` at `delta`, by bisection over
/// [sigma_lo, sigma_hi]. Fails if the target is unreachable within the
/// bracket (e.g. the PCA + EM budget alone already exceeds the target).
util::Result<double> CalibrateSgdSigma(P3gmPrivacyParams params,
                                       double target_epsilon, double delta,
                                       double sigma_lo = 0.3,
                                       double sigma_hi = 256.0);

}  // namespace dp
}  // namespace p3gm

#endif  // P3GM_DP_ACCOUNTANT_H_
