#ifndef P3GM_DP_MECHANISMS_H_
#define P3GM_DP_MECHANISMS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace dp {

/// L2 gradient clipping ψ_C from DP-SGD (Abadi et al. 2016):
/// v <- v * min(1, C / ||v||_2). Bounds the L2 sensitivity of a sum of
/// per-example vectors by C. Requires clip_norm > 0.
void ClipL2(double clip_norm, std::vector<double>* v);

/// Returns the factor min(1, C / norm) applied by ClipL2 for a vector of
/// the given L2 norm.
double ClipFactor(double clip_norm, double norm);

/// Adds i.i.d. Laplace(sensitivity / epsilon) noise to every element of
/// `v`, the standard (epsilon, 0)-DP Laplace mechanism.
void LaplaceMechanism(double sensitivity, double epsilon,
                      std::vector<double>* v, util::Rng* rng);

/// Adds i.i.d. N(0, (noise_multiplier * sensitivity)^2) noise to every
/// element of `v`. With noise multiplier sigma this is the Gaussian
/// mechanism; its RDP cost is alpha / (2 sigma^2) per release (see
/// accountant.h).
void GaussianMechanism(double sensitivity, double noise_multiplier,
                       std::vector<double>* v, util::Rng* rng);

/// Matrix overload of the Gaussian mechanism (element-wise noise).
void GaussianMechanism(double sensitivity, double noise_multiplier,
                       linalg::Matrix* m, util::Rng* rng);

/// Exponential mechanism: samples an index i with probability proportional
/// to exp(epsilon * utilities[i] / (2 * sensitivity)). Computed in log
/// space, so large utility gaps are handled without overflow.
/// Fails on empty utilities or non-positive epsilon/sensitivity.
util::Result<std::size_t> ExponentialMechanism(
    const std::vector<double>& utilities, double sensitivity, double epsilon,
    util::Rng* rng);

/// Samples a d x d Wishart matrix W ~ W_d(df, c * I) via the Bartlett
/// decomposition. Used by the DP-PCA Wishart mechanism (Jiang et al. 2016),
/// where a noise matrix with df = d + 1 and c = 3 / (2 n epsilon) added to
/// the covariance gives (epsilon, 0)-DP.
/// Requires df > d - 1 and c > 0.
util::Result<linalg::Matrix> SampleWishart(std::size_t d, double df, double c,
                                           util::Rng* rng);

}  // namespace dp
}  // namespace p3gm

#endif  // P3GM_DP_MECHANISMS_H_
