#include "dp/mechanisms.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "audit/fault_injection.h"
#include "linalg/ops.h"

namespace p3gm {
namespace dp {

double ClipFactor(double clip_norm, double norm) {
  P3GM_CHECK(clip_norm > 0.0);
  if (audit::SkipClip()) return 1.0;
  if (norm <= clip_norm || norm == 0.0) return 1.0;
  return clip_norm / norm;
}

void ClipL2(double clip_norm, std::vector<double>* v) {
  const double factor = ClipFactor(clip_norm, linalg::Norm2(*v));
  if (factor < 1.0) linalg::Scale(factor, v);
}

void LaplaceMechanism(double sensitivity, double epsilon,
                      std::vector<double>* v, util::Rng* rng) {
  P3GM_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double scale = audit::NoiseScale() * sensitivity / epsilon;
  for (double& x : *v) x += rng->Laplace(scale);
}

void GaussianMechanism(double sensitivity, double noise_multiplier,
                       std::vector<double>* v, util::Rng* rng) {
  P3GM_CHECK(sensitivity > 0.0 && noise_multiplier >= 0.0);
  if (noise_multiplier == 0.0) return;
  const double stddev = audit::NoiseScale() * noise_multiplier * sensitivity;
  for (double& x : *v) x += rng->Normal(0.0, stddev);
}

void GaussianMechanism(double sensitivity, double noise_multiplier,
                       linalg::Matrix* m, util::Rng* rng) {
  P3GM_CHECK(sensitivity > 0.0 && noise_multiplier >= 0.0);
  if (noise_multiplier == 0.0) return;
  const double stddev = audit::NoiseScale() * noise_multiplier * sensitivity;
  double* data = m->data();
  for (std::size_t i = 0; i < m->size(); ++i) data[i] += rng->Normal(0.0, stddev);
}

util::Result<std::size_t> ExponentialMechanism(
    const std::vector<double>& utilities, double sensitivity, double epsilon,
    util::Rng* rng) {
  if (utilities.empty()) {
    return util::Status::InvalidArgument(
        "ExponentialMechanism: empty utility list");
  }
  if (sensitivity <= 0.0 || epsilon <= 0.0) {
    return util::Status::InvalidArgument(
        "ExponentialMechanism: sensitivity and epsilon must be positive");
  }
  // Gumbel-max trick: argmax_i (eps * u_i / (2 * du) + Gumbel_i) is an
  // exact sample from the exponential-mechanism distribution and never
  // over/underflows.
  const double scale = epsilon / (2.0 * sensitivity);
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    double u = std::max(rng->Uniform(), std::numeric_limits<double>::min());
    const double gumbel = -std::log(-std::log(u));
    const double score = scale * utilities[i] + gumbel;
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

util::Result<linalg::Matrix> SampleWishart(std::size_t d, double df, double c,
                                           util::Rng* rng) {
  if (d == 0) {
    return util::Status::InvalidArgument("SampleWishart: dimension is zero");
  }
  if (df <= static_cast<double>(d) - 1.0) {
    return util::Status::InvalidArgument(
        "SampleWishart: df must exceed d - 1");
  }
  if (c <= 0.0) {
    return util::Status::InvalidArgument(
        "SampleWishart: scale must be positive");
  }
  // Bartlett: B = A A^T with A lower triangular, A_ii^2 ~ chi^2(df - i)
  // (0-based) and A_ij ~ N(0,1) for j < i. Then W_d(df, c I) = c * B.
  c *= audit::NoiseScale();
  linalg::Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    a(i, i) = std::sqrt(rng->ChiSquared(df - static_cast<double>(i)));
    for (std::size_t j = 0; j < i; ++j) a(i, j) = rng->Normal();
  }
  linalg::Matrix w = linalg::MatmulTransB(a, a);
  w *= c;
  return w;
}

}  // namespace dp
}  // namespace p3gm
