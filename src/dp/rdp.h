#ifndef P3GM_DP_RDP_H_
#define P3GM_DP_RDP_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace p3gm {
namespace dp {

/// Analytic Rényi-DP costs of the mechanisms P3GM composes, plus the
/// zCDP / Moments-Accountant baselines the paper compares against in
/// Fig. 6. All formulas are per *one* invocation; multiply by the number
/// of iterations (RDP composes additively, Theorem 1).

/// RDP of the plain Gaussian mechanism with noise multiplier sigma
/// (noise stddev = sigma * sensitivity): epsilon(alpha) = alpha / (2 sigma^2).
double GaussianRdp(double alpha, double sigma);

/// RDP upper bound of the *sampled* Gaussian mechanism (one DP-SGD step
/// with Poisson sampling rate q and noise multiplier sigma) at integer
/// order alpha >= 2, following Mironov et al. 2019 / the moments
/// accountant of Abadi et al. 2016:
///
///   eps(alpha) = log( sum_{k=0}^{alpha} C(alpha,k) (1-q)^{alpha-k} q^k
///                      exp(k(k-1) / (2 sigma^2)) ) / (alpha - 1).
///
/// Computed with log-sum-exp; exact for integer alpha. q in [0,1].
double SampledGaussianRdp(std::size_t alpha, double q, double sigma);

/// Paper Eq. (3): per-iteration moments-accountant bound of DP-EM with K
/// mixture components and noise multiplier sigma_e, expressed as RDP at
/// order alpha (via Theorem 3: MA(alpha-1)/(alpha-1)). Reduces to
/// (2K+1) * alpha / (2 sigma_e^2), i.e. zCDP with rho = (2K+1)/(2 sigma_e^2).
double DpEmRdp(double alpha, double sigma_e, std::size_t num_components);

/// RDP of an (epsilon, 0)-DP mechanism at order alpha. The paper uses the
/// bound 2 * alpha * eps^2 (Mironov Lemma 1) for DP-PCA; we additionally
/// cap at eps, which is always valid because the Rényi divergence is
/// bounded by the max divergence.
double PureDpRdp(double alpha, double eps);

/// Converts an RDP guarantee (alpha, rdp_eps) to (epsilon, delta)-DP via
/// Theorem 2: epsilon = rdp_eps + log(1/delta) / (alpha - 1).
double RdpToDp(double alpha, double rdp_eps, double delta);

/// Paper Eq. (4): the explicit per-step moments-accountant upper bound for
/// DP-SGD of Abadi et al., with sampling probability s and noise
/// multiplier sigma, at integer moment lambda. Used only for the
/// zCDP+MA baseline curve in Fig. 6; returns +inf when the series
/// diverges numerically.
double MomentsAccountantEq4(std::size_t lambda, double s, double sigma);

/// zCDP composition of T Gaussian-mechanism-style releases with total
/// rho = per_step_rho * steps, converted to (epsilon, delta)-DP via
/// Bun–Steinke: epsilon = rho + 2 sqrt(rho * log(1/delta)).
double ZcdpToDp(double rho, double delta);

/// Default order grid used by the accountant: integers 2..64, then a
/// geometric tail up to 1024. Matches common DP-SGD practice.
std::vector<double> DefaultRdpOrders();

}  // namespace dp
}  // namespace p3gm

#endif  // P3GM_DP_RDP_H_
