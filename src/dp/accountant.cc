#include "dp/accountant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "audit/fault_injection.h"
#include "obs/ledger.h"
#include "obs/observability.h"
#include "util/check.h"

namespace p3gm {
namespace dp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

RdpAccountant::RdpAccountant(std::vector<double> orders)
    : orders_(orders.empty() ? DefaultRdpOrders() : std::move(orders)),
      rdp_(orders_.size(), 0.0) {
  for (double a : orders_) P3GM_CHECK(a > 1.0);
}

RdpAccountant::RdpAccountant(const RdpAccountant& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  orders_ = other.orders_;
  rdp_ = other.rdp_;
  ledger_enabled_ = other.ledger_enabled_;
  run_ = other.run_;
}

RdpAccountant& RdpAccountant::operator=(const RdpAccountant& other) {
  if (this == &other) return *this;
  // Snapshot the source first so the two locks are never held together
  // (no ordering to get wrong, no deadlock with a concurrent copy in
  // the other direction).
  std::vector<double> orders, rdp;
  bool ledger_enabled;
  std::uint64_t run;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    orders = other.orders_;
    rdp = other.rdp_;
    ledger_enabled = other.ledger_enabled_;
    run = other.run_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  orders_ = std::move(orders);
  rdp_ = std::move(rdp);
  ledger_enabled_ = ledger_enabled;
  run_ = run;
  return *this;
}

void RdpAccountant::AddGaussian(double sigma, std::size_t count,
                                const char* mechanism) {
  MechanismEvent event;
  event.mechanism = mechanism;
  event.count = count;
  event.sigma = sigma;
  AddEvent(event, GaussianCurve(sigma));
}

void RdpAccountant::AddSampledGaussian(double q, double sigma,
                                       std::size_t steps,
                                       const char* mechanism) {
  if (steps == 0 || q == 0.0) return;
  MechanismEvent event;
  event.mechanism = mechanism;
  event.count = steps;
  event.sigma = sigma;
  event.sampling_rate = q;
  AddEvent(event, SampledGaussianCurve(q, sigma));
}

void RdpAccountant::AddDpEm(double sigma_e, std::size_t num_components,
                            std::size_t steps, const char* mechanism) {
  if (steps == 0) return;
  MechanismEvent event;
  event.mechanism = mechanism;
  event.count = steps;
  event.sigma = sigma_e;
  AddEvent(event, DpEmCurve(sigma_e, num_components));
}

void RdpAccountant::AddPureDp(double eps, const char* mechanism) {
  MechanismEvent event;
  event.mechanism = mechanism;
  event.pure_eps = eps;
  AddEvent(event, PureDpCurve(eps));
}

void RdpAccountant::AddRdp(const std::vector<double>& eps_per_order,
                           const char* mechanism) {
  MechanismEvent event;
  event.mechanism = mechanism;
  AddEvent(event, eps_per_order);
}

std::vector<double> RdpAccountant::GaussianCurve(double sigma) const {
  std::vector<double> curve(orders_.size());
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    curve[i] = GaussianRdp(orders_[i], sigma);
  }
  return curve;
}

std::vector<double> RdpAccountant::SampledGaussianCurve(double q,
                                                        double sigma) const {
  std::vector<double> curve(orders_.size());
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    // Our order grid holds integers; the sampled-Gaussian formula is exact
    // for integer orders.
    const auto alpha = static_cast<std::size_t>(orders_[i]);
    curve[i] = SampledGaussianRdp(alpha, q, sigma);
  }
  return curve;
}

std::vector<double> RdpAccountant::DpEmCurve(
    double sigma_e, std::size_t num_components) const {
  std::vector<double> curve(orders_.size());
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    curve[i] = DpEmRdp(orders_[i], sigma_e, num_components);
  }
  return curve;
}

std::vector<double> RdpAccountant::PureDpCurve(double eps) const {
  std::vector<double> curve(orders_.size());
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    curve[i] = PureDpRdp(orders_[i], eps);
  }
  return curve;
}

void RdpAccountant::AddEvent(const MechanismEvent& event,
                             const std::vector<double>& per_invocation_cost) {
  P3GM_CHECK(per_invocation_cost.size() == orders_.size());
  if (event.count == 0) return;
  if (audit::DropAccountantEvents()) return;
  const double n = static_cast<double>(event.count);
  // One lock covers both the accumulation and the cumulative-guarantee
  // read below, so a ledger entry always reflects a consistent state
  // even with concurrent writers (DP-SGD steps on worker threads).
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += n * per_invocation_cost[i];
  }
  if (!ledger_enabled_ || !obs::Enabled()) return;
  obs::PrivacyLedger& ledger = obs::PrivacyLedger::Global();
  obs::LedgerEntry entry;
  entry.mechanism = event.mechanism;
  entry.phase = obs::PhaseScope::Current();
  entry.run = run_;
  entry.count = event.count;
  entry.sigma = event.sigma;
  entry.sampling_rate = event.sampling_rate;
  entry.pure_eps = event.pure_eps;
  entry.rdp_orders = orders_;
  entry.rdp_cost.resize(per_invocation_cost.size());
  for (std::size_t i = 0; i < per_invocation_cost.size(); ++i) {
    entry.rdp_cost[i] = n * per_invocation_cost[i];
  }
  entry.delta = ledger.delta();
  const DpGuarantee cumulative = GetEpsilonLocked(entry.delta);
  entry.cumulative_epsilon = cumulative.epsilon;
  entry.best_order = cumulative.best_order;
  ledger.Record(std::move(entry));
}

void RdpAccountant::set_ledger_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  ledger_enabled_ = enabled;
  if (enabled && run_ == 0) {
    static std::atomic<std::uint64_t> next_run{1};
    run_ = next_run.fetch_add(1, std::memory_order_relaxed);
  }
}

bool RdpAccountant::ledger_enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ledger_enabled_;
}

std::uint64_t RdpAccountant::run_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return run_;
}

std::vector<double> RdpAccountant::rdp() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rdp_;
}

DpGuarantee RdpAccountant::GetEpsilon(double delta) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetEpsilonLocked(delta);
}

DpGuarantee RdpAccountant::GetEpsilonLocked(double delta) const {
  P3GM_CHECK(delta > 0.0 && delta < 1.0);
  DpGuarantee out;
  out.delta = delta;
  out.epsilon = kInf;
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    const double eps = RdpToDp(orders_[i], rdp_[i], delta);
    if (eps < out.epsilon) {
      out.epsilon = eps;
      out.best_order = orders_[i];
    }
  }
  return out;
}

DpGuarantee ComputeP3gmEpsilonRdp(const P3gmPrivacyParams& params,
                                  double delta) {
  RdpAccountant acc;
  if (params.pca_epsilon > 0.0) acc.AddPureDp(params.pca_epsilon);
  if (params.em_iters > 0) {
    acc.AddDpEm(params.em_sigma, params.mog_components, params.em_iters);
  }
  acc.AddSampledGaussian(params.sgd_sampling_rate, params.sgd_sigma,
                         params.sgd_steps);
  return acc.GetEpsilon(delta);
}

double ComputeP3gmEpsilonBaseline(const P3gmPrivacyParams& params,
                                  double delta) {
  // DP-SGD via the classic moments accountant (paper Eq. 4), spending
  // delta/2: eps = min_lambda (T * MA(lambda) + log(2/delta)) / lambda.
  double eps_sgd = kInf;
  if (params.sgd_steps > 0 && params.sgd_sampling_rate > 0.0) {
    for (std::size_t lambda = 1; lambda <= 64; ++lambda) {
      const double ma = MomentsAccountantEq4(lambda, params.sgd_sampling_rate,
                                             params.sgd_sigma);
      if (!std::isfinite(ma)) continue;
      const double eps =
          (static_cast<double>(params.sgd_steps) * ma +
           std::log(2.0 / delta)) /
          static_cast<double>(lambda);
      eps_sgd = std::min(eps_sgd, eps);
    }
  } else {
    eps_sgd = 0.0;
  }

  // DP-EM via zCDP, spending delta/2. Per-step rho = (2K+1)/(2 sigma_e^2)
  // (Eq. 3 is exactly linear in alpha, i.e. zCDP).
  double eps_em = 0.0;
  if (params.em_iters > 0) {
    const double rho_step =
        (2.0 * static_cast<double>(params.mog_components) + 1.0) /
        (2.0 * params.em_sigma * params.em_sigma);
    eps_em = ZcdpToDp(rho_step * static_cast<double>(params.em_iters),
                      delta / 2.0);
  }

  return params.pca_epsilon + eps_em + eps_sgd;
}

util::Result<double> CalibrateSgdSigma(P3gmPrivacyParams params,
                                       double target_epsilon, double delta,
                                       double sigma_lo, double sigma_hi) {
  if (target_epsilon <= 0.0) {
    return util::Status::InvalidArgument(
        "CalibrateSgdSigma: target epsilon must be positive");
  }
  auto eps_at = [&](double sigma) {
    params.sgd_sigma = sigma;
    return ComputeP3gmEpsilonRdp(params, delta).epsilon;
  };
  if (eps_at(sigma_hi) > target_epsilon) {
    return util::Status::FailedPrecondition(
        "CalibrateSgdSigma: target epsilon unreachable even at sigma_hi; "
        "PCA/EM budget may already exceed the target");
  }
  if (eps_at(sigma_lo) <= target_epsilon) return sigma_lo;
  // eps is monotonically decreasing in sigma; bisect to ~1e-4 relative.
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (sigma_lo + sigma_hi);
    if (eps_at(mid) > target_epsilon) {
      sigma_lo = mid;
    } else {
      sigma_hi = mid;
    }
    if ((sigma_hi - sigma_lo) / sigma_hi < 1e-4) break;
  }
  return sigma_hi;  // Conservative side: epsilon(sigma_hi) <= target.
}

}  // namespace dp
}  // namespace p3gm
