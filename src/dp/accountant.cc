#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace p3gm {
namespace dp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

RdpAccountant::RdpAccountant(std::vector<double> orders)
    : orders_(orders.empty() ? DefaultRdpOrders() : std::move(orders)),
      rdp_(orders_.size(), 0.0) {
  for (double a : orders_) P3GM_CHECK(a > 1.0);
}

void RdpAccountant::AddGaussian(double sigma, std::size_t count) {
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(count) * GaussianRdp(orders_[i], sigma);
  }
}

void RdpAccountant::AddSampledGaussian(double q, double sigma,
                                       std::size_t steps) {
  if (steps == 0 || q == 0.0) return;
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    // Our order grid holds integers; the sampled-Gaussian formula is exact
    // for integer orders.
    const auto alpha = static_cast<std::size_t>(orders_[i]);
    rdp_[i] +=
        static_cast<double>(steps) * SampledGaussianRdp(alpha, q, sigma);
  }
}

void RdpAccountant::AddDpEm(double sigma_e, std::size_t num_components,
                            std::size_t steps) {
  if (steps == 0) return;
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(steps) *
               DpEmRdp(orders_[i], sigma_e, num_components);
  }
}

void RdpAccountant::AddPureDp(double eps) {
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += PureDpRdp(orders_[i], eps);
  }
}

void RdpAccountant::AddRdp(const std::vector<double>& eps_per_order) {
  P3GM_CHECK(eps_per_order.size() == orders_.size());
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += eps_per_order[i];
  }
}

DpGuarantee RdpAccountant::GetEpsilon(double delta) const {
  P3GM_CHECK(delta > 0.0 && delta < 1.0);
  DpGuarantee out;
  out.delta = delta;
  out.epsilon = kInf;
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    const double eps = RdpToDp(orders_[i], rdp_[i], delta);
    if (eps < out.epsilon) {
      out.epsilon = eps;
      out.best_order = orders_[i];
    }
  }
  return out;
}

DpGuarantee ComputeP3gmEpsilonRdp(const P3gmPrivacyParams& params,
                                  double delta) {
  RdpAccountant acc;
  if (params.pca_epsilon > 0.0) acc.AddPureDp(params.pca_epsilon);
  if (params.em_iters > 0) {
    acc.AddDpEm(params.em_sigma, params.mog_components, params.em_iters);
  }
  acc.AddSampledGaussian(params.sgd_sampling_rate, params.sgd_sigma,
                         params.sgd_steps);
  return acc.GetEpsilon(delta);
}

double ComputeP3gmEpsilonBaseline(const P3gmPrivacyParams& params,
                                  double delta) {
  // DP-SGD via the classic moments accountant (paper Eq. 4), spending
  // delta/2: eps = min_lambda (T * MA(lambda) + log(2/delta)) / lambda.
  double eps_sgd = kInf;
  if (params.sgd_steps > 0 && params.sgd_sampling_rate > 0.0) {
    for (std::size_t lambda = 1; lambda <= 64; ++lambda) {
      const double ma = MomentsAccountantEq4(lambda, params.sgd_sampling_rate,
                                             params.sgd_sigma);
      if (!std::isfinite(ma)) continue;
      const double eps =
          (static_cast<double>(params.sgd_steps) * ma +
           std::log(2.0 / delta)) /
          static_cast<double>(lambda);
      eps_sgd = std::min(eps_sgd, eps);
    }
  } else {
    eps_sgd = 0.0;
  }

  // DP-EM via zCDP, spending delta/2. Per-step rho = (2K+1)/(2 sigma_e^2)
  // (Eq. 3 is exactly linear in alpha, i.e. zCDP).
  double eps_em = 0.0;
  if (params.em_iters > 0) {
    const double rho_step =
        (2.0 * static_cast<double>(params.mog_components) + 1.0) /
        (2.0 * params.em_sigma * params.em_sigma);
    eps_em = ZcdpToDp(rho_step * static_cast<double>(params.em_iters),
                      delta / 2.0);
  }

  return params.pca_epsilon + eps_em + eps_sgd;
}

util::Result<double> CalibrateSgdSigma(P3gmPrivacyParams params,
                                       double target_epsilon, double delta,
                                       double sigma_lo, double sigma_hi) {
  if (target_epsilon <= 0.0) {
    return util::Status::InvalidArgument(
        "CalibrateSgdSigma: target epsilon must be positive");
  }
  auto eps_at = [&](double sigma) {
    params.sgd_sigma = sigma;
    return ComputeP3gmEpsilonRdp(params, delta).epsilon;
  };
  if (eps_at(sigma_hi) > target_epsilon) {
    return util::Status::FailedPrecondition(
        "CalibrateSgdSigma: target epsilon unreachable even at sigma_hi; "
        "PCA/EM budget may already exceed the target");
  }
  if (eps_at(sigma_lo) <= target_epsilon) return sigma_lo;
  // eps is monotonically decreasing in sigma; bisect to ~1e-4 relative.
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (sigma_lo + sigma_hi);
    if (eps_at(mid) > target_epsilon) {
      sigma_lo = mid;
    } else {
      sigma_hi = mid;
    }
    if ((sigma_hi - sigma_lo) / sigma_hi < 1e-4) break;
  }
  return sigma_hi;  // Conservative side: epsilon(sigma_hi) <= target.
}

}  // namespace dp
}  // namespace p3gm
