#ifndef P3GM_PCA_PCA_H_
#define P3GM_PCA_PCA_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace dp {
class RdpAccountant;
}  // namespace dp

namespace pca {

/// A fitted linear dimensionality reduction f(x) = (x - mean) * components
/// with components (d x d') holding the leading eigenvectors of the data
/// covariance in its columns. This is P3GM's encoder-mean map
/// mu_phi(x) = f(x) and its approximate inverse g is Reconstruct().
class PcaModel {
 public:
  PcaModel() = default;
  PcaModel(std::vector<double> mean, linalg::Matrix components,
           std::vector<double> explained_variance)
      : mean_(std::move(mean)),
        components_(std::move(components)),
        explained_variance_(std::move(explained_variance)) {}

  std::size_t input_dim() const { return mean_.size(); }
  std::size_t output_dim() const { return components_.cols(); }

  /// Column j is the j-th principal direction (unit norm).
  const linalg::Matrix& components() const { return components_; }
  const std::vector<double>& mean() const { return mean_; }
  /// Eigenvalues associated with each kept component, descending.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  /// Projects rows of `x` (n x d) to the reduced space (n x d').
  linalg::Matrix Transform(const linalg::Matrix& x) const;

  /// Projects a single vector.
  std::vector<double> TransformRow(const std::vector<double>& x) const;

  /// Maps reduced rows (n x d') back to the input space (n x d):
  /// g(z) = z * components^T + mean, the least-squares reconstruction.
  linalg::Matrix Reconstruct(const linalg::Matrix& z) const;

  /// Mean squared reconstruction error (1/n) sum ||x - g(f(x))||^2 —
  /// the paper's Eq. (5) objective evaluated on `x`.
  double ReconstructionError(const linalg::Matrix& x) const;

 private:
  std::vector<double> mean_;
  linalg::Matrix components_;  // d x d'
  std::vector<double> explained_variance_;
};

/// Exact (non-private) PCA keeping `num_components` directions. Fails if
/// num_components exceeds the data dimension or data is empty.
util::Result<PcaModel> FitPca(const linalg::Matrix& x,
                              std::size_t num_components);

struct DpPcaOptions {
  std::size_t num_components = 10;
  /// Pure-DP budget epsilon_p of the Wishart mechanism.
  double epsilon = 0.1;
  /// The mechanism's sensitivity analysis assumes rows with L2 norm <= 1;
  /// when true (default) rows are clipped to the unit ball first.
  bool clip_rows = true;
  /// When set, the Wishart release is composed onto this accountant as it
  /// happens (live accounting / privacy ledger). The caller owns the
  /// pointer; it never affects the fitted model.
  dp::RdpAccountant* accountant = nullptr;
};

/// Differentially private PCA via the Wishart mechanism (Jiang et al.,
/// AAAI 2016; paper Section II-D): the covariance A built from unit-norm
/// rows is released as A + W with W ~ Wishart_d(d+1, C_w), where C_w has
/// all eigenvalues 3/(2 n epsilon). Eigenvectors of the noisy matrix give
/// an (epsilon, 0)-DP projection.
///
/// As in the paper (footnote 2), the column mean used for centering is
/// treated as publicly available.
util::Result<PcaModel> FitDpPca(const linalg::Matrix& x,
                                const DpPcaOptions& options, util::Rng* rng);

}  // namespace pca
}  // namespace p3gm

#endif  // P3GM_PCA_PCA_H_
