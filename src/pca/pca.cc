#include "pca/pca.h"

#include <algorithm>
#include <cmath>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "linalg/covariance.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "obs/trace.h"

namespace p3gm {
namespace pca {

namespace {

// Dense d x d eigensolve below this dimension; randomized top-k above
// (the full tred2/tql2 pass is O(d^3) and dominates for image-sized d).
constexpr std::size_t kDenseEigenLimit = 160;

util::Result<linalg::EigenDecomposition> LeadingEigen(
    const linalg::Matrix& cov, std::size_t k) {
  if (cov.rows() <= kDenseEigenLimit) {
    P3GM_ASSIGN_OR_RETURN(linalg::EigenDecomposition full,
                          linalg::EigenSym(cov));
    linalg::EigenDecomposition out;
    out.values.assign(full.values.begin(),
                      full.values.begin() + static_cast<std::ptrdiff_t>(k));
    out.vectors = linalg::Matrix(cov.rows(), k);
    for (std::size_t i = 0; i < cov.rows(); ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        out.vectors(i, j) = full.vectors(i, j);
      }
    }
    return out;
  }
  return linalg::TopKEigenSym(cov, k, /*iters=*/100);
}

}  // namespace

linalg::Matrix PcaModel::Transform(const linalg::Matrix& x) const {
  P3GM_CHECK(x.cols() == input_dim());
  linalg::Matrix centered = x;
  linalg::CenterRows(mean_, &centered);
  return linalg::Matmul(centered, components_);
}

std::vector<double> PcaModel::TransformRow(const std::vector<double>& x) const {
  P3GM_CHECK(x.size() == input_dim());
  std::vector<double> centered(x);
  for (std::size_t j = 0; j < centered.size(); ++j) centered[j] -= mean_[j];
  return linalg::MatVecTransA(components_, centered);
}

linalg::Matrix PcaModel::Reconstruct(const linalg::Matrix& z) const {
  P3GM_CHECK(z.cols() == output_dim());
  linalg::Matrix x = linalg::MatmulTransB(z, components_);
  linalg::AddRowVector(mean_, &x);
  return x;
}

double PcaModel::ReconstructionError(const linalg::Matrix& x) const {
  P3GM_CHECK(x.rows() > 0);
  const linalg::Matrix recon = Reconstruct(Transform(x));
  double total = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* a = x.row_data(i);
    const double* b = recon.row_data(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double diff = a[j] - b[j];
      total += diff * diff;
    }
  }
  return total / static_cast<double>(x.rows());
}

util::Result<PcaModel> FitPca(const linalg::Matrix& x,
                              std::size_t num_components) {
  P3GM_TRACE_SPAN("pca.fit");
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("FitPca: empty data");
  }
  if (num_components == 0 || num_components > x.cols()) {
    return util::Status::InvalidArgument(
        "FitPca: num_components must be in [1, d]");
  }
  std::vector<double> mean = linalg::ColMeans(x);
  const linalg::Matrix cov = linalg::CovarianceWithMean(x, mean);
  P3GM_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                        LeadingEigen(cov, num_components));
  return PcaModel(std::move(mean), std::move(eig.vectors),
                  std::move(eig.values));
}

util::Result<PcaModel> FitDpPca(const linalg::Matrix& x,
                                const DpPcaOptions& options, util::Rng* rng) {
  P3GM_TRACE_SPAN("dp_pca.fit");
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("FitDpPca: empty data");
  }
  if (options.num_components == 0 || options.num_components > x.cols()) {
    return util::Status::InvalidArgument(
        "FitDpPca: num_components must be in [1, d]");
  }
  if (options.epsilon <= 0.0) {
    return util::Status::InvalidArgument(
        "FitDpPca: epsilon must be positive");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Public mean (paper footnote 2), then optional row clipping so the
  // covariance has per-record sensitivity compatible with the Wishart
  // mechanism's analysis (unit-norm rows).
  std::vector<double> mean = linalg::ColMeans(x);
  linalg::Matrix centered = x;
  linalg::CenterRows(mean, &centered);
  if (options.clip_rows) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> row = centered.Row(i);
      dp::ClipL2(1.0, &row);
      centered.SetRow(i, row);
    }
  }
  linalg::Matrix cov = linalg::Syrk(centered);
  cov *= 1.0 / static_cast<double>(n);

  // Wishart mechanism: A_hat = A + W, W ~ W_d(d+1, C_w) with all C_w
  // eigenvalues equal to 3 / (2 n epsilon).
  const double c = 3.0 / (2.0 * static_cast<double>(n) * options.epsilon);
  P3GM_ASSIGN_OR_RETURN(
      linalg::Matrix w,
      dp::SampleWishart(d, static_cast<double>(d) + 1.0, c, rng));
  cov += w;
  // Live accounting: the Wishart release is (epsilon, 0)-DP.
  if (options.accountant != nullptr) {
    options.accountant->AddPureDp(options.epsilon, "wishart");
  }

  P3GM_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                        LeadingEigen(cov, options.num_components));
  return PcaModel(std::move(mean), std::move(eig.vectors),
                  std::move(eig.values));
}

}  // namespace pca
}  // namespace p3gm
