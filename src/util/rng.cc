#include "util/rng.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace p3gm {
namespace util {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextU64() {
  // xoshiro256++ step.
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  P3GM_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  P3GM_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  std::uint64_t r;
  do {
    r = NextU64();
  } while (r < threshold);
  return r % n;
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  P3GM_DCHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::Laplace(double scale) {
  P3GM_CHECK(scale > 0.0);
  // Inverse CDF: sample u in (-1/2, 1/2), x = -b * sgn(u) * ln(1 - 2|u|).
  double u = Uniform() - 0.5;
  // Guard against |u| == 0.5 which would take log(0).
  if (u >= 0.5) u = std::nextafter(0.5, 0.0);
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  P3GM_CHECK(rate > 0.0);
  double u = Uniform();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape, double scale) {
  P3GM_CHECK(shape > 0.0);
  P3GM_CHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = std::max(Uniform(), std::numeric_limits<double>::min());
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = std::max(Uniform(), std::numeric_limits<double>::min());
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::ChiSquared(double df) {
  P3GM_CHECK(df > 0.0);
  return Gamma(df / 2.0, 2.0);
}

bool Rng::Bernoulli(double p) {
  P3GM_DCHECK(p >= 0.0 && p <= 1.0);
  return Uniform() < p;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  P3GM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    P3GM_CHECK(w >= 0.0);
    total += w;
  }
  P3GM_CHECK(total > 0.0);
  double r = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: last bucket.
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  Shuffle(&p);
  return p;
}

std::vector<std::size_t> Rng::PoissonSample(std::size_t n, double q) {
  P3GM_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (Bernoulli(q)) out.push_back(i);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::StreamAt(std::uint64_t seed, std::uint64_t index) {
  // Decorrelate (seed, index) pairs with one splitmix64 step over a
  // golden-ratio combination; the Rng constructor mixes further into the
  // four xoshiro words. Stateless, so safe to call from any thread.
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  const std::uint64_t derived = SplitMix64(&state);
  return Rng(derived);
}

}  // namespace util
}  // namespace p3gm
