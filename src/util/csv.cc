#include "util/csv.h"

#include <cstdio>

namespace p3gm {
namespace util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open CSV file for writing: " + path);
  }
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!status_.ok()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) status_ = Status::IoError("CSV write failed");
}

void CsvWriter::WriteNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  char buf[64];
  for (double v : cells) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    text.emplace_back(buf);
  }
  WriteRow(text);
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

}  // namespace util
}  // namespace p3gm
