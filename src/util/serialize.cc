#include "util/serialize.h"

namespace p3gm {
namespace util {

namespace {
// Sanity cap on element counts read from untrusted files (1 GiB of
// doubles).
constexpr std::uint64_t kMaxElements = (1ULL << 30) / sizeof(double);
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, std::uint32_t magic,
                           std::uint32_t version)
    : out_(path, std::ios::binary) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
    return;
  }
  WriteRaw(&magic, sizeof(magic));
  WriteRaw(&version, sizeof(version));
}

void BinaryWriter::WriteRaw(const void* data, std::size_t bytes) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) status_ = Status::IoError("write failed");
}

void BinaryWriter::WriteU64(std::uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteDoubles(const std::vector<double>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::WriteMatrix(std::size_t rows, std::size_t cols,
                               const double* data) {
  WriteU64(rows);
  WriteU64(cols);
  WriteRaw(data, rows * cols * sizeof(double));
}

Status BinaryWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) status_ = Status::IoError("flush failed");
    out_.close();
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path,
                           std::uint32_t expected_magic,
                           std::uint32_t expected_version)
    : BinaryReader(path, expected_magic, expected_version, expected_version) {}

BinaryReader::BinaryReader(const std::string& path,
                           std::uint32_t expected_magic,
                           std::uint32_t min_version,
                           std::uint32_t max_version)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
    return;
  }
  std::uint32_t magic = 0, version = 0;
  status_ = ReadRaw(&magic, sizeof(magic));
  if (status_.ok()) status_ = ReadRaw(&version, sizeof(version));
  if (status_.ok() && magic != expected_magic) {
    status_ = Status::InvalidArgument("bad magic in " + path);
  }
  if (status_.ok() && (version < min_version || version > max_version)) {
    status_ = Status::InvalidArgument("unsupported version in " + path);
  }
  if (status_.ok()) version_ = version;
}

Status BinaryReader::ReadRaw(void* data, std::size_t bytes) {
  if (!status_.ok()) return status_;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in_) {
    status_ = Status::IoError("truncated read");
  }
  return status_;
}

Result<std::uint64_t> BinaryReader::ReadU64() {
  std::uint64_t v = 0;
  P3GM_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  double v = 0;
  P3GM_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  P3GM_ASSIGN_OR_RETURN(std::uint64_t n, ReadU64());
  if (n > kMaxElements) {
    return Status::InvalidArgument("string length implausible");
  }
  std::string s(n, '\0');
  P3GM_RETURN_NOT_OK(ReadRaw(s.data(), n));
  return s;
}

Result<std::vector<double>> BinaryReader::ReadDoubles() {
  P3GM_ASSIGN_OR_RETURN(std::uint64_t n, ReadU64());
  if (n > kMaxElements) {
    return Status::InvalidArgument("vector length implausible");
  }
  std::vector<double> v(n);
  P3GM_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(double)));
  return v;
}

Status BinaryReader::ReadMatrix(std::size_t* rows, std::size_t* cols,
                                std::vector<double>* flat) {
  P3GM_ASSIGN_OR_RETURN(std::uint64_t r, ReadU64());
  P3GM_ASSIGN_OR_RETURN(std::uint64_t c, ReadU64());
  if (r * c > kMaxElements) {
    return Status::InvalidArgument("matrix size implausible");
  }
  *rows = static_cast<std::size_t>(r);
  *cols = static_cast<std::size_t>(c);
  flat->resize(r * c);
  return ReadRaw(flat->data(), flat->size() * sizeof(double));
}

}  // namespace util
}  // namespace p3gm
