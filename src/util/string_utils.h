#ifndef P3GM_UTIL_STRING_UTILS_H_
#define P3GM_UTIL_STRING_UTILS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p3gm {
namespace util {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `text` on every occurrence of `sep` (single char). Keeps empty
/// fields, so "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(const std::string& text, char sep);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 4);

/// Left-pads (positive width) or right-pads (negative width) `s` with
/// spaces to the given absolute width; used by the table printers.
std::string Pad(const std::string& s, int width);

/// Strict unsigned-integer parse for option/env values. Accepts only a
/// complete plain decimal integer ("0" .. "18446744073709551615"): no
/// sign, no leading/trailing whitespace, no hex, no exponent. Returns
/// true and stores the value iff the text parses AND lies in
/// [min, max]; on any failure *out is untouched. This is the
/// reject-don't-default contract the P3GM_NUM_THREADS fix established —
/// CLI flags route through it so "--port 80x0" is a usage error rather
/// than a silent fallback.
bool ParseUint64(const std::string& text, std::uint64_t min,
                 std::uint64_t max, std::uint64_t* out);

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_STRING_UTILS_H_
