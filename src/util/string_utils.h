#ifndef P3GM_UTIL_STRING_UTILS_H_
#define P3GM_UTIL_STRING_UTILS_H_

#include <string>
#include <vector>

namespace p3gm {
namespace util {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `text` on every occurrence of `sep` (single char). Keeps empty
/// fields, so "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(const std::string& text, char sep);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 4);

/// Left-pads (positive width) or right-pads (negative width) `s` with
/// spaces to the given absolute width; used by the table printers.
std::string Pad(const std::string& s, int width);

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_STRING_UTILS_H_
