#ifndef P3GM_UTIL_CSV_H_
#define P3GM_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace p3gm {
namespace util {

/// Minimal CSV writer used by the bench harness to persist table/figure
/// series next to the printed output. Quotes fields containing commas or
/// quotes per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file. Check
  /// `status()` before use.
  explicit CsvWriter(const std::string& path);

  /// Non-OK if the file could not be opened or a write failed.
  const Status& status() const { return status_; }

  /// Writes one row of string cells.
  void WriteRow(const std::vector<std::string>& cells);

  /// Writes one row of numeric cells formatted with up to 6 significant
  /// digits.
  void WriteNumericRow(const std::vector<double>& cells);

  /// Writes a header row followed by flushing.
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

  /// Flushes and closes the underlying stream.
  void Close();

 private:
  static std::string Escape(const std::string& cell);

  std::ofstream out_;
  Status status_;
};

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_CSV_H_
