#ifndef P3GM_UTIL_LOGGING_H_
#define P3GM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace p3gm {
namespace util {

/// Severity levels in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Thread-safe (atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted record to stderr if `level` passes the
/// process-wide filter:
///
///   2026-08-06T12:34:56.789Z [INFO] [t0] message
///
/// (ISO-8601 UTC timestamp with milliseconds; [tN] is a compact
/// per-thread index assigned in first-log order.) The record is
/// assembled into one buffer and emitted with a single write under a
/// mutex, so concurrent loggers never interleave characters.
void LogMessage(LogLevel level, const std::string& message);

/// Stream-style logger used via the P3GM_LOG macro. Emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace p3gm

#define P3GM_LOG(level) \
  ::p3gm::util::LogStream(::p3gm::util::LogLevel::k##level)

#endif  // P3GM_UTIL_LOGGING_H_
