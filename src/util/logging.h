#ifndef P3GM_UTIL_LOGGING_H_
#define P3GM_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace p3gm {
namespace util {

/// Severity levels in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Output encodings. Text is the human-readable single-line form; JSON
/// emits one JSON object per line (machine-ingestable, values escaped
/// via obs/json.h).
enum class LogFormat : int { kText = 0, kJson = 1 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Thread-safe (atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Process-wide output format. Defaults to kText. Thread-safe (atomic).
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Case-insensitive parsers for the env-var spellings:
/// "debug" | "info" | "warn" | "warning" | "error" and "text" | "json".
/// Return false (leaving *out untouched) on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);
bool ParseLogFormat(const std::string& text, LogFormat* out);

/// Applies P3GM_LOG_LEVEL and P3GM_LOG_FORMAT from the environment.
/// Invalid values are rejected loudly — one diagnostic record naming the
/// bad value and the accepted spellings — and the current setting is
/// kept. Runs implicitly before the first log record; call it directly
/// to apply the environment earlier (e.g. before any logging happens).
void InitLoggingFromEnv();

/// Writes one formatted record to stderr if `level` passes the
/// process-wide filter. Text format:
///
///   2026-08-06T12:34:56.789Z [INFO] [t0] message
///
/// (ISO-8601 UTC timestamp with milliseconds; [tN] is a compact
/// per-thread index assigned in first-log order.) JSON format:
///
///   {"ts":"...","level":"INFO","thread":0,"msg":"message"}
///
/// Inside an obs::RequestScope both formats carry the scope's trace and
/// span ids (a `[trace:... span:...]` segment / "trace_id" +
/// "span_id" fields), correlating every record with its request. The
/// record is assembled into one buffer and emitted with a single write
/// under a mutex, so concurrent loggers never interleave characters.
/// Every accepted record is also noted in the obs flight recorder.
void LogMessage(LogLevel level, const std::string& message);

/// Test hook: when set, complete records (no trailing newline) go to
/// `sink` instead of stderr. Pass nullptr to restore stderr output.
void SetLogSinkForTest(
    std::function<void(LogLevel, const std::string&)> sink);

/// Stream-style logger used via the P3GM_LOG macro. Emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace p3gm

#define P3GM_LOG(level) \
  ::p3gm::util::LogStream(::p3gm::util::LogLevel::k##level)

#endif  // P3GM_UTIL_LOGGING_H_
