#ifndef P3GM_UTIL_THREAD_POOL_H_
#define P3GM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace p3gm {
namespace util {

/// Deterministic thread-pool parallelism for the training hot paths.
///
/// The contract every parallel kernel in this codebase obeys: the result
/// is BIT-IDENTICAL for any thread count, including 1. Two rules make
/// that hold:
///
///  1. ParallelFor bodies only write disjoint output slices (typically
///     one block of matrix rows per invocation); the floating-point
///     result then cannot depend on how the range was split.
///  2. Reductions never use atomics or arrival-order accumulation. They
///     either (a) fill a per-index buffer in parallel and sum it serially
///     in index order, or (b) use ParallelForChunks/ParallelReduce, whose
///     chunk grid is a pure function of (range, grain) — NOT of the
///     thread count — with partials combined in ascending chunk order.
///
/// Any code that needs randomness inside a parallel region must not
/// share an Rng across workers; it takes pre-drawn noise or per-index
/// counter-based streams (util::Rng::StreamAt) instead.
///
/// Scheduling is static: the range→worker assignment is a pure function
/// of (range, grain, num_threads). There is no work stealing.

/// Resolution of the process-wide worker count.
struct ParallelConfig {
  /// Requested worker count; 0 means "resolve automatically" from the
  /// P3GM_NUM_THREADS environment variable, falling back to
  /// std::thread::hardware_concurrency() (and to 1 if that reports 0).
  std::size_t num_threads = 0;

  /// Reads P3GM_NUM_THREADS (a positive integer; anything else is
  /// ignored) into num_threads, leaving 0 when unset/invalid.
  static ParallelConfig FromEnv();

  /// The effective worker count (always >= 1).
  std::size_t Resolve() const;
};

/// Fixed-size worker pool. Workers are spawned once in the constructor
/// and parked on a condition variable between jobs. Most code should use
/// the free functions below, which manage a process-wide pool; the class
/// is public for tests and special-purpose pools.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers (the thread calling Run participates
  /// as worker 0). num_threads must be >= 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Invokes fn(w) once for every worker index w in [0, num_threads()),
  /// with the calling thread executing w = 0, and blocks until all
  /// invocations return. Concurrent Run calls from different threads are
  /// serialized. `fn` must not throw — exception capture is handled by
  /// the ParallelFor layer above.
  void Run(const std::function<void(std::size_t)>& fn);

 private:
  /// `ordinal` is the worker's stable identity in [1, num_threads());
  /// distinct from the per-job index Run hands out, which depends on
  /// wake-up order. Metrics are attributed by ordinal.
  void WorkerLoop(std::size_t ordinal);

  // Registry instruments, resolved once at construction (registry-owned,
  // never dangle). Observability never affects scheduling: updates are
  // no-ops unless obs::Enabled().
  obs::Counter* jobs_ = nullptr;   // Run() dispatches.
  obs::Counter* tasks_ = nullptr;  // Per-worker body invocations.
  std::vector<obs::Counter*> busy_ns_;  // Indexed by worker ordinal.
  std::vector<obs::Counter*> idle_ns_;  // Waiting between jobs.

  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  // Serializes Run() callers.
  std::mutex mutex_;      // Guards the job state below.
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t next_worker_ = 0;  // Hands each woken thread its index.
  std::size_t outstanding_ = 0;
  bool shutdown_ = false;
};

/// The effective thread count the free functions below will use.
std::size_t NumThreads();

/// Overrides the process-wide thread count (0 restores the automatic
/// P3GM_NUM_THREADS / hardware_concurrency resolution). The pool is
/// re-created lazily on the next parallel call. Must not be called from
/// inside a parallel region. Intended for tests and benchmarks.
void SetNumThreads(std::size_t num_threads);

/// True while the calling thread is executing inside a ParallelFor body.
bool InParallelRegion();

/// Runs fn(sub_begin, sub_end) over a static partition of [begin, end)
/// into at most NumThreads() contiguous blocks of at least `grain`
/// indices each. Blocks are disjoint and cover the range exactly once.
///
/// fn must only write state indexed by its sub-range (disjoint output
/// slices); under that contract the result is bit-identical for any
/// thread count. Exceptions thrown by fn are rethrown in the caller
/// (the lowest-indexed block's exception wins). Nested calls from
/// inside a parallel region are rejected: the nested range runs inline
/// and serially on the calling worker.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

/// Number of fixed-grain chunks ParallelForChunks would produce — a pure
/// function of (begin, end, grain), independent of the thread count.
std::size_t NumChunks(std::size_t begin, std::size_t end, std::size_t grain);

/// Runs fn(chunk_index, chunk_begin, chunk_end) for every chunk of the
/// fixed grid [begin + c*grain, begin + (c+1)*grain) ∩ [begin, end).
/// Because the grid depends only on (range, grain), per-chunk partials
/// combined in ascending chunk_index order yield bit-identical results
/// for any thread count. Workers execute their assigned chunks in
/// ascending order.
void ParallelForChunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Deterministic parallel reduction over the fixed chunk grid:
/// partial[c] = chunk_fn(chunk_begin, chunk_end) computed in parallel,
/// then combine(&acc, partial[c]) serially for c ascending. For
/// non-associative floating-point combines the result depends on the
/// grain but never on the thread count. combine must be exact-associative
/// (e.g. max) for the result to also equal the serial unchunked loop.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
                 T identity, ChunkFn chunk_fn, CombineFn combine) {
  const std::size_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return identity;
  std::vector<T> partials(chunks, identity);
  ParallelForChunks(begin, end, grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
                      partials[c] = chunk_fn(b, e);
                    });
  T acc = identity;
  for (std::size_t c = 0; c < chunks; ++c) combine(&acc, partials[c]);
  return acc;
}

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_THREAD_POOL_H_
