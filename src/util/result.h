#ifndef P3GM_UTIL_RESULT_H_
#define P3GM_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace p3gm {
namespace util {

/// Either a value of type `T` or a non-OK `Status`, modelled after
/// `arrow::Result<T>`. Used as the return type of fallible factories so
/// callers never observe partially constructed objects.
///
/// Typical use:
/// \code
///   Result<Matrix> r = Matrix::FromRows(rows);
///   if (!r.ok()) return r.status();
///   Matrix m = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; the result must be OK.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Convenience accessors mirroring ValueOrDie.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace p3gm

/// Unwraps a Result into `lhs`, propagating errors (Arrow's ASSIGN_OR_RAISE).
#define P3GM_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto P3GM_CONCAT_(_res_, __LINE__) = (rexpr);       \
  if (!P3GM_CONCAT_(_res_, __LINE__).ok())            \
    return P3GM_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(P3GM_CONCAT_(_res_, __LINE__)).ValueOrDie()
#define P3GM_CONCAT_(a, b) P3GM_CONCAT_IMPL_(a, b)
#define P3GM_CONCAT_IMPL_(a, b) a##b

#endif  // P3GM_UTIL_RESULT_H_
