#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace p3gm {
namespace util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_write_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Compact per-thread index in first-log order; std::thread::id values
// are opaque and noisy in log lines.
unsigned ThisThreadLogId() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// "2026-08-06T12:34:56.789Z" (UTC). Returns the formatted length.
std::size_t FormatTimestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  const std::size_t n = std::strftime(buf, size, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  return n + std::snprintf(buf + n, size - n, ".%03dZ",
                           static_cast<int>(ms));
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char prefix[64];
  std::size_t n = FormatTimestamp(prefix, sizeof prefix);
  n += std::snprintf(prefix + n, sizeof prefix - n, " [%s] [t%u] ",
                     LevelName(level), ThisThreadLogId());
  // Assemble the full record, then emit it with one unlocked write while
  // holding the mutex: records from concurrent threads never interleave.
  std::string record;
  record.reserve(n + message.size() + 1);
  record.append(prefix, n);
  record += message;
  record += '\n';
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fwrite(record.data(), 1, record.size(), stderr);
}

}  // namespace util
}  // namespace p3gm
