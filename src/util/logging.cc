#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace_context.h"

namespace p3gm {
namespace util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::mutex g_write_mutex;

std::mutex g_sink_mutex;
std::function<void(LogLevel, const std::string&)> g_test_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Compact per-thread index in first-log order; std::thread::id values
// are opaque and noisy in log lines.
unsigned ThisThreadLogId() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// "2026-08-06T12:34:56.789Z" (UTC). Returns the formatted length.
std::size_t FormatTimestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  const std::size_t n = std::strftime(buf, size, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  return n + std::snprintf(buf + n, size - n, ".%03dZ",
                           static_cast<int>(ms));
}

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

void Emit(LogLevel level, const std::string& record) {
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_test_sink) {
      g_test_sink(level, record);
      return;
    }
  }
  // Append the newline outside the sink path so tests see clean records.
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fwrite(record.data(), 1, record.size(), stderr);
  std::fputc('\n', stderr);
}

std::string BuildRecord(LogLevel level, const std::string& message) {
  char ts[48];
  const std::size_t ts_len = FormatTimestamp(ts, sizeof ts);
  const obs::TraceContext& ctx = obs::CurrentContext();
  std::string record;
  if (GetLogFormat() == LogFormat::kJson) {
    record.reserve(message.size() + 128);
    record += "{\"ts\":\"";
    record.append(ts, ts_len);
    record += "\",\"level\":\"";
    record += LevelName(level);
    record += "\",\"thread\":";
    record += std::to_string(ThisThreadLogId());
    if (ctx.valid()) {
      record += ",\"trace_id\":\"";
      record += obs::TraceIdHex(ctx);
      record += "\",\"span_id\":\"";
      record += obs::SpanIdHex(ctx.span_id);
      record += '"';
    }
    record += ",\"msg\":\"";
    record += obs::json::Escape(message);
    record += "\"}";
  } else {
    char prefix[64];
    const std::size_t n =
        std::snprintf(prefix, sizeof prefix, " [%s] [t%u] ",
                      LevelName(level), ThisThreadLogId());
    record.reserve(message.size() + 128);
    record.append(ts, ts_len);
    record.append(prefix, n);
    if (ctx.valid()) {
      record += "[trace:";
      record += obs::TraceIdHex(ctx);
      record += " span:";
      record += obs::SpanIdHex(ctx.span_id);
      record += "] ";
    }
    record += message;
  }
  return record;
}

std::once_flag g_env_once;

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  const std::string lower = AsciiLower(text);
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

bool ParseLogFormat(const std::string& text, LogFormat* out) {
  const std::string lower = AsciiLower(text);
  if (lower == "text") {
    *out = LogFormat::kText;
  } else if (lower == "json") {
    *out = LogFormat::kJson;
  } else {
    return false;
  }
  return true;
}

void InitLoggingFromEnv() {
  const char* level_env = std::getenv("P3GM_LOG_LEVEL");
  if (level_env != nullptr) {
    LogLevel level;
    if (ParseLogLevel(level_env, &level)) {
      SetLogLevel(level);
    } else {
      Emit(LogLevel::kError,
           BuildRecord(LogLevel::kError,
                       std::string("P3GM_LOG_LEVEL: invalid value \"") +
                           level_env +
                           "\" (want debug|info|warn|error); keeping "
                           "current level"));
    }
  }
  const char* format_env = std::getenv("P3GM_LOG_FORMAT");
  if (format_env != nullptr) {
    LogFormat format;
    if (ParseLogFormat(format_env, &format)) {
      SetLogFormat(format);
    } else {
      Emit(LogLevel::kError,
           BuildRecord(LogLevel::kError,
                       std::string("P3GM_LOG_FORMAT: invalid value \"") +
                           format_env +
                           "\" (want text|json); keeping current format"));
    }
  }
}

void LogMessage(LogLevel level, const std::string& message) {
  std::call_once(g_env_once, InitLoggingFromEnv);
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  obs::FlightRecorder::Global().RecordLog(LevelName(level), message.data(),
                                          message.size());
  Emit(level, BuildRecord(level, message));
}

void SetLogSinkForTest(
    std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_test_sink = std::move(sink);
}

}  // namespace util
}  // namespace p3gm
