#include "util/distributions.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace p3gm {
namespace util {

namespace {

constexpr int kMaxIters = 500;
constexpr double kEps = 1e-15;
constexpr double kTiny = 1e-300;

// Series expansion of P(a, x), valid (fast-converging) for x < a + 1.
double LowerGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIters; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1
// (modified Lentz).
double UpperGammaContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIters; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for the incomplete beta (modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIters; ++m) {
    const double md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalCdf(double x, double mean, double stddev) {
  P3GM_CHECK(stddev > 0.0);
  return NormalCdf((x - mean) / stddev);
}

double LaplaceCdf(double x, double location, double scale) {
  P3GM_CHECK(scale > 0.0);
  const double z = (x - location) / scale;
  if (z < 0.0) return 0.5 * std::exp(z);
  return 1.0 - 0.5 * std::exp(-z);
}

double ExponentialCdf(double x, double rate) {
  P3GM_CHECK(rate > 0.0);
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate * x);
}

double RegularizedLowerGamma(double a, double x) {
  P3GM_CHECK(a > 0.0);
  P3GM_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return LowerGammaSeries(a, x);
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

double GammaCdf(double x, double shape, double scale) {
  P3GM_CHECK(shape > 0.0 && scale > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedLowerGamma(shape, x / scale);
}

double ChiSquaredCdf(double x, double df) {
  P3GM_CHECK(df > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedLowerGamma(df / 2.0, x / 2.0);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  P3GM_CHECK(a > 0.0 && b > 0.0);
  P3GM_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction directly where it converges fastest, and
  // the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double IncompleteBetaInv(double a, double b, double p) {
  P3GM_CHECK(a > 0.0 && b > 0.0);
  P3GM_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedIncompleteBeta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-14) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace util
}  // namespace p3gm
