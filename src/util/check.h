#ifndef P3GM_UTIL_CHECK_H_
#define P3GM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Always-on invariant check for numeric kernels where returning a Status
/// would be prohibitive (inner loops) and violation indicates a programming
/// error rather than bad user input. Aborts with file/line context.
#define P3GM_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "P3GM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define P3GM_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "P3GM_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only check, compiled out in NDEBUG builds. Use on per-element hot
/// paths.
#ifdef NDEBUG
#define P3GM_DCHECK(cond) ((void)0)
#else
#define P3GM_DCHECK(cond) P3GM_CHECK(cond)
#endif

#endif  // P3GM_UTIL_CHECK_H_
