#include "util/string_utils.h"

#include <cstdarg>
#include <cstdio>

namespace p3gm {
namespace util {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string Pad(const std::string& s, int width) {
  const bool left = width >= 0;
  std::size_t w = static_cast<std::size_t>(left ? width : -width);
  if (s.size() >= w) return s;
  std::string pad(w - s.size(), ' ');
  return left ? pad + s : s + pad;
}

bool ParseUint64(const std::string& text, std::uint64_t min,
                 std::uint64_t max, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  // Manual accumulation instead of strtoull: strtoull skips leading
  // whitespace, accepts a sign, and saturates on overflow — all three
  // would turn garbage into a "valid" option value.
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // Overflow.
    value = value * 10 + digit;
  }
  if (value < min || value > max) return false;
  *out = value;
  return true;
}

}  // namespace util
}  // namespace p3gm
