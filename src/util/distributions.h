#ifndef P3GM_UTIL_DISTRIBUTIONS_H_
#define P3GM_UTIL_DISTRIBUTIONS_H_

namespace p3gm {
namespace util {

/// Analytic CDFs and special functions matching the samplers in Rng.
/// These are the reference curves the statistical audit layer
/// (src/audit) tests the samplers against: every distribution Rng can
/// draw from has its CDF here, so a Kolmogorov–Smirnov test can compare
/// empirical and analytic distributions without external dependencies.
///
/// All functions are pure and thread-safe.

/// Standard normal CDF Phi(x), accurate over the full double range.
double NormalCdf(double x);

/// CDF of N(mean, stddev^2). Requires stddev > 0.
double NormalCdf(double x, double mean, double stddev);

/// CDF of Laplace(location, scale). Requires scale > 0.
double LaplaceCdf(double x, double location, double scale);

/// CDF of Exponential(rate), i.e. 1 - exp(-rate * x) for x >= 0.
double ExponentialCdf(double x, double rate);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// for a > 0, x >= 0. Series expansion for x < a + 1, continued fraction
/// otherwise; absolute error below ~1e-12.
double RegularizedLowerGamma(double a, double x);

/// CDF of Gamma(shape, scale) (the parameterization Rng::Gamma uses).
double GammaCdf(double x, double shape, double scale);

/// CDF of the chi-squared distribution with df degrees of freedom.
double ChiSquaredCdf(double x, double df);

/// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1],
/// via the Lentz continued fraction; absolute error below ~1e-12.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Inverse of the regularized incomplete beta in x: returns the x in
/// [0, 1] with I_x(a, b) = p, by bisection. Requires p in [0, 1].
double IncompleteBetaInv(double a, double b, double p);

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_DISTRIBUTIONS_H_
