#ifndef P3GM_UTIL_SERIALIZE_H_
#define P3GM_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace p3gm {
namespace util {

/// Minimal binary serialization used to persist released generative
/// models (the paper's Fig. 1 artifact: a decoder plus a latent prior).
/// Fixed little-endian layout with a magic/version header; all sizes are
/// u64, all floats are IEEE doubles.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header. Check status().
  BinaryWriter(const std::string& path, std::uint32_t magic,
               std::uint32_t version);

  const Status& status() const { return status_; }

  void WriteU64(std::uint64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubles(const std::vector<double>& v);
  /// Shape-prefixed row-major matrix payload.
  void WriteMatrix(std::size_t rows, std::size_t cols, const double* data);

  /// Flushes and closes; returns the final status.
  Status Close();

 private:
  void WriteRaw(const void* data, std::size_t bytes);

  std::ofstream out_;
  Status status_;
};

/// Reader counterpart; validates magic/version on construction.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, std::uint32_t expected_magic,
               std::uint32_t expected_version);

  /// Accepts any version in [min_version, max_version]; the caller
  /// branches on version() to parse evolved formats (e.g. release
  /// packages with embedded quality fingerprints).
  BinaryReader(const std::string& path, std::uint32_t expected_magic,
               std::uint32_t min_version, std::uint32_t max_version);

  const Status& status() const { return status_; }

  /// The version read from the header (0 until the header is parsed).
  std::uint32_t version() const { return version_; }

  Result<std::uint64_t> ReadU64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubles();
  /// Reads a matrix payload; fills rows/cols and the flat buffer.
  Status ReadMatrix(std::size_t* rows, std::size_t* cols,
                    std::vector<double>* flat);

 private:
  Status ReadRaw(void* data, std::size_t bytes);

  std::ifstream in_;
  Status status_;
  std::uint32_t version_ = 0;
};

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_SERIALIZE_H_
