#include "util/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "util/check.h"

namespace p3gm {
namespace util {

namespace {

// Set while the current thread executes a ParallelFor body; used to
// reject (serialize) nested parallel calls.
thread_local bool t_in_parallel_region = false;

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_requested_threads = 0;  // 0 = automatic.

std::size_t AutoThreads() {
  // The environment is read once per process: the pool is long-lived and
  // re-reading getenv on every kernel call would be wasted work.
  static const std::size_t resolved = ParallelConfig::FromEnv().Resolve();
  return resolved;
}

std::size_t EffectiveThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_requested_threads != 0 ? g_requested_threads : AutoThreads();
}

// Returns the process-wide pool sized to the current request, re-creating
// it if the requested size changed since the last call.
ThreadPool* GetPool(std::size_t want) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->num_threads() != want) {
    g_pool.reset();  // Join the old workers before spawning new ones.
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return g_pool.get();
}

}  // namespace

ParallelConfig ParallelConfig::FromEnv() {
  ParallelConfig config;
  if (const char* env = std::getenv("P3GM_NUM_THREADS")) {
    // Accept only a plain positive decimal integer. strtoull alone is
    // too lenient: it skips leading whitespace and silently negates
    // "-3" into a huge unsigned value, which would later blow up pool
    // construction. Anything else falls back to automatic resolution.
    const std::size_t len = std::strlen(env);
    if (len > 0 && std::strspn(env, "0123456789") == len) {
      errno = 0;
      const unsigned long long parsed = std::strtoull(env, nullptr, 10);
      if (errno == 0 && parsed > 0) {
        config.num_threads = static_cast<std::size_t>(parsed);
      }
    }
  }
  return config;
}

std::size_t ParallelConfig::Resolve() const {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  P3GM_CHECK(num_threads >= 1);
  obs::Registry& registry = obs::Registry::Global();
  jobs_ = registry.counter("threadpool.jobs");
  tasks_ = registry.counter("threadpool.tasks");
  busy_ns_.reserve(num_threads);
  idle_ns_.reserve(num_threads);
  for (std::size_t w = 0; w < num_threads; ++w) {
    const std::string id = std::to_string(w);
    busy_ns_.push_back(registry.counter("threadpool.worker" + id + ".busy_ns"));
    idle_ns_.push_back(registry.counter("threadpool.worker" + id + ".idle_ns"));
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(const std::function<void(std::size_t)>& fn) {
  jobs_->Add();
  if (workers_.empty()) {
    const std::uint64_t start = obs::Enabled() ? obs::NowNs() : 0;
    fn(0);
    if (start != 0) busy_ns_[0]->Add(obs::NowNs() - start);
    tasks_->Add();
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    next_worker_ = 1;  // The caller is worker 0.
    outstanding_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  const std::uint64_t start = obs::Enabled() ? obs::NowNs() : 0;
  fn(0);
  if (start != 0) busy_ns_[0]->Add(obs::NowNs() - start);
  tasks_->Add();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(std::size_t ordinal) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    std::size_t worker;
    const std::uint64_t idle_start = obs::Enabled() ? obs::NowNs() : 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      // Shutdown returns without touching instruments: the pool is being
      // destroyed and only the (leaked) registry is guaranteed alive.
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      worker = next_worker_++;
    }
    const std::uint64_t busy_start = obs::Enabled() ? obs::NowNs() : 0;
    if (idle_start != 0 && busy_start != 0) {
      idle_ns_[ordinal]->Add(busy_start - idle_start);
    }
    (*job)(worker);
    if (busy_start != 0) busy_ns_[ordinal]->Add(obs::NowNs() - busy_start);
    tasks_->Add();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

std::size_t NumThreads() { return EffectiveThreads(); }

void SetNumThreads(std::size_t num_threads) {
  P3GM_CHECK(!t_in_parallel_region);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_requested_threads = num_threads;
  // The pool itself is re-created lazily by the next parallel call.
}

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t range = end - begin;
  if (grain == 0) grain = 1;
  // Nested parallelism is rejected: a body that itself calls ParallelFor
  // runs the inner range inline and serially on its worker. Results are
  // unchanged (the inner body sees the full range in one call).
  const std::size_t max_workers = (range + grain - 1) / grain;
  const std::size_t want = std::min(NumThreads(), max_workers);
  if (want <= 1 || t_in_parallel_region) {
    fn(begin, end);
    return;
  }
  ThreadPool* pool = GetPool(NumThreads());
  const std::size_t workers = std::min(want, pool->num_threads());
  std::vector<std::exception_ptr> errors(workers);
  pool->Run([&](std::size_t w) {
    if (w >= workers) return;
    // Static contiguous split: block w is a pure function of
    // (range, workers); no work stealing.
    const std::size_t q = range / workers;
    const std::size_t r = range % workers;
    const std::size_t b = begin + w * q + std::min(w, r);
    const std::size_t e = b + q + (w < r ? 1 : 0);
    t_in_parallel_region = true;
    try {
      fn(b, e);
    } catch (...) {
      errors[w] = std::current_exception();
    }
    t_in_parallel_region = false;
  });
  // Deterministic propagation: the lowest-indexed block's failure wins.
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::size_t NumChunks(std::size_t begin, std::size_t end, std::size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

void ParallelForChunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return;
  // The chunk grid depends only on (begin, end, grain); ParallelFor
  // merely decides which worker executes which ascending run of chunks.
  ParallelFor(0, chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t b = begin + c * grain;
      const std::size_t e = std::min(end, b + grain);
      fn(c, b, e);
    }
  });
}

}  // namespace util
}  // namespace p3gm
