#ifndef P3GM_UTIL_STATUS_H_
#define P3GM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace p3gm {
namespace util {

/// Machine-readable category of a failure, modelled after the
/// Arrow/RocksDB status idiom. `kOk` is the unique success code.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kNumericError = 9,
  kPrivacyBudgetExhausted = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success-or-error type used by every fallible API in this
/// library instead of exceptions. Cheap to copy on the success path (no
/// allocation for OK statuses).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status. Prefer this over the default constructor for
  /// readability at return sites.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status PrivacyBudgetExhausted(std::string msg) {
    return Status(StatusCode::kPrivacyBudgetExhausted, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace util
}  // namespace p3gm

/// Propagates a non-OK Status from the enclosing function, Arrow-style.
#define P3GM_RETURN_NOT_OK(expr)                      \
  do {                                                \
    ::p3gm::util::Status _st = (expr);                \
    if (!_st.ok()) return _st;                        \
  } while (0)

#endif  // P3GM_UTIL_STATUS_H_
