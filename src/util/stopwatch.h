#ifndef P3GM_UTIL_STOPWATCH_H_
#define P3GM_UTIL_STOPWATCH_H_

#include <chrono>

namespace p3gm {
namespace util {

/// Wall-clock stopwatch for coarse timing of training phases and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  // Timing must be monotonic: a wall-clock adjustment (NTP step, manual
  // set) mid-measurement would corrupt bench samples and the telemetry
  // ledger. steady_clock is guaranteed monotonic; keep it that way.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "Stopwatch requires a monotonic clock");
  Clock::time_point start_;
};

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_STOPWATCH_H_
