#ifndef P3GM_UTIL_RNG_H_
#define P3GM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace p3gm {
namespace util {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// splitmix64) with the scalar sampling routines the library needs.
///
/// We implement the distributions ourselves (polar Gaussian,
/// Marsaglia–Tsang gamma, inverse-CDF Laplace/exponential) instead of using
/// `<random>` distributions so that every experiment is bit-reproducible
/// across standard-library implementations.
///
/// Not thread-safe; create one Rng per thread / per component.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce equal
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output of the engine.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via the Marsaglia polar method (cached spare).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Laplace(0, b) via inverse CDF. Requires scale b > 0.
  double Laplace(double scale);

  /// Exponential with the given rate (mean = 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Gamma(shape, scale) via Marsaglia–Tsang squeeze (with the shape<1
  /// boost). Requires shape > 0 and scale > 0.
  double Gamma(double shape, double scale);

  /// Chi-squared with `df` degrees of freedom (df > 0); equals
  /// Gamma(df/2, 2).
  double ChiSquared(double df);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to `weights` (non-negative, not all zero).
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Draws a subset of {0,...,n-1} where each element is included
  /// independently with probability q (Poisson subsampling, as assumed by
  /// the DP-SGD privacy analysis).
  std::vector<std::size_t> PoissonSample(std::size_t n, double q);

  /// Derives an independent child generator; useful for giving each
  /// component of a pipeline its own stream.
  Rng Fork();

  /// Counter-based stream derivation: returns the generator for logical
  /// stream `index` of the family identified by `seed`. A pure function
  /// of (seed, index) — two calls with equal arguments yield generators
  /// with bit-identical output streams, and distinct indices yield
  /// decorrelated streams. This is how parallel regions draw noise
  /// deterministically: element i samples from StreamAt(seed, i)
  /// regardless of which worker thread processes i, so results do not
  /// depend on the thread count or schedule.
  static Rng StreamAt(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace util
}  // namespace p3gm

#endif  // P3GM_UTIL_RNG_H_
