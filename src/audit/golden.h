#ifndef P3GM_AUDIT_GOLDEN_H_
#define P3GM_AUDIT_GOLDEN_H_

#include <string>
#include <vector>

namespace p3gm {
namespace audit {

/// Golden-trace regression for the full P3GM pipeline: a fixed-seed,
/// fully differentially private Pgm run whose per-epoch losses and live
/// privacy accounting are serialized bit-exactly (%.17g round-trips an
/// IEEE double) and compared against a checked-in file. Any unintended
/// change to PCA, EM, the VAE, DP-SGD, the RNG streams or the accountant
/// shows up as the first differing line.
///
/// The trace is deterministic by construction (PR 1 guarantees
/// bit-identical training at any thread count), but it *is* pinned to the
/// libm of the build toolchain; regenerate with tools/regen_golden after
/// an intentional numeric change.

/// Runs the canonical small P3GM configuration and returns the trace:
///   # p3gm golden trace v1
///   epoch,<i>,<recon>,<kl>,<epsilon>       (one per epoch; live ledger)
///   final,<epsilon>,<best_order>
///   sample,<n>,<checksum>                  (fixed-seed synthesis digest)
std::vector<std::string> GoldenPgmTraceLines();

/// Writes the canonical trace to `path` (one line per entry, trailing
/// newline). Returns false if the file cannot be written.
bool WriteGoldenTrace(const std::string& path);

struct GoldenCompareResult {
  bool ok = false;
  /// Empty when ok; otherwise the first mismatch (or an I/O problem) and
  /// the regeneration hint.
  std::string message;
};

/// Regenerates the trace in-process and compares it line-by-line against
/// the checked-in file at `path`.
GoldenCompareResult CompareGoldenTrace(const std::string& path);

/// Golden-decode fixture for the synthesis path: a fixed ReleasePackage
/// assembled from explicit deterministic weights (no training pipeline),
/// exercised two ways:
///   decode,<i>,<v0>,...   deterministic latent grid -> DecodeLatent
///   sample,<i>,<v0>,...   fixed-seed Generate() feature rows
///   labels,<l0>,...       labels decoded from the one-hot block
/// Every double is %.17g, so the file pins the decoder forward pass
/// bit-for-bit. DecodeLatent routes through the compiled infer plan when
/// enabled and the reference nn path otherwise; both must reproduce this
/// file exactly (the planned-runtime equivalence contract,
/// docs/inference.md).
std::vector<std::string> GoldenDecodeLines();

/// Writes the decode fixture to `path`. Returns false on I/O failure.
bool WriteGoldenDecode(const std::string& path);

/// Regenerates the decode fixture in-process and compares it against the
/// checked-in file at `path` (normally tests/golden/decode_small.golden).
GoldenCompareResult CompareGoldenDecode(const std::string& path);

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_AUDIT_GOLDEN_H_
