#include "audit/stat_tests.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/distributions.h"

namespace p3gm {
namespace audit {

std::string GofResult::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "statistic=%.6g p=%.3g n=%zu", statistic,
                p_value, n);
  return buf;
}

double KolmogorovSurvival(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

GofResult KolmogorovSmirnovTest(std::vector<double> samples,
                                const std::function<double(double)>& cdf) {
  P3GM_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = cdf(samples[i]);
    d = std::max(d, f - static_cast<double>(i) * inv_n);
    d = std::max(d, static_cast<double>(i + 1) * inv_n - f);
  }
  GofResult out;
  out.statistic = d;
  out.n = n;
  // Stephens' correction keeps the asymptotic p-value accurate down to
  // small n.
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  out.p_value = KolmogorovSurvival((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return out;
}

GofResult ChiSquaredGofTest(const std::vector<double>& observed,
                            const std::vector<double>& expected,
                            std::size_t fitted_params) {
  P3GM_CHECK(!observed.empty());
  P3GM_CHECK(observed.size() == expected.size());
  P3GM_CHECK(observed.size() > fitted_params + 1);
  double stat = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    P3GM_CHECK(expected[i] > 0.0);
    const double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
    total += observed[i];
  }
  GofResult out;
  out.statistic = stat;
  out.n = static_cast<std::size_t>(total);
  const double df =
      static_cast<double>(observed.size() - 1 - fitted_params);
  out.p_value = 1.0 - util::ChiSquaredCdf(stat, df);
  return out;
}

GofResult BinnedChiSquaredTest(const std::vector<double>& samples,
                               const std::function<double(double)>& quantile,
                               std::size_t bins) {
  P3GM_CHECK(bins >= 2);
  P3GM_CHECK(samples.size() >= 5 * bins);
  std::vector<double> observed(bins, 0.0);
  std::vector<double> edges(bins - 1);
  for (std::size_t b = 0; b + 1 < bins; ++b) {
    edges[b] =
        quantile(static_cast<double>(b + 1) / static_cast<double>(bins));
  }
  for (double x : samples) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    observed[static_cast<std::size_t>(it - edges.begin())] += 1.0;
  }
  const std::vector<double> expected(
      bins, static_cast<double>(samples.size()) / static_cast<double>(bins));
  return ChiSquaredGofTest(observed, expected);
}

double ClopperPearsonLower(std::size_t successes, std::size_t trials,
                           double confidence) {
  P3GM_CHECK(trials > 0 && successes <= trials);
  P3GM_CHECK(confidence > 0.0 && confidence < 1.0);
  if (successes == 0) return 0.0;
  // Lower bound: (1 - confidence) quantile of Beta(k, n - k + 1).
  return util::IncompleteBetaInv(
      static_cast<double>(successes),
      static_cast<double>(trials - successes) + 1.0, 1.0 - confidence);
}

double ClopperPearsonUpper(std::size_t successes, std::size_t trials,
                           double confidence) {
  P3GM_CHECK(trials > 0 && successes <= trials);
  P3GM_CHECK(confidence > 0.0 && confidence < 1.0);
  if (successes == trials) return 1.0;
  // Upper bound: `confidence` quantile of Beta(k + 1, n - k).
  return util::IncompleteBetaInv(static_cast<double>(successes) + 1.0,
                                 static_cast<double>(trials - successes),
                                 confidence);
}

}  // namespace audit
}  // namespace p3gm
