#ifndef P3GM_AUDIT_FAULT_INJECTION_H_
#define P3GM_AUDIT_FAULT_INJECTION_H_

/// Fault-injection hooks for the statistical audit layer.
///
/// The negative-control audits (tests/test_audit_*) must prove that the
/// auditors *would* catch a broken DP implementation: noise scaled down,
/// clipping silently disabled, or mechanism releases that never reach the
/// accountant. These hooks let a test inject exactly those faults into
/// the production code paths (dp/mechanisms.cc, nn/dp_sgd.cc,
/// dp/accountant.cc) without forking them.
///
/// Configure with -DP3GM_FAULT_INJECTION=OFF to compile every hook down
/// to a constant: release binaries carry no fault-injection state and the
/// branches fold away.
///
/// The injected state is process-global and not synchronized: tests must
/// mutate it only from a single thread while no parallel region is
/// running (FaultInjector::Scope at the top of a test body is the
/// intended pattern). Hot loops only ever read it.

#ifndef P3GM_FAULT_INJECTION_ENABLED
#define P3GM_FAULT_INJECTION_ENABLED 1
#endif

namespace p3gm {
namespace audit {

/// The full set of injectable faults; defaults are "no fault".
struct FaultConfig {
  /// Multiplies the stddev/scale of every mechanism noise draw
  /// (Gaussian, Laplace, Wishart scale, DP-SGD noise). 0.5 = "noise
  /// halved", the canonical calibration-audit negative control.
  double noise_scale = 1.0;
  /// Disables L2 clipping everywhere (dp::ClipFactor returns 1), breaking
  /// every sensitivity-1 assumption downstream — the canonical
  /// empirical-epsilon negative control.
  bool skip_clip = false;
  /// RdpAccountant::AddEvent drops the event: mechanisms still fire but
  /// the claimed epsilon stays near zero.
  bool drop_accountant_events = false;
  /// Adds this constant to one output column of every decoded row
  /// (post-activation, so it perturbs planned and reference decode
  /// runtimes identically) — the quality-drift negative control: a
  /// served model whose marginal silently shifted MUST trip the
  /// quality monitor's WARN while an unperturbed stream stays quiet.
  double decoder_bias_shift = 0.0;
  /// Output column index the shift applies to (ignored if out of range).
  unsigned decoder_bias_feature = 0;
};

constexpr bool kFaultInjectionCompiled = P3GM_FAULT_INJECTION_ENABLED != 0;

#if P3GM_FAULT_INJECTION_ENABLED

class FaultInjector {
 public:
  static const FaultConfig& Get();
  static void Set(const FaultConfig& config);
  static void Reset();

  /// RAII scope: installs `config` on construction, restores the previous
  /// configuration on destruction.
  class Scope {
   public:
    explicit Scope(const FaultConfig& config);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FaultConfig saved_;
  };
};

inline double NoiseScale() { return FaultInjector::Get().noise_scale; }
inline bool SkipClip() { return FaultInjector::Get().skip_clip; }
inline bool DropAccountantEvents() {
  return FaultInjector::Get().drop_accountant_events;
}
inline double DecoderBiasShift() {
  return FaultInjector::Get().decoder_bias_shift;
}
inline unsigned DecoderBiasFeature() {
  return FaultInjector::Get().decoder_bias_feature;
}

#else  // !P3GM_FAULT_INJECTION_ENABLED

class FaultInjector {
 public:
  static const FaultConfig& Get() {
    static const FaultConfig kDefault;
    return kDefault;
  }
  static void Set(const FaultConfig&) {}
  static void Reset() {}

  class Scope {
   public:
    explicit Scope(const FaultConfig&) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

constexpr double NoiseScale() { return 1.0; }
constexpr bool SkipClip() { return false; }
constexpr bool DropAccountantEvents() { return false; }
constexpr double DecoderBiasShift() { return 0.0; }
constexpr unsigned DecoderBiasFeature() { return 0; }

#endif  // P3GM_FAULT_INJECTION_ENABLED

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_AUDIT_FAULT_INJECTION_H_
