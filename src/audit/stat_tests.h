#ifndef P3GM_AUDIT_STAT_TESTS_H_
#define P3GM_AUDIT_STAT_TESTS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace p3gm {
namespace audit {

/// Hypothesis-test primitives for the statistical audit layer. All tests
/// are pure functions of their inputs; randomness (if any) lives with the
/// caller, so a seeded audit is bit-reproducible.

/// Outcome of a goodness-of-fit test. `p_value` is the probability of a
/// statistic at least this extreme under the null hypothesis; audits
/// reject when it drops below a small alpha.
struct GofResult {
  double statistic = 0.0;
  double p_value = 1.0;
  std::size_t n = 0;
  /// Human-readable one-liner for failure messages.
  std::string Summary() const;
  bool Pass(double alpha = 1e-4) const { return p_value > alpha; }
};

/// One-sample Kolmogorov–Smirnov test of `samples` against the continuous
/// CDF `cdf`. The p-value uses the standard asymptotic Kolmogorov
/// distribution with the Stephens small-sample correction; good for
/// n >= ~50. `samples` is consumed (sorted in place).
GofResult KolmogorovSmirnovTest(std::vector<double> samples,
                                const std::function<double(double)>& cdf);

/// Chi-squared goodness-of-fit test: observed counts against expected
/// counts (same length, expected all > 0). Degrees of freedom are
/// bins - 1 - `fitted_params`.
GofResult ChiSquaredGofTest(const std::vector<double>& observed,
                            const std::vector<double>& expected,
                            std::size_t fitted_params = 0);

/// Equal-probability binned chi-squared test: bin edges are the analytic
/// quantiles of the null distribution, so each of the `bins` cells has
/// expectation n/bins. Needs n >= 5 * bins.
GofResult BinnedChiSquaredTest(const std::vector<double>& samples,
                               const std::function<double(double)>& quantile,
                               std::size_t bins);

/// Exact one-sided Clopper–Pearson bounds for a binomial proportion:
/// P[p >= ClopperPearsonLower] >= confidence, and symmetrically for the
/// upper bound. `successes` <= `trials`, trials > 0, confidence in (0,1).
double ClopperPearsonLower(std::size_t successes, std::size_t trials,
                           double confidence);
double ClopperPearsonUpper(std::size_t successes, std::size_t trials,
                           double confidence);

/// Survival function of the Kolmogorov distribution,
/// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
double KolmogorovSurvival(double lambda);

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_AUDIT_STAT_TESTS_H_
