#ifndef P3GM_AUDIT_GRADIENT_CHECK_H_
#define P3GM_AUDIT_GRADIENT_CHECK_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "nn/layer.h"

namespace p3gm {
namespace audit {

/// Finite-difference gradient checking for every differentiable piece of
/// the library. Central differences in fp64 give ~1e-10 truncation error,
/// so an analytic gradient that agrees to rel-err <= 1e-5 is essentially
/// certainly correct, and a sign/transpose/off-by-one bug shows up as
/// rel-err O(1).

struct GradientCheckOptions {
  /// Central-difference step; h ~ cbrt(machine eps) is optimal for fp64.
  double step = 1e-5;
  /// Maximum allowed relative error per coordinate.
  double rel_tol = 1e-5;
  /// Cap on coordinates checked per tensor (0 = all). Coordinates are
  /// chosen by a seeded shuffle so large layers stay cheap but every
  /// coordinate has equal probability of coverage.
  std::size_t max_coords_per_tensor = 64;
  /// Seed for the random objective direction and coordinate subsample.
  std::uint64_t seed = 0x5eedbeefULL;
};

/// One coordinate whose analytic and numeric derivatives disagree.
struct CoordError {
  std::string tensor;      // "input" or the parameter name.
  std::size_t index = 0;   // Flat index within the tensor.
  double analytic = 0.0;
  double numeric = 0.0;
  double rel_err = 0.0;
};

struct GradientCheckReport {
  std::size_t coords_checked = 0;
  std::vector<CoordError> failures;
  double max_rel_err = 0.0;
  CoordError worst;  // Valid when coords_checked > 0.
  bool ok() const { return failures.empty() && coords_checked > 0; }
  std::string Summary() const;
};

/// Checks layer->Backward against central differences of layer->Forward.
///
/// The objective is L(x) = sum_ij R_ij * Forward(x)_ij for a fixed random
/// matrix R (a random linear functional exercises every output path, which
/// a uniform all-ones functional would not — e.g. it cancels antisymmetric
/// errors). Verifies both the propagated input gradient and, when
/// `check_params` is true, every Parameter::grad the layer accumulates.
///
/// The layer is put into eval mode (SetTraining(false)) for the duration
/// and restored afterwards; the layer must honor the SetTraining contract
/// (deterministic repeatable Forward) for the numeric derivative to be
/// meaningful.
GradientCheckReport CheckLayerGradients(nn::Layer* layer, std::size_t batch,
                                        std::size_t in_features,
                                        const GradientCheckOptions& opts = {},
                                        bool check_params = true);

/// Checks an arbitrary scalar function f against a caller-supplied
/// analytic gradient at x: for each checked coordinate i, compares
/// analytic_grad[i] to (f(x + h e_i) - f(x - h e_i)) / 2h. `f` must be
/// deterministic.
GradientCheckReport CheckFunctionGradient(
    const std::function<double(const linalg::Matrix&)>& f,
    const linalg::Matrix& x, const linalg::Matrix& analytic_grad,
    const GradientCheckOptions& opts = {});

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_AUDIT_GRADIENT_CHECK_H_
