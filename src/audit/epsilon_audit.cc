#include "audit/epsilon_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "audit/stat_tests.h"
#include "dp/accountant.h"
#include "linalg/matrix.h"
#include "nn/dp_sgd.h"
#include "nn/linear.h"
#include "pca/pca.h"
#include "stats/dp_em.h"
#include "util/check.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {

namespace {

/// Fraction of `scores` on the rejecting side of `t`.
double RejectRate(const std::vector<double>& scores, double t, bool above) {
  std::size_t k = 0;
  for (double s : scores) {
    if (above ? (s > t) : (s < t)) ++k;
  }
  return static_cast<double>(k) / static_cast<double>(scores.size());
}

std::size_t RejectCount(const std::vector<double>& scores, double t,
                        bool above) {
  std::size_t k = 0;
  for (double s : scores) {
    if (above ? (s > t) : (s < t)) ++k;
  }
  return k;
}

}  // namespace

std::string EpsilonAuditResult::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "eps_emp=%.4f threshold=%.6g dir=%s tpr_lo=%.4f "
                "fpr_hi=%.4f eval_trials=%zu",
                empirical_epsilon, threshold, reject_above ? ">" : "<",
                tpr_lower, fpr_upper, eval_trials);
  return buf;
}

std::string MechanismAuditResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s claimed=%.4f delta=%.3g -> %s",
                empirical.Summary().c_str(), claimed_epsilon, delta,
                consistent() ? "consistent" : "VIOLATION");
  return buf;
}

EpsilonAuditResult AuditEpsilonLowerBound(
    const std::function<double(bool, std::uint64_t)>& score,
    const EpsilonAuditOptions& opts) {
  P3GM_CHECK(opts.trials >= 8);
  P3GM_CHECK(opts.delta >= 0.0 && opts.delta < 1.0);

  // Holdout split: even-indexed trials select the threshold, odd-indexed
  // trials certify it. Trial indices (not fresh RNG) drive the mechanism
  // so the whole audit is a pure function of the spec.
  std::vector<double> sel_with, sel_without, eval_with, eval_without;
  for (std::size_t t = 0; t < opts.trials; ++t) {
    const double s1 = score(true, static_cast<std::uint64_t>(t));
    const double s0 = score(false, static_cast<std::uint64_t>(t));
    if (t % 2 == 0) {
      sel_with.push_back(s1);
      sel_without.push_back(s0);
    } else {
      eval_with.push_back(s1);
      eval_without.push_back(s0);
    }
  }

  // Candidate thresholds: every selection-set score, both directions.
  // The selection objective is the plug-in epsilon with floors so that
  // empty cells cannot produce infinities.
  std::vector<double> candidates = sel_with;
  candidates.insert(candidates.end(), sel_without.begin(),
                    sel_without.end());
  const double n_sel = static_cast<double>(sel_with.size());
  double best_obj = -1e300;
  double best_t = candidates.front();
  bool best_above = true;
  for (double t : candidates) {
    for (bool above : {true, false}) {
      const double tpr = RejectRate(sel_with, t, above);
      const double fpr = RejectRate(sel_without, t, above);
      const double obj = std::log(std::max(tpr - opts.delta, 1e-12) /
                                  std::max(fpr, 0.5 / n_sel));
      if (obj > best_obj) {
        best_obj = obj;
        best_t = t;
        best_above = above;
      }
    }
  }

  EpsilonAuditResult out;
  out.threshold = best_t;
  out.reject_above = best_above;
  out.eval_trials = eval_with.size();
  const std::size_t n_eval = eval_with.size();
  const std::size_t tp = RejectCount(eval_with, best_t, best_above);
  const std::size_t fp = RejectCount(eval_without, best_t, best_above);
  out.tpr_lower = ClopperPearsonLower(tp, n_eval, opts.confidence);
  out.fpr_upper = ClopperPearsonUpper(fp, n_eval, opts.confidence);
  if (out.tpr_lower - opts.delta > 0.0 && out.fpr_upper > 0.0) {
    out.empirical_epsilon = std::max(
        0.0, std::log((out.tpr_lower - opts.delta) / out.fpr_upper));
  }
  return out;
}

MechanismAuditResult AuditDpSgd(const DpSgdAuditSpec& spec) {
  P3GM_CHECK(spec.dim >= 1 && spec.base_rows >= 1);
  const std::size_t lot = spec.base_rows + 1;  // Fixed for both branches.

  const auto score = [&spec, lot](bool with_canary, std::uint64_t trial) {
    // Bounded-DP (replace-one) adjacency, matching the sensitivity
    // analyses of every mechanism audited here: both branches use the
    // same batch size and the canary replaces the last row. Base rows are
    // all-zero: only the bias picks up their gradient, so the canary
    // direction of the weight gradient isolates the canary.
    const std::size_t rows = lot;
    linalg::Matrix x(rows, spec.dim);
    if (with_canary) x(rows - 1, 0) = spec.canary_scale;

    // Identical weights every trial; the weight gradient of Linear under
    // a unit upstream gradient is x_i per example, independent of the
    // current weights.
    util::Rng init_rng(spec.audit.seed ^ 0x5eed0123ULL);
    nn::Linear layer("audit_linear", spec.dim, 1, &init_rng);
    layer.Forward(x, /*train=*/true);
    linalg::Matrix upstream(rows, 1);
    upstream.Fill(1.0);
    layer.Backward(upstream, /*accumulate=*/false);

    nn::DpSgdOptions opts;
    opts.clip_norm = spec.clip_norm;
    opts.noise_multiplier = spec.sigma;
    opts.lot_size = lot;
    util::Rng noise_rng = util::Rng::StreamAt(
        spec.audit.seed, trial * 2 + (with_canary ? 1 : 0));
    nn::DpSgdStep step(opts, &noise_rng);
    for (nn::Parameter* p : layer.Parameters()) p->ZeroGrad();
    P3GM_CHECK(step.CollectSquaredNorms({&layer}, rows).ok());
    step.ApplyClippedAccumulation({&layer});
    step.AddNoiseAndAverage(layer.Parameters(), rows);
    return layer.weight().grad(0, 0);  // Projection onto the canary axis.
  };

  MechanismAuditResult out;
  out.delta = spec.audit.delta;
  dp::RdpAccountant accountant;
  accountant.AddSampledGaussian(/*q=*/1.0, spec.sigma, /*steps=*/1);
  out.claimed_epsilon = accountant.GetEpsilon(spec.audit.delta).epsilon;
  out.empirical = AuditEpsilonLowerBound(score, spec.audit);
  return out;
}

MechanismAuditResult AuditDpEm(const DpEmAuditSpec& spec) {
  P3GM_CHECK(spec.dim >= 2 && spec.base_rows >= 2);

  const auto score = [&spec](bool with_canary, std::uint64_t trial) {
    // Replace-one adjacency: n is identical on both branches and the
    // canary swaps out the last base row.
    const std::size_t rows = spec.base_rows;
    linalg::Matrix x(rows, spec.dim);
    // Fixed small cloud along the first axis; DP-EM's internal unit-ball
    // clipping leaves it untouched.
    for (std::size_t i = 0; i < rows; ++i) {
      x(i, 0) = 0.1 + 0.01 * static_cast<double>(i);
    }
    // Canary along the last axis, far outside the unit ball.
    if (with_canary) {
      x(rows - 1, 0) = 0.0;
      x(rows - 1, spec.dim - 1) = spec.canary_scale;
    }

    stats::DpEmOptions opts;
    opts.num_components = 1;
    opts.iters = spec.iters;
    opts.noise_multiplier = spec.sigma_e;
    opts.seed = spec.audit.seed ^ 0xe31ULL;
    util::Rng rng = util::Rng::StreamAt(spec.audit.seed,
                                        trial * 2 + (with_canary ? 1 : 0));
    auto fit = stats::FitGmmDpEm(x, opts, &rng);
    P3GM_CHECK(fit.ok());
    return fit->mixture.means()(0, spec.dim - 1);
  };

  MechanismAuditResult out;
  out.delta = spec.audit.delta;
  dp::RdpAccountant accountant;
  accountant.AddDpEm(spec.sigma_e, /*num_components=*/1, spec.iters);
  out.claimed_epsilon = accountant.GetEpsilon(spec.audit.delta).epsilon;
  out.empirical = AuditEpsilonLowerBound(score, spec.audit);
  return out;
}

MechanismAuditResult AuditDpPca(const DpPcaAuditSpec& spec) {
  P3GM_CHECK(spec.dim >= 2 && spec.base_rows >= spec.dim);

  const auto score = [&spec](bool with_canary, std::uint64_t trial) {
    // Replace-one adjacency: the Wishart mechanism's epsilon-DP claim is
    // for neighboring datasets of equal size (the 1/n covariance
    // normalization is part of the release), so the canary replaces the
    // last base row rather than extending the dataset.
    const std::size_t rows = spec.base_rows;
    const std::size_t d = spec.dim;
    linalg::Matrix x(rows, d);
    // Base rows spread over the first d-1 axes (unit norm, untouched by
    // the clipping step).
    for (std::size_t i = 0; i < rows; ++i) {
      x(i, i % (d - 1)) = (i % 2 == 0) ? 1.0 : -1.0;
    }
    if (with_canary) {
      x(rows - 1, (rows - 1) % (d - 1)) = 0.0;
      x(rows - 1, d - 1) = spec.canary_scale;
    }

    pca::DpPcaOptions opts;
    opts.num_components = d;  // Keep everything: the score is then the
                              // exact (d-1, d-1) entry of the noisy
                              // covariance, by eigendecomposition.
    opts.epsilon = spec.epsilon;
    opts.clip_rows = true;
    util::Rng rng = util::Rng::StreamAt(spec.audit.seed,
                                        trial * 2 + (with_canary ? 1 : 0));
    auto fit = pca::FitDpPca(x, opts, &rng);
    P3GM_CHECK(fit.ok());
    const pca::PcaModel& model = *fit;
    double s = 0.0;
    for (std::size_t j = 0; j < model.output_dim(); ++j) {
      const double vj = model.components()(d - 1, j);
      s += model.explained_variance()[j] * vj * vj;
    }
    return s;
  };

  MechanismAuditResult out;
  out.delta = spec.audit.delta;
  dp::RdpAccountant accountant;
  accountant.AddPureDp(spec.epsilon);
  out.claimed_epsilon = accountant.GetEpsilon(spec.audit.delta).epsilon;
  out.empirical = AuditEpsilonLowerBound(score, spec.audit);
  return out;
}

}  // namespace audit
}  // namespace p3gm
