#ifndef P3GM_AUDIT_EPSILON_AUDIT_H_
#define P3GM_AUDIT_EPSILON_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace p3gm {
namespace audit {

/// Empirical differential-privacy auditing via membership inference
/// (Jagielski et al. 2020; Nasr et al. 2021 style lower bounds).
///
/// A mechanism that is (epsilon, delta)-DP bounds every adversary's
/// true/false positive rates by TPR <= e^epsilon * FPR + delta. Running a
/// concrete distinguisher many times on two adjacent datasets therefore
/// yields a *statistically certified lower bound* on the true epsilon:
///
///     epsilon_emp = ln((TPR_lo - delta) / FPR_hi)
///
/// with TPR_lo / FPR_hi one-sided Clopper–Pearson bounds. The mechanism
/// audits below use bounded-DP (replace-one) adjacency — both branches
/// run on datasets of equal size — because that is the adjacency the
/// audited mechanisms' sensitivity analyses assume. If
/// epsilon_emp exceeds the epsilon the accountant claims, the
/// implementation is broken (wrong noise, missing clipping, dropped
/// composition). The converse does not hold — empirical bounds are loose,
/// especially for Gaussian mechanisms — so a passing audit is necessary,
/// not sufficient; the distribution auditors cover calibration.

struct EpsilonAuditOptions {
  /// Trials per branch (with / without canary). Even-indexed trials pick
  /// the attack threshold; odd-indexed trials certify it, so the bound is
  /// honest (no threshold overfitting).
  std::size_t trials = 400;
  /// The delta of the (epsilon, delta) claim being audited.
  double delta = 0.01;
  /// One-sided confidence of each Clopper–Pearson bound.
  double confidence = 0.95;
  std::uint64_t seed = 0xa0d17ULL;
};

struct EpsilonAuditResult {
  /// Certified lower bound on epsilon (0 when the attack has no power).
  double empirical_epsilon = 0.0;
  double threshold = 0.0;
  /// Attack direction: guess "canary present" when score > threshold
  /// (true) or score < threshold (false).
  bool reject_above = true;
  double tpr_lower = 0.0;
  double fpr_upper = 1.0;
  std::size_t eval_trials = 0;
  std::string Summary() const;
};

/// Core auditor. `score(with_canary, trial)` runs one end-to-end
/// mechanism execution on the adjacent dataset selected by `with_canary`
/// and returns the adversary's real-valued test statistic. It must be a
/// deterministic function of its arguments (derive all randomness from
/// `trial`, e.g. via util::Rng::StreamAt) so audits are reproducible.
EpsilonAuditResult AuditEpsilonLowerBound(
    const std::function<double(bool with_canary, std::uint64_t trial)>& score,
    const EpsilonAuditOptions& opts);

/// An empirical bound paired with the accountant's claim for the same
/// mechanism parameters.
struct MechanismAuditResult {
  EpsilonAuditResult empirical;
  double claimed_epsilon = 0.0;
  double delta = 0.0;
  /// The DP contract: the certified lower bound must not exceed the
  /// claimed epsilon.
  bool consistent() const {
    return empirical.empirical_epsilon <= claimed_epsilon;
  }
  std::string Summary() const;
};

/// DP-SGD distinguisher: one full-batch step of a Linear model where every
/// example's gradient is its own row (unit upstream gradient), so the
/// canary row — `canary_scale` along a fixed direction, far outside the
/// clipping ball — contributes exactly clip_norm to the gradient sum when
/// clipping works and `canary_scale` when it does not. The score projects
/// the privatized gradient onto the canary direction. Claimed epsilon is
/// what RdpAccountant::AddSampledGaussian charges for the step.
struct DpSgdAuditSpec {
  double sigma = 2.0;
  double clip_norm = 1.0;
  double canary_scale = 25.0;
  std::size_t dim = 4;
  std::size_t base_rows = 3;
  EpsilonAuditOptions audit;
};
MechanismAuditResult AuditDpSgd(const DpSgdAuditSpec& spec);

/// DP-EM distinguisher: fits a single-component DP-EM mixture to a fixed
/// cloud near the origin plus an optional canary along the last axis; the
/// score is that axis's coordinate of the released mean. Claimed epsilon
/// is what RdpAccountant::AddDpEm charges for the run.
struct DpEmAuditSpec {
  double sigma_e = 4.0;
  std::size_t iters = 2;
  std::size_t dim = 2;
  std::size_t base_rows = 12;
  double canary_scale = 24.0;
  EpsilonAuditOptions audit;
};
MechanismAuditResult AuditDpEm(const DpEmAuditSpec& spec);

/// DP-PCA distinguisher: the base rows live in the span of the first
/// axes; the canary points along the last axis e_d. With all d components
/// kept, the score sum_j lambda_j (v_j . e_d)^2 equals the noisy
/// covariance's (d,d) entry, which the canary inflates. Claimed epsilon
/// is the Wishart mechanism's pure-DP budget as charged via AddPureDp.
///
/// Caveat baked into the defaults: FitDpPca centers by the *empirical*
/// mean, which the paper declares publicly available (footnote 2) and the
/// Wishart sensitivity analysis therefore does not cover. A canary that
/// is large relative to n shifts that mean enough for the auditor to
/// (correctly) certify a violation of the pure-DP claim — not a bug in
/// the mechanism but a demonstration that the public-mean assumption is
/// load-bearing. The defaults keep canary_scale / base_rows small so the
/// mean leak stays well below the Wishart noise and the audit exercises
/// the mechanism itself.
struct DpPcaAuditSpec {
  double epsilon = 1.0;
  std::size_t dim = 3;
  std::size_t base_rows = 24;
  double canary_scale = 4.0;
  EpsilonAuditOptions audit;
};
MechanismAuditResult AuditDpPca(const DpPcaAuditSpec& spec);

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_AUDIT_EPSILON_AUDIT_H_
