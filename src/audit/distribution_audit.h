#ifndef P3GM_AUDIT_DISTRIBUTION_AUDIT_H_
#define P3GM_AUDIT_DISTRIBUTION_AUDIT_H_

#include <cstddef>
#include <cstdint>

#include "audit/stat_tests.h"

namespace p3gm {
namespace audit {

/// Distribution auditors: seeded goodness-of-fit checks of every sampler
/// the DP mechanisms draw from (util::Rng's Laplace, Gaussian, gamma,
/// chi-squared and the Wishart of dp::SampleWishart) against their
/// analytic CDFs, plus a calibration check that the noise
/// dp::GaussianMechanism actually adds matches the sigma the RDP
/// accountant was charged for.
///
/// All audits are deterministic functions of (seed, n): a failing audit
/// reproduces exactly.

/// KS test of n Rng::Uniform() draws against the U[0,1) CDF.
GofResult AuditUniform(std::uint64_t seed, std::size_t n);

/// KS test of n Rng::Normal() draws against the standard normal CDF.
GofResult AuditNormal(std::uint64_t seed, std::size_t n);

/// KS test of n Rng::Laplace(scale) draws against the Laplace CDF.
GofResult AuditLaplace(double scale, std::uint64_t seed, std::size_t n);

/// KS test of n Rng::Gamma(shape, scale) draws against the gamma CDF.
GofResult AuditGamma(double shape, double scale, std::uint64_t seed,
                     std::size_t n);

/// KS test of n Rng::ChiSquared(df) draws against the chi-squared CDF.
GofResult AuditChiSquared(double df, std::uint64_t seed, std::size_t n);

/// Audit of dp::SampleWishart(d, df, c * I) over `draws` independent
/// draws, using exact marginals of the Bartlett construction:
///  * W_00 / c ~ chi-squared(df)                    -> KS test
///  * E[W_01] = 0 with Var(W_01 / c) = df           -> z-statistic
struct WishartAuditResult {
  GofResult diagonal;     // KS of W_00 / c against chi^2(df).
  double offdiag_z = 0.0; // Standardized mean of W_01 / c (expect ~N(0,1)).
  std::size_t draws = 0;
  bool Pass(double alpha = 1e-4, double max_z = 5.0) const {
    return diagonal.Pass(alpha) && offdiag_z < max_z && offdiag_z > -max_z;
  }
};
WishartAuditResult AuditWishart(std::size_t d, double df, double c,
                                std::uint64_t seed, std::size_t draws);

/// Calibration audit of the Gaussian mechanism: releases an n-dimensional
/// zero vector through dp::GaussianMechanism(sensitivity, sigma) and
/// charges a throwaway RdpAccountant for the same parameters. Checks that
/// the realized noise is distributed as N(0, (sigma * sensitivity)^2) —
/// i.e. the noise actually added matches the noise that was *accounted
/// for*. A mechanism that adds less noise than the accountant assumes
/// (e.g. the noise-halved fault injection) fails `gof` and shows
/// `empirical_stddev` far from `charged_stddev`.
struct CalibrationAuditResult {
  GofResult gof;              // KS of the noise against N(0, charged^2).
  double empirical_stddev = 0.0;
  double charged_stddev = 0.0;
  double claimed_epsilon = 0.0;  // Accountant's guarantee at `delta`.
  double delta = 0.0;
  /// True when the realized noise is consistent with the charged sigma.
  bool Calibrated(double alpha = 1e-4, double rel_tol = 0.05) const {
    if (!gof.Pass(alpha)) return false;
    const double rel = empirical_stddev / charged_stddev - 1.0;
    return rel < rel_tol && rel > -rel_tol;
  }
};
CalibrationAuditResult AuditGaussianMechanismCalibration(
    double sensitivity, double sigma, double delta, std::uint64_t seed,
    std::size_t n);

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_AUDIT_DISTRIBUTION_AUDIT_H_
