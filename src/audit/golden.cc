#include "audit/golden.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pgm.h"
#include "core/release.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "stats/gmm.h"
#include "util/check.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {

namespace {

constexpr char kHeader[] = "# p3gm golden trace v1";
constexpr char kDecodeHeader[] = "# p3gm golden decode v1";
constexpr double kDelta = 1e-5;

// Shared line-by-line comparison: regenerated `fresh` lines against the
// checked-in file at `path`, reporting the first mismatch with a
// regeneration hint.
GoldenCompareResult CompareLinesAgainstFile(
    const std::vector<std::string>& fresh, const std::string& path) {
  GoldenCompareResult result;
  std::ifstream in(path);
  if (!in) {
    result.message = "cannot open golden file: " + path +
                     " (generate it with build/tools/regen_golden)";
    return result;
  }
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) golden.push_back(line);

  const std::size_t n = std::min(golden.size(), fresh.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (golden[i] != fresh[i]) {
      std::ostringstream msg;
      msg << "golden mismatch at line " << (i + 1) << ":\n  golden: "
          << golden[i] << "\n  fresh:  " << fresh[i]
          << "\nIf the numeric change is intentional, regenerate with "
             "build/tools/regen_golden (see tools/regen_golden.cc) and "
             "commit the updated "
          << path;
      result.message = msg.str();
      return result;
    }
  }
  if (golden.size() != fresh.size()) {
    std::ostringstream msg;
    msg << "golden length mismatch: golden has " << golden.size()
        << " lines, fresh run has " << fresh.size()
        << ". Regenerate with build/tools/regen_golden " << path;
    result.message = msg.str();
    return result;
  }
  result.ok = true;
  return result;
}

// "tag,i,v0,v1,..." with every double at %.17g (bit round-trip).
std::string FormatValueRow(const char* tag, std::size_t i, const double* v,
                           std::size_t n) {
  std::ostringstream os;
  os << tag << ',' << i;
  char buf[40];
  for (std::size_t j = 0; j < n; ++j) {
    std::snprintf(buf, sizeof(buf), ",%.17g", v[j]);
    os << buf;
  }
  return os.str();
}

// The canonical decode package: explicit deterministic weights, no
// training. Distinct from the serve-test fixture so the two suites pin
// different numeric surfaces. latent 4 -> hidden 16 -> output 10 with a
// 2-class one-hot block, 3-component MoG prior.
core::ReleasePackage GoldenDecodePackage() {
  const std::size_t dl = 4, h = 16, d = 10;
  linalg::Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  for (std::size_t i = 0; i < dl; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      w1(i, j) = 0.07 * (static_cast<double>((i * h + j) % 11) - 5.0);
    }
  }
  for (std::size_t j = 0; j < h; ++j) b1(0, j) = 0.015 * j - 0.05;
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      w2(i, j) = 0.05 * (static_cast<double>((3 * i + 2 * j) % 9) - 4.0);
    }
  }
  for (std::size_t j = 0; j < d; ++j) b2(0, j) = 0.01 * (j % 4) - 0.02;

  linalg::Matrix means(3, dl), variances(3, dl);
  for (std::size_t j = 0; j < dl; ++j) {
    means(0, j) = -1.5 + 0.1 * j;
    means(1, j) = 0.2;
    means(2, j) = 1.1 - 0.2 * j;
    variances(0, j) = 0.6;
    variances(1, j) = 0.4;
    variances(2, j) = 0.8;
  }
  auto prior =
      stats::GaussianMixture::Create({0.25, 0.35, 0.4}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "golden_decode", /*num_classes=*/2, core::DecoderType::kBernoulli,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

}  // namespace

std::vector<std::string> GoldenPgmTraceLines() {
  // Fixed-seed synthetic data in [0, 1): small enough that the full DP
  // pipeline (DP-PCA + DP-EM + DP-SGD) runs in well under a second.
  util::Rng data_rng(123);
  linalg::Matrix x(96, 12);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.Uniform();

  core::PgmOptions options;
  options.hidden = 16;
  options.latent_dim = 4;
  options.mog_components = 2;
  options.epochs = 4;
  options.batch_size = 24;
  options.differentially_private = true;
  options.seed = 2024;

  core::Pgm pgm(options);
  std::vector<std::string> lines;
  lines.emplace_back(kHeader);
  const auto callback = [&pgm, &lines](const core::TrainProgress& p) {
    // The live accountant has already composed every release up to and
    // including this epoch's DP-SGD steps.
    const double eps = pgm.accountant().GetEpsilon(kDelta).epsilon;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "epoch,%zu,%.17g,%.17g,%.17g", p.epoch,
                  p.recon_loss, p.kl_loss, eps);
    lines.emplace_back(buf);
  };
  const util::Status status = pgm.Fit(x, callback);
  if (!status.ok()) {
    lines.push_back(std::string("error,") + status.message());
    return lines;
  }

  const dp::DpGuarantee g = pgm.ComputeEpsilon(kDelta);
  char final_buf[128];
  std::snprintf(final_buf, sizeof(final_buf), "final,%.17g,%.17g", g.epsilon,
                g.best_order);
  lines.emplace_back(final_buf);

  // Synthesis digest: a fixed-seed sample folded to one number. Catches
  // regressions in the sampling path (prior draw + decoder) that the
  // training trace cannot see.
  util::Rng sample_rng(31337);
  const linalg::Matrix sample = pgm.Sample(8, &sample_rng);
  double checksum = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    checksum += sample.data()[i] * static_cast<double>(i % 7 + 1);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "sample,%zu,%.17g", sample.size(),
                checksum);
  lines.emplace_back(buf);
  return lines;
}

bool WriteGoldenTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const std::string& line : GoldenPgmTraceLines()) out << line << "\n";
  return static_cast<bool>(out);
}

GoldenCompareResult CompareGoldenTrace(const std::string& path) {
  return CompareLinesAgainstFile(GoldenPgmTraceLines(), path);
}

std::vector<std::string> GoldenDecodeLines() {
  const core::ReleasePackage pkg = GoldenDecodePackage();
  std::vector<std::string> lines;
  lines.emplace_back(kDecodeHeader);

  // A deterministic latent grid spanning both signs and magnitudes past
  // the prior means, decoded directly: pins the decoder forward pass
  // alone, independent of the prior sampler.
  linalg::Matrix z(6, pkg.latent_dim());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    for (std::size_t j = 0; j < z.cols(); ++j) {
      z(i, j) = -2.0 + 0.7 * static_cast<double>(i) +
                0.35 * static_cast<double>(j);
    }
  }
  const util::Result<linalg::Matrix> decoded = pkg.DecodeLatent(z);
  if (!decoded.ok()) {
    lines.push_back(std::string("error,") + decoded.status().message());
    return lines;
  }
  for (std::size_t i = 0; i < decoded->rows(); ++i) {
    lines.push_back(FormatValueRow("decode", i,
                                   decoded->data() + i * decoded->cols(),
                                   decoded->cols()));
  }

  // Fixed-seed end-to-end synthesis: prior draws + decode + one-hot
  // label split, exactly what `p3gm serve` runs per request.
  util::Rng rng(7777);
  const util::Result<data::Dataset> generated = pkg.Generate(12, &rng);
  if (!generated.ok()) {
    lines.push_back(std::string("error,") + generated.status().message());
    return lines;
  }
  const linalg::Matrix& f = generated->features;
  for (std::size_t i = 0; i < f.rows(); ++i) {
    lines.push_back(
        FormatValueRow("sample", i, f.data() + i * f.cols(), f.cols()));
  }
  std::ostringstream labels;
  labels << "labels";
  for (const std::size_t l : generated->labels) labels << ',' << l;
  lines.push_back(labels.str());
  return lines;
}

bool WriteGoldenDecode(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const std::string& line : GoldenDecodeLines()) out << line << "\n";
  return static_cast<bool>(out);
}

GoldenCompareResult CompareGoldenDecode(const std::string& path) {
  return CompareLinesAgainstFile(GoldenDecodeLines(), path);
}

}  // namespace audit
}  // namespace p3gm
