#include "audit/golden.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pgm.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {

namespace {

constexpr char kHeader[] = "# p3gm golden trace v1";
constexpr double kDelta = 1e-5;

}  // namespace

std::vector<std::string> GoldenPgmTraceLines() {
  // Fixed-seed synthetic data in [0, 1): small enough that the full DP
  // pipeline (DP-PCA + DP-EM + DP-SGD) runs in well under a second.
  util::Rng data_rng(123);
  linalg::Matrix x(96, 12);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.Uniform();

  core::PgmOptions options;
  options.hidden = 16;
  options.latent_dim = 4;
  options.mog_components = 2;
  options.epochs = 4;
  options.batch_size = 24;
  options.differentially_private = true;
  options.seed = 2024;

  core::Pgm pgm(options);
  std::vector<std::string> lines;
  lines.emplace_back(kHeader);
  const auto callback = [&pgm, &lines](const core::TrainProgress& p) {
    // The live accountant has already composed every release up to and
    // including this epoch's DP-SGD steps.
    const double eps = pgm.accountant().GetEpsilon(kDelta).epsilon;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "epoch,%zu,%.17g,%.17g,%.17g", p.epoch,
                  p.recon_loss, p.kl_loss, eps);
    lines.emplace_back(buf);
  };
  const util::Status status = pgm.Fit(x, callback);
  if (!status.ok()) {
    lines.push_back(std::string("error,") + status.message());
    return lines;
  }

  const dp::DpGuarantee g = pgm.ComputeEpsilon(kDelta);
  char final_buf[128];
  std::snprintf(final_buf, sizeof(final_buf), "final,%.17g,%.17g", g.epsilon,
                g.best_order);
  lines.emplace_back(final_buf);

  // Synthesis digest: a fixed-seed sample folded to one number. Catches
  // regressions in the sampling path (prior draw + decoder) that the
  // training trace cannot see.
  util::Rng sample_rng(31337);
  const linalg::Matrix sample = pgm.Sample(8, &sample_rng);
  double checksum = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    checksum += sample.data()[i] * static_cast<double>(i % 7 + 1);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "sample,%zu,%.17g", sample.size(),
                checksum);
  lines.emplace_back(buf);
  return lines;
}

bool WriteGoldenTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const std::string& line : GoldenPgmTraceLines()) out << line << "\n";
  return static_cast<bool>(out);
}

GoldenCompareResult CompareGoldenTrace(const std::string& path) {
  GoldenCompareResult result;
  std::ifstream in(path);
  if (!in) {
    result.message = "cannot open golden file: " + path +
                     " (generate it with build/tools/regen_golden)";
    return result;
  }
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) golden.push_back(line);

  const std::vector<std::string> fresh = GoldenPgmTraceLines();
  const std::size_t n = std::min(golden.size(), fresh.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (golden[i] != fresh[i]) {
      std::ostringstream msg;
      msg << "golden trace mismatch at line " << (i + 1) << ":\n  golden: "
          << golden[i] << "\n  fresh:  " << fresh[i]
          << "\nIf the numeric change is intentional, regenerate with "
             "build/tools/regen_golden "
          << path;
      result.message = msg.str();
      return result;
    }
  }
  if (golden.size() != fresh.size()) {
    std::ostringstream msg;
    msg << "golden trace length mismatch: golden has " << golden.size()
        << " lines, fresh run has " << fresh.size()
        << ". Regenerate with build/tools/regen_golden " << path;
    result.message = msg.str();
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace audit
}  // namespace p3gm
