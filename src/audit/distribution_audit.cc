#include "audit/distribution_audit.h"

#include <cmath>
#include <vector>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "util/check.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {

namespace {

template <typename Sampler>
GofResult KsAudit(std::uint64_t seed, std::size_t n, Sampler sample,
                  const std::function<double(double)>& cdf) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = sample(&rng);
  return KolmogorovSmirnovTest(std::move(xs), cdf);
}

}  // namespace

GofResult AuditUniform(std::uint64_t seed, std::size_t n) {
  return KsAudit(
      seed, n, [](util::Rng* rng) { return rng->Uniform(); },
      [](double x) {
        if (x < 0.0) return 0.0;
        if (x > 1.0) return 1.0;
        return x;
      });
}

GofResult AuditNormal(std::uint64_t seed, std::size_t n) {
  return KsAudit(
      seed, n, [](util::Rng* rng) { return rng->Normal(); },
      [](double x) { return util::NormalCdf(x); });
}

GofResult AuditLaplace(double scale, std::uint64_t seed, std::size_t n) {
  return KsAudit(
      seed, n, [scale](util::Rng* rng) { return rng->Laplace(scale); },
      [scale](double x) { return util::LaplaceCdf(x, 0.0, scale); });
}

GofResult AuditGamma(double shape, double scale, std::uint64_t seed,
                     std::size_t n) {
  return KsAudit(
      seed, n,
      [shape, scale](util::Rng* rng) { return rng->Gamma(shape, scale); },
      [shape, scale](double x) { return util::GammaCdf(x, shape, scale); });
}

GofResult AuditChiSquared(double df, std::uint64_t seed, std::size_t n) {
  return KsAudit(
      seed, n, [df](util::Rng* rng) { return rng->ChiSquared(df); },
      [df](double x) { return util::ChiSquaredCdf(x, df); });
}

WishartAuditResult AuditWishart(std::size_t d, double df, double c,
                                std::uint64_t seed, std::size_t draws) {
  P3GM_CHECK(d >= 2);
  util::Rng rng(seed);
  std::vector<double> diag(draws);
  double offdiag_sum = 0.0;
  for (std::size_t t = 0; t < draws; ++t) {
    auto w = dp::SampleWishart(d, df, c, &rng);
    P3GM_CHECK(w.ok());
    // Only one diagonal entry per draw: the d diagonal marginals of a
    // single Wishart draw are chi-squared but correlated, so using them
    // all would violate the i.i.d. assumption of the KS test.
    diag[t] = (*w)(0, 0) / c;
    offdiag_sum += (*w)(1, 0) / c;
  }
  WishartAuditResult out;
  out.draws = draws;
  out.diagonal = KolmogorovSmirnovTest(
      std::move(diag), [df](double x) { return util::ChiSquaredCdf(x, df); });
  // W_10 / c = sum_{k} z_{0k} z_{1k} over df-ish Bartlett terms: mean 0,
  // variance df, so the mean over `draws` draws standardizes with
  // sqrt(draws / df).
  const double mean = offdiag_sum / static_cast<double>(draws);
  out.offdiag_z = mean * std::sqrt(static_cast<double>(draws) / df);
  return out;
}

CalibrationAuditResult AuditGaussianMechanismCalibration(
    double sensitivity, double sigma, double delta, std::uint64_t seed,
    std::size_t n) {
  P3GM_CHECK(sensitivity > 0.0 && sigma > 0.0 && n > 1);
  util::Rng rng(seed);
  std::vector<double> release(n, 0.0);
  dp::GaussianMechanism(sensitivity, sigma, &release, &rng);

  CalibrationAuditResult out;
  out.charged_stddev = sigma * sensitivity;
  out.delta = delta;

  // Charge a throwaway accountant exactly as production code would for
  // this release; the claimed epsilon is what the audit certifies
  // against.
  dp::RdpAccountant accountant;
  accountant.AddGaussian(sigma);
  out.claimed_epsilon = accountant.GetEpsilon(delta).epsilon;

  double sumsq = 0.0;
  for (double x : release) sumsq += x * x;
  out.empirical_stddev = std::sqrt(sumsq / static_cast<double>(n));

  const double charged = out.charged_stddev;
  out.gof = KolmogorovSmirnovTest(std::move(release), [charged](double x) {
    return util::NormalCdf(x, 0.0, charged);
  });
  return out;
}

}  // namespace audit
}  // namespace p3gm
