#include "audit/gradient_check.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {

namespace {

double RelErr(double analytic, double numeric) {
  const double denom =
      std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
  return std::fabs(analytic - numeric) / denom;
}

std::vector<std::size_t> PickCoords(std::size_t size, std::size_t cap,
                                    util::Rng* rng) {
  std::vector<std::size_t> idx(size);
  std::iota(idx.begin(), idx.end(), 0);
  if (cap > 0 && cap < size) {
    rng->Shuffle(&idx);
    idx.resize(cap);
    std::sort(idx.begin(), idx.end());
  }
  return idx;
}

/// Central-differences one tensor: perturbs `data` coordinate-wise,
/// re-evaluates the scalar objective, and compares against `analytic`.
void CheckTensor(const std::string& tensor_name, double* data,
                 std::size_t size, const double* analytic,
                 const std::function<double()>& objective,
                 const GradientCheckOptions& opts, util::Rng* rng,
                 GradientCheckReport* report) {
  const std::vector<std::size_t> coords =
      PickCoords(size, opts.max_coords_per_tensor, rng);
  for (std::size_t i : coords) {
    const double saved = data[i];
    data[i] = saved + opts.step;
    const double up = objective();
    data[i] = saved - opts.step;
    const double down = objective();
    data[i] = saved;
    const double numeric = (up - down) / (2.0 * opts.step);
    CoordError e;
    e.tensor = tensor_name;
    e.index = i;
    e.analytic = analytic[i];
    e.numeric = numeric;
    e.rel_err = RelErr(e.analytic, e.numeric);
    ++report->coords_checked;
    if (e.rel_err >= report->max_rel_err) {
      report->max_rel_err = e.rel_err;
      report->worst = e;
    }
    if (e.rel_err > opts.rel_tol) report->failures.push_back(e);
  }
}

}  // namespace

std::string GradientCheckReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "checked=%zu failures=%zu max_rel_err=%.3g (tensor=%s "
                "idx=%zu analytic=%.6g numeric=%.6g)",
                coords_checked, failures.size(), max_rel_err,
                worst.tensor.c_str(), worst.index, worst.analytic,
                worst.numeric);
  return buf;
}

GradientCheckReport CheckLayerGradients(nn::Layer* layer, std::size_t batch,
                                        std::size_t in_features,
                                        const GradientCheckOptions& opts,
                                        bool check_params) {
  P3GM_CHECK(layer != nullptr && batch > 0 && in_features > 0);
  util::Rng rng(opts.seed);
  const bool prev_mode = layer->is_training();
  layer->SetTraining(false);

  linalg::Matrix x(batch, in_features);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();

  // Random linear functional L = <R, Forward(x)>; a fixed random R makes
  // dL/d(output) = R so every output coordinate feeds the check.
  linalg::Matrix probe = layer->Forward(x, /*train=*/false);
  linalg::Matrix r(probe.rows(), probe.cols());
  for (std::size_t i = 0; i < r.size(); ++i) r.data()[i] = rng.Normal();

  const auto objective = [&]() {
    const linalg::Matrix y = layer->Forward(x, /*train=*/false);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      s += r.data()[i] * y.data()[i];
    return s;
  };

  // Analytic pass: dL/dx from Backward, dL/dtheta accumulated into grads.
  for (nn::Parameter* p : layer->Parameters()) p->ZeroGrad();
  layer->Forward(x, /*train=*/false);
  const linalg::Matrix grad_in = layer->Backward(r, /*accumulate=*/true);
  P3GM_CHECK(grad_in.rows() == x.rows() && grad_in.cols() == x.cols());

  GradientCheckReport report;
  CheckTensor("input", x.data(), x.size(), grad_in.data(), objective, opts,
              &rng, &report);
  if (check_params) {
    for (nn::Parameter* p : layer->Parameters()) {
      CheckTensor(p->name, p->value.data(), p->value.size(), p->grad.data(),
                  objective, opts, &rng, &report);
    }
  }

  layer->SetTraining(prev_mode);
  return report;
}

GradientCheckReport CheckFunctionGradient(
    const std::function<double(const linalg::Matrix&)>& f,
    const linalg::Matrix& x, const linalg::Matrix& analytic_grad,
    const GradientCheckOptions& opts) {
  P3GM_CHECK(x.rows() == analytic_grad.rows() &&
             x.cols() == analytic_grad.cols());
  util::Rng rng(opts.seed);
  linalg::Matrix xm = x;  // Mutable copy the objective closes over.
  GradientCheckReport report;
  CheckTensor(
      "input", xm.data(), xm.size(), analytic_grad.data(),
      [&]() { return f(xm); }, opts, &rng, &report);
  return report;
}

}  // namespace audit
}  // namespace p3gm
