#include "audit/fault_injection.h"

#if P3GM_FAULT_INJECTION_ENABLED

namespace p3gm {
namespace audit {

namespace {
FaultConfig g_config;
}  // namespace

const FaultConfig& FaultInjector::Get() { return g_config; }

void FaultInjector::Set(const FaultConfig& config) { g_config = config; }

void FaultInjector::Reset() { g_config = FaultConfig(); }

FaultInjector::Scope::Scope(const FaultConfig& config) : saved_(g_config) {
  g_config = config;
}

FaultInjector::Scope::~Scope() { g_config = saved_; }

}  // namespace audit
}  // namespace p3gm

#endif  // P3GM_FAULT_INJECTION_ENABLED
