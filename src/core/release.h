#ifndef P3GM_CORE_RELEASE_H_
#define P3GM_CORE_RELEASE_H_

#include <memory>
#include <string>

#include "core/pgm.h"
#include "core/vae.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "obs/quality/fingerprint.h"
#include "stats/gmm.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {

namespace infer {
class DecoderPlan;
}  // namespace infer

namespace core {

/// The shareable artifact of Fig. 1: a trained decoder plus the latent
/// prior, detached from all training state. By DP post-processing, any
/// number of samples drawn from a package built from a privately trained
/// model stays within the training run's (epsilon, delta) budget.
///
/// The package serializes to a small self-contained binary file, so an
/// untrusted analyst can regenerate data with nothing but this library's
/// `Load` + `Generate`.
class ReleasePackage {
 public:
  ReleasePackage() = default;

  /// Extracts the decoder and MoG prior from a fitted PGM/P3GM.
  /// `num_classes` > 0 marks the trailing one-hot label block so
  /// Generate() can emit labeled rows; pass 0 for unlabeled models.
  static util::Result<ReleasePackage> FromPgm(Pgm* model,
                                              std::size_t num_classes,
                                              std::string name);

  /// Extracts the decoder from a fitted VAE / DP-VAE; the prior is the
  /// standard normal (a single-component MoG).
  static util::Result<ReleasePackage> FromVae(Vae* model,
                                              std::size_t num_classes,
                                              std::string name);

  /// Assembles a package from explicit parts (prior + decoder affines).
  /// Shape contract: w1 (dl x h), b1 (1 x h), w2 (h x d), b2 (1 x d),
  /// prior over dl dims. Exists for the serving/bench/test layers, which
  /// need packages without running a training pipeline first.
  static util::Result<ReleasePackage> FromParts(
      std::string name, std::size_t num_classes, DecoderType decoder,
      stats::GaussianMixture prior, linalg::Matrix w1, linalg::Matrix b1,
      linalg::Matrix w2, linalg::Matrix b2);

  /// Writes the package to `path` (binary, versioned).
  util::Status Save(const std::string& path) const;

  /// Reads a package written by Save. Validates header and shapes.
  static util::Result<ReleasePackage> Load(const std::string& path);

  /// Samples `n` rows: z ~ prior, x = sigmoid(W2 relu(W1 z + b1) + b2),
  /// labels decoded from the one-hot block when num_classes > 0.
  /// Equivalent to AssembleRows(DecodeLatent(SampleLatent(n, rng))); the
  /// three stages are public so a serving layer can batch the decoder
  /// forward pass across requests while keeping per-request RNG streams.
  util::Result<data::Dataset> Generate(std::size_t n, util::Rng* rng) const;

  /// Draws `n` latent rows z ~ prior, consuming `rng` sequentially.
  linalg::Matrix SampleLatent(std::size_t n, util::Rng* rng) const;

  /// Runs the decoder forward pass on latent rows `z` (n x latent_dim),
  /// returning post-activation outputs (n x output_dim). Each output row
  /// is a pure function of its input row, so decoding a stacked batch
  /// yields bit-identical rows to decoding each slice separately.
  util::Result<linalg::Matrix> DecodeLatent(const linalg::Matrix& z) const;

  /// DecodeLatent variant that writes into a caller-owned buffer,
  /// reallocating only on shape mismatch. Bit-identical to DecodeLatent
  /// under either decode runtime; it exists so a steady-state serving
  /// loop can reuse one output buffer across batches instead of paying
  /// a multi-megabyte allocation plus zero-fill (and, at those sizes,
  /// an mmap/page-fault round trip) on every decode.
  util::Status DecodeLatentInto(const linalg::Matrix& z,
                                linalg::Matrix* out) const;

  /// Splits decoded outputs into a Dataset (labels detached from the
  /// trailing one-hot block when num_classes > 0).
  data::Dataset AssembleRows(linalg::Matrix outputs) const;

  const std::string& name() const { return name_; }
  DecoderType decoder_type() const { return decoder_type_; }
  std::size_t latent_dim() const { return w1_.rows(); }
  std::size_t output_dim() const { return w2_.cols(); }
  /// Feature dimensionality excluding the label block.
  std::size_t feature_dim() const { return output_dim() - num_classes_; }
  std::size_t num_classes() const { return num_classes_; }
  const stats::GaussianMixture& prior() const { return prior_; }

  /// The compiled forward-execution plan (src/infer) DecodeLatent runs
  /// through when infer::PlannedDecodeEnabled(). Compiled eagerly by
  /// every factory; null only for a default-constructed package. The
  /// plan is immutable and shared by copies of the package.
  const infer::DecoderPlan* plan() const { return plan_.get(); }

  /// Reference quality fingerprint of this model's output distribution
  /// (obs/quality/fingerprint.h), embedded at release time. Null when
  /// the package was built or loaded without one — format v1 files
  /// predate fingerprints and load with this unset, so the serving
  /// layer must handle fingerprint-less packages. Drawing the
  /// fingerprint from the *released* model is DP post-processing:
  /// embedding it costs no privacy budget.
  const obs::quality::Fingerprint* fingerprint() const {
    return fingerprint_.get();
  }
  /// Shared handle for layers that outlive the package copy (the serve
  /// quality monitors pin it across hot reloads).
  std::shared_ptr<const obs::quality::Fingerprint> fingerprint_ptr() const {
    return fingerprint_;
  }
  void SetFingerprint(obs::quality::Fingerprint fingerprint) {
    fingerprint_ = std::make_shared<const obs::quality::Fingerprint>(
        std::move(fingerprint));
  }
  void ClearFingerprint() { fingerprint_.reset(); }

 private:
  util::Status Validate() const;

  /// Packs the decoder weights into a DecoderPlan. Called by the
  /// factories after Validate(); fatal on failure (validated weights
  /// always compile).
  void CompilePlan();

  std::string name_;
  std::size_t num_classes_ = 0;
  DecoderType decoder_type_ = DecoderType::kBernoulli;
  stats::GaussianMixture prior_;
  // Decoder affine weights: hidden = relu(z W1 + b1); logits = h W2 + b2.
  linalg::Matrix w1_, b1_, w2_, b2_;
  std::shared_ptr<const infer::DecoderPlan> plan_;
  std::shared_ptr<const obs::quality::Fingerprint> fingerprint_;
};

/// Computes a reference fingerprint for `pkg` from a fresh synthetic
/// draw of `n` rows decoded through the package's own decoder (a pure
/// post-processing step — zero additional privacy cost). Deterministic
/// given (pkg, n, seed). Does not mutate `pkg`; callers embed the
/// result via SetFingerprint before Save.
util::Result<obs::quality::Fingerprint> BuildFingerprint(
    const ReleasePackage& pkg, std::size_t n, std::uint64_t seed);

}  // namespace core
}  // namespace p3gm

#endif  // P3GM_CORE_RELEASE_H_
