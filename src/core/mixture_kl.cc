#include "core/mixture_kl.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace p3gm {
namespace core {

MixtureKlResult MixturePriorKl(const linalg::Matrix& mu,
                               const linalg::Matrix& logvar,
                               const stats::GaussianMixture& prior,
                               bool mean) {
  P3GM_CHECK(mu.rows() == logvar.rows() && mu.cols() == logvar.cols());
  P3GM_CHECK(mu.cols() == prior.dim());
  const std::size_t b = mu.rows();
  const std::size_t d = mu.cols();
  const std::size_t k = prior.num_components();
  const double scale = mean ? 1.0 / static_cast<double>(b) : 1.0;

  MixtureKlResult out;
  out.per_example.assign(b, 0.0);
  out.grad_logvar = linalg::Matrix(b, d);

  std::vector<double> log_terms(k);
  std::vector<double> resp(k);
  for (std::size_t i = 0; i < b; ++i) {
    const double* m = mu.row_data(i);
    const double* lv = logvar.row_data(i);
    // KL_b = KL(N(m, diag(exp(lv))) || component b), closed form for
    // diagonal Gaussians.
    for (std::size_t comp = 0; comp < k; ++comp) {
      const double* mb = prior.means().row_data(comp);
      const double* vb = prior.variances().row_data(comp);
      double kl = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double v = std::exp(lv[j]);
        const double diff = m[j] - mb[j];
        kl += std::log(vb[j]) - lv[j] + (v + diff * diff) / vb[j] - 1.0;
      }
      kl *= 0.5;
      log_terms[comp] =
          std::log(std::max(prior.weights()[comp], 1e-300)) - kl;
    }
    // D_i = -logsumexp(log_terms); responsibilities are the softmax.
    double mx = -std::numeric_limits<double>::infinity();
    for (double t : log_terms) mx = std::max(mx, t);
    double total = 0.0;
    for (std::size_t comp = 0; comp < k; ++comp) {
      resp[comp] = std::exp(log_terms[comp] - mx);
      total += resp[comp];
    }
    const double lse = mx + std::log(total);
    for (double& r : resp) r /= total;
    out.per_example[i] = -lse;
    out.value += -lse * scale;

    // dD/dlv_j = sum_b r_b * dKL_b/dlv_j, with
    // dKL_b/dlv_j = 0.5 (exp(lv_j)/v_bj - 1).
    double* g = out.grad_logvar.row_data(i);
    for (std::size_t comp = 0; comp < k; ++comp) {
      if (resp[comp] == 0.0) continue;
      const double* vb = prior.variances().row_data(comp);
      for (std::size_t j = 0; j < d; ++j) {
        g[j] += resp[comp] * 0.5 * (std::exp(lv[j]) / vb[j] - 1.0);
      }
    }
    for (std::size_t j = 0; j < d; ++j) g[j] *= scale;
  }
  return out;
}

}  // namespace core
}  // namespace p3gm
