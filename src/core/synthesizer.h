#ifndef P3GM_CORE_SYNTHESIZER_H_
#define P3GM_CORE_SYNTHESIZER_H_

#include <memory>
#include <string>

#include "core/pgm.h"
#include "core/vae.h"
#include "data/dataset.h"
#include "dp/accountant.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace core {

/// Common interface of every data synthesizer in the library (P3GM, PGM,
/// VAE, DP-VAE, DP-GM, PrivBayes). Implements the paper's labeled
/// synthesis convention: the generative model is trained on
/// [features | one-hot(label)] so each generated row carries a label
/// (Section IV-E), and Generate() splits them back apart.
class Synthesizer {
 public:
  virtual ~Synthesizer() = default;

  /// Trains the generative model on a labeled dataset. Call once.
  virtual util::Status Fit(const data::Dataset& train) = 0;

  /// Draws a labeled synthetic dataset of `n` rows.
  virtual util::Result<data::Dataset> Generate(std::size_t n,
                                               util::Rng* rng) = 0;

  /// Privacy of the performed run; epsilon = 0 for non-private models.
  virtual dp::DpGuarantee ComputeEpsilon(double delta) const = 0;

  virtual std::string name() const = 0;
};

/// Synthesizer backed by the phased generative model (PGM / P3GM /
/// P3GM(AE), chosen via PgmOptions).
class PgmSynthesizer : public Synthesizer {
 public:
  explicit PgmSynthesizer(const PgmOptions& options);

  util::Status Fit(const data::Dataset& train) override;
  util::Result<data::Dataset> Generate(std::size_t n,
                                       util::Rng* rng) override;
  dp::DpGuarantee ComputeEpsilon(double delta) const override;
  std::string name() const override;

  /// Underlying model (valid after Fit) for diagnostics / traces.
  Pgm& model() { return *model_; }

 private:
  PgmOptions options_;
  std::unique_ptr<Pgm> model_;
  std::size_t num_classes_ = 2;
  std::string dataset_name_;
};

/// Synthesizer backed by the end-to-end VAE (VAE / DP-VAE via
/// VaeOptions).
class VaeSynthesizer : public Synthesizer {
 public:
  explicit VaeSynthesizer(const VaeOptions& options);

  util::Status Fit(const data::Dataset& train) override;
  util::Result<data::Dataset> Generate(std::size_t n,
                                       util::Rng* rng) override;
  dp::DpGuarantee ComputeEpsilon(double delta) const override;
  std::string name() const override;

  Vae& model() { return *model_; }

 private:
  VaeOptions options_;
  std::unique_ptr<Vae> model_;
  std::size_t num_classes_ = 2;
  std::string dataset_name_;
};

/// Generates `n` rows whose label ratio matches `reference` (the paper's
/// Section VI convention: "generate a dataset so that the label ratio is
/// the same as the real training dataset"). Oversamples from `synth` by
/// `oversample` and stratified-subsamples per class; classes the model
/// never produces are backfilled from whatever was generated.
util::Result<data::Dataset> GenerateWithLabelRatio(
    Synthesizer* synth, std::size_t n, const data::Dataset& reference,
    util::Rng* rng, std::size_t oversample = 3);

}  // namespace core
}  // namespace p3gm

#endif  // P3GM_CORE_SYNTHESIZER_H_
