#include "core/pgm.h"

#include <algorithm>
#include <cmath>

#include "core/mixture_kl.h"
#include "dp/mechanisms.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/dp_sgd.h"
#include "nn/losses.h"
#include "obs/ledger.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "stats/dp_em.h"

namespace p3gm {
namespace core {

namespace {

constexpr double kLogVarMin = -8.0;
constexpr double kLogVarMax = 8.0;

void ClampInPlace(double lo, double hi, linalg::Matrix* m) {
  double* data = m->data();
  for (std::size_t i = 0; i < m->size(); ++i) {
    data[i] = std::clamp(data[i], lo, hi);
  }
}

}  // namespace

Pgm::Pgm(const PgmOptions& options)
    : options_(options),
      rng_(options.seed),
      encoder_trunk_("encoder"),
      decoder_("decoder"),
      optimizer_(options.learning_rate) {}

linalg::Matrix Pgm::EncodeMean(const linalg::Matrix& x) const {
  linalg::Matrix z = pca_fitted_ ? pca_.Transform(x) : x;
  if (options_.differentially_private) {
    // The same unit-ball clipping DP-EM applied; keeping the encoder
    // consistent with the statistics the prior was fitted on.
    for (std::size_t i = 0; i < z.rows(); ++i) {
      std::vector<double> row = z.Row(i);
      dp::ClipL2(1.0, &row);
      z.SetRow(i, row);
    }
  }
  return z;
}

util::Status Pgm::Fit(const linalg::Matrix& x, const EpochCallback& callback) {
  P3GM_TRACE_SPAN("pgm.fit");
  if (fitted_) {
    return util::Status::FailedPrecondition("Pgm::Fit called twice");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("Pgm::Fit: empty data");
  }
  if (options_.batch_size == 0 || options_.batch_size > x.rows()) {
    return util::Status::InvalidArgument(
        "Pgm::Fit: batch size must be in [1, n]");
  }
  fitted_ = true;
  data_size_ = x.rows();
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const bool dp = options_.differentially_private;

  // Live accounting: every private release below composes onto
  // accountant_ at the moment it happens, and — when observability is on
  // — lands in the process-wide privacy ledger. Accounting is pure
  // arithmetic on the side; it never touches the model or the RNG.
  accountant_.set_ledger_enabled(true);
  obs::Registry& registry = obs::Registry::Global();

  // ---------------------------------------------------------------
  // Encoding Phase (Algorithm 1 lines 1-4).
  // ---------------------------------------------------------------
  effective_latent_ = options_.use_pca ? options_.latent_dim : d;
  if (options_.use_pca) {
    if (effective_latent_ > d) {
      return util::Status::InvalidArgument(
          "Pgm::Fit: latent_dim exceeds data dimension");
    }
    obs::PhaseScope phase("dp_pca");
    P3GM_TRACE_SPAN("pgm.phase.pca");
    const std::uint64_t phase_start = obs::NowNs();
    if (dp) {
      pca::DpPcaOptions pca_opts;
      pca_opts.num_components = effective_latent_;
      pca_opts.epsilon = options_.pca_epsilon;
      pca_opts.accountant = &accountant_;
      P3GM_ASSIGN_OR_RETURN(pca_, pca::FitDpPca(x, pca_opts, &rng_));
    } else {
      P3GM_ASSIGN_OR_RETURN(pca_, pca::FitPca(x, effective_latent_));
    }
    pca_fitted_ = true;
    registry.gauge("pgm.phase.pca_seconds")
        ->Set(static_cast<double>(obs::NowNs() - phase_start) * 1e-9);
  }
  const linalg::Matrix encoded = EncodeMean(x);

  {
    obs::PhaseScope phase("dp_em");
    P3GM_TRACE_SPAN("pgm.phase.em");
    const std::uint64_t phase_start = obs::NowNs();
    if (dp) {
      stats::DpEmOptions em_opts;
      em_opts.num_components = options_.mog_components;
      em_opts.iters = options_.em_iters;
      em_opts.noise_multiplier = options_.em_sigma;
      em_opts.seed = options_.seed ^ 0xe3;
      em_opts.accountant = &accountant_;
      P3GM_ASSIGN_OR_RETURN(stats::DpEmResult em,
                            stats::FitGmmDpEm(encoded, em_opts, &rng_));
      prior_ = std::move(em.mixture);
    } else {
      stats::EmOptions em_opts;
      em_opts.num_components = options_.mog_components;
      em_opts.max_iters = options_.em_iters;
      em_opts.seed = options_.seed ^ 0xe3;
      P3GM_ASSIGN_OR_RETURN(prior_, stats::FitGmm(encoded, em_opts));
    }
    registry.gauge("pgm.phase.em_seconds")
        ->Set(static_cast<double>(obs::NowNs() - phase_start) * 1e-9);
  }

  // ---------------------------------------------------------------
  // Decoding Phase (Algorithm 1 lines 5-11).
  // ---------------------------------------------------------------
  obs::PhaseScope sgd_phase("dp_sgd");
  P3GM_TRACE_SPAN("pgm.phase.sgd");
  const std::uint64_t sgd_phase_start = obs::NowNs();
  const std::size_t dl = effective_latent_;
  const bool learn_variance = !options_.freeze_variance;
  if (learn_variance) {
    encoder_trunk_.Emplace<nn::Linear>("enc1", d, options_.hidden, &rng_);
    encoder_trunk_.Emplace<nn::Relu>();
    logvar_head_ = std::make_unique<nn::Linear>("enc_logvar",
                                                options_.hidden, dl, &rng_);
  }
  decoder_.Emplace<nn::Linear>("dec1", dl, options_.hidden, &rng_);
  decoder_.Emplace<nn::Relu>();
  decoder_.Emplace<nn::Linear>("dec2", options_.hidden, d, &rng_);

  std::vector<nn::Layer*> stacks;
  if (learn_variance) {
    stacks.push_back(&encoder_trunk_);
    stacks.push_back(logvar_head_.get());
  }
  stacks.push_back(&decoder_);
  std::vector<nn::Parameter*> params;
  for (nn::Layer* s : stacks) {
    for (nn::Parameter* p : s->Parameters()) params.push_back(p);
  }
  auto zero_grads = [&] {
    for (nn::Parameter* p : params) p->ZeroGrad();
  };

  const double q =
      static_cast<double>(options_.batch_size) / static_cast<double>(n);
  nn::DpSgdOptions dp_opts;
  dp_opts.clip_norm = options_.clip_norm;
  dp_opts.noise_multiplier = options_.sgd_sigma;
  dp_opts.lot_size = options_.batch_size;

  // The per-step RDP cost is the same for every step; computing the
  // order curve once keeps per-step ledger accounting cheap.
  const std::vector<double> sgd_curve =
      dp ? accountant_.SampledGaussianCurve(q, options_.sgd_sigma)
         : std::vector<double>();
  obs::Counter* batches = registry.counter("pgm.batches");
  obs::Gauge* epoch_gauge = registry.gauge("pgm.epoch");
  obs::Gauge* recon_gauge = registry.gauge("pgm.epoch.recon_loss");
  obs::Gauge* kl_gauge = registry.gauge("pgm.epoch.kl_loss");

  const std::size_t steps_per_epoch =
      std::max<std::size_t>(1, n / options_.batch_size);
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    P3GM_TRACE_SPAN("pgm.epoch");
    std::vector<std::size_t> perm = rng_.Permutation(n);
    double epoch_recon = 0.0, epoch_kl = 0.0, epoch_examples = 0.0;
    for (std::size_t step = 0; step < steps_per_epoch; ++step) {
      std::vector<std::size_t> idx;
      if (dp) {
        idx = rng_.PoissonSample(n, q);
        if (idx.empty()) continue;
      } else {
        const std::size_t start = step * options_.batch_size;
        for (std::size_t i = start;
             i < std::min(start + options_.batch_size, n); ++i) {
          idx.push_back(perm[i]);
        }
      }
      const std::size_t b = idx.size();
      const linalg::Matrix xb = x.SelectRows(idx);
      const linalg::Matrix cx = encoded.SelectRows(idx);

      zero_grads();
      const bool mean = !dp;

      linalg::Matrix z = cx;
      linalg::Matrix logvar, eps, half_std;
      if (learn_variance) {
        const linalg::Matrix h = encoder_trunk_.Forward(xb, true);
        logvar = logvar_head_->Forward(h, true);
        ClampInPlace(kLogVarMin, kLogVarMax, &logvar);
        eps = linalg::Matrix(b, dl);
        half_std = linalg::Matrix(b, dl);
        for (std::size_t i = 0; i < eps.size(); ++i) {
          eps.data()[i] = rng_.Normal();
          half_std.data()[i] = std::exp(0.5 * logvar.data()[i]);
          z.data()[i] += half_std.data()[i] * eps.data()[i];
        }
      }
      const linalg::Matrix logits = decoder_.Forward(z, true);
      const nn::LossResult recon =
          options_.decoder == DecoderType::kBernoulli
              ? nn::BceWithLogitsLoss(logits, xb, mean)
              : nn::MseLoss(logits, xb, mean);

      MixtureKlResult kl;
      if (learn_variance) {
        kl = MixturePriorKl(cx, logvar, prior_, mean);
      }

      for (std::size_t i = 0; i < b; ++i) {
        epoch_recon += recon.per_example[i];
        if (learn_variance) epoch_kl += kl.per_example[i];
      }
      epoch_examples += static_cast<double>(b);
      {
        double batch_recon = 0.0;
        for (double v : recon.per_example) batch_recon += v;
        trace_.recon_loss.push_back(batch_recon / static_cast<double>(b));
      }

      // Backward. The frozen encoder mean receives no gradient; only the
      // decoder and (optionally) the variance head train.
      const linalg::Matrix dz = decoder_.Backward(recon.grad, !dp);
      if (learn_variance) {
        linalg::Matrix dlogvar = kl.grad_logvar;
        for (std::size_t i = 0; i < dlogvar.size(); ++i) {
          dlogvar.data()[i] +=
              dz.data()[i] * eps.data()[i] * 0.5 * half_std.data()[i];
        }
        const linalg::Matrix dh = logvar_head_->Backward(dlogvar, !dp);
        encoder_trunk_.Backward(dh, !dp);
      }

      if (dp) {
        nn::DpSgdStep dp_step(dp_opts, &rng_);
        P3GM_RETURN_NOT_OK(dp_step.CollectSquaredNorms(stacks, b));
        dp_step.ApplyClippedAccumulation(stacks);
        dp_step.AddNoiseAndAverage(params, b);
        ++sgd_steps_taken_;
        dp::MechanismEvent event;
        event.mechanism = "sampled_gaussian";
        event.sigma = options_.sgd_sigma;
        event.sampling_rate = q;
        accountant_.AddEvent(event, sgd_curve);
      }
      optimizer_.Step(params);
      batches->Add();
    }
    epoch_gauge->Set(static_cast<double>(epoch + 1));
    recon_gauge->Set(epoch_examples > 0 ? epoch_recon / epoch_examples : 0.0);
    kl_gauge->Set(epoch_examples > 0 ? epoch_kl / epoch_examples : 0.0);
    if (callback) {
      TrainProgress progress;
      progress.epoch = epoch;
      progress.recon_loss =
          epoch_examples > 0 ? epoch_recon / epoch_examples : 0.0;
      progress.kl_loss = epoch_examples > 0 ? epoch_kl / epoch_examples : 0.0;
      callback(progress);
    }
  }
  registry.gauge("pgm.phase.sgd_seconds")
      ->Set(static_cast<double>(obs::NowNs() - sgd_phase_start) * 1e-9);
  return util::Status::OK();
}

linalg::Matrix Pgm::Sample(std::size_t n, util::Rng* rng) {
  P3GM_CHECK(fitted_);
  return Decode(prior_.SampleN(n, rng));
}

linalg::Matrix Pgm::Decode(const linalg::Matrix& z) {
  linalg::Matrix logits = decoder_.Forward(z, false);
  double* data = logits.data();
  if (options_.decoder == DecoderType::kBernoulli) {
    for (std::size_t i = 0; i < logits.size(); ++i) {
      data[i] = nn::SigmoidScalar(data[i]);
    }
  } else {
    for (std::size_t i = 0; i < logits.size(); ++i) {
      data[i] = std::clamp(data[i], 0.0, 1.0);
    }
  }
  return logits;
}

std::vector<linalg::Matrix> Pgm::ExportDecoderWeights() {
  P3GM_CHECK_MSG(fitted_, "ExportDecoderWeights before Fit");
  std::vector<linalg::Matrix> out;
  for (nn::Parameter* p : decoder_.Parameters()) out.push_back(p->value);
  return out;  // {W1, b1, W2, b2} in layer order.
}

dp::P3gmPrivacyParams Pgm::PrivacyParams() const {
  dp::P3gmPrivacyParams params;
  params.pca_epsilon =
      (options_.use_pca && options_.differentially_private)
          ? options_.pca_epsilon
          : 0.0;
  params.em_sigma = options_.em_sigma;
  params.em_iters = options_.differentially_private ? options_.em_iters : 0;
  params.mog_components = options_.mog_components;
  params.sgd_sigma = options_.sgd_sigma;
  params.sgd_sampling_rate =
      data_size_ > 0 ? static_cast<double>(options_.batch_size) /
                           static_cast<double>(data_size_)
                     : 0.0;
  params.sgd_steps = sgd_steps_taken_;
  return params;
}

dp::DpGuarantee Pgm::ComputeEpsilon(double delta) const {
  dp::DpGuarantee out;
  out.delta = delta;
  if (!options_.differentially_private) {
    out.epsilon = 0.0;
    return out;
  }
  return dp::ComputeP3gmEpsilonRdp(PrivacyParams(), delta);
}

util::Result<double> Pgm::CalibrateSigma(const PgmOptions& options,
                                         std::size_t n, double target_epsilon,
                                         double delta) {
  if (n == 0 || options.batch_size == 0 || options.batch_size > n) {
    return util::Status::InvalidArgument(
        "CalibrateSigma: invalid n or batch size");
  }
  dp::P3gmPrivacyParams params;
  params.pca_epsilon = options.use_pca ? options.pca_epsilon : 0.0;
  params.em_sigma = options.em_sigma;
  params.em_iters = options.em_iters;
  params.mog_components = options.mog_components;
  params.sgd_sampling_rate =
      static_cast<double>(options.batch_size) / static_cast<double>(n);
  params.sgd_steps =
      options.epochs * std::max<std::size_t>(1, n / options.batch_size);
  return dp::CalibrateSgdSigma(params, target_epsilon, delta);
}

}  // namespace core
}  // namespace p3gm
