#ifndef P3GM_CORE_PGM_H_
#define P3GM_CORE_PGM_H_

#include <memory>
#include <vector>

#include "core/vae.h"
#include "dp/accountant.h"
#include "linalg/matrix.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "pca/pca.h"
#include "stats/gmm.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace core {

/// Configuration of the phased generative model. One class realizes the
/// three variants the paper evaluates:
///  * PGM      — differentially_private = false (exact PCA + exact EM +
///               plain SGD), the non-private reference of Table V.
///  * P3GM     — differentially_private = true (DP-PCA + DP-EM + DP-SGD),
///               Algorithm 1.
///  * P3GM(AE) — freeze_variance = true: the encoder variance is pinned
///               to zero, Eq. (11)'s autoencoder-like ablation of Fig. 7.
struct PgmOptions {
  /// Hidden width of the encoder/decoder MLPs (paper: 1000).
  std::size_t hidden = 200;
  /// Reduced dimensionality d' of DP-PCA (paper default 10). Ignored when
  /// use_pca is false (then d' = d, as for Kaggle Credit).
  std::size_t latent_dim = 10;
  /// Number of MoG components dm (paper: 3).
  std::size_t mog_components = 3;
  std::size_t epochs = 10;
  std::size_t batch_size = 120;
  double learning_rate = 1e-3;
  /// Observation model of the reconstruction term.
  DecoderType decoder = DecoderType::kBernoulli;
  /// Whether to apply the PCA dimensionality reduction f.
  bool use_pca = true;
  /// P3GM(AE): pin sigma_phi(x) = 0 so only the decoder trains.
  bool freeze_variance = false;

  bool differentially_private = false;
  /// DP-PCA pure-DP budget epsilon_p (paper: 0.1).
  double pca_epsilon = 0.1;
  /// DP-EM noise multiplier sigma_e and iteration count Te (paper: 20).
  /// The paper chooses sigma_e "as epsilon = 1 holds"; with Te = 20 and
  /// dm = 3 components, sigma_e = 100 keeps DP-EM's share of the RDP
  /// budget at roughly a third of epsilon = 1, leaving the rest for
  /// DP-SGD (see dp::DpEmRdp).
  double em_sigma = 100.0;
  std::size_t em_iters = 20;
  /// DP-SGD clipping bound C and noise multiplier sigma_s.
  double clip_norm = 1.0;
  double sgd_sigma = 1.5;

  std::uint64_t seed = 77;
};

/// Phased generative model (paper Section IV). Training runs in two
/// phases:
///
/// Encoding Phase — fit the dimensionality reduction f with (DP-)PCA and
/// the latent prior r_lambda(z) = MoG with (DP-)EM over f(X); the encoder
/// mean is frozen to mu_phi(x) = f(x).
///
/// Decoding Phase — train the decoder and the encoder's variance head by
/// (DP-)SGD on the ELBO, whose KL term is taken against the MoG prior
/// via the Hershey–Olsen approximation.
///
/// Synthesis — z ~ MoG(lambda), x = sigmoid(decoder(z)) (Section IV-E).
///
/// Inputs must be scaled to [0, 1].
class Pgm {
 public:
  explicit Pgm(const PgmOptions& options);

  /// Runs both phases on rows of `x`. Call once per instance.
  util::Status Fit(const linalg::Matrix& x,
                   const EpochCallback& callback = nullptr);

  /// Generates `n` rows from the fitted model.
  linalg::Matrix Sample(std::size_t n, util::Rng* rng);

  /// Decodes latent rows through the decoder (post-processing).
  linalg::Matrix Decode(const linalg::Matrix& z);

  /// The frozen encoder mean f(x) for each row of `x` (after the
  /// DP-mode unit-ball clipping, i.e. exactly what the decoder was
  /// trained to invert).
  linalg::Matrix EncodeMean(const linalg::Matrix& x) const;

  /// The fitted latent prior r_lambda(z).
  const stats::GaussianMixture& prior() const { return prior_; }

  /// Privacy parameters of the performed run (for external accounting).
  dp::P3gmPrivacyParams PrivacyParams() const;

  /// Total (epsilon, delta)-DP of the run via RDP composition
  /// (Theorem 4). epsilon = 0 for the non-private configuration.
  dp::DpGuarantee ComputeEpsilon(double delta) const;

  /// The live accountant that composed each mechanism release as Fit
  /// performed it (ledger-enabled; feeds obs::PrivacyLedger when
  /// observability is on). Matches ComputeEpsilon up to the floating
  /// point accumulation order of per-step composition.
  const dp::RdpAccountant& accountant() const { return accountant_; }

  /// Solves for the DP-SGD noise multiplier that makes a *planned* run
  /// with these options on `n` examples meet `target_epsilon` at `delta`.
  static util::Result<double> CalibrateSigma(const PgmOptions& options,
                                             std::size_t n,
                                             double target_epsilon,
                                             double delta);

  /// Per-iteration reconstruction-loss trace (Fig. 7a/b).
  const IterationTrace& trace() const { return trace_; }

  /// Exports the decoder's affine weights {W1, b1, W2, b2} for packaging
  /// into a ReleasePackage. Valid after Fit.
  std::vector<linalg::Matrix> ExportDecoderWeights();

  const PgmOptions& options() const { return options_; }

 private:
  PgmOptions options_;
  util::Rng rng_;
  dp::RdpAccountant accountant_;
  pca::PcaModel pca_;
  bool pca_fitted_ = false;
  stats::GaussianMixture prior_;
  nn::Sequential encoder_trunk_;
  std::unique_ptr<nn::Linear> logvar_head_;
  nn::Sequential decoder_;
  nn::Adam optimizer_;
  IterationTrace trace_;
  std::size_t effective_latent_ = 0;
  std::size_t data_size_ = 0;
  std::size_t sgd_steps_taken_ = 0;
  bool fitted_ = false;
};

}  // namespace core
}  // namespace p3gm

#endif  // P3GM_CORE_PGM_H_
