#include "core/vae.h"

#include <algorithm>
#include <cmath>

#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/losses.h"
#include "obs/ledger.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace p3gm {
namespace core {

namespace {

// Log-variance heads are clamped into this range before exponentiation to
// keep exp() finite during the noisy early DP-SGD steps.
constexpr double kLogVarMin = -8.0;
constexpr double kLogVarMax = 8.0;

void ClampInPlace(double lo, double hi, linalg::Matrix* m) {
  double* data = m->data();
  for (std::size_t i = 0; i < m->size(); ++i) {
    data[i] = std::clamp(data[i], lo, hi);
  }
}

}  // namespace

Vae::Vae(const VaeOptions& options)
    : options_(options),
      rng_(options.seed),
      encoder_trunk_("encoder"),
      decoder_("decoder"),
      optimizer_(options.learning_rate) {}

util::Status Vae::Fit(const linalg::Matrix& x, const EpochCallback& callback) {
  P3GM_TRACE_SPAN("vae.fit");
  if (fitted_) {
    return util::Status::FailedPrecondition("Vae::Fit called twice");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("Vae::Fit: empty data");
  }
  if (options_.batch_size == 0 || options_.batch_size > x.rows()) {
    return util::Status::InvalidArgument(
        "Vae::Fit: batch size must be in [1, n]");
  }
  fitted_ = true;
  data_size_ = x.rows();
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t dl = options_.latent_dim;

  // Paper architecture: encoder FC [d, hidden, d'], decoder FC
  // [d', hidden, d], ReLU activations.
  encoder_trunk_.Emplace<nn::Linear>("enc1", d, options_.hidden, &rng_);
  encoder_trunk_.Emplace<nn::Relu>();
  mu_head_ = std::make_unique<nn::Linear>("enc_mu", options_.hidden, dl,
                                          &rng_);
  logvar_head_ = std::make_unique<nn::Linear>("enc_logvar", options_.hidden,
                                              dl, &rng_);
  decoder_.Emplace<nn::Linear>("dec1", dl, options_.hidden, &rng_);
  decoder_.Emplace<nn::Relu>();
  decoder_.Emplace<nn::Linear>("dec2", options_.hidden, d, &rng_);

  std::vector<nn::Parameter*> params;
  std::vector<nn::Layer*> stacks = {&encoder_trunk_, mu_head_.get(),
                                    logvar_head_.get(), &decoder_};
  for (nn::Layer* s : stacks) {
    for (nn::Parameter* p : s->Parameters()) params.push_back(p);
  }
  auto zero_grads = [&] {
    for (nn::Parameter* p : params) p->ZeroGrad();
  };

  const bool dp = options_.differentially_private;
  const double q = static_cast<double>(options_.batch_size) /
                   static_cast<double>(n);
  nn::DpSgdOptions dp_opts;
  dp_opts.clip_norm = options_.clip_norm;
  dp_opts.noise_multiplier = options_.sgd_sigma;
  dp_opts.lot_size = options_.batch_size;

  // Live accounting (see Pgm::Fit): per-step composition with a curve
  // computed once; pure side arithmetic, never touches model or RNG.
  accountant_.set_ledger_enabled(true);
  obs::PhaseScope sgd_phase("dp_sgd");
  const std::vector<double> sgd_curve =
      dp ? accountant_.SampledGaussianCurve(q, options_.sgd_sigma)
         : std::vector<double>();
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* batches = registry.counter("vae.batches");
  obs::Gauge* epoch_gauge = registry.gauge("vae.epoch");
  obs::Gauge* recon_gauge = registry.gauge("vae.epoch.recon_loss");
  obs::Gauge* kl_gauge = registry.gauge("vae.epoch.kl_loss");

  const std::size_t steps_per_epoch =
      std::max<std::size_t>(1, n / options_.batch_size);
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    P3GM_TRACE_SPAN("vae.epoch");
    std::vector<std::size_t> perm = rng_.Permutation(n);
    double epoch_recon = 0.0, epoch_kl = 0.0, epoch_examples = 0.0;
    for (std::size_t step = 0; step < steps_per_epoch; ++step) {
      std::vector<std::size_t> idx;
      if (dp) {
        // Poisson sampling with rate q, matching the sampled-Gaussian
        // RDP analysis.
        idx = rng_.PoissonSample(n, q);
        if (idx.empty()) continue;
      } else {
        const std::size_t start = step * options_.batch_size;
        for (std::size_t i = start;
             i < std::min(start + options_.batch_size, n); ++i) {
          idx.push_back(perm[i]);
        }
      }
      const std::size_t b = idx.size();
      const linalg::Matrix xb = x.SelectRows(idx);

      zero_grads();
      // Forward.
      const linalg::Matrix h = encoder_trunk_.Forward(xb, true);
      const linalg::Matrix mu = mu_head_->Forward(h, true);
      linalg::Matrix logvar = logvar_head_->Forward(h, true);
      ClampInPlace(kLogVarMin, kLogVarMax, &logvar);
      linalg::Matrix eps(b, options_.latent_dim);
      for (std::size_t i = 0; i < eps.size(); ++i) {
        eps.data()[i] = rng_.Normal();
      }
      linalg::Matrix z = mu;
      linalg::Matrix half_std(b, options_.latent_dim);
      for (std::size_t i = 0; i < z.size(); ++i) {
        const double std_i = std::exp(0.5 * logvar.data()[i]);
        half_std.data()[i] = std_i;
        z.data()[i] += std_i * eps.data()[i];
      }
      const linalg::Matrix logits = decoder_.Forward(z, true);

      // Losses. In DP mode gradients must stay per-example sums (the
      // averaging happens after noising), so mean=false there.
      const bool mean = !dp;
      const nn::LossResult recon =
          options_.decoder == DecoderType::kBernoulli
              ? nn::BceWithLogitsLoss(logits, xb, mean)
              : nn::MseLoss(logits, xb, mean);
      const nn::KlResult kl = nn::StandardNormalKl(mu, logvar, mean);
      for (std::size_t i = 0; i < b; ++i) {
        epoch_recon += recon.per_example[i];
        epoch_kl += kl.per_example[i];
      }
      epoch_examples += static_cast<double>(b);
      {
        double batch_recon = 0.0;
        for (double v : recon.per_example) batch_recon += v;
        trace_.recon_loss.push_back(batch_recon / static_cast<double>(b));
      }

      // Backward through decoder and reparametrization.
      const linalg::Matrix dz = decoder_.Backward(recon.grad, !dp);
      linalg::Matrix dmu = dz;
      dmu += kl.grad_mu;
      linalg::Matrix dlogvar = kl.grad_logvar;
      for (std::size_t i = 0; i < dlogvar.size(); ++i) {
        dlogvar.data()[i] +=
            dz.data()[i] * eps.data()[i] * 0.5 * half_std.data()[i];
      }
      linalg::Matrix dh = mu_head_->Backward(dmu, !dp);
      dh += logvar_head_->Backward(dlogvar, !dp);
      encoder_trunk_.Backward(dh, !dp);

      if (dp) {
        nn::DpSgdStep dp_step(dp_opts, &rng_);
        P3GM_RETURN_NOT_OK(dp_step.CollectSquaredNorms(stacks, b));
        dp_step.ApplyClippedAccumulation(stacks);
        dp_step.AddNoiseAndAverage(params, b);
        ++sgd_steps_taken_;
        dp::MechanismEvent event;
        event.mechanism = "sampled_gaussian";
        event.sigma = options_.sgd_sigma;
        event.sampling_rate = q;
        accountant_.AddEvent(event, sgd_curve);
      }
      optimizer_.Step(params);
      batches->Add();
    }
    epoch_gauge->Set(static_cast<double>(epoch + 1));
    recon_gauge->Set(epoch_examples > 0 ? epoch_recon / epoch_examples : 0.0);
    kl_gauge->Set(epoch_examples > 0 ? epoch_kl / epoch_examples : 0.0);
    if (callback) {
      TrainProgress progress;
      progress.epoch = epoch;
      progress.recon_loss =
          epoch_examples > 0 ? epoch_recon / epoch_examples : 0.0;
      progress.kl_loss = epoch_examples > 0 ? epoch_kl / epoch_examples : 0.0;
      callback(progress);
    }
  }
  return util::Status::OK();
}

linalg::Matrix Vae::Sample(std::size_t n, util::Rng* rng) {
  linalg::Matrix z(n, options_.latent_dim);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng->Normal();
  return Decode(z);
}

linalg::Matrix Vae::Decode(const linalg::Matrix& z) {
  linalg::Matrix logits = decoder_.Forward(z, false);
  double* data = logits.data();
  if (options_.decoder == DecoderType::kBernoulli) {
    for (std::size_t i = 0; i < logits.size(); ++i) {
      data[i] = nn::SigmoidScalar(data[i]);
    }
  } else {
    // Gaussian decoder: outputs are means in data space, clamped to the
    // [0,1] feature domain.
    for (std::size_t i = 0; i < logits.size(); ++i) {
      data[i] = std::clamp(data[i], 0.0, 1.0);
    }
  }
  return logits;
}

linalg::Matrix Vae::EncodeMean(const linalg::Matrix& x) {
  return mu_head_->Forward(encoder_trunk_.Forward(x, false), false);
}

std::vector<linalg::Matrix> Vae::ExportDecoderWeights() {
  P3GM_CHECK_MSG(fitted_, "ExportDecoderWeights before Fit");
  std::vector<linalg::Matrix> out;
  for (nn::Parameter* p : decoder_.Parameters()) out.push_back(p->value);
  return out;  // {W1, b1, W2, b2} in layer order.
}

dp::DpGuarantee Vae::ComputeEpsilon(double delta) const {
  dp::DpGuarantee out;
  out.delta = delta;
  if (!options_.differentially_private || sgd_steps_taken_ == 0) {
    out.epsilon = 0.0;
    return out;
  }
  dp::RdpAccountant acc;
  const double q = static_cast<double>(options_.batch_size) /
                   static_cast<double>(data_size_);
  acc.AddSampledGaussian(q, options_.sgd_sigma, sgd_steps_taken_);
  return acc.GetEpsilon(delta);
}

}  // namespace core
}  // namespace p3gm
