#ifndef P3GM_CORE_MIXTURE_KL_H_
#define P3GM_CORE_MIXTURE_KL_H_

#include <vector>

#include "linalg/matrix.h"
#include "stats/gmm.h"

namespace p3gm {
namespace core {

/// Batched KL(N(mu_i, diag(var_i)) || MoG) with the gradient P3GM's
/// decoding phase needs. The value uses the Hershey–Olsen variational
/// approximation D = -log sum_b pi_b exp(-KL_b) (paper Section IV-D);
/// the gradient flows only to the log-variances because the encoder mean
/// is frozen to f(x) (Section V-B).
struct MixtureKlResult {
  double value = 0.0;
  std::vector<double> per_example;
  /// d value / d logvar, same shape as the logvar input.
  linalg::Matrix grad_logvar;
};

/// `mu` and `logvar` are (B x d) with d == prior.dim(). When `mean` is
/// true the value and gradients carry a 1/B factor (standard training);
/// when false they are per-example sums (the DP-SGD path).
MixtureKlResult MixturePriorKl(const linalg::Matrix& mu,
                               const linalg::Matrix& logvar,
                               const stats::GaussianMixture& prior,
                               bool mean = true);

}  // namespace core
}  // namespace p3gm

#endif  // P3GM_CORE_MIXTURE_KL_H_
