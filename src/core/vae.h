#ifndef P3GM_CORE_VAE_H_
#define P3GM_CORE_VAE_H_

#include <functional>
#include <memory>
#include <vector>

#include "dp/accountant.h"
#include "linalg/matrix.h"
#include "nn/dp_sgd.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace core {

/// Progress report passed to the per-epoch callback during training.
struct TrainProgress {
  std::size_t epoch = 0;
  /// Mean per-example reconstruction loss (first ELBO term) this epoch.
  double recon_loss = 0.0;
  /// Mean per-example KL term this epoch.
  double kl_loss = 0.0;
};
using EpochCallback = std::function<void(const TrainProgress&)>;

/// Per-iteration reconstruction-loss trace (Fig. 7a/b granularity).
struct IterationTrace {
  std::vector<double> recon_loss;
};

/// Observation model of the decoder head (paper Section IV-C: "a
/// Bernoulli or Gaussian MLP depending on the type of data").
enum class DecoderType {
  /// Bernoulli likelihood on [0,1] data: BCE loss, sigmoid outputs.
  kBernoulli,
  /// Fixed-variance Gaussian likelihood: MSE loss, linear outputs
  /// clamped to [0,1] at sampling time. Better for continuous tabular
  /// features concentrated away from {0,1}.
  kGaussian,
};

/// Configuration shared by VAE and DP-VAE.
struct VaeOptions {
  /// Hidden width of the one-hidden-layer encoder/decoder MLPs. The paper
  /// uses 1000; the benches default lower to fit the single-core budget.
  std::size_t hidden = 200;
  /// Latent dimensionality d'.
  std::size_t latent_dim = 10;
  std::size_t epochs = 10;
  std::size_t batch_size = 120;
  double learning_rate = 1e-3;
  /// Observation model of the reconstruction term.
  DecoderType decoder = DecoderType::kBernoulli;
  std::uint64_t seed = 57;

  /// When true, trains with DP-SGD (this is the paper's DP-VAE baseline).
  bool differentially_private = false;
  /// DP-SGD knobs (used only when differentially_private).
  double clip_norm = 1.0;
  double sgd_sigma = 1.5;
};

/// Variational autoencoder (Kingma & Welling) with the paper's
/// architecture: encoder FC [d, hidden, d'] with ReLU producing mean and
/// log-variance heads, Bernoulli decoder FC [d', hidden, d]. Trains
/// end-to-end on the ELBO with Adam; with
/// `options.differentially_private` gradients are per-example clipped and
/// noised (DP-SGD), which is exactly the paper's DP-VAE baseline.
///
/// Inputs must be scaled to [0, 1] (Bernoulli reconstruction).
class Vae {
 public:
  explicit Vae(const VaeOptions& options);

  /// Trains on rows of `x`. Safe to call once per instance.
  util::Status Fit(const linalg::Matrix& x,
                   const EpochCallback& callback = nullptr);

  /// Generates `n` rows: z ~ N(0, I), x = sigmoid(decoder(z)).
  linalg::Matrix Sample(std::size_t n, util::Rng* rng);

  /// Decodes the given latent rows.
  linalg::Matrix Decode(const linalg::Matrix& z);

  /// Encoder mean rows for `x` (diagnostics).
  linalg::Matrix EncodeMean(const linalg::Matrix& x);

  /// Privacy cost of the performed training under (epsilon, delta)-DP.
  /// Returns epsilon = 0 for the non-private configuration.
  dp::DpGuarantee ComputeEpsilon(double delta) const;

  /// The live accountant that composed each DP-SGD step as Fit performed
  /// it (ledger-enabled; feeds obs::PrivacyLedger when observability is
  /// on).
  const dp::RdpAccountant& accountant() const { return accountant_; }

  /// Per-iteration reconstruction losses recorded during Fit (Fig. 7a/b).
  const IterationTrace& trace() const { return trace_; }

  /// Exports the decoder's affine weights {W1, b1, W2, b2} for packaging
  /// into a ReleasePackage. Valid after Fit.
  std::vector<linalg::Matrix> ExportDecoderWeights();

  const VaeOptions& options() const { return options_; }

 private:
  VaeOptions options_;
  util::Rng rng_;
  dp::RdpAccountant accountant_;
  nn::Sequential encoder_trunk_;
  std::unique_ptr<nn::Linear> mu_head_;
  std::unique_ptr<nn::Linear> logvar_head_;
  nn::Sequential decoder_;
  nn::Adam optimizer_;
  IterationTrace trace_;
  std::size_t data_size_ = 0;
  std::size_t sgd_steps_taken_ = 0;
  bool fitted_ = false;
};

}  // namespace core
}  // namespace p3gm

#endif  // P3GM_CORE_VAE_H_
