#include "core/synthesizer.h"

#include <algorithm>
#include <cmath>

#include "data/transforms.h"

namespace p3gm {
namespace core {

PgmSynthesizer::PgmSynthesizer(const PgmOptions& options)
    : options_(options) {}

util::Status PgmSynthesizer::Fit(const data::Dataset& train) {
  if (model_) {
    return util::Status::FailedPrecondition("PgmSynthesizer::Fit twice");
  }
  if (train.size() == 0) {
    return util::Status::InvalidArgument("PgmSynthesizer: empty dataset");
  }
  num_classes_ = train.num_classes;
  dataset_name_ = train.name;
  const linalg::Matrix joint =
      data::AttachLabels(train.features, train.labels, num_classes_);
  model_ = std::make_unique<Pgm>(options_);
  return model_->Fit(joint);
}

util::Result<data::Dataset> PgmSynthesizer::Generate(std::size_t n,
                                                     util::Rng* rng) {
  if (!model_) {
    return util::Status::FailedPrecondition(
        "PgmSynthesizer: Generate before Fit");
  }
  const linalg::Matrix joint = model_->Sample(n, rng);
  data::LabeledRows rows = data::DetachLabels(joint, num_classes_);
  data::Dataset out;
  out.name = dataset_name_ + "+" + name();
  out.num_classes = num_classes_;
  out.features = std::move(rows.features);
  out.labels = std::move(rows.labels);
  return out;
}

dp::DpGuarantee PgmSynthesizer::ComputeEpsilon(double delta) const {
  if (!model_) {
    dp::DpGuarantee g;
    g.delta = delta;
    return g;
  }
  return model_->ComputeEpsilon(delta);
}

std::string PgmSynthesizer::name() const {
  if (!options_.differentially_private) return "PGM";
  return options_.freeze_variance ? "P3GM(AE)" : "P3GM";
}

VaeSynthesizer::VaeSynthesizer(const VaeOptions& options)
    : options_(options) {}

util::Status VaeSynthesizer::Fit(const data::Dataset& train) {
  if (model_) {
    return util::Status::FailedPrecondition("VaeSynthesizer::Fit twice");
  }
  if (train.size() == 0) {
    return util::Status::InvalidArgument("VaeSynthesizer: empty dataset");
  }
  num_classes_ = train.num_classes;
  dataset_name_ = train.name;
  const linalg::Matrix joint =
      data::AttachLabels(train.features, train.labels, num_classes_);
  model_ = std::make_unique<Vae>(options_);
  return model_->Fit(joint);
}

util::Result<data::Dataset> VaeSynthesizer::Generate(std::size_t n,
                                                     util::Rng* rng) {
  if (!model_) {
    return util::Status::FailedPrecondition(
        "VaeSynthesizer: Generate before Fit");
  }
  const linalg::Matrix joint = model_->Sample(n, rng);
  data::LabeledRows rows = data::DetachLabels(joint, num_classes_);
  data::Dataset out;
  out.name = dataset_name_ + "+" + name();
  out.num_classes = num_classes_;
  out.features = std::move(rows.features);
  out.labels = std::move(rows.labels);
  return out;
}

dp::DpGuarantee VaeSynthesizer::ComputeEpsilon(double delta) const {
  if (!model_) {
    dp::DpGuarantee g;
    g.delta = delta;
    return g;
  }
  return model_->ComputeEpsilon(delta);
}

std::string VaeSynthesizer::name() const {
  return options_.differentially_private ? "DP-VAE" : "VAE";
}

util::Result<data::Dataset> GenerateWithLabelRatio(
    Synthesizer* synth, std::size_t n, const data::Dataset& reference,
    util::Rng* rng, std::size_t oversample) {
  if (n == 0 || reference.size() == 0) {
    return util::Status::InvalidArgument(
        "GenerateWithLabelRatio: empty request or reference");
  }
  P3GM_ASSIGN_OR_RETURN(data::Dataset pool,
                        synth->Generate(n * std::max<std::size_t>(
                                                1, oversample),
                                        rng));
  const std::vector<std::size_t> ref_counts = reference.ClassCounts();
  std::vector<std::vector<std::size_t>> by_class(pool.num_classes);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool.labels[i] < pool.num_classes) {
      by_class[pool.labels[i]].push_back(i);
    }
  }
  std::vector<std::size_t> idx;
  idx.reserve(n);
  for (std::size_t c = 0; c < pool.num_classes; ++c) {
    const auto want = static_cast<std::size_t>(std::round(
        static_cast<double>(n) * static_cast<double>(ref_counts[c]) /
        static_cast<double>(reference.size())));
    if (by_class[c].empty()) continue;  // Backfilled below.
    for (std::size_t k = 0; k < want; ++k) {
      idx.push_back(by_class[c][rng->UniformInt(by_class[c].size())]);
    }
  }
  while (idx.size() < n) idx.push_back(rng->UniformInt(pool.size()));
  rng->Shuffle(&idx);
  idx.resize(n);

  data::Dataset out;
  out.name = pool.name;
  out.num_classes = pool.num_classes;
  out.features = pool.features.SelectRows(idx);
  out.labels.reserve(n);
  for (std::size_t i : idx) out.labels.push_back(pool.labels[i]);
  return out;
}

}  // namespace core
}  // namespace p3gm
