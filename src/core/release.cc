#include "core/release.h"

#include <algorithm>
#include <utility>

#include "audit/fault_injection.h"
#include "data/transforms.h"
#include "infer/plan.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "util/check.h"
#include "util/serialize.h"

namespace p3gm {
namespace core {

namespace {

constexpr std::uint32_t kMagic = 0x50334752;  // "P3GR".
// v1: prior + decoder weights. v2 appends a quality fingerprint
// (obs/quality/fingerprint.h). Save emits v1 when no fingerprint is
// embedded, so fingerprint-less files stay byte-identical to the old
// format and old readers keep working; Load accepts both.
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersionFingerprint = 2;

util::Status CheckWeights(const std::vector<linalg::Matrix>& w) {
  if (w.size() != 4) {
    return util::Status::Internal("decoder export: expected 4 tensors");
  }
  // {W1 (dl x h), b1 (1 x h), W2 (h x d), b2 (1 x d)}.
  if (w[1].rows() != 1 || w[3].rows() != 1 ||
      w[0].cols() != w[1].cols() || w[0].cols() != w[2].rows() ||
      w[2].cols() != w[3].cols()) {
    return util::Status::Internal("decoder export: inconsistent shapes");
  }
  return util::Status::OK();
}

}  // namespace

util::Result<ReleasePackage> ReleasePackage::FromPgm(Pgm* model,
                                                     std::size_t num_classes,
                                                     std::string name) {
  std::vector<linalg::Matrix> w = model->ExportDecoderWeights();
  P3GM_RETURN_NOT_OK(CheckWeights(w));
  ReleasePackage pkg;
  pkg.name_ = std::move(name);
  pkg.num_classes_ = num_classes;
  pkg.decoder_type_ = model->options().decoder;
  pkg.prior_ = model->prior();
  pkg.w1_ = std::move(w[0]);
  pkg.b1_ = std::move(w[1]);
  pkg.w2_ = std::move(w[2]);
  pkg.b2_ = std::move(w[3]);
  P3GM_RETURN_NOT_OK(pkg.Validate());
  pkg.CompilePlan();
  return pkg;
}

util::Result<ReleasePackage> ReleasePackage::FromVae(Vae* model,
                                                     std::size_t num_classes,
                                                     std::string name) {
  std::vector<linalg::Matrix> w = model->ExportDecoderWeights();
  P3GM_RETURN_NOT_OK(CheckWeights(w));
  ReleasePackage pkg;
  pkg.name_ = std::move(name);
  pkg.num_classes_ = num_classes;
  pkg.decoder_type_ = model->options().decoder;
  const std::size_t dl = w[0].rows();
  P3GM_ASSIGN_OR_RETURN(
      pkg.prior_,
      stats::GaussianMixture::Create({1.0}, linalg::Matrix(1, dl),
                                     linalg::Matrix(1, dl, 1.0)));
  pkg.w1_ = std::move(w[0]);
  pkg.b1_ = std::move(w[1]);
  pkg.w2_ = std::move(w[2]);
  pkg.b2_ = std::move(w[3]);
  P3GM_RETURN_NOT_OK(pkg.Validate());
  pkg.CompilePlan();
  return pkg;
}

util::Result<ReleasePackage> ReleasePackage::FromParts(
    std::string name, std::size_t num_classes, DecoderType decoder,
    stats::GaussianMixture prior, linalg::Matrix w1, linalg::Matrix b1,
    linalg::Matrix w2, linalg::Matrix b2) {
  P3GM_RETURN_NOT_OK(CheckWeights({w1, b1, w2, b2}));
  ReleasePackage pkg;
  pkg.name_ = std::move(name);
  pkg.num_classes_ = num_classes;
  pkg.decoder_type_ = decoder;
  pkg.prior_ = std::move(prior);
  pkg.w1_ = std::move(w1);
  pkg.b1_ = std::move(b1);
  pkg.w2_ = std::move(w2);
  pkg.b2_ = std::move(b2);
  P3GM_RETURN_NOT_OK(pkg.Validate());
  pkg.CompilePlan();
  return pkg;
}

void ReleasePackage::CompilePlan() {
  // hidden = relu(z W1 + b1); output = head(h W2 + b2), where the head
  // matches DecodeLatent's reference epilogue for this decoder type.
  const infer::Activation head = decoder_type_ == DecoderType::kBernoulli
                                     ? infer::Activation::kSigmoid
                                     : infer::Activation::kClamp01;
  util::Result<infer::DecoderPlan> plan = infer::DecoderPlan::Compile(
      {{&w1_, &b1_, infer::Activation::kRelu}, {&w2_, &b2_, head}});
  P3GM_CHECK_MSG(plan.ok(), "ReleasePackage: decoder plan compilation failed");
  plan_ = std::make_shared<const infer::DecoderPlan>(
      std::move(plan).ValueOrDie());
}

util::Status ReleasePackage::Validate() const {
  if (w1_.empty() || w2_.empty()) {
    return util::Status::FailedPrecondition("ReleasePackage: empty decoder");
  }
  if (prior_.dim() != w1_.rows()) {
    return util::Status::InvalidArgument(
        "ReleasePackage: prior/decoder latent dimension mismatch");
  }
  if (num_classes_ >= output_dim() && num_classes_ != 0) {
    return util::Status::InvalidArgument(
        "ReleasePackage: label block exceeds output dimension");
  }
  return util::Status::OK();
}

util::Status ReleasePackage::Save(const std::string& path) const {
  P3GM_RETURN_NOT_OK(Validate());
  util::BinaryWriter w(path, kMagic,
                       fingerprint_ ? kVersionFingerprint : kVersion);
  P3GM_RETURN_NOT_OK(w.status());
  w.WriteString(name_);
  w.WriteU64(num_classes_);
  w.WriteU64(decoder_type_ == DecoderType::kBernoulli ? 0 : 1);
  // Prior.
  w.WriteU64(prior_.num_components());
  w.WriteU64(prior_.dim());
  w.WriteDoubles(prior_.weights());
  w.WriteMatrix(prior_.means().rows(), prior_.means().cols(),
                prior_.means().data());
  w.WriteMatrix(prior_.variances().rows(), prior_.variances().cols(),
                prior_.variances().data());
  // Decoder.
  for (const linalg::Matrix* m : {&w1_, &b1_, &w2_, &b2_}) {
    w.WriteMatrix(m->rows(), m->cols(), m->data());
  }
  if (fingerprint_) fingerprint_->WriteTo(&w);
  return w.Close();
}

util::Result<ReleasePackage> ReleasePackage::Load(const std::string& path) {
  util::BinaryReader r(path, kMagic, kVersion, kVersionFingerprint);
  P3GM_RETURN_NOT_OK(r.status());
  ReleasePackage pkg;
  P3GM_ASSIGN_OR_RETURN(pkg.name_, r.ReadString());
  P3GM_ASSIGN_OR_RETURN(std::uint64_t classes, r.ReadU64());
  pkg.num_classes_ = static_cast<std::size_t>(classes);
  P3GM_ASSIGN_OR_RETURN(std::uint64_t decoder_code, r.ReadU64());
  if (decoder_code > 1) {
    return util::Status::InvalidArgument(
        "ReleasePackage: unknown decoder type");
  }
  pkg.decoder_type_ = decoder_code == 0 ? DecoderType::kBernoulli
                                        : DecoderType::kGaussian;

  P3GM_ASSIGN_OR_RETURN(std::uint64_t k, r.ReadU64());
  P3GM_ASSIGN_OR_RETURN(std::uint64_t dim, r.ReadU64());
  P3GM_ASSIGN_OR_RETURN(std::vector<double> weights, r.ReadDoubles());
  if (weights.size() != k) {
    return util::Status::InvalidArgument(
        "ReleasePackage: prior weight count mismatch");
  }
  auto read_matrix = [&r](linalg::Matrix* out) -> util::Status {
    std::size_t rows = 0, cols = 0;
    std::vector<double> flat;
    P3GM_RETURN_NOT_OK(r.ReadMatrix(&rows, &cols, &flat));
    P3GM_ASSIGN_OR_RETURN(*out,
                          linalg::Matrix::FromFlat(rows, cols,
                                                   std::move(flat)));
    return util::Status::OK();
  };
  linalg::Matrix means, variances;
  P3GM_RETURN_NOT_OK(read_matrix(&means));
  P3GM_RETURN_NOT_OK(read_matrix(&variances));
  if (means.rows() != k || means.cols() != dim) {
    return util::Status::InvalidArgument(
        "ReleasePackage: prior mean shape mismatch");
  }
  P3GM_ASSIGN_OR_RETURN(
      pkg.prior_,
      stats::GaussianMixture::Create(std::move(weights), std::move(means),
                                     std::move(variances)));
  P3GM_RETURN_NOT_OK(read_matrix(&pkg.w1_));
  P3GM_RETURN_NOT_OK(read_matrix(&pkg.b1_));
  P3GM_RETURN_NOT_OK(read_matrix(&pkg.w2_));
  P3GM_RETURN_NOT_OK(read_matrix(&pkg.b2_));
  if (r.version() >= kVersionFingerprint) {
    P3GM_ASSIGN_OR_RETURN(obs::quality::Fingerprint fp,
                          obs::quality::Fingerprint::ReadFrom(&r));
    if (fp.feature_dim() !=
        static_cast<std::size_t>(pkg.w2_.cols()) - pkg.num_classes_) {
      return util::Status::InvalidArgument(
          "ReleasePackage: fingerprint dimension mismatch");
    }
    pkg.SetFingerprint(std::move(fp));
  }
  P3GM_RETURN_NOT_OK(pkg.Validate());
  pkg.CompilePlan();
  return pkg;
}

linalg::Matrix ReleasePackage::SampleLatent(std::size_t n,
                                            util::Rng* rng) const {
  return prior_.SampleN(n, rng);
}

util::Result<linalg::Matrix> ReleasePackage::DecodeLatent(
    const linalg::Matrix& z) const {
  linalg::Matrix out;
  P3GM_RETURN_NOT_OK(DecodeLatentInto(z, &out));
  return out;
}

util::Status ReleasePackage::DecodeLatentInto(const linalg::Matrix& z,
                                              linalg::Matrix* out) const {
  P3GM_CHECK(out != nullptr);
  P3GM_RETURN_NOT_OK(Validate());
  if (z.cols() != latent_dim()) {
    return util::Status::InvalidArgument(
        "ReleasePackage: latent dimension mismatch");
  }
  // Planned path: the pre-compiled infer::DecoderPlan runs the same
  // forward pass through packed weights, arena buffers, and fused
  // kernels. Bit-identical to the reference sequence below by the
  // accumulation-order contract (docs/inference.md); the reference is
  // kept as the escape hatch (`p3gm serve --no-planned-decode`,
  // P3GM_NO_PLANNED_DECODE=1) and as the oracle the equivalence suite
  // pins the planned runtime against.
  if (plan_ != nullptr && infer::PlannedDecodeEnabled() && z.rows() > 0) {
    P3GM_RETURN_NOT_OK(plan_->Execute(z, out));
  } else {
    linalg::Matrix h = linalg::Matmul(z, w1_);
    linalg::AddRowVector(b1_.Row(0), &h);
    double* hd = h.data();
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (hd[i] < 0.0) hd[i] = 0.0;  // ReLU.
    }
    linalg::Matrix logits = linalg::Matmul(h, w2_);
    linalg::AddRowVector(b2_.Row(0), &logits);
    double* ld = logits.data();
    if (decoder_type_ == DecoderType::kBernoulli) {
      for (std::size_t i = 0; i < logits.size(); ++i) {
        ld[i] = nn::SigmoidScalar(ld[i]);
      }
    } else {
      for (std::size_t i = 0; i < logits.size(); ++i) {
        ld[i] = std::clamp(ld[i], 0.0, 1.0);
      }
    }
    *out = std::move(logits);
  }
  // Audit negative control: a constant post-activation shift of one
  // output column (quality-drift detection must catch exactly this).
  // Applied after either runtime so the perturbation is identical under
  // planned and reference decode; compiles to nothing when fault
  // injection is off, and is branch-predicted away when idle.
  const double bias_shift = audit::DecoderBiasShift();
  if (bias_shift != 0.0) {
    const std::size_t col = audit::DecoderBiasFeature();
    if (col < out->cols()) {
      for (std::size_t r = 0; r < out->rows(); ++r) {
        out->row_data(r)[col] += bias_shift;
      }
    }
  }
  return util::Status::OK();
}

data::Dataset ReleasePackage::AssembleRows(linalg::Matrix outputs) const {
  data::Dataset out;
  out.name = name_;
  const std::size_t n = outputs.rows();
  if (num_classes_ > 0) {
    out.num_classes = num_classes_;
    data::LabeledRows rows = data::DetachLabels(outputs, num_classes_);
    out.features = std::move(rows.features);
    out.labels = std::move(rows.labels);
  } else {
    out.num_classes = 1;
    out.features = std::move(outputs);
    out.labels.assign(n, 0);
  }
  return out;
}

util::Result<data::Dataset> ReleasePackage::Generate(std::size_t n,
                                                     util::Rng* rng) const {
  P3GM_RETURN_NOT_OK(Validate());
  if (n == 0) {
    return util::Status::InvalidArgument("ReleasePackage: n must be > 0");
  }
  P3GM_ASSIGN_OR_RETURN(linalg::Matrix outputs,
                        DecodeLatent(SampleLatent(n, rng)));
  return AssembleRows(std::move(outputs));
}

util::Result<obs::quality::Fingerprint> BuildFingerprint(
    const ReleasePackage& pkg, std::size_t n, std::uint64_t seed) {
  if (n == 0) {
    return util::Status::InvalidArgument("BuildFingerprint: n must be > 0");
  }
  util::Rng rng(seed);
  P3GM_ASSIGN_OR_RETURN(linalg::Matrix outputs,
                        pkg.DecodeLatent(pkg.SampleLatent(n, &rng)));
  return obs::quality::Fingerprint::FromDecoded(outputs, pkg.num_classes(),
                                                seed);
}

}  // namespace core
}  // namespace p3gm
