#include "serve/http.h"

#include <algorithm>
#include <cctype>

namespace p3gm {
namespace serve {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// RFC 7230 token characters, the only bytes legal in a method or header
// name. Everything else (including NUL, spaces and control bytes) makes
// the message malformed.
bool IsTokenChar(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  if (u <= 0x20 || u >= 0x7f) return false;
  switch (c) {
    case '(': case ')': case '<': case '>': case '@':
    case ',': case ';': case ':': case '\\': case '"':
    case '/': case '[': case ']': case '?': case '=':
    case '{': case '}':
      return false;
    default:
      return true;
  }
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

const std::string* HttpRequest::QueryParam(const std::string& key) const {
  for (const auto& [name, value] : query_params) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("Connection");
  if (connection != nullptr) {
    if (EqualsIgnoreCase(*connection, "close")) return false;
    if (EqualsIgnoreCase(*connection, "keep-alive")) return true;
  }
  return version == "HTTP/1.1";
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpResponse::Serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += ReasonPhrase(status);
  out += "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  for (const auto& [key, value] : extra_headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (close_connection) out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpParser::HttpParser(HttpLimits limits) : limits_(limits) {}

void HttpParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
}

void HttpParser::Feed(const char* data, std::size_t len) {
  if (state_ == State::kError) return;
  buffer_.append(data, len);
  TryParse();
}

void HttpParser::ResetForNext() {
  if (state_ != State::kDone) return;
  request_ = HttpRequest();
  body_bytes_needed_ = 0;
  state_ = State::kHeaders;
  error_status_ = 0;
  error_message_.clear();
  TryParse();
}

void HttpParser::TryParse() {
  if (state_ == State::kHeaders) {
    // Find the end of the header block without scanning the same prefix
    // repeatedly: the block is small (limits enforced below).
    const std::size_t block_end = buffer_.find("\r\n\r\n");
    if (block_end == std::string::npos) {
      // Enforce limits on the incomplete prefix too, so a peer cannot
      // stream an unbounded header block that never terminates.
      if (buffer_.size() >
          limits_.max_header_bytes + limits_.max_start_line) {
        Fail(431, "header block too large");
      }
      return;
    }
    if (!ParseHeaderBlock(block_end)) return;  // Fail() already called.
    buffer_.erase(0, block_end + 4);
    if (body_bytes_needed_ == 0) {
      state_ = State::kDone;
      return;
    }
    state_ = State::kBody;
  }
  if (state_ == State::kBody) {
    if (buffer_.size() < body_bytes_needed_) return;
    request_.body = buffer_.substr(0, body_bytes_needed_);
    buffer_.erase(0, body_bytes_needed_);
    body_bytes_needed_ = 0;
    state_ = State::kDone;
  }
}

bool HttpParser::ParseHeaderBlock(std::size_t block_end) {
  // --- Request line.
  const std::size_t line_end = buffer_.find("\r\n");
  if (line_end > limits_.max_start_line) {
    Fail(414, "request line too long");
    return false;
  }
  const std::string line = buffer_.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = line.substr(sp2 + 1);
  if (!IsToken(request_.method)) {
    Fail(400, "malformed method token");
    return false;
  }
  if (request_.target.empty() || request_.target[0] != '/') {
    Fail(400, "target must be an origin-form path");
    return false;
  }
  for (const char c : request_.target) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7f) {
      Fail(400, "control byte in request target");
      return false;
    }
  }
  // Split path from query so routing matches "/v1/metrics" regardless of
  // "?format=...". Parameters keep their raw bytes (no percent decoding).
  const std::size_t qmark = request_.target.find('?');
  if (qmark == std::string::npos) {
    request_.path = request_.target;
  } else {
    request_.path = request_.target.substr(0, qmark);
    request_.query = request_.target.substr(qmark + 1);
    std::size_t start = 0;
    while (start <= request_.query.size() && !request_.query.empty()) {
      std::size_t amp = request_.query.find('&', start);
      if (amp == std::string::npos) amp = request_.query.size();
      const std::string pair = request_.query.substr(start, amp - start);
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          request_.query_params.emplace_back(pair, "");
        } else {
          request_.query_params.emplace_back(pair.substr(0, eq),
                                             pair.substr(eq + 1));
        }
      }
      start = amp + 1;
    }
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    Fail(400, "unsupported HTTP version");
    return false;
  }

  // --- Header fields.
  if (block_end - line_end > limits_.max_header_bytes) {
    Fail(431, "header block too large");
    return false;
  }
  std::size_t pos = line_end + 2;
  bool have_content_length = false;
  while (pos < block_end) {
    const std::size_t eol = std::min(buffer_.find("\r\n", pos), block_end);
    const std::string field = buffer_.substr(pos, eol - pos);
    pos = eol + 2;
    if (request_.headers.size() >= limits_.max_headers) {
      Fail(431, "too many header fields");
      return false;
    }
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header field");
      return false;
    }
    std::string name = field.substr(0, colon);
    if (!IsToken(name)) {
      Fail(400, "malformed header name");
      return false;
    }
    std::size_t vbegin = colon + 1;
    while (vbegin < field.size() &&
           (field[vbegin] == ' ' || field[vbegin] == '\t')) {
      ++vbegin;
    }
    std::size_t vend = field.size();
    while (vend > vbegin &&
           (field[vend - 1] == ' ' || field[vend - 1] == '\t')) {
      --vend;
    }
    std::string value = field.substr(vbegin, vend - vbegin);
    for (const char c : value) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u < 0x20 && c != '\t') {
        Fail(400, "control byte in header value");
        return false;
      }
    }
    if (EqualsIgnoreCase(name, "Transfer-Encoding")) {
      Fail(501, "transfer-encoding not supported");
      return false;
    }
    if (EqualsIgnoreCase(name, "Content-Length")) {
      // Strict digits-only parse: "-1", "1e9", "12abc", empty, and
      // values past the body cap are all rejected before any buffer is
      // sized from them.
      if (value.empty() || value.size() > 20 ||
          !std::all_of(value.begin(), value.end(), [](char c) {
            return c >= '0' && c <= '9';
          })) {
        Fail(400, "malformed Content-Length");
        return false;
      }
      unsigned long long parsed = 0;
      for (const char c : value) {
        parsed = parsed * 10 + static_cast<unsigned long long>(c - '0');
        if (parsed > limits_.max_body_bytes) {
          Fail(413, "declared body exceeds limit");
          return false;
        }
      }
      const std::size_t length = static_cast<std::size_t>(parsed);
      if (have_content_length && length != body_bytes_needed_) {
        Fail(400, "conflicting Content-Length headers");
        return false;
      }
      have_content_length = true;
      body_bytes_needed_ = length;
    }
    request_.headers.emplace_back(std::move(name), std::move(value));
  }
  return true;
}

}  // namespace serve
}  // namespace p3gm
