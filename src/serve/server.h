#ifndef P3GM_SERVE_SERVER_H_
#define P3GM_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "obs/trace_context.h"
#include "serve/batcher.h"
#include "serve/http.h"
#include "serve/model_registry.h"
#include "serve/poller.h"
#include "serve/quality.h"
#include "serve/sample_cache.h"
#include "util/result.h"

namespace p3gm {
namespace serve {

/// Tuning knobs for the daemon. The defaults suit the e2e tests; the
/// CLI maps its --flags onto this struct after strict validation.
struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (query via port()).
  std::size_t max_connections = 256;
  /// Request batching (1 = off) — see BatcherOptions.
  std::size_t max_batch = 8;
  std::size_t max_batch_rows = 8192;
  std::size_t queue_limit = 256;
  /// Sample-cache entries (0 = off).
  std::size_t cache_entries = 0;
  /// Upper bound on "n" per sample request.
  std::size_t max_n = 100000;
  /// Stream family for unseeded requests (Rng::StreamAt(seed, i)).
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// How long Stop() waits for in-flight work and unflushed responses
  /// before force-closing stragglers.
  int drain_timeout_ms = 5000;
  /// Requests slower than this log one WARN record with the request's
  /// trace id, endpoint, status and latency. 0 disables the log.
  int slow_request_ms = 0;
  /// --profile-on-slow: directory that receives a short CPU-profile
  /// burst (folded stacks, one file per incident) whenever the
  /// slow-request WARN above fires, so tail-latency incidents arrive
  /// with a flamegraph attached. Empty disables; requires
  /// slow_request_ms > 0 to ever trigger. Bursts are skipped (counted,
  /// never queued) while another profile is running.
  std::string profile_on_slow_dir;
  /// Burst length for --profile-on-slow captures.
  int profile_on_slow_seconds = 1;
  /// Decode through the compiled infer::DecoderPlan (packed weights,
  /// arena buffers, SIMD kernels). false routes every decode through the
  /// reference nn/linalg path instead — the `--no-planned-decode`
  /// escape hatch; outputs are bit-identical either way (see
  /// docs/inference.md).
  bool planned_decode = true;
  /// Synthesis-quality monitoring (docs/observability.md "Synthesis
  /// quality"): per-model streaming sketches folded from every decoded
  /// batch, scored against the package fingerprint on scrape.
  QualityOptions quality;
  HttpLimits http;
};

/// The `p3gm serve` daemon: a single-threaded epoll/poll event loop
/// (accept, parse, route, write) plus one batching executor thread that
/// runs coalesced decoder passes (which in turn fan out through
/// util::ThreadPool inside the gemm kernels). Sample requests park
/// their connection until the batcher completes them via the wakeup
/// pipe; every other endpoint answers inline. See docs/serving.md for
/// the HTTP API and operational semantics.
///
/// Lifecycle: Init (bind + load packages) -> Start (spawn threads) ->
/// Stop (graceful drain; also run by the destructor). Stop() stops
/// accepting, lets queued sample jobs finish, flushes response buffers
/// (bounded by drain_timeout_ms), then joins both threads.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listen socket and loads every package path (serving name
  /// = file basename sans extension). Call once before Start.
  util::Status Init(const std::vector<std::string>& package_paths);

  util::Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Blocks until the event loop exits (Stop() or a signal-requested
  /// stop). For CLI use after InstallSignalHandlers.
  void WaitUntilStopped();

  /// The bound TCP port (after Init).
  int port() const { return bound_port_; }

  ModelRegistry& registry() { return registry_; }

  /// Thread-safe asynchronous requests; both just set a flag and wake
  /// the loop, so they are also async-signal-safe.
  void RequestStop();
  void RequestReload();

  /// Routes SIGTERM/SIGINT to RequestStop and SIGHUP to RequestReload
  /// for `server` (one process-wide slot; pass nullptr to detach).
  static void InstallSignalHandlers(Server* server);

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser;
    std::string out;            // Serialized, not yet written.
    std::size_t out_offset = 0;
    bool close_after_write = false;
    bool awaiting_sample = false;
    /// Parked on /v1/profile: the connection waits (no reads, like a
    /// parked sample) until the profile worker pushes its completion.
    bool awaiting_profile = false;
    std::uint64_t ticket = 0;
    // Context of the in-flight sample request, for response assembly.
    std::string model;
    std::uint64_t generation = 0;
    std::uint64_t request_start_ns = 0;
    // Current request's trace identity (ingested from a traceparent
    // header or freshly minted) plus latency-attribution facets; all
    // reset per request by Respond.
    obs::TraceContext trace;
    const char* endpoint = "other";  // Static strings only.
    bool cache_hit = false;

    Connection(int fd_in, HttpLimits limits)
        : fd(fd_in), parser(limits) {}
  };

  struct Completion {
    std::uint64_t ticket = 0;
    util::Result<data::Dataset> result;
  };

  /// A finished /v1/profile capture, ready to flush to its parked
  /// connection (same wakeup-pipe handoff as sample Completions).
  struct ProfileCompletion {
    std::uint64_t ticket = 0;
    HttpResponse response;
  };

  void LoopThread();
  void Wake();
  void AcceptNewConnections();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void PumpRequests(Connection* conn);
  void ProcessRequest(Connection* conn);
  void HandleSample(Connection* conn, const HttpRequest& req);
  /// GET /v1/profile?seconds=N&hz=M — parks the connection, runs the
  /// sampling CPU profiler on a worker thread, answers with folded
  /// stacks. 503 while any profile is already running.
  void HandleProfile(Connection* conn, const HttpRequest& req);
  /// GET /v1/profile/heap — inline snapshot of the sampled heap
  /// profile (running since Start when P3GM_ALLOC_TRACKING is ON).
  HttpResponse ProfileHeapResponse();
  /// Fire-and-forget burst capture for --profile-on-slow; skipped
  /// (counted) when a profile is already running.
  void MaybeStartSlowProfile();
  void Respond(Connection* conn, HttpResponse response);
  void UpdateInterest(Connection* conn);
  void CloseConnection(int fd);
  void DrainCompletions();
  void DrainProfileCompletions();
  HttpResponse ReloadNow();
  HttpResponse MetricsResponse(const HttpRequest& req);
  HttpResponse QualityResponse();
  /// Runs a quality scrape and logs the threshold-breach WARNs. Must be
  /// called inside the scraping request's obs::RequestScope so the WARN
  /// records carry its trace id.
  std::vector<QualityModelReport> ScrapeQuality();

  const ServerOptions options_;
  ModelRegistry registry_;
  QualitySet quality_;
  SampleCache cache_;
  std::unique_ptr<Batcher> batcher_;
  std::unique_ptr<Poller> poller_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int bound_port_ = 0;

  std::map<int, std::unique_ptr<Connection>> connections_;  // By fd.
  std::map<std::uint64_t, int> ticket_to_fd_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t next_stream_index_ = 0;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  // One profile at a time, process-wide: profile_busy_ is the admission
  // gate (exchange true = claimed); the single worker-thread slot is
  // joined before reuse and again at Stop.
  std::mutex profile_completions_mutex_;
  std::vector<ProfileCompletion> profile_completions_;
  std::thread profile_thread_;
  std::atomic<bool> profile_busy_{false};

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};
  std::atomic<bool> running_{false};
  bool initialized_ = false;
  std::mutex lifecycle_mutex_;  // Serializes Start/Stop.
  std::thread loop_thread_;
};

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_SERVER_H_
