#ifndef P3GM_SERVE_BATCHER_H_
#define P3GM_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/release.h"
#include "data/dataset.h"
#include "obs/trace_context.h"
#include "serve/sample_cache.h"
#include "util/result.h"

namespace p3gm {
namespace serve {

/// One queued sample request, carrying everything needed to execute it
/// off the event-loop thread. The package shared_ptr pins the model
/// across hot-reloads.
struct SampleJob {
  std::uint64_t ticket = 0;  // Server-side response correlation.
  std::string model;
  std::uint64_t generation = 0;
  std::shared_ptr<const core::ReleasePackage> package;
  std::size_t n = 0;
  bool has_seed = false;
  std::uint64_t seed = 0;
  /// Per-request counter index for unseeded jobs: latents come from
  /// util::Rng::StreamAt(server_seed, stream_index), so results do not
  /// depend on batch composition or scheduling.
  std::uint64_t stream_index = 0;
  /// Generate a full cache bucket (next pow2 >= n) and insert it.
  bool fill_cache = false;
  /// The originating request's trace context; the coalesced decode pass
  /// records one child slice span per job so the batch links back to
  /// every request it served.
  obs::TraceContext trace;
};

struct BatcherOptions {
  /// Most requests coalesced into one decoder forward pass. 1 disables
  /// batching (every request decodes alone) — the bench_serve baseline.
  std::size_t max_batch_requests = 8;
  /// Row budget per coalesced pass, so one giant request cannot drag
  /// every small neighbour's latency up.
  std::size_t max_batch_rows = 8192;
  /// Queue bound; Enqueue beyond it fails and the server answers 503.
  std::size_t queue_limit = 256;
  /// Stream family for unseeded requests.
  std::uint64_t server_seed = 0;
  /// Called from the worker thread after every successful coalesced
  /// decode with the model name and the raw decoded outputs (features +
  /// one-hot label block), BEFORE they are sliced per request. The
  /// serve layer points this at its quality monitors; it must only read
  /// the matrix. Null disables observation entirely.
  std::function<void(const std::string& model,
                     const linalg::Matrix& outputs)>
      decode_observer;
};

/// Single-consumer batching executor: the event loop enqueues sample
/// jobs; one worker thread pops them, coalesces consecutive jobs that
/// target the same package into ONE decoder forward pass (per-request
/// latent streams keep results bit-identical to unbatched execution —
/// each output row depends only on its own input row), and reports each
/// job's result through the completion callback. The decode itself runs
/// on the calling worker but fans out internally through
/// util::ParallelFor inside the gemm kernels, which is where batching
/// wins: one 256-row pass engages the thread pool where eight 32-row
/// passes mostly run serial.
class Batcher {
 public:
  /// `on_done` is invoked from the batcher thread for every job —
  /// including jobs drained during Stop() — exactly once.
  using Completion =
      std::function<void(std::uint64_t ticket, util::Result<data::Dataset>)>;

  Batcher(BatcherOptions options, SampleCache* cache, Completion on_done);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  void Start();

  /// Graceful drain: runs every queued job to completion, then joins.
  void Stop();

  /// False when the queue is at queue_limit or the batcher is stopping
  /// (the caller answers 503 + Retry-After).
  bool Enqueue(SampleJob job);

  std::size_t QueueDepth() const;

 private:
  void Loop();
  std::vector<SampleJob> NextBatchLocked();
  void ExecuteBatch(std::vector<SampleJob> batch);

  const BatcherOptions options_;
  SampleCache* const cache_;  // May be disabled; never null.
  const Completion on_done_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<SampleJob> queue_;
  bool stop_ = false;
  bool started_ = false;
  std::thread worker_;

  /// Decoder output buffer, reused across batches via
  /// ReleasePackage::DecodeLatentInto so the steady-state decode path is
  /// allocation-free. Touched only by the worker thread.
  linalg::Matrix decode_out_;
};

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_BATCHER_H_
