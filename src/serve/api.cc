#include "serve/api.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace p3gm {
namespace serve {

bool Utf8Valid(const std::string& s) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
  const unsigned char* end = p + s.size();
  while (p < end) {
    const unsigned char c = *p;
    if (c < 0x80) {
      ++p;
      continue;
    }
    int extra;
    unsigned cp;
    if ((c & 0xE0) == 0xC0) {
      extra = 1;
      cp = c & 0x1Fu;
    } else if ((c & 0xF0) == 0xE0) {
      extra = 2;
      cp = c & 0x0Fu;
    } else if ((c & 0xF8) == 0xF0) {
      extra = 3;
      cp = c & 0x07u;
    } else {
      return false;  // Lone continuation byte or 0xF8+ lead.
    }
    if (end - p <= extra) return false;  // Truncated sequence.
    for (int i = 1; i <= extra; ++i) {
      if ((p[i] & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (p[i] & 0x3Fu);
    }
    // Overlong encodings, UTF-16 surrogates and out-of-range points are
    // the classic smuggling vectors; reject all three.
    static constexpr unsigned kMinByLen[4] = {0, 0x80, 0x800, 0x10000};
    if (cp < kMinByLen[extra]) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    p += extra + 1;
  }
  return true;
}

util::Result<SampleRequest> ParseSampleRequest(const std::string& body,
                                               std::size_t max_n) {
  if (!Utf8Valid(body)) {
    return util::Status::InvalidArgument("body is not valid UTF-8");
  }
  obs::json::Value root;
  std::string error;
  if (!obs::json::Parse(body, &root, &error)) {
    return util::Status::InvalidArgument("malformed JSON: " + error);
  }
  if (!root.is_object()) {
    return util::Status::InvalidArgument("body must be a JSON object");
  }
  SampleRequest req;
  const obs::json::Value* model = root.Find("model");
  if (model == nullptr || !model->is_string() ||
      model->string_value.empty()) {
    return util::Status::InvalidArgument(
        "\"model\" must be a non-empty string");
  }
  req.model = model->string_value;
  const obs::json::Value* n = root.Find("n");
  if (n == nullptr || !n->is_number()) {
    return util::Status::InvalidArgument("\"n\" must be a number");
  }
  const double nv = n->number_value;
  if (!(nv >= 1.0) || nv != std::floor(nv)) {
    return util::Status::OutOfRange("\"n\" must be a positive integer");
  }
  if (nv > static_cast<double>(max_n)) {
    return util::Status::OutOfRange(
        "\"n\" exceeds the server's --max-n limit");
  }
  req.n = static_cast<std::size_t>(nv);
  if (const obs::json::Value* seed = root.Find("seed")) {
    const double sv = seed->number_value;
    // 2^53: the largest width at which every integer survives the
    // JSON-number (double) round trip, so a client never gets a
    // silently truncated seed.
    if (!seed->is_number() || sv < 0.0 || sv != std::floor(sv) ||
        sv > 9007199254740992.0) {
      return util::Status::InvalidArgument(
          "\"seed\" must be a non-negative integer <= 2^53");
    }
    req.has_seed = true;
    req.seed = static_cast<std::uint64_t>(sv);
  }
  if (const obs::json::Value* fresh = root.Find("fresh")) {
    if (fresh->kind != obs::json::Value::Kind::kBool) {
      return util::Status::InvalidArgument("\"fresh\" must be a boolean");
    }
    req.fresh = fresh->bool_value;
  }
  return req;
}

std::string ErrorJson(const std::string& message) {
  return "{\"error\": \"" + obs::json::Escape(message) + "\"}";
}

namespace {

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string SampleResponseJson(const std::string& model,
                               std::uint64_t generation, bool cached,
                               const data::Dataset& rows) {
  std::string out;
  // ~20 bytes per value dominates; reserve once to keep the serializer
  // off the allocator hot path under load.
  out.reserve(64 + rows.size() * (rows.dim() + 1) * 20);
  out += "{\"model\": \"" + obs::json::Escape(model) + "\"";
  out += ", \"generation\": " + std::to_string(generation);
  out += ", \"n\": " + std::to_string(rows.size());
  out += ", \"dim\": " + std::to_string(rows.dim());
  out += ", \"num_classes\": " + std::to_string(rows.num_classes);
  out += cached ? ", \"cached\": true" : ", \"cached\": false";
  out += ", \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ", ";
    out += '[';
    const double* row = rows.features.row_data(i);
    for (std::size_t j = 0; j < rows.dim(); ++j) {
      if (j > 0) out += ", ";
      out += FormatValue(row[j]);
    }
    out += ']';
  }
  out += "], \"labels\": [";
  for (std::size_t i = 0; i < rows.labels.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(rows.labels[i]);
  }
  out += "]}";
  return out;
}

}  // namespace serve
}  // namespace p3gm
