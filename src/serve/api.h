#ifndef P3GM_SERVE_API_H_
#define P3GM_SERVE_API_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace p3gm {
namespace serve {

/// Wire schema of the /v1/* JSON API (docs/serving.md is the normative
/// reference). Parsing is two-staged: the strict UTF-8 check runs before
/// the JSON grammar (obs::json::Parse, which is already depth-limited),
/// so no malformed byte sequence reaches value handling.

/// True iff `s` is well-formed UTF-8: no truncated or overlong
/// sequences, no surrogate code points, nothing above U+10FFFF.
bool Utf8Valid(const std::string& s);

/// A validated POST /v1/sample body.
struct SampleRequest {
  std::string model;
  std::size_t n = 0;
  /// Optional "seed": when present the response rows are a pure function
  /// of (package, seed, n) — independent of batching, coalescing and
  /// concurrent load. Seeded requests never touch the sample cache.
  bool has_seed = false;
  std::uint64_t seed = 0;
  /// Optional "fresh": true bypasses the sample cache for this request.
  bool fresh = false;
};

/// Parses and validates a sample-request body. Errors are
/// InvalidArgument (malformed JSON / fields, maps to 400), OutOfRange
/// (n outside [1, max_n], maps to 400) or NotFound is *not* produced
/// here — model existence is the registry's call.
util::Result<SampleRequest> ParseSampleRequest(const std::string& body,
                                               std::size_t max_n);

/// {"error": "<message>"} with proper escaping.
std::string ErrorJson(const std::string& message);

/// Response body for a sample request: row-major features, integer
/// labels, and enough metadata for a client to interpret the shape.
std::string SampleResponseJson(const std::string& model,
                               std::uint64_t generation, bool cached,
                               const data::Dataset& rows);

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_API_H_
