#ifndef P3GM_SERVE_CLIENT_H_
#define P3GM_SERVE_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace p3gm {
namespace serve {

/// A parsed HTTP response as seen by the test client.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

/// Minimal blocking HTTP/1.1 client used by the serve test suite and
/// bench_serve. One connection per object; supports keep-alive request
/// sequences on that connection. Not a general client — it exists so
/// the e2e tests exercise the daemon over a real TCP socket without an
/// external dependency.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (host is a dotted-quad IPv4 literal).
  util::Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and blocks for the full response. `body` is only
  /// sent (with Content-Length) when non-empty or the method is POST.
  util::Result<ClientResponse> Request(const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "");

  util::Result<ClientResponse> Get(const std::string& target) {
    return Request("GET", target);
  }
  util::Result<ClientResponse> Post(const std::string& target,
                                    const std::string& body) {
    return Request("POST", target, body);
  }

  /// Writes raw bytes verbatim (for malformed-input tests) and reads
  /// until the peer closes or one full response arrives.
  util::Result<ClientResponse> Raw(const std::string& bytes);

 private:
  util::Status SendAll(const std::string& data);
  util::Result<ClientResponse> ReadResponse();

  int fd_ = -1;
  std::string buffer_;  // Bytes past the previous response (keep-alive).
};

/// One-shot convenience: connect, request, close.
util::Result<ClientResponse> FetchOnce(const std::string& host, int port,
                                       const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "");

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_CLIENT_H_
