#ifndef P3GM_SERVE_QUALITY_H_
#define P3GM_SERVE_QUALITY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "obs/quality/monitor.h"
#include "serve/model_registry.h"

namespace p3gm {
namespace serve {

struct QualityOptions {
  /// Master switch (`p3gm serve --no-quality`, P3GM_NO_QUALITY=1).
  /// Disabled, the serve path never constructs monitors and the batcher
  /// observer is a null hook — zero overhead, bit-identical samples
  /// (samples are bit-identical either way; monitoring only reads the
  /// decoded buffer).
  bool enabled = true;
  /// Drift alarm threshold on DriftReport::drift()
  /// (`--quality-threshold`). The default comfortably clears sketch
  /// rank error (~2/k) and sampling noise at a few hundred rows while
  /// catching the canonical negative control (a 0.25 marginal shift).
  double threshold = 0.15;
  /// WARN only after this many consecutive breached scrapes, so one
  /// noisy scrape of a cold monitor cannot page anyone.
  std::size_t consecutive = 3;
  /// Don't score drift (or count breaches) below this many folded rows.
  std::size_t min_rows = 128;
  /// Sketch subsample stride on the decode hot path (1 = every row).
  /// Matches obs::quality::MonitorOptions: 1-in-64 keeps ingest well
  /// under the bench_quality 3%-of-decode bar; scoring starts once
  /// stride * min_rows rows have been served.
  std::size_t stride = 64;
  /// When a loaded package has no embedded fingerprint, draw this many
  /// rows through its decoder at (re)load time to compute one (0
  /// disables the fallback — such models report has_fingerprint=false).
  std::size_t fallback_rows = 4096;
  /// Seed for the fallback draw (deterministic per binary).
  std::uint64_t fallback_seed = 0x716c5eed2026ULL;
};

/// Per-model drift state for one scrape, for /v1/quality JSON assembly.
struct QualityModelReport {
  std::string model;
  bool fallback_fingerprint = false;
  obs::quality::DriftReport report;
  std::size_t breach_streak = 0;
  bool breached = false;  // drift > threshold at this scrape.
  bool warn = false;      // breached for >= `consecutive` scrapes.
};

/// The serve path's per-model quality monitors: one
/// obs::quality::QualityMonitor per served model, fed by the batcher's
/// decode observer (worker thread) and scraped by /v1/metrics and
/// /v1/quality (event-loop thread).
///
/// Thread model: Rebuild and Scrape run on the event-loop thread only;
/// ObserveDecoded runs on the batcher worker. The monitor map is
/// swapped wholesale behind a mutex (registry-style), and entries hold
/// shared_ptr monitors, so a fold racing a hot reload keeps the old
/// monitor alive and never touches a dead one.
class QualitySet {
 public:
  explicit QualitySet(QualityOptions options);

  bool enabled() const { return options_.enabled; }
  const QualityOptions& options() const { return options_; }

  /// Builds a fresh monitor per served model (embedded fingerprint if
  /// present, else the fallback draw). Called after Init and after
  /// every successful reload; live sketches reset — drift is always
  /// measured against the currently served weights' fingerprint.
  void Rebuild(const ModelRegistry& registry);

  /// Batcher observer: folds one decoded batch (stride-subsampled)
  /// into `model`'s monitor. No-op for unknown models or when disabled.
  void ObserveDecoded(const std::string& model,
                      const linalg::Matrix& outputs);

  /// Scores every model, updates breach streaks, and exports the
  /// p3gm.quality.* gauges. The caller logs WARNs (it owns the request
  /// scope whose trace id the log must carry) using the returned
  /// `warn` flags. Event-loop thread only.
  std::vector<QualityModelReport> Scrape();

 private:
  struct Entry {
    std::shared_ptr<obs::quality::QualityMonitor> monitor;
    bool fallback_fingerprint = false;
    std::size_t breach_streak = 0;  // Scrape-thread only.
  };
  using MonitorMap = std::map<std::string, Entry>;

  const QualityOptions options_;
  mutable std::mutex mutex_;  // Guards the map shared_ptr swap.
  std::shared_ptr<MonitorMap> monitors_ = std::make_shared<MonitorMap>();
};

/// Body of GET /v1/quality.
std::string QualityReportJson(const std::vector<QualityModelReport>& reports,
                              const QualityOptions& options,
                              std::uint64_t generation);

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_QUALITY_H_
