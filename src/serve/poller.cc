#include "serve/poller.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace p3gm {
namespace serve {

namespace {

bool ForcePoll() {
  const char* env = std::getenv("P3GM_SERVE_FORCE_POLL");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

}  // namespace

Poller::Poller() {
#if defined(__linux__)
  if (!ForcePoll()) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  }
#endif
  ok_ = true;  // The poll backend needs no setup and cannot fail here.
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::Add(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof ev);
    ev.data.fd = fd;
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    return;
  }
#endif
  short mask = 0;
  if (want_read) mask |= POLLIN;
  if (want_write) mask |= POLLOUT;
  poll_interest_[fd] = mask;
}

void Poller::Update(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof ev);
    ev.data.fd = fd;
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    return;
  }
#endif
  short mask = 0;
  if (want_read) mask |= POLLIN;
  if (want_write) mask |= POLLOUT;
  poll_interest_[fd] = mask;
}

void Poller::Remove(int fd) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  poll_interest_.erase(fd);
}

int Poller::Wait(std::vector<Event>* out, int timeout_ms) {
  out->clear();
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    struct epoll_event events[64];
    const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(ev);
    }
    return n;
  }
#endif
  std::vector<struct pollfd> fds;
  fds.reserve(poll_interest_.size());
  for (const auto& [fd, mask] : poll_interest_) {
    fds.push_back({fd, mask, 0});
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (const struct pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event ev;
    ev.fd = p.fd;
    ev.readable = (p.revents & POLLIN) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out->push_back(ev);
  }
  return static_cast<int>(out->size());
}

}  // namespace serve
}  // namespace p3gm
