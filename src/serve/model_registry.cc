#include "serve/model_registry.h"

#include <utility>

namespace p3gm {
namespace serve {

std::string ModelNameFromPath(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.erase(dot);
  return base;
}

util::Result<ModelRegistry::ModelMap> ModelRegistry::BuildMap(
    const std::vector<std::string>& paths) const {
  if (paths.empty()) {
    return util::Status::InvalidArgument(
        "ModelRegistry: no package paths given");
  }
  ModelMap map;
  for (const std::string& path : paths) {
    auto pkg = core::ReleasePackage::Load(path);
    if (!pkg.ok()) {
      return util::Status(pkg.status().code(),
                          path + ": " + pkg.status().message());
    }
    const std::string name = ModelNameFromPath(path);
    auto [it, inserted] = map.emplace(
        name,
        Entry{std::make_shared<const core::ReleasePackage>(
                  std::move(*pkg)),
              path});
    (void)it;
    if (!inserted) {
      return util::Status::AlreadyExists(
          "ModelRegistry: duplicate serving name \"" + name + "\"");
    }
  }
  return map;
}

util::Status ModelRegistry::LoadPaths(const std::vector<std::string>& paths) {
  auto map = BuildMap(paths);
  if (!map.ok()) return map.status();
  auto fresh = std::make_shared<const ModelMap>(std::move(*map));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    models_ = std::move(fresh);
    paths_ = paths;
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return util::Status::OK();
}

util::Status ModelRegistry::Reload() {
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paths = paths_;
  }
  return LoadPaths(paths);
}

std::shared_ptr<const core::ReleasePackage> ModelRegistry::Find(
    const std::string& name) const {
  std::shared_ptr<const ModelMap> map;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    map = models_;
  }
  const auto it = map->find(name);
  return it == map->end() ? nullptr : it->second.package;
}

std::vector<ModelInfo> ModelRegistry::List() const {
  std::shared_ptr<const ModelMap> map;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    map = models_;
  }
  std::vector<ModelInfo> out;
  out.reserve(map->size());
  for (const auto& [name, entry] : *map) {
    ModelInfo info;
    info.name = name;
    info.path = entry.path;
    info.latent_dim = entry.package->latent_dim();
    info.feature_dim = entry.package->feature_dim();
    info.num_classes = entry.package->num_classes();
    info.decoder =
        entry.package->decoder_type() == core::DecoderType::kBernoulli
            ? "bernoulli"
            : "gaussian";
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_->size();
}

}  // namespace serve
}  // namespace p3gm
