#ifndef P3GM_SERVE_MODEL_REGISTRY_H_
#define P3GM_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/release.h"
#include "util/result.h"

namespace p3gm {
namespace serve {

/// Everything a client needs to pick a model from GET /v1/models.
struct ModelInfo {
  std::string name;
  std::string path;
  std::size_t latent_dim = 0;
  std::size_t feature_dim = 0;
  std::size_t num_classes = 0;
  std::string decoder;  // "bernoulli" | "gaussian".
};

/// The serving name for a package file: the basename without its final
/// extension ("/a/b/adult.release" -> "adult").
std::string ModelNameFromPath(const std::string& path);

/// The set of ReleasePackages the daemon serves, with all-or-nothing
/// hot-reload: LoadPaths/Reload build a complete replacement set off to
/// the side and swap it in atomically only when every package loaded —
/// a failed reload leaves the served set untouched (and running
/// requests keep the shared_ptr of the set they started with, so a swap
/// never invalidates an in-flight decode).
class ModelRegistry {
 public:
  /// Loads every path (serving names must be unique) and swaps the set
  /// in. Remembers `paths` for Reload().
  util::Status LoadPaths(const std::vector<std::string>& paths);

  /// Re-loads the last successful path set from disk (SIGHUP / POST
  /// /v1/reload). Bumps generation() only on success.
  util::Status Reload();

  /// The current package for `name`; nullptr when absent. The returned
  /// pointer pins the package across any concurrent reload.
  std::shared_ptr<const core::ReleasePackage> Find(
      const std::string& name) const;

  std::vector<ModelInfo> List() const;
  std::size_t size() const;

  /// Monotonic set version; bumped by every successful LoadPaths/Reload.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    std::shared_ptr<const core::ReleasePackage> package;
    std::string path;
  };
  using ModelMap = std::map<std::string, Entry>;

  util::Result<ModelMap> BuildMap(
      const std::vector<std::string>& paths) const;

  mutable std::mutex mutex_;  // Guards models_ (pointer) and paths_.
  std::shared_ptr<const ModelMap> models_ = std::make_shared<ModelMap>();
  std::vector<std::string> paths_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_MODEL_REGISTRY_H_
