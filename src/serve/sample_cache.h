#ifndef P3GM_SERVE_SAMPLE_CACHE_H_
#define P3GM_SERVE_SAMPLE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "data/dataset.h"

namespace p3gm {
namespace serve {

/// Per-model LRU cache of generated sample blocks, keyed by
/// (model, registry generation, n-bucket). Requested sizes round up to
/// the next power of two so nearby n values share one entry; a hit
/// serves the first n rows of the stored block.
///
/// Semantics, documented rather than hidden: a hit returns rows the
/// daemon has served before. That is sound — released-model samples are
/// DP post-processing, and any window of them is as "synthetic" as any
/// other — but it trades statistical freshness for latency, so the
/// cache is OFF unless --cache is set, seeded requests always bypass
/// it, and responses carry "cached": true. Keying on the registry
/// generation makes a hot-reload an implicit full invalidation.
class SampleCache {
 public:
  /// `capacity` = maximum stored blocks across all models; 0 disables.
  explicit SampleCache(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }

  /// The block size a request for `n` rows is cached at: the next power
  /// of two >= n (so at most 2x over-generation on a miss).
  static std::size_t Bucket(std::size_t n);

  /// On hit, copies the first `n` rows into *out and refreshes LRU.
  bool Lookup(const std::string& model, std::uint64_t generation,
              std::size_t n, data::Dataset* out);

  /// Stores a block of Bucket-size rows, evicting the least recently
  /// used entry when full.
  void Insert(const std::string& model, std::uint64_t generation,
              data::Dataset block);

  std::size_t size() const;

 private:
  struct Slot {
    std::string key;
    data::Dataset block;
  };

  static std::string Key(const std::string& model, std::uint64_t generation,
                         std::size_t bucket);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Slot> lru_;  // Front = most recently used.
  std::map<std::string, std::list<Slot>::iterator> index_;
};

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_SAMPLE_CACHE_H_
