#include "serve/sample_cache.h"

#include <utility>

namespace p3gm {
namespace serve {

std::size_t SampleCache::Bucket(std::size_t n) {
  std::size_t b = 1;
  while (b < n) b <<= 1;
  return b;
}

std::string SampleCache::Key(const std::string& model,
                             std::uint64_t generation, std::size_t bucket) {
  return model + '\0' + std::to_string(generation) + '\0' +
         std::to_string(bucket);
}

bool SampleCache::Lookup(const std::string& model, std::uint64_t generation,
                         std::size_t n, data::Dataset* out) {
  if (!enabled()) return false;
  const std::string key = Key(model, generation, Bucket(n));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
  *out = it->second->block.Head(n);
  return true;
}

void SampleCache::Insert(const std::string& model, std::uint64_t generation,
                         data::Dataset block) {
  if (!enabled()) return;
  const std::string key = Key(model, generation, block.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->block = std::move(block);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(block)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::size_t SampleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace serve
}  // namespace p3gm
