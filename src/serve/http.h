#ifndef P3GM_SERVE_HTTP_H_
#define P3GM_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace p3gm {
namespace serve {

/// Minimal, hardened HTTP/1.1 message layer for the `p3gm serve` daemon
/// and its in-repo test client. Deliberately small: no chunked encoding
/// (rejected with 501), no multipart, no TLS — a synthesis daemon speaks
/// small JSON bodies over trusted networks. What it *is* careful about
/// is untrusted input: every limit below is enforced before any
/// allocation proportional to the claimed size, and malformed input of
/// any shape must produce a 4xx/5xx status code, never a crash (the
/// table-driven corpus in tests/test_serve_http.cc pins this under
/// ASan/UBSan).

/// Hard ceilings applied while parsing a request. A request exceeding a
/// limit is rejected with the HTTP status noted per field.
struct HttpLimits {
  std::size_t max_start_line = 8192;      // Request line bytes (414/400).
  std::size_t max_header_bytes = 16384;   // Total header block (431).
  std::size_t max_headers = 64;           // Header count (431).
  std::size_t max_body_bytes = 4u << 20;  // Content-Length cap (413).
};

struct HttpRequest {
  std::string method;   // Uppercase token, e.g. "GET".
  std::string target;   // Origin-form target, e.g. "/v1/metrics?format=x".
  std::string path;     // Target up to (not including) any '?'.
  std::string query;    // Raw query string after '?', "" when absent.
  std::string version;  // "HTTP/1.0" or "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> headers;
  /// Split "k1=v1&k2=v2" pairs from `query` (no percent decoding — the
  /// keys and values this server defines are plain tokens).
  std::vector<std::pair<std::string, std::string>> query_params;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;

  /// Exact-match query parameter lookup; nullptr when absent. A bare
  /// "k" (no '=') yields an empty value.
  const std::string* QueryParam(const std::string& key) const;

  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (or 1.0
  /// without "keep-alive") opts out.
  bool KeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra headers appended verbatim (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  bool close_connection = false;

  /// Serializes status line + headers (Content-Length always set) + body.
  std::string Serialize() const;
};

/// Stable reason phrase for the status codes this server emits.
const char* ReasonPhrase(int status);

/// Incremental request parser. Feed() bytes as they arrive; once
/// state() == kDone, request() holds the parsed message and any extra
/// bytes already received (pipelined next request) are retained across
/// ResetForNext(). On kError, error_status()/error_message() describe
/// the rejection; the connection should answer and close.
class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = HttpLimits());

  enum class State { kHeaders, kBody, kDone, kError };

  void Feed(const char* data, std::size_t len);
  void Feed(const std::string& data) { Feed(data.data(), data.size()); }

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }

  /// Valid once done().
  const HttpRequest& request() const { return request_; }

  /// Valid once failed(): the HTTP status to answer with (400, 413,
  /// 414, 431, 501) and a one-line reason for the error body.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Re-arms the parser for the next request on a keep-alive
  /// connection, keeping unconsumed buffered bytes.
  void ResetForNext();

 private:
  void Fail(int status, std::string message);
  void TryParse();
  bool ParseHeaderBlock(std::size_t block_end);

  HttpLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;
  std::size_t body_bytes_needed_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_HTTP_H_
