#include "serve/quality.h"

#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "util/logging.h"

namespace p3gm {
namespace serve {

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Per-feature gauge series are emitted only up to this many features:
/// a wide model would otherwise mint output_dim label variants per
/// scrape and blow up the exposition's cardinality. The worst-feature
/// gauges and /v1/quality JSON still cover every feature.
constexpr std::size_t kMaxPerFeatureSeries = 32;

}  // namespace

QualitySet::QualitySet(QualityOptions options) : options_(options) {}

void QualitySet::Rebuild(const ModelRegistry& registry) {
  if (!options_.enabled) return;
  auto fresh = std::make_shared<MonitorMap>();
  for (const ModelInfo& info : registry.List()) {
    std::shared_ptr<const core::ReleasePackage> pkg = registry.Find(info.name);
    if (pkg == nullptr) continue;
    Entry entry;
    std::shared_ptr<const obs::quality::Fingerprint> fingerprint =
        pkg->fingerprint_ptr();
    if (fingerprint == nullptr && options_.fallback_rows > 0) {
      util::Result<obs::quality::Fingerprint> built = core::BuildFingerprint(
          *pkg, options_.fallback_rows, options_.fallback_seed);
      if (built.ok()) {
        fingerprint = std::make_shared<const obs::quality::Fingerprint>(
            std::move(built).ValueOrDie());
        entry.fallback_fingerprint = true;
        P3GM_LOG(Info) << "p3gm serve: model \"" << info.name
                       << "\" has no embedded quality fingerprint; computed "
                          "a fallback from "
                       << options_.fallback_rows << " rows (seed "
                       << options_.fallback_seed << ")";
      } else {
        P3GM_LOG(Warning) << "p3gm serve: fallback fingerprint for \""
                          << info.name
                          << "\" failed: " << built.status().message();
      }
    }
    obs::quality::MonitorOptions monitor_options;
    monitor_options.stride = options_.stride;
    entry.monitor = std::make_shared<obs::quality::QualityMonitor>(
        std::move(fingerprint), pkg->feature_dim(), pkg->num_classes(),
        monitor_options);
    fresh->emplace(info.name, std::move(entry));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  monitors_ = std::move(fresh);
}

void QualitySet::ObserveDecoded(const std::string& model,
                                const linalg::Matrix& outputs) {
  if (!options_.enabled) return;
  std::shared_ptr<MonitorMap> map;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    map = monitors_;
  }
  const auto it = map->find(model);
  if (it == map->end() || it->second.monitor == nullptr) return;
  it->second.monitor->ObserveDecoded(outputs);
}

std::vector<QualityModelReport> QualitySet::Scrape() {
  std::vector<QualityModelReport> reports;
  if (!options_.enabled) return reports;
  std::shared_ptr<MonitorMap> map;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    map = monitors_;
  }
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* warns = registry.counter("p3gm.quality.warns");
  for (auto& [name, entry] : *map) {
    QualityModelReport out;
    out.model = name;
    out.fallback_fingerprint = entry.fallback_fingerprint;
    out.report = entry.monitor->Score();
    const bool scoreable = out.report.has_fingerprint &&
                           out.report.rows_observed >= options_.min_rows;
    out.breached = scoreable && out.report.drift() > options_.threshold;
    entry.breach_streak = out.breached ? entry.breach_streak + 1 : 0;
    out.breach_streak = entry.breach_streak;
    out.warn = entry.breach_streak >= options_.consecutive;
    if (out.warn) warns->Add();

    const std::vector<std::pair<std::string, std::string>> model_label = {
        {"model", name}};
    registry.gauge(obs::LabeledName("p3gm.quality.drift", model_label))
        ->Set(out.report.drift());
    registry.gauge(obs::LabeledName("p3gm.quality.worst_ks", model_label))
        ->Set(out.report.worst_ks);
    registry.gauge(obs::LabeledName("p3gm.quality.worst_feature", model_label))
        ->Set(static_cast<double>(out.report.worst_feature));
    registry.gauge(obs::LabeledName("p3gm.quality.label_tv", model_label))
        ->Set(out.report.label_tv);
    registry.gauge(obs::LabeledName("p3gm.quality.mean_z_max", model_label))
        ->Set(out.report.mean_z_max);
    registry.gauge(obs::LabeledName("p3gm.quality.rows_observed", model_label))
        ->Set(static_cast<double>(out.report.rows_observed));
    registry.gauge(obs::LabeledName("p3gm.quality.rows_seen", model_label))
        ->Set(static_cast<double>(out.report.rows_seen));
    registry.gauge(obs::LabeledName("p3gm.quality.breach", model_label))
        ->Set(out.breached ? 1.0 : 0.0);
    registry
        .gauge(obs::LabeledName("p3gm.quality.memory_bytes", model_label))
        ->Set(static_cast<double>(entry.monitor->MemoryBytes()));
    if (out.report.features.size() <= kMaxPerFeatureSeries) {
      for (std::size_t f = 0; f < out.report.features.size(); ++f) {
        registry
            .gauge(obs::LabeledName(
                "p3gm.quality.feature_ks",
                {{"model", name}, {"feature", std::to_string(f)}}))
            ->Set(out.report.features[f].ks);
      }
    }
    reports.push_back(std::move(out));
  }
  return reports;
}

std::string QualityReportJson(const std::vector<QualityModelReport>& reports,
                              const QualityOptions& options,
                              std::uint64_t generation) {
  std::string out = "{\"generation\": " + std::to_string(generation);
  out += ", \"enabled\": ";
  out += options.enabled ? "true" : "false";
  out += ", \"threshold\": " + Num(options.threshold);
  out += ", \"consecutive\": " + std::to_string(options.consecutive);
  out += ", \"models\": [";
  bool first = true;
  for (const QualityModelReport& r : reports) {
    if (!first) out += ", ";
    first = false;
    out += "{\"model\": \"" + obs::json::Escape(r.model) + "\"";
    out += ", \"has_fingerprint\": ";
    out += r.report.has_fingerprint ? "true" : "false";
    out += ", \"fallback_fingerprint\": ";
    out += r.fallback_fingerprint ? "true" : "false";
    out += ", \"rows_seen\": " + std::to_string(r.report.rows_seen);
    out += ", \"rows_observed\": " + std::to_string(r.report.rows_observed);
    out += ", \"drift\": " + Num(r.report.drift());
    out += ", \"worst_ks\": " + Num(r.report.worst_ks);
    out += ", \"worst_feature\": " + std::to_string(r.report.worst_feature);
    out += ", \"label_tv\": " + Num(r.report.label_tv);
    out += ", \"mean_z_max\": " + Num(r.report.mean_z_max);
    out += ", \"breached\": ";
    out += r.breached ? "true" : "false";
    out += ", \"warn\": ";
    out += r.warn ? "true" : "false";
    out += ", \"breach_streak\": " + std::to_string(r.breach_streak);
    out += ", \"features\": [";
    for (std::size_t f = 0; f < r.report.features.size(); ++f) {
      const obs::quality::FeatureDrift& d = r.report.features[f];
      if (f > 0) out += ", ";
      out += "{\"ks\": " + Num(d.ks);
      out += ", \"mean_z\": " + Num(d.mean_z);
      out += ", \"sigma_ratio\": " + Num(d.sigma_ratio);
      out += ", \"live_mean\": " + Num(d.live_mean);
      out += ", \"live_stddev\": " + Num(d.live_stddev);
      out += ", \"ref_mean\": " + Num(d.ref_mean);
      out += ", \"ref_stddev\": " + Num(d.ref_stddev) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace serve
}  // namespace p3gm
