#ifndef P3GM_SERVE_POLLER_H_
#define P3GM_SERVE_POLLER_H_

#include <cstddef>
#include <map>
#include <vector>

namespace p3gm {
namespace serve {

/// Readiness-notification backend for the serve event loop: epoll on
/// Linux, with a portable poll(2) implementation everywhere else. The
/// environment variable P3GM_SERVE_FORCE_POLL=1 selects the poll
/// backend at construction even where epoll is available, so both code
/// paths stay exercised by the same test suite.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  // HUP / ERR — the connection should be torn down.
  };

  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool ok() const { return ok_; }
  bool using_epoll() const { return epoll_fd_ >= 0; }

  void Add(int fd, bool want_read, bool want_write);
  void Update(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// *out (cleared first). Returns the event count, 0 on timeout, -1 on
  /// a poller error other than EINTR.
  int Wait(std::vector<Event>* out, int timeout_ms);

 private:
  bool ok_ = false;
  int epoll_fd_ = -1;  // -1 = poll backend.
  /// Poll backend bookkeeping: fd -> requested events mask.
  std::map<int, short> poll_interest_;
};

}  // namespace serve
}  // namespace p3gm

#endif  // P3GM_SERVE_POLLER_H_
