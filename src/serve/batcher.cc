#include "serve/batcher.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace p3gm {
namespace serve {

Batcher::Batcher(BatcherOptions options, SampleCache* cache,
                 Completion on_done)
    : options_(options), cache_(cache), on_done_(std::move(on_done)) {}

Batcher::~Batcher() { Stop(); }

void Batcher::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  worker_ = std::thread([this] { Loop(); });
}

void Batcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

bool Batcher::Enqueue(SampleJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || !started_ || queue_.size() >= options_.queue_limit) {
      return false;
    }
    queue_.push_back(std::move(job));
    static obs::Gauge* depth =
        obs::Registry::Global().gauge("serve.queue.depth");
    depth->Set(static_cast<double>(queue_.size()));
    obs::FlightRecorder::Global().Record(
        obs::FlightRecorder::EventKind::kQueueDepth, "serve.queue.depth",
        queue_.size(), options_.queue_limit);
  }
  cv_.notify_one();
  return true;
}

std::size_t Batcher::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<SampleJob> Batcher::NextBatchLocked() {
  std::vector<SampleJob> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const core::ReleasePackage* pkg = batch.front().package.get();
  std::size_t rows = batch.front().fill_cache
                         ? SampleCache::Bucket(batch.front().n)
                         : batch.front().n;
  // Coalesce FIFO-order neighbours on the same package. Jobs for other
  // packages are skipped over, not reordered past their own kind, so
  // per-model ordering is preserved.
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch_requests;) {
    if (it->package.get() != pkg) {
      ++it;
      continue;
    }
    const std::size_t job_rows =
        it->fill_cache ? SampleCache::Bucket(it->n) : it->n;
    if (rows + job_rows > options_.max_batch_rows) break;
    rows += job_rows;
    batch.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  static obs::Gauge* depth =
      obs::Registry::Global().gauge("serve.queue.depth");
  depth->Set(static_cast<double>(queue_.size()));
  obs::FlightRecorder::Global().Record(
      obs::FlightRecorder::EventKind::kQueueDepth, "serve.queue.depth",
      queue_.size(), options_.queue_limit);
  return batch;
}

void Batcher::Loop() {
  for (;;) {
    std::vector<SampleJob> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained.
      batch = NextBatchLocked();
    }
    ExecuteBatch(std::move(batch));
  }
}

void Batcher::ExecuteBatch(std::vector<SampleJob> batch) {
  P3GM_TRACE_SPAN("serve.batch");
  // The coalesced pass gets its own trace identity; each job later
  // records a slice span in its *request's* trace whose parent is the
  // request span, so batch and requests cross-reference in the viewer.
  const obs::TraceContext batch_ctx = obs::MakeRootContext();
  obs::FlightRecorder::Global().Record(
      obs::FlightRecorder::EventKind::kRequest, "serve.batch.begin",
      batch_ctx.span_id, batch.size());
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* batches = registry.counter("serve.batches");
  static obs::Counter* rows_total = registry.counter("serve.sample.rows");
  static obs::Histogram* batch_size = registry.histogram(
      "serve.batch.requests", {1, 2, 4, 8, 16, 32, 64});
  batches->Add();
  batch_size->Observe(static_cast<double>(batch.size()));

  const core::ReleasePackage& pkg = *batch.front().package;

  // Stage 1 — per-request latent sampling. Each job draws from its own
  // RNG (explicit seed, or a counter-derived stream for unseeded jobs),
  // so the latents — and therefore the response — are independent of
  // how jobs were coalesced.
  std::vector<std::size_t> rows(batch.size());
  std::size_t total_rows = 0;
  for (std::size_t j = 0; j < batch.size(); ++j) {
    rows[j] =
        batch[j].fill_cache ? SampleCache::Bucket(batch[j].n) : batch[j].n;
    total_rows += rows[j];
  }
  linalg::Matrix stacked(total_rows, pkg.latent_dim());
  std::size_t offset = 0;
  for (std::size_t j = 0; j < batch.size(); ++j) {
    util::Rng rng = batch[j].has_seed
                        ? util::Rng(batch[j].seed)
                        : util::Rng::StreamAt(options_.server_seed,
                                              batch[j].stream_index);
    const linalg::Matrix z = pkg.SampleLatent(rows[j], &rng);
    std::copy(z.data(), z.data() + z.size(),
              stacked.data() + offset * pkg.latent_dim());
    offset += rows[j];
  }

  // Stage 2 — one decoder forward pass over the stacked latents, into
  // the batcher's reused output buffer (allocation-free once warm).
  const std::uint64_t decode_start_ns = obs::NowNs();
  const util::Status decode_status =
      pkg.DecodeLatentInto(stacked, &decode_out_);
  const std::uint64_t decode_end_ns = obs::NowNs();
  if (obs::Enabled()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.Append("serve.batch.decode", decode_start_ns, decode_end_ns,
                    batch_ctx);
    // One slice span per coalesced request, inside the decode window and
    // parented on the request's own span: a decode's children enumerate
    // every request span id it served, and each request's trace reaches
    // into the shared decode.
    for (const SampleJob& job : batch) {
      if (!job.trace.valid()) continue;
      recorder.Append("serve.batch.slice", decode_start_ns, decode_end_ns,
                      obs::ChildOf(job.trace));
    }
  }
  if (!decode_status.ok()) {
    for (SampleJob& job : batch) on_done_(job.ticket, decode_status);
    return;
  }
  rows_total->Add(total_rows);
  // Quality observation reads the decoded buffer before slicing; it
  // never mutates it, so served bytes are identical with or without an
  // observer installed.
  if (options_.decode_observer) {
    options_.decode_observer(batch.front().model, decode_out_);
  }

  // Stage 3 — slice outputs back per request.
  const linalg::Matrix& outputs = decode_out_;
  offset = 0;
  for (std::size_t j = 0; j < batch.size(); ++j) {
    linalg::Matrix slice(rows[j], outputs.cols());
    std::copy(outputs.data() + offset * outputs.cols(),
              outputs.data() + (offset + rows[j]) * outputs.cols(),
              slice.data());
    offset += rows[j];
    data::Dataset block = pkg.AssembleRows(std::move(slice));
    if (batch[j].fill_cache) {
      cache_->Insert(batch[j].model, batch[j].generation, block);
      on_done_(batch[j].ticket, block.Head(batch[j].n));
    } else {
      on_done_(batch[j].ticket, std::move(block));
    }
  }
}

}  // namespace serve
}  // namespace p3gm
