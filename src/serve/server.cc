#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <utility>

#include "infer/plan.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/build_info.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/observability.h"
#include "obs/perf/alloc.h"
#include "obs/process_stats.h"
#include "obs/profile/heap.h"
#include "obs/profile/profiler.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/api.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace p3gm {
namespace serve {

namespace {

// Latency buckets from 100us to 3s; the histogram powers the /v1/metrics
// p50/p99 readout and bench_serve's latency report.
const std::vector<double> kLatencyBounds = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                            3e-2, 0.1,  0.3,  1.0,  3.0};

int SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int StatusToHttp(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kOutOfRange:
      return 400;
    case util::StatusCode::kNotFound:
      return 404;
    default:
      return 500;
  }
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

std::string ModelsJson(const ModelRegistry& registry) {
  std::string out = "{\"generation\": " +
                    std::to_string(registry.generation()) +
                    ", \"models\": [";
  bool first = true;
  for (const ModelInfo& info : registry.List()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + obs::json::Escape(info.name) + "\"";
    out += ", \"latent_dim\": " + std::to_string(info.latent_dim);
    out += ", \"feature_dim\": " + std::to_string(info.feature_dim);
    out += ", \"num_classes\": " + std::to_string(info.num_classes);
    out += ", \"decoder\": \"" + info.decoder + "\"}";
  }
  out += "]}";
  return out;
}

// The one process-wide signal target. Handlers only touch atomics and a
// pipe write, both async-signal-safe.
std::atomic<Server*> g_signal_server{nullptr};

void HandleStopSignal(int) {
  if (Server* server = g_signal_server.load(std::memory_order_acquire)) {
    server->RequestStop();
  }
}

void HandleReloadSignal(int) {
  if (Server* server = g_signal_server.load(std::memory_order_acquire)) {
    server->RequestReload();
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      quality_(options_.quality),
      cache_(options_.cache_entries) {
  BatcherOptions batch_options;
  batch_options.max_batch_requests = std::max<std::size_t>(1,
                                                           options_.max_batch);
  batch_options.max_batch_rows = options_.max_batch_rows;
  batch_options.queue_limit = options_.queue_limit;
  batch_options.server_seed = options_.seed;
  if (quality_.enabled()) {
    batch_options.decode_observer = [this](const std::string& model,
                                           const linalg::Matrix& outputs) {
      quality_.ObserveDecoded(model, outputs);
    };
  }
  batcher_ = std::make_unique<Batcher>(
      batch_options, &cache_,
      [this](std::uint64_t ticket, util::Result<data::Dataset> result) {
        {
          std::lock_guard<std::mutex> lock(completions_mutex_);
          completions_.push_back(Completion{ticket, std::move(result)});
        }
        Wake();
      });
}

Server::~Server() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

util::Status Server::Init(const std::vector<std::string>& package_paths) {
  if (initialized_) {
    return util::Status::FailedPrecondition("Server: Init called twice");
  }
  // Escape hatch only: never force-enable here, so an operator's
  // P3GM_NO_PLANNED_DECODE=1 environment survives the default options.
  if (!options_.planned_decode) {
    infer::SetPlannedDecodeEnabled(false);
  }
  // An empty package set is a valid cold start (mid-rollout, models
  // arrive via reload): /healthz reports zero models and the scrape
  // endpoints answer 503 + Retry-After until something loads.
  if (!package_paths.empty()) {
    P3GM_RETURN_NOT_OK(registry_.LoadPaths(package_paths));
  }
  quality_.Rebuild(registry_);

  int fds[2];
  if (::pipe(fds) != 0) {
    return util::Status::IoError("Server: pipe() failed");
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError("Server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("Server: bad host \"" +
                                         options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0) {
    return util::Status::IoError("Server: bind(" + options_.host + ":" +
                                 std::to_string(options_.port) +
                                 ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return util::Status::IoError("Server: listen() failed");
  }
  SetNonBlocking(listen_fd_);
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  initialized_ = true;
  return util::Status::OK();
}

util::Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!initialized_) {
    return util::Status::FailedPrecondition("Server: Start before Init");
  }
  if (running_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition("Server: already running");
  }
  stop_requested_.store(false, std::memory_order_release);
  poller_ = std::make_unique<Poller>();
  poller_->Add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  poller_->Add(wake_read_fd_, /*want_read=*/true, /*want_write=*/false);
  batcher_->Start();
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { LoopThread(); });
  P3GM_LOG(Info) << "p3gm serve: listening on " << options_.host << ":"
                 << bound_port_ << " ("
                 << (poller_->using_epoll() ? "epoll" : "poll")
                 << " backend)";
  // Self-describing startup: the build-info gauge makes every scrape
  // attributable to a binary, and the config line puts the effective
  // options in the incident log up front.
  obs::RegisterBuildInfoGauge();
  const obs::BuildInfo& build = obs::GetBuildInfo();
  P3GM_LOG(Info) << "p3gm serve: config version=" << build.version
                 << " git_sha=" << build.git_sha << " port=" << bound_port_
                 << " max_batch=" << options_.max_batch
                 << " max_batch_rows=" << options_.max_batch_rows
                 << " queue_limit=" << options_.queue_limit
                 << " cache_entries=" << options_.cache_entries
                 << " max_n=" << options_.max_n << " planned_decode="
                 << (options_.planned_decode ? "on" : "off") << " quality="
                 << (quality_.enabled() ? "on" : "off")
                 << " quality_threshold=" << options_.quality.threshold
                 << " models=" << registry_.size();
  // Daemon-lifetime sampled heap profile behind the alloc-tracking
  // hooks: /v1/profile/heap snapshots it on demand. Already-running
  // (e.g. under the `p3gm profile` wrapper) and compiled-out are both
  // fine — the endpoint reports what it finds.
  if (obs::perf::AllocTrackingCompiledIn()) {
    const util::Status heap_status =
        obs::profile::HeapProfiler::Global().Start(
            obs::profile::HeapProfileOptions());
    if (!heap_status.ok() &&
        heap_status.code() != util::StatusCode::kFailedPrecondition) {
      P3GM_LOG(Warning) << "p3gm serve: heap profiler unavailable: "
                        << heap_status;
    }
  }
  return util::Status::OK();
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!loop_thread_.joinable()) return;
  RequestStop();
  loop_thread_.join();
  batcher_->Stop();
  // The profile worker watches stop_requested_, so this join is bounded
  // by one 50ms sleep slice plus profiler teardown.
  if (profile_thread_.joinable()) profile_thread_.join();
  running_.store(false, std::memory_order_release);
}

void Server::WaitUntilStopped() {
  // The loop thread clears running_ as it exits; joining happens in
  // Stop() (or the destructor), so this only has to watch the flag.
  while (running_.load(std::memory_order_acquire)) {
    struct timespec ts = {0, 50 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
}

void Server::RequestReload() {
  reload_requested_.store(true, std::memory_order_release);
  Wake();
}

void Server::InstallSignalHandlers(Server* server) {
  g_signal_server.store(server, std::memory_order_release);
  if (server == nullptr) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = HandleReloadSignal;
  ::sigaction(SIGHUP, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::Wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 'w';
  // Non-blocking; a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t rc = ::write(wake_write_fd_, &byte, 1);
}

void Server::LoopThread() {
  obs::Registry& registry = obs::Registry::Global();
  obs::Gauge* active = registry.gauge("serve.connections.active");
  std::vector<Poller::Event> events;
  const std::uint64_t drain_deadline_budget_ns =
      static_cast<std::uint64_t>(std::max(0, options_.drain_timeout_ms)) *
      1000000ull;
  std::uint64_t drain_started_ns = 0;
  bool accepting = true;

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping && accepting) {
      accepting = false;
      poller_->Remove(listen_fd_);
      drain_started_ns = obs::NowNs();
    }
    if (stopping) {
      bool pending_out = false;
      for (const auto& [fd, conn] : connections_) {
        if (conn->out_offset < conn->out.size() || conn->awaiting_sample ||
            conn->awaiting_profile) {
          pending_out = true;
          break;
        }
      }
      const bool pending = pending_out || !ticket_to_fd_.empty();
      const bool deadline_hit =
          obs::NowNs() - drain_started_ns > drain_deadline_budget_ns;
      if (!pending || deadline_hit) break;
    }

    const int n = poller_->Wait(&events, /*timeout_ms=*/50);
    if (n < 0) break;
    for (const Poller::Event& ev : events) {
      if (ev.fd == listen_fd_) {
        if (accepting && ev.readable) AcceptNewConnections();
        continue;
      }
      if (ev.fd == wake_read_fd_) {
        char buf[64];
        while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
        }
        continue;
      }
      const auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (ev.readable) HandleReadable(conn);
      if (connections_.count(ev.fd) == 0) continue;  // Closed above.
      if (ev.writable) HandleWritable(conn);
      if (connections_.count(ev.fd) == 0) continue;
      if (ev.error && !ev.readable) CloseConnection(ev.fd);
    }
    if (reload_requested_.exchange(false, std::memory_order_acq_rel)) {
      HttpResponse ignored = ReloadNow();
      (void)ignored;
    }
    DrainCompletions();
    DrainProfileCompletions();
    active->Set(static_cast<double>(connections_.size()));
  }

  // Teardown: force-close whatever is left.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) CloseConnection(fd);
  ticket_to_fd_.clear();
  active->Set(0.0);
  running_.store(false, std::memory_order_release);
}

void Server::AcceptNewConnections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error — try next wakeup.
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (connections_.size() >= options_.max_connections) {
      static obs::Counter* overload =
          obs::Registry::Global().counter("serve.overload");
      overload->Add();
      HttpResponse busy;
      busy.status = 503;
      busy.extra_headers.emplace_back("Retry-After", "1");
      busy.body = ErrorJson("connection limit reached");
      busy.close_connection = true;
      const std::string wire = busy.Serialize();
      ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>(fd, options_.http);
    poller_->Add(fd, /*want_read=*/true, /*want_write=*/false);
    connections_.emplace(fd, std::move(conn));
  }
}

void Server::HandleReadable(Connection* conn) {
  char buf[8192];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof buf, 0);
    if (got > 0) {
      conn->parser.Feed(buf, static_cast<std::size_t>(got));
      if (conn->parser.failed()) break;
      if (static_cast<std::size_t>(got) < sizeof buf) break;
      continue;
    }
    if (got == 0) {  // Peer closed.
      CloseConnection(conn->fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  PumpRequests(conn);
}

void Server::PumpRequests(Connection* conn) {
  if (conn->parser.failed()) {
    static obs::Counter* bad =
        obs::Registry::Global().counter("serve.responses.4xx");
    bad->Add();
    HttpResponse response;
    response.status = conn->parser.error_status();
    response.body = ErrorJson(conn->parser.error_message());
    response.close_connection = true;
    Respond(conn, std::move(response));
    return;
  }
  // Serve pipelined requests until the parser runs dry or a sample
  // request parks the connection. ProcessRequest can close (and free)
  // the connection when a close-marked response flushes inline, so the
  // liveness check must key on the fd captured before the call.
  const int fd = conn->fd;
  while (!conn->awaiting_sample && !conn->awaiting_profile &&
         conn->parser.done() && !conn->close_after_write) {
    conn->request_start_ns = obs::NowNs();
    ProcessRequest(conn);
    if (connections_.count(fd) == 0) return;  // Closed.
    if (conn->awaiting_sample || conn->awaiting_profile) break;
    conn->parser.ResetForNext();
    if (conn->parser.failed()) {
      PumpRequests(conn);  // Report the pipelined parse error.
      return;
    }
  }
  UpdateInterest(conn);
}

void Server::ProcessRequest(Connection* conn) {
  const HttpRequest& req = conn->parser.request();

  // Trace identity first: ingest a W3C traceparent if the client sent a
  // valid one (joining its trace with a fresh local span), else mint a
  // root context. The scope makes it ambient for every span and log
  // record emitted while this request is on the stack.
  const std::string* traceparent = req.FindHeader("traceparent");
  if (traceparent == nullptr ||
      !obs::ParseTraceparent(*traceparent, &conn->trace)) {
    conn->trace = obs::MakeRootContext();
  }
  obs::RequestScope request_scope(conn->trace);
  obs::FlightRecorder::Global().Record(
      obs::FlightRecorder::EventKind::kRequest, "serve.request.begin",
      conn->trace.span_id, 0);
  P3GM_TRACE_SPAN("serve.request");

  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* total = registry.counter("serve.requests_total");
  total->Add();

  conn->close_after_write = !req.KeepAlive();

  if (req.method == "GET") {
    if (req.path == "/healthz") {
      conn->endpoint = "/healthz";
      Respond(conn, JsonResponse(
                        200, "{\"status\": \"ok\", \"models\": " +
                                 std::to_string(registry_.size()) +
                                 ", \"generation\": " +
                                 std::to_string(registry_.generation()) +
                                 "}"));
      return;
    }
    if (req.path == "/v1/models") {
      conn->endpoint = "/v1/models";
      Respond(conn, JsonResponse(200, ModelsJson(registry_)));
      return;
    }
    if (req.path == "/v1/metrics") {
      conn->endpoint = "/v1/metrics";
      Respond(conn, MetricsResponse(req));
      return;
    }
    if (req.path == "/v1/quality") {
      conn->endpoint = "/v1/quality";
      Respond(conn, QualityResponse());
      return;
    }
    if (req.path == "/v1/profile") {
      conn->endpoint = "/v1/profile";
      HandleProfile(conn, req);
      return;
    }
    if (req.path == "/v1/profile/heap") {
      conn->endpoint = "/v1/profile/heap";
      Respond(conn, ProfileHeapResponse());
      return;
    }
    Respond(conn, JsonResponse(404, ErrorJson("no such endpoint: " +
                                              req.target)));
    return;
  }
  if (req.method == "POST") {
    if (req.path == "/v1/sample") {
      conn->endpoint = "/v1/sample";
      HandleSample(conn, req);
      return;
    }
    if (req.path == "/v1/reload") {
      conn->endpoint = "/v1/reload";
      Respond(conn, ReloadNow());
      return;
    }
    Respond(conn, JsonResponse(404, ErrorJson("no such endpoint: " +
                                              req.target)));
    return;
  }
  HttpResponse response;
  response.status = 405;
  response.extra_headers.emplace_back("Allow", "GET, POST");
  response.body = ErrorJson("method not allowed: " + req.method);
  Respond(conn, std::move(response));
}

namespace {

/// Scrape endpoints with zero loaded models answer 503 + Retry-After
/// (the overload semantics from the queue-full path): an empty registry
/// mid-rollout means "not ready, come back", not "healthy with no
/// data", and an empty-but-200 scrape would mask the outage.
HttpResponse NoModelsResponse() {
  HttpResponse response;
  response.status = 503;
  response.extra_headers.emplace_back("Retry-After", "1");
  response.body = ErrorJson("no models loaded");
  return response;
}

}  // namespace

std::vector<QualityModelReport> Server::ScrapeQuality() {
  std::vector<QualityModelReport> reports = quality_.Scrape();
  for (const QualityModelReport& r : reports) {
    if (!r.warn) continue;
    P3GM_LOG(Warning) << "p3gm serve: quality drift on model \"" << r.model
                      << "\": drift " << r.report.drift() << " > threshold "
                      << quality_.options().threshold << " for "
                      << r.breach_streak
                      << " consecutive scrape(s) (worst feature "
                      << r.report.worst_feature << ", ks "
                      << r.report.worst_ks << ", label_tv "
                      << r.report.label_tv << ", rows "
                      << r.report.rows_observed << ")";
  }
  return reports;
}

HttpResponse Server::QualityResponse() {
  if (registry_.size() == 0) return NoModelsResponse();
  return JsonResponse(200,
                      QualityReportJson(ScrapeQuality(), quality_.options(),
                                        registry_.generation()));
}

HttpResponse Server::MetricsResponse(const HttpRequest& req) {
  if (registry_.size() == 0) return NoModelsResponse();
  // A metrics scrape also refreshes the quality gauges, so Prometheus
  // sees drift without anyone polling /v1/quality.
  ScrapeQuality();
  obs::Registry& registry = obs::Registry::Global();
  // Surface silent-loss counts right before the snapshot so a scrape
  // always sees current values.
  registry.gauge("obs.trace.dropped_events")
      ->Set(static_cast<double>(obs::TraceRecorder::Global().DroppedCount()));
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  registry.gauge("obs.flight.recorded_events")
      ->Set(static_cast<double>(flight.RecordedCount()));
  registry.gauge("obs.flight.overwritten_events")
      ->Set(static_cast<double>(flight.OverwrittenCount()));
  // p3gm_process_* (always) and p3gm_alloc_* (when the operator-new
  // hooks are compiled in) refresh on every scrape.
  obs::PublishProcessGauges();

  const obs::Snapshot snapshot = registry.TakeSnapshot();
  const std::string* format = req.QueryParam("format");
  if (format != nullptr && *format == "prometheus") {
    HttpResponse response;
    response.content_type = obs::PrometheusContentType();
    response.body = obs::ToPrometheusText(snapshot);
    return response;
  }
  if (format != nullptr && *format != "json") {
    return JsonResponse(
        400, ErrorJson("unknown metrics format \"" + *format +
                       "\" (want json or prometheus)"));
  }
  return JsonResponse(200, snapshot.ToJson());
}

void Server::HandleSample(Connection* conn, const HttpRequest& req) {
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* samples = registry.counter("serve.sample.requests");
  samples->Add();

  auto parsed = ParseSampleRequest(req.body, options_.max_n);
  if (!parsed.ok()) {
    Respond(conn, JsonResponse(StatusToHttp(parsed.status()),
                               ErrorJson(parsed.status().message())));
    return;
  }
  const SampleRequest& sample = *parsed;
  std::shared_ptr<const core::ReleasePackage> package =
      registry_.Find(sample.model);
  if (package == nullptr) {
    Respond(conn, JsonResponse(404, ErrorJson("unknown model \"" +
                                              sample.model + "\"")));
    return;
  }
  const std::uint64_t generation = registry_.generation();

  // Cache fast path: unseeded, cache-eligible requests may be answered
  // without touching the batcher at all.
  const bool cacheable = cache_.enabled() && !sample.has_seed &&
                         !sample.fresh;
  if (cacheable) {
    data::Dataset rows;
    if (cache_.Lookup(sample.model, generation, sample.n, &rows)) {
      static obs::Counter* hits = registry.counter("serve.cache.hits");
      hits->Add();
      conn->cache_hit = true;
      Respond(conn, JsonResponse(200, SampleResponseJson(
                                          sample.model, generation,
                                          /*cached=*/true, rows)));
      return;
    }
    static obs::Counter* misses = registry.counter("serve.cache.misses");
    misses->Add();
  }

  SampleJob job;
  job.ticket = next_ticket_++;
  job.model = sample.model;
  job.generation = generation;
  job.package = std::move(package);
  job.n = sample.n;
  job.has_seed = sample.has_seed;
  job.seed = sample.seed;
  job.stream_index = next_stream_index_++;
  job.fill_cache = cacheable;
  job.trace = conn->trace;
  const std::uint64_t ticket = job.ticket;
  if (!batcher_->Enqueue(std::move(job))) {
    static obs::Counter* overload = registry.counter("serve.overload");
    overload->Add();
    HttpResponse response;
    response.status = 503;
    response.extra_headers.emplace_back("Retry-After", "1");
    response.body = ErrorJson("sample queue full, retry later");
    Respond(conn, std::move(response));
    return;
  }
  conn->awaiting_sample = true;
  conn->ticket = ticket;
  conn->model = sample.model;
  conn->generation = generation;
  ticket_to_fd_[ticket] = conn->fd;
}

void Server::HandleProfile(Connection* conn, const HttpRequest& req) {
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* requests = registry.counter("serve.profile.requests");
  requests->Add();

  std::uint64_t seconds = 1;
  std::uint64_t hz = 99;
  if (const std::string* s = req.QueryParam("seconds")) {
    if (!util::ParseUint64(*s, 1, 60, &seconds)) {
      Respond(conn, JsonResponse(
                        400, ErrorJson("bad seconds \"" + *s +
                                       "\" (want integer in [1, 60])")));
      return;
    }
  }
  if (const std::string* s = req.QueryParam("hz")) {
    if (!util::ParseUint64(*s, 1, 1000, &hz)) {
      Respond(conn, JsonResponse(
                        400, ErrorJson("bad hz \"" + *s +
                                       "\" (want integer in [1, 1000])")));
      return;
    }
  }

  // Admission: one profile at a time, shared with --profile-on-slow
  // bursts. exchange(true) claims the slot or reports it taken.
  if (profile_busy_.exchange(true, std::memory_order_acq_rel)) {
    HttpResponse busy;
    busy.status = 503;
    busy.extra_headers.emplace_back("Retry-After",
                                    std::to_string(seconds));
    busy.body = ErrorJson("a profile is already running, retry later");
    Respond(conn, std::move(busy));
    return;
  }
  obs::profile::CpuProfileOptions profile_options;
  profile_options.hz = static_cast<int>(hz);
  const util::Status status =
      obs::profile::CpuProfiler::Global().Start(profile_options);
  if (!status.ok()) {
    profile_busy_.store(false, std::memory_order_release);
    const bool contended =
        status.code() == util::StatusCode::kFailedPrecondition;
    HttpResponse response;
    response.status = contended ? 503 : 500;
    if (contended) response.extra_headers.emplace_back("Retry-After", "1");
    response.body = ErrorJson(status.message());
    Respond(conn, std::move(response));
    return;
  }

  // Park the connection (sample-request machinery) and collect on a
  // worker so the event loop keeps serving; the loop thread's own work
  // still gets sampled — only this endpoint's response assembly happens
  // after Stop, excluding it from its own profile.
  const std::uint64_t ticket = next_ticket_++;
  conn->awaiting_profile = true;
  conn->ticket = ticket;
  ticket_to_fd_[ticket] = conn->fd;
  if (profile_thread_.joinable()) profile_thread_.join();
  profile_thread_ = std::thread([this, ticket, seconds] {
    const std::uint64_t deadline_ns =
        obs::NowNs() + seconds * 1000000000ull;
    while (obs::NowNs() < deadline_ns &&
           !stop_requested_.load(std::memory_order_acquire)) {
      struct timespec ts = {0, 50 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
    }
    auto profile = obs::profile::CpuProfiler::Global().Stop();
    HttpResponse response;
    if (!profile.ok()) {
      response.status = 500;
      response.body = ErrorJson(profile.status().message());
    } else {
      response.content_type = "text/plain; charset=utf-8";
      response.body = profile->ToFoldedText();
      response.extra_headers.emplace_back(
          "X-Profile-Samples", std::to_string(profile->samples));
      response.extra_headers.emplace_back(
          "X-Profile-Dropped", std::to_string(profile->dropped));
      response.extra_headers.emplace_back(
          "X-Profile-Hz", std::to_string(profile->hz));
    }
    {
      std::lock_guard<std::mutex> lock(profile_completions_mutex_);
      profile_completions_.push_back(
          ProfileCompletion{ticket, std::move(response)});
    }
    profile_busy_.store(false, std::memory_order_release);
    Wake();
  });
}

HttpResponse Server::ProfileHeapResponse() {
  obs::profile::HeapProfiler& heap = obs::profile::HeapProfiler::Global();
  if (!obs::perf::AllocTrackingCompiledIn()) {
    HttpResponse response;
    response.status = 501;
    response.body = ErrorJson(
        "heap profiling requires a -DP3GM_ALLOC_TRACKING=ON build");
    return response;
  }
  if (!heap.running()) {
    HttpResponse response;
    response.status = 503;
    response.extra_headers.emplace_back("Retry-After", "1");
    response.body = ErrorJson("heap profiler is not running");
    return response;
  }
  auto snapshot = heap.Snapshot();
  if (!snapshot.ok()) {
    return JsonResponse(500, ErrorJson(snapshot.status().message()));
  }
  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  response.body = snapshot->ToFoldedText();
  response.extra_headers.emplace_back(
      "X-Profile-Samples", std::to_string(snapshot->samples));
  response.extra_headers.emplace_back(
      "X-Profile-Dropped", std::to_string(snapshot->dropped));
  response.extra_headers.emplace_back(
      "X-Profile-Stride-Bytes", std::to_string(snapshot->stride_bytes));
  return response;
}

void Server::MaybeStartSlowProfile() {
  if (options_.profile_on_slow_dir.empty()) return;
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* bursts =
      registry.counter("serve.profile.slow_bursts");
  static obs::Counter* skipped =
      registry.counter("serve.profile.slow_skipped");
  if (profile_busy_.exchange(true, std::memory_order_acq_rel)) {
    skipped->Add();  // Never queue bursts behind a running profile.
    return;
  }
  const util::Status status = obs::profile::CpuProfiler::Global().Start(
      obs::profile::CpuProfileOptions());
  if (!status.ok()) {
    profile_busy_.store(false, std::memory_order_release);
    skipped->Add();
    return;
  }
  bursts->Add();
  const std::string path = options_.profile_on_slow_dir + "/slow-" +
                           obs::TraceIdHex(obs::CurrentContext()) +
                           ".folded";
  const std::uint64_t seconds = static_cast<std::uint64_t>(
      std::max(1, options_.profile_on_slow_seconds));
  if (profile_thread_.joinable()) profile_thread_.join();
  profile_thread_ = std::thread([this, path, seconds] {
    const std::uint64_t deadline_ns =
        obs::NowNs() + seconds * 1000000000ull;
    while (obs::NowNs() < deadline_ns &&
           !stop_requested_.load(std::memory_order_acquire)) {
      struct timespec ts = {0, 50 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
    }
    auto profile = obs::profile::CpuProfiler::Global().Stop();
    if (profile.ok()) {
      std::ofstream out(path, std::ios::trunc);
      out << profile->ToFoldedText();
      out.close();
      P3GM_LOG(Info) << "p3gm serve: slow-request profile burst ("
                     << profile->samples << " samples, "
                     << profile->dropped << " dropped) written to "
                     << path;
    } else {
      P3GM_LOG(Warning) << "p3gm serve: slow-request profile burst "
                        << "failed: " << profile.status();
    }
    profile_busy_.store(false, std::memory_order_release);
  });
}

void Server::DrainProfileCompletions() {
  std::vector<ProfileCompletion> batch;
  {
    std::lock_guard<std::mutex> lock(profile_completions_mutex_);
    batch.swap(profile_completions_);
  }
  for (ProfileCompletion& done : batch) {
    const auto it = ticket_to_fd_.find(done.ticket);
    if (it == ticket_to_fd_.end()) continue;  // Connection went away.
    const int fd = it->second;
    ticket_to_fd_.erase(it);
    const auto conn_it = connections_.find(fd);
    if (conn_it == connections_.end()) continue;
    Connection* conn = conn_it->second.get();
    if (!conn->awaiting_profile || conn->ticket != done.ticket) continue;
    conn->awaiting_profile = false;
    obs::RequestScope request_scope(conn->trace);
    Respond(conn, std::move(done.response));
    if (connections_.count(fd) == 0) continue;
    conn->parser.ResetForNext();
    PumpRequests(conn);
  }
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    const auto it = ticket_to_fd_.find(done.ticket);
    if (it == ticket_to_fd_.end()) continue;  // Connection went away.
    const int fd = it->second;
    ticket_to_fd_.erase(it);
    const auto conn_it = connections_.find(fd);
    if (conn_it == connections_.end()) continue;
    Connection* conn = conn_it->second.get();
    if (!conn->awaiting_sample || conn->ticket != done.ticket) continue;
    conn->awaiting_sample = false;
    // Re-enter the request's trace scope: the response (headers, slow
    // log, latency attribution) belongs to the span that parked here.
    obs::RequestScope request_scope(conn->trace);
    if (done.result.ok()) {
      Respond(conn, JsonResponse(
                        200, SampleResponseJson(conn->model,
                                                conn->generation,
                                                /*cached=*/false,
                                                *done.result)));
    } else {
      Respond(conn, JsonResponse(StatusToHttp(done.result.status()),
                                 ErrorJson(done.result.status().message())));
    }
    if (connections_.count(fd) == 0) continue;
    // The parked connection may hold a pipelined follow-up request.
    conn->parser.ResetForNext();
    PumpRequests(conn);
  }
}

HttpResponse Server::ReloadNow() {
  static obs::Counter* reloads =
      obs::Registry::Global().counter("serve.reloads");
  const util::Status status = registry_.Reload();
  if (!status.ok()) {
    P3GM_LOG(Warning) << "p3gm serve: reload failed: " << status;
    return JsonResponse(500, ErrorJson("reload failed: " +
                                       status.message()));
  }
  reloads->Add();
  // Fresh monitors against the reloaded weights' fingerprints: drift
  // must always be measured relative to what is being served now.
  quality_.Rebuild(registry_);
  P3GM_LOG(Info) << "p3gm serve: reloaded " << registry_.size()
                 << " model(s), generation " << registry_.generation();
  return JsonResponse(
      200, "{\"status\": \"reloaded\", \"generation\": " +
               std::to_string(registry_.generation()) + ", \"models\": " +
               std::to_string(registry_.size()) + "}");
}

void Server::Respond(Connection* conn, HttpResponse response) {
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter* ok2xx = registry.counter("serve.responses.2xx");
  static obs::Counter* err4xx = registry.counter("serve.responses.4xx");
  static obs::Counter* err5xx = registry.counter("serve.responses.5xx");
  static obs::Histogram* latency = registry.histogram(
      "serve.request.latency_seconds", kLatencyBounds);
  if (response.status < 400) {
    ok2xx->Add();
  } else if (response.status < 500) {
    err4xx->Add();
  } else {
    err5xx->Add();
  }
  // Every response names its request: parse failures and early
  // rejections reach here without ProcessRequest having minted an id,
  // so mint one now. Echoing traceparent lets a propagating client
  // stitch our server span into its own trace.
  if (!conn->trace.valid()) conn->trace = obs::MakeRootContext();
  response.extra_headers.emplace_back("X-Request-Id",
                                      obs::TraceIdHex(conn->trace));
  response.extra_headers.emplace_back("traceparent",
                                      obs::FormatTraceparent(conn->trace));
  if (conn->request_start_ns != 0) {
    const double seconds =
        static_cast<double>(obs::NowNs() - conn->request_start_ns) * 1e-9;
    latency->Observe(seconds);
    registry
        .histogram(obs::LabeledName("serve.request.latency_seconds",
                                    {{"endpoint", conn->endpoint}}),
                   kLatencyBounds)
        ->Observe(seconds);
    if (std::strcmp(conn->endpoint, "/v1/sample") == 0) {
      registry
          .histogram(
              obs::LabeledName("serve.request.latency_seconds",
                               {{"endpoint", conn->endpoint},
                                {"result",
                                 conn->cache_hit ? "hit" : "fresh"}}),
              kLatencyBounds)
          ->Observe(seconds);
    }
    obs::FlightRecorder::Global().Record(
        obs::FlightRecorder::EventKind::kRequest, "serve.respond",
        conn->trace.span_id, static_cast<std::uint64_t>(response.status));
    if (options_.slow_request_ms > 0 &&
        seconds * 1000.0 >= static_cast<double>(options_.slow_request_ms)) {
      obs::RequestScope slow_scope(conn->trace);
      P3GM_LOG(Warning) << "p3gm serve: slow request " << conn->endpoint
                        << " status " << response.status << " took "
                        << static_cast<std::uint64_t>(seconds * 1000.0)
                        << " ms (threshold " << options_.slow_request_ms
                        << " ms)";
      // --profile-on-slow: attach a flamegraph to the incident. The
      // burst file is named by this request's trace id (ambient via
      // slow_scope above).
      MaybeStartSlowProfile();
    }
    conn->request_start_ns = 0;
  }
  conn->endpoint = "other";
  conn->cache_hit = false;
  if (response.close_connection) conn->close_after_write = true;
  response.close_connection = conn->close_after_write;
  conn->out += response.Serialize();
  HandleWritable(conn);
}

void Server::HandleWritable(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t sent =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (sent > 0) {
      conn->out_offset += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  if (conn->out_offset >= conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_write) {
      CloseConnection(conn->fd);
      return;
    }
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection* conn) {
  const bool want_write = conn->out_offset < conn->out.size();
  // While a sample or profile is in flight we stop reading:
  // backpressure, and the parked request's response must go out before
  // the next one is read.
  const bool want_read = !conn->awaiting_sample && !conn->awaiting_profile;
  poller_->Update(conn->fd, want_read, want_write);
}

void Server::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second->awaiting_sample || it->second->awaiting_profile) {
    ticket_to_fd_.erase(it->second->ticket);
  }
  poller_->Remove(fd);
  ::close(fd);
  connections_.erase(it);
}

}  // namespace serve
}  // namespace p3gm
