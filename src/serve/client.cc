#include "serve/client.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/string_utils.h"

namespace p3gm {
namespace serve {

namespace {

bool IEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::string* ClientResponse::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (IEquals(key, name)) return &value;
  }
  return nullptr;
}

HttpClient::~HttpClient() { Close(); }

util::Status HttpClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return util::Status::IoError("HttpClient: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return util::Status::InvalidArgument("HttpClient: bad host \"" + host +
                                         "\"");
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    Close();
    return util::Status::IoError("HttpClient: connect(" + host + ":" +
                                 std::to_string(port) +
                                 ") failed: " + std::strerror(errno));
  }
  buffer_.clear();
  return util::Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

util::Status HttpClient::SendAll(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return util::Status::IoError("HttpClient: send failed: " +
                                 std::string(std::strerror(errno)));
  }
  return util::Status::OK();
}

util::Result<ClientResponse> HttpClient::Request(const std::string& method,
                                                 const std::string& target,
                                                 const std::string& body) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("HttpClient: not connected");
  }
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: p3gm\r\n";
  if (!body.empty() || method == "POST") {
    wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  P3GM_RETURN_NOT_OK(SendAll(wire));
  return ReadResponse();
}

util::Result<ClientResponse> HttpClient::Raw(const std::string& bytes) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("HttpClient: not connected");
  }
  P3GM_RETURN_NOT_OK(SendAll(bytes));
  return ReadResponse();
}

util::Result<ClientResponse> HttpClient::ReadResponse() {
  // Accumulate until we have the full header block, then read exactly
  // Content-Length body bytes (the daemon always sets it).
  auto read_more = [this]() -> int {
    char buf[8192];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n > 0) {
        buffer_.append(buf, static_cast<std::size_t>(n));
        return 1;
      }
      if (n == 0) return 0;
      if (errno == EINTR) continue;
      return -1;
    }
  };

  std::size_t header_end;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    const int rc = read_more();
    if (rc == 0) {
      return util::Status::IoError("HttpClient: connection closed before "
                                   "response headers");
    }
    if (rc < 0) {
      return util::Status::IoError("HttpClient: recv failed: " +
                                   std::string(std::strerror(errno)));
    }
    if (buffer_.size() > (8u << 20)) {
      return util::Status::IoError("HttpClient: response headers too large");
    }
  }

  ClientResponse response;
  const std::string head = buffer_.substr(0, header_end);
  std::size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    if (line.empty()) break;
    if (first_line) {
      first_line = false;
      // "HTTP/1.1 200 OK"
      const std::size_t sp1 = line.find(' ');
      if (sp1 == std::string::npos) {
        return util::Status::IoError("HttpClient: malformed status line: " +
                                     line);
      }
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      const std::string code =
          line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                        : sp2 - sp1 - 1);
      std::uint64_t status = 0;
      if (!util::ParseUint64(code, 100, 599, &status)) {
        return util::Status::IoError("HttpClient: bad status code: " + line);
      }
      response.status = static_cast<int>(status);
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    response.headers.emplace_back(std::move(key), std::move(value));
  }

  std::size_t body_len = 0;
  if (const std::string* cl = response.FindHeader("Content-Length")) {
    std::uint64_t parsed = 0;
    if (!util::ParseUint64(*cl, 0, 64u << 20, &parsed)) {
      return util::Status::IoError("HttpClient: bad Content-Length: " + *cl);
    }
    body_len = static_cast<std::size_t>(parsed);
  }

  const std::size_t body_start = header_end + 4;
  while (buffer_.size() < body_start + body_len) {
    const int rc = read_more();
    if (rc == 0) {
      return util::Status::IoError(
          "HttpClient: connection closed mid-body (" +
          std::to_string(buffer_.size() - body_start) + "/" +
          std::to_string(body_len) + " bytes)");
    }
    if (rc < 0) {
      return util::Status::IoError("HttpClient: recv failed: " +
                                   std::string(std::strerror(errno)));
    }
  }
  response.body = buffer_.substr(body_start, body_len);
  buffer_.erase(0, body_start + body_len);
  return response;
}

util::Result<ClientResponse> FetchOnce(const std::string& host, int port,
                                       const std::string& method,
                                       const std::string& target,
                                       const std::string& body) {
  HttpClient client;
  P3GM_RETURN_NOT_OK(client.Connect(host, port));
  return client.Request(method, target, body);
}

}  // namespace serve
}  // namespace p3gm
