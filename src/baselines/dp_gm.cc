#include "baselines/dp_gm.h"

#include <algorithm>
#include <cmath>

#include "data/transforms.h"

namespace p3gm {
namespace baselines {

DpGmSynthesizer::DpGmSynthesizer(const DpGmOptions& options)
    : options_(options), rng_(options.seed) {}

util::Status DpGmSynthesizer::Fit(const data::Dataset& train) {
  if (!components_.empty()) {
    return util::Status::FailedPrecondition("DpGmSynthesizer::Fit twice");
  }
  if (train.size() == 0) {
    return util::Status::InvalidArgument("DpGmSynthesizer: empty dataset");
  }
  num_classes_ = train.num_classes;
  dataset_name_ = train.name;
  const linalg::Matrix joint =
      data::AttachLabels(train.features, train.labels, num_classes_);

  // Private partitioning.
  stats::DpKMeansOptions km_opts;
  km_opts.num_clusters =
      std::min(options_.num_clusters, train.size() / 2 + 1);
  km_opts.iters = options_.kmeans_iters;
  km_opts.noise_multiplier = options_.kmeans_sigma;
  km_opts.seed = options_.seed ^ 0x4b;
  P3GM_ASSIGN_OR_RETURN(stats::KMeansResult partition,
                        stats::DpKMeans(joint, km_opts, &rng_));

  // Noisy cluster sizes drive the sampling mixture (one Gaussian release).
  std::vector<double> counts(km_opts.num_clusters, 0.0);
  for (std::size_t c : partition.assignment) counts[c] += 1.0;
  std::vector<double> noisy_counts = counts;
  if (options_.count_sigma > 0.0) {
    for (double& v : noisy_counts) {
      v += rng_.Normal(0.0, options_.count_sigma);
    }
  }
  for (double& v : noisy_counts) v = std::max(v, 0.0);

  // One DP-SGD-trained VAE per non-trivial cluster.
  for (std::size_t c = 0; c < km_opts.num_clusters; ++c) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < partition.assignment.size(); ++i) {
      if (partition.assignment[i] == c) idx.push_back(i);
    }
    // A cluster too small to fill even a couple of batches cannot train;
    // drop it (its noisy weight is dropped with it).
    if (idx.size() < 8) continue;
    core::VaeOptions vae_opts = options_.vae;
    vae_opts.differentially_private = true;
    vae_opts.seed = options_.seed + 1000 + c;
    vae_opts.batch_size = std::min(vae_opts.batch_size, idx.size());
    auto vae = std::make_unique<core::Vae>(vae_opts);
    P3GM_RETURN_NOT_OK(vae->Fit(joint.SelectRows(idx)));
    const double q = static_cast<double>(vae_opts.batch_size) /
                     static_cast<double>(idx.size());
    const std::size_t steps =
        vae_opts.epochs *
        std::max<std::size_t>(1, idx.size() / vae_opts.batch_size);
    component_sgd_.emplace_back(q, steps);
    components_.push_back(std::move(vae));
    component_weights_.push_back(std::max(noisy_counts[c], 1.0));
  }
  if (components_.empty()) {
    return util::Status::Internal(
        "DpGmSynthesizer: every cluster degenerated");
  }
  return util::Status::OK();
}

util::Result<data::Dataset> DpGmSynthesizer::Generate(std::size_t n,
                                                      util::Rng* rng) {
  if (components_.empty()) {
    return util::Status::FailedPrecondition(
        "DpGmSynthesizer: Generate before Fit");
  }
  // Draw the component of each row first, then batch-sample per
  // component (one decoder pass per component instead of per row).
  std::vector<std::size_t> counts(components_.size(), 0);
  std::vector<std::size_t> row_component(n);
  for (std::size_t i = 0; i < n; ++i) {
    row_component[i] = rng->Categorical(component_weights_);
    ++counts[row_component[i]];
  }
  std::vector<linalg::Matrix> blocks(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    if (counts[c] > 0) blocks[c] = components_[c]->Sample(counts[c], rng);
  }
  std::vector<std::size_t> cursor(components_.size(), 0);
  linalg::Matrix joint(n, blocks[row_component[0]].cols());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = row_component[i];
    joint.SetRow(i, blocks[c].Row(cursor[c]++));
  }
  data::LabeledRows rows = data::DetachLabels(joint, num_classes_);
  data::Dataset out;
  out.name = dataset_name_ + "+DP-GM";
  out.num_classes = num_classes_;
  out.features = std::move(rows.features);
  out.labels = std::move(rows.labels);
  return out;
}

dp::DpGuarantee DpGmSynthesizer::ComputeEpsilon(double delta) const {
  // Sequential: DP k-means (2 releases per iteration) + the cluster-size
  // release. Parallel across disjoint clusters: the worst per-cluster
  // DP-SGD cost (element-wise max over RDP orders).
  dp::RdpAccountant acc;
  acc.AddGaussian(options_.kmeans_sigma, 2 * options_.kmeans_iters);
  acc.AddGaussian(options_.count_sigma, 1);
  std::vector<double> worst(acc.orders().size(), 0.0);
  for (const auto& [q, steps] : component_sgd_) {
    dp::RdpAccountant one;
    one.AddSampledGaussian(q, options_.vae.sgd_sigma, steps);
    for (std::size_t i = 0; i < worst.size(); ++i) {
      worst[i] = std::max(worst[i], one.rdp()[i]);
    }
  }
  acc.AddRdp(worst);
  return acc.GetEpsilon(delta);
}

util::Result<double> DpGmSynthesizer::CalibrateSigma(
    const DpGmOptions& options, std::size_t n, double target_epsilon,
    double delta) {
  if (n == 0 || options.num_clusters == 0) {
    return util::Status::InvalidArgument(
        "DpGm CalibrateSigma: invalid n or cluster count");
  }
  const std::size_t cluster_n =
      std::max<std::size_t>(8, n / options.num_clusters);
  const std::size_t batch = std::min(options.vae.batch_size, cluster_n);
  const double q =
      static_cast<double>(batch) / static_cast<double>(cluster_n);
  const std::size_t steps =
      options.vae.epochs * std::max<std::size_t>(1, cluster_n / batch);

  auto eps_at = [&](double sigma) {
    dp::RdpAccountant acc;
    acc.AddGaussian(options.kmeans_sigma, 2 * options.kmeans_iters);
    acc.AddGaussian(options.count_sigma, 1);
    acc.AddSampledGaussian(q, sigma, steps);
    return acc.GetEpsilon(delta).epsilon;
  };
  double lo = 0.3, hi = 256.0;
  if (eps_at(hi) > target_epsilon) {
    return util::Status::FailedPrecondition(
        "DpGm CalibrateSigma: target unreachable; k-means budget too large");
  }
  if (eps_at(lo) <= target_epsilon) return lo;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (eps_at(mid) > target_epsilon ? lo : hi) = mid;
    if ((hi - lo) / hi < 1e-4) break;
  }
  return hi;
}

}  // namespace baselines
}  // namespace p3gm
