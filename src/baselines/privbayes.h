#ifndef P3GM_BASELINES_PRIVBAYES_H_
#define P3GM_BASELINES_PRIVBAYES_H_

#include <vector>

#include "core/synthesizer.h"
#include "stats/discretizer.h"

namespace p3gm {
namespace baselines {

/// PrivBayes (Zhang et al., SIGMOD 2014): the paper's classic
/// low-dimensional competitor. Continuous columns are discretized; a
/// degree-bounded Bayesian network is built greedily, selecting each
/// attribute's parent set with the exponential mechanism scored by
/// mutual information (budget epsilon/2); the conditional distributions
/// are then released with Laplace noise (budget epsilon/2); synthesis is
/// ancestral sampling followed by bin decoding.
///
/// Simplification vs. the original: candidate parent sets are subsets
/// (size <= degree) of the most recently selected `parent_window`
/// attributes rather than of all selected attributes — necessary to keep
/// network construction tractable at ISOLET/MNIST dimensionality, where
/// the paper itself shows PrivBayes breaking down.
struct PrivBayesOptions {
  /// Total pure-DP budget epsilon (the mechanism is (epsilon, 0)-DP).
  double epsilon = 1.0;
  /// Maximum number of parents per attribute.
  std::size_t degree = 2;
  /// Bins per continuous column.
  std::size_t bins = 8;
  /// Window of recent attributes considered as parents.
  std::size_t parent_window = 8;
  /// At most this many unselected attributes are scored per selection
  /// round (0 = all). Keeps network construction tractable at MNIST
  /// dimensionality; the sampled-candidate exponential mechanism is still
  /// a valid (if weaker) selection step.
  std::size_t max_candidates_per_round = 48;
  std::uint64_t seed = 123;
};

class PrivBayesSynthesizer : public core::Synthesizer {
 public:
  explicit PrivBayesSynthesizer(const PrivBayesOptions& options);

  util::Status Fit(const data::Dataset& train) override;
  util::Result<data::Dataset> Generate(std::size_t n,
                                       util::Rng* rng) override;
  dp::DpGuarantee ComputeEpsilon(double delta) const override;
  std::string name() const override { return "PrivBayes"; }

  /// The learned topological attribute order (diagnostics).
  const std::vector<std::size_t>& attribute_order() const { return order_; }

 private:
  struct NodeModel {
    std::size_t attribute = 0;
    std::vector<std::size_t> parents;       // Attribute indices.
    std::vector<std::size_t> parent_cards;  // Domain sizes of parents.
    /// Flattened (parent_config x cardinality) conditional probabilities.
    std::vector<double> conditional;
    std::size_t cardinality = 0;
  };

  PrivBayesOptions options_;
  util::Rng rng_;
  stats::Discretizer discretizer_;
  std::vector<std::size_t> order_;
  std::vector<NodeModel> nodes_;
  std::vector<std::size_t> cardinalities_;
  std::size_t num_features_ = 0;  // Excludes the label column.
  std::size_t num_classes_ = 2;
  std::string dataset_name_;
  bool fitted_ = false;
};

}  // namespace baselines
}  // namespace p3gm

#endif  // P3GM_BASELINES_PRIVBAYES_H_
