#include "baselines/privbayes.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"
#include "stats/mutual_information.h"

namespace p3gm {
namespace baselines {

namespace {

// Enumerates all subsets of `pool` with size in [1, max_size].
void EnumerateSubsets(const std::vector<std::size_t>& pool,
                      std::size_t max_size,
                      std::vector<std::vector<std::size_t>>* out) {
  const std::size_t m = pool.size();
  for (std::size_t mask = 1; mask < (1ULL << m); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) > max_size) {
      continue;
    }
    std::vector<std::size_t> subset;
    for (std::size_t b = 0; b < m; ++b) {
      if (mask & (1ULL << b)) subset.push_back(pool[b]);
    }
    out->push_back(std::move(subset));
  }
}

}  // namespace

PrivBayesSynthesizer::PrivBayesSynthesizer(const PrivBayesOptions& options)
    : options_(options), rng_(options.seed) {}

util::Status PrivBayesSynthesizer::Fit(const data::Dataset& train) {
  if (fitted_) {
    return util::Status::FailedPrecondition("PrivBayesSynthesizer::Fit twice");
  }
  if (train.size() == 0) {
    return util::Status::InvalidArgument("PrivBayes: empty dataset");
  }
  if (options_.epsilon <= 0.0) {
    return util::Status::InvalidArgument("PrivBayes: epsilon must be > 0");
  }
  fitted_ = true;
  num_classes_ = train.num_classes;
  num_features_ = train.dim();
  dataset_name_ = train.name;
  const std::size_t n = train.size();
  const std::size_t d = num_features_ + 1;  // + label column.

  // Discretize features; the label is its own categorical column.
  P3GM_ASSIGN_OR_RETURN(discretizer_,
                        stats::Discretizer::Fit(train.features,
                                                options_.bins));
  std::vector<std::vector<int>> rows_codes =
      discretizer_.Transform(train.features);
  // Column-major code table (one vector per attribute).
  std::vector<std::vector<int>> columns(d, std::vector<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < num_features_; ++j) {
      columns[j][i] = rows_codes[i][j];
    }
    columns[num_features_][i] = static_cast<int>(train.labels[i]);
  }
  cardinalities_.assign(d, options_.bins);
  cardinalities_[num_features_] = num_classes_;

  const double eps_structure = options_.epsilon / 2.0;
  const double eps_counts = options_.epsilon / 2.0;
  // Each of the d-1 exponential-mechanism selections gets an equal share.
  const double eps_per_selection =
      d > 1 ? eps_structure / static_cast<double>(d - 1) : eps_structure;
  // Sensitivity bound of empirical mutual information (Zhang et al.).
  const double mi_sensitivity =
      (std::log(static_cast<double>(n)) + 1.0) / static_cast<double>(n);

  // Greedy network construction. Start from the label column so every
  // attribute can depend on it (matching PrivBayes' label-aware usage).
  order_.clear();
  nodes_.clear();
  std::vector<bool> selected(d, false);
  order_.push_back(num_features_);
  selected[num_features_] = true;
  {
    NodeModel root;
    root.attribute = num_features_;
    root.cardinality = num_classes_;
    nodes_.push_back(std::move(root));
  }

  while (order_.size() < d) {
    // Candidate (attribute, parent-set) pairs. Parents come from the
    // last `parent_window` selected attributes.
    std::vector<std::size_t> pool;
    const std::size_t window = std::min(options_.parent_window,
                                        order_.size());
    for (std::size_t k = order_.size() - window; k < order_.size(); ++k) {
      pool.push_back(order_[k]);
    }
    std::vector<std::vector<std::size_t>> parent_sets;
    EnumerateSubsets(pool, options_.degree, &parent_sets);

    std::vector<std::size_t> unselected;
    for (std::size_t a = 0; a < d; ++a) {
      if (!selected[a]) unselected.push_back(a);
    }
    if (options_.max_candidates_per_round > 0 &&
        unselected.size() > options_.max_candidates_per_round) {
      rng_.Shuffle(&unselected);
      unselected.resize(options_.max_candidates_per_round);
    }
    std::vector<std::pair<std::size_t, std::size_t>> candidates;  // (attr, ps)
    std::vector<double> utilities;
    for (std::size_t a : unselected) {
      for (std::size_t ps = 0; ps < parent_sets.size(); ++ps) {
        candidates.emplace_back(a, ps);
        utilities.push_back(stats::MutualInformationWithParents(
            columns, cardinalities_, a, parent_sets[ps]));
      }
    }
    P3GM_ASSIGN_OR_RETURN(
        std::size_t pick,
        dp::ExponentialMechanism(utilities, mi_sensitivity,
                                 eps_per_selection, &rng_));
    const std::size_t attr = candidates[pick].first;
    const std::vector<std::size_t>& parents =
        parent_sets[candidates[pick].second];

    NodeModel node;
    node.attribute = attr;
    node.parents = parents;
    node.cardinality = cardinalities_[attr];
    for (std::size_t p : parents) node.parent_cards.push_back(
        cardinalities_[p]);
    nodes_.push_back(std::move(node));
    order_.push_back(attr);
    selected[attr] = true;
  }

  // Noisy conditional distributions. Each record contributes one count to
  // each of the d tables, so per-table sensitivity under the shared
  // eps_counts budget is handled by splitting it evenly: each table gets
  // Laplace(2d / (n_eps)) noise on its *frequency* cells, i.e.
  // Laplace(d / eps_counts) on raw counts (the 2 from L1 sensitivity 2 of
  // histograms under record replacement... we follow Zhang et al.'s
  // Laplace(4d / eps) frequency-noise convention, applied to counts as
  // scale 2d/eps_counts).
  const double laplace_scale =
      2.0 * static_cast<double>(d) / eps_counts;
  for (NodeModel& node : nodes_) {
    std::size_t parent_configs = 1;
    for (std::size_t c : node.parent_cards) parent_configs *= c;
    std::vector<double> counts(parent_configs * node.cardinality, 0.0);
    std::vector<int> tuple(node.parents.size());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t t = 0; t < node.parents.size(); ++t) {
        tuple[t] = columns[node.parents[t]][i];
      }
      const std::size_t pc = stats::EncodeTuple(tuple, node.parent_cards);
      counts[pc * node.cardinality +
             static_cast<std::size_t>(columns[node.attribute][i])] += 1.0;
    }
    for (double& c : counts) {
      c += rng_.Laplace(laplace_scale);
      c = std::max(c, 0.0);
    }
    // Normalize per parent configuration; empty configs become uniform.
    node.conditional.assign(counts.size(), 0.0);
    for (std::size_t pc = 0; pc < parent_configs; ++pc) {
      double total = 0.0;
      for (std::size_t v = 0; v < node.cardinality; ++v) {
        total += counts[pc * node.cardinality + v];
      }
      for (std::size_t v = 0; v < node.cardinality; ++v) {
        node.conditional[pc * node.cardinality + v] =
            total > 0.0 ? counts[pc * node.cardinality + v] / total
                        : 1.0 / static_cast<double>(node.cardinality);
      }
    }
  }
  return util::Status::OK();
}

util::Result<data::Dataset> PrivBayesSynthesizer::Generate(std::size_t n,
                                                           util::Rng* rng) {
  if (!fitted_) {
    return util::Status::FailedPrecondition(
        "PrivBayes: Generate before Fit");
  }
  const std::size_t d = num_features_ + 1;
  std::vector<std::vector<int>> codes(n, std::vector<int>(d, 0));
  std::vector<double> probs;
  for (std::size_t i = 0; i < n; ++i) {
    for (const NodeModel& node : nodes_) {
      std::size_t pc = 0;
      if (!node.parents.empty()) {
        std::vector<int> tuple(node.parents.size());
        for (std::size_t t = 0; t < node.parents.size(); ++t) {
          tuple[t] = codes[i][node.parents[t]];
        }
        pc = stats::EncodeTuple(tuple, node.parent_cards);
      }
      probs.assign(
          node.conditional.begin() +
              static_cast<std::ptrdiff_t>(pc * node.cardinality),
          node.conditional.begin() +
              static_cast<std::ptrdiff_t>((pc + 1) * node.cardinality));
      codes[i][node.attribute] = static_cast<int>(rng->Categorical(probs));
    }
  }

  data::Dataset out;
  out.name = dataset_name_ + "+PrivBayes";
  out.num_classes = num_classes_;
  std::vector<std::vector<int>> feature_codes(
      n, std::vector<int>(num_features_));
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < num_features_; ++j) {
      feature_codes[i][j] = codes[i][j];
    }
    out.labels[i] = static_cast<std::size_t>(codes[i][num_features_]);
  }
  out.features = discretizer_.InverseTransform(feature_codes, rng);
  return out;
}

dp::DpGuarantee PrivBayesSynthesizer::ComputeEpsilon(double delta) const {
  dp::DpGuarantee g;
  g.epsilon = options_.epsilon;
  g.delta = delta;  // Pure DP: holds for every delta including 0.
  return g;
}

}  // namespace baselines
}  // namespace p3gm
