#ifndef P3GM_BASELINES_DP_GM_H_
#define P3GM_BASELINES_DP_GM_H_

#include <memory>
#include <vector>

#include "core/synthesizer.h"
#include "core/vae.h"
#include "stats/kmeans.h"

namespace p3gm {
namespace baselines {

/// DP-GM (Acs et al., TKDE 2018): the paper's strongest private
/// competitor. The data is first partitioned with differentially private
/// k-means; a separate VAE is then trained with DP-SGD on each partition,
/// and synthesis picks a component proportional to (noisy) cluster sizes
/// before decoding a standard-normal latent through that component's
/// decoder.
///
/// Because the partitions are disjoint, the per-cluster DP-SGD runs
/// compose in parallel — the total cost is the maximum over clusters, not
/// the sum — which is how the method affords k generative models. The
/// known failure mode the paper highlights (Fig. 2d): each small VAE
/// collapses toward its cluster's centroid, producing clean but
/// low-diversity samples.
struct DpGmOptions {
  std::size_t num_clusters = 10;
  /// DP k-means iterations and per-release Gaussian noise multiplier.
  std::size_t kmeans_iters = 3;
  double kmeans_sigma = 20.0;
  /// Noise multiplier of the one-shot cluster-size release.
  double count_sigma = 20.0;
  /// Per-cluster VAE configuration (trained with DP-SGD).
  core::VaeOptions vae;
  std::uint64_t seed = 91;
};

class DpGmSynthesizer : public core::Synthesizer {
 public:
  explicit DpGmSynthesizer(const DpGmOptions& options);

  util::Status Fit(const data::Dataset& train) override;
  util::Result<data::Dataset> Generate(std::size_t n,
                                       util::Rng* rng) override;
  dp::DpGuarantee ComputeEpsilon(double delta) const override;
  std::string name() const override { return "DP-GM"; }

  /// Solves for the per-cluster DP-SGD noise multiplier that makes a
  /// planned run on `n` examples meet `target_epsilon` at `delta`,
  /// assuming balanced clusters of size n / num_clusters.
  static util::Result<double> CalibrateSigma(const DpGmOptions& options,
                                             std::size_t n,
                                             double target_epsilon,
                                             double delta);

 private:
  DpGmOptions options_;
  util::Rng rng_;
  std::vector<std::unique_ptr<core::Vae>> components_;
  std::vector<double> component_weights_;
  /// Worst-case per-cluster (q, steps) for parallel-composition
  /// accounting.
  std::vector<std::pair<double, std::size_t>> component_sgd_;
  std::size_t num_classes_ = 2;
  std::string dataset_name_;
};

}  // namespace baselines
}  // namespace p3gm

#endif  // P3GM_BASELINES_DP_GM_H_
