#include "nn/init.h"

#include <cmath>

namespace p3gm {
namespace nn {

void XavierUniform(std::size_t fan_in, std::size_t fan_out, linalg::Matrix* w,
                   util::Rng* rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  double* data = w->data();
  for (std::size_t i = 0; i < w->size(); ++i) data[i] = rng->Uniform(-a, a);
}

void HeNormal(std::size_t fan_in, linalg::Matrix* w, util::Rng* rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  double* data = w->data();
  for (std::size_t i = 0; i < w->size(); ++i) data[i] = rng->Normal(0.0, stddev);
}

}  // namespace nn
}  // namespace p3gm
