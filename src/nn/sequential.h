#ifndef P3GM_NN_SEQUENTIAL_H_
#define P3GM_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace p3gm {
namespace nn {

/// An owning chain of layers applied in order. Also a Layer itself, so
/// stacks compose.
class Sequential : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a layer and returns a raw pointer for later inspection.
  template <typename L>
  L* Add(std::unique_ptr<L> layer) {
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    return Add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  /// Propagates the mode to every child layer.
  void SetTraining(bool training) override;
  std::vector<Parameter*> Parameters() override;
  bool SupportsPerExampleGrads() const override;
  void AddPerExampleSquaredGradNorms(
      std::vector<double>* sq_norms) const override;
  void AccumulateClippedGrads(const std::vector<double>& scale) override;
  std::string name() const override { return name_; }

  std::size_t num_layers() const { return layers_.size(); }
  Layer* layer(std::size_t i) { return layers_[i].get(); }

  /// Zeroes the gradients of all parameters.
  void ZeroGrad();

  /// Total number of scalar parameters.
  std::size_t NumParameters();

 private:
  std::string name_ = "sequential";
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_SEQUENTIAL_H_
