#ifndef P3GM_NN_CONV2D_H_
#define P3GM_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {

/// 2-D convolution (stride 1) over channel-major flattened images. Each
/// input row is an image stored as [c][h][w] of length
/// in_channels * height * width; each output row is
/// out_channels * out_h * out_w with out_h = height + 2*pad - kh + 1.
///
/// Implemented with im2col + matmul. Used by the image classifier of the
/// Table VII experiment (the paper's CNN has one conv layer with 28 (3,3)
/// kernels). The per-example DP gradient path is not implemented because
/// only non-private downstream classifiers use convolutions.
class Conv2d : public Layer {
 public:
  Conv2d(std::string name, std::size_t in_channels, std::size_t height,
         std::size_t width, std::size_t out_channels, std::size_t kernel,
         std::size_t padding, util::Rng* rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  bool SupportsPerExampleGrads() const override { return false; }
  std::string name() const override { return name_; }

  std::size_t out_height() const { return out_h_; }
  std::size_t out_width() const { return out_w_; }
  std::size_t out_channels() const { return out_c_; }

 private:
  // Fills `col` (P x K) with the patches of one image row.
  void Im2Col(const double* image, linalg::Matrix* col) const;

  std::string name_;
  std::size_t in_c_, h_, w_, out_c_, k_, pad_;
  std::size_t out_h_, out_w_;
  Parameter weight_;  // (in_c * k * k) x out_c
  Parameter bias_;    // 1 x out_c
  linalg::Matrix cached_input_;  // B x (in_c*h*w)
};

/// 2x2 max pooling with stride 2 over channel-major flattened images.
/// Odd trailing rows/columns are dropped (floor semantics).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::size_t channels, std::size_t height, std::size_t width);

  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::string name() const override { return "maxpool2d"; }

  std::size_t out_height() const { return out_h_; }
  std::size_t out_width() const { return out_w_; }

 private:
  std::size_t c_, h_, w_, out_h_, out_w_;
  /// argmax index (into the input row) per output element, per example.
  std::vector<std::vector<std::size_t>> argmax_;
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_CONV2D_H_
