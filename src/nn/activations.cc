#include "nn/activations.h"

#include <cmath>

namespace p3gm {
namespace nn {

double SigmoidScalar(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double SoftplusScalar(double x) {
  // log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|)).
  return std::max(x, 0.0) + std::log1p(std::exp(-std::fabs(x)));
}

linalg::Matrix Relu::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  cached_input_ = x;
  linalg::Matrix y = x;
  double* data = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (data[i] < 0.0) data[i] = 0.0;
  }
  return y;
}

linalg::Matrix Relu::Backward(const linalg::Matrix& grad_out,
                              bool accumulate) {
  (void)accumulate;
  P3GM_CHECK(grad_out.rows() == cached_input_.rows() &&
             grad_out.cols() == cached_input_.cols());
  linalg::Matrix g = grad_out;
  const double* x = cached_input_.data();
  double* gd = g.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0) gd[i] = 0.0;
  }
  return g;
}

linalg::Matrix Sigmoid::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  linalg::Matrix y = x;
  double* data = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) data[i] = SigmoidScalar(data[i]);
  cached_output_ = y;
  return y;
}

linalg::Matrix Sigmoid::Backward(const linalg::Matrix& grad_out,
                                 bool accumulate) {
  (void)accumulate;
  linalg::Matrix g = grad_out;
  const double* y = cached_output_.data();
  double* gd = g.data();
  for (std::size_t i = 0; i < g.size(); ++i) gd[i] *= y[i] * (1.0 - y[i]);
  return g;
}

linalg::Matrix Tanh::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  linalg::Matrix y = x;
  double* data = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) data[i] = std::tanh(data[i]);
  cached_output_ = y;
  return y;
}

linalg::Matrix Tanh::Backward(const linalg::Matrix& grad_out,
                              bool accumulate) {
  (void)accumulate;
  linalg::Matrix g = grad_out;
  const double* y = cached_output_.data();
  double* gd = g.data();
  for (std::size_t i = 0; i < g.size(); ++i) gd[i] *= 1.0 - y[i] * y[i];
  return g;
}

linalg::Matrix Softplus::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  cached_input_ = x;
  linalg::Matrix y = x;
  double* data = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) data[i] = SoftplusScalar(data[i]);
  return y;
}

linalg::Matrix Softplus::Backward(const linalg::Matrix& grad_out,
                                  bool accumulate) {
  (void)accumulate;
  linalg::Matrix g = grad_out;
  const double* x = cached_input_.data();
  double* gd = g.data();
  // d softplus / dx = sigmoid(x).
  for (std::size_t i = 0; i < g.size(); ++i) gd[i] *= SigmoidScalar(x[i]);
  return g;
}

}  // namespace nn
}  // namespace p3gm
