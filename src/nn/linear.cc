#include "nn/linear.h"

#include "linalg/ops.h"
#include "nn/init.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace nn {

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, util::Rng* rng)
    : name_(std::move(name)),
      weight_(name_ + ".weight", in_features, out_features),
      bias_(name_ + ".bias", 1, out_features) {
  HeNormal(in_features, &weight_.value, rng);
}

linalg::Matrix Linear::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  P3GM_CHECK(x.cols() == in_features());
  cached_input_ = x;
  linalg::Matrix y = linalg::Matmul(x, weight_.value);
  linalg::AddRowVector(bias_.value.Row(0), &y);
  return y;
}

linalg::Matrix Linear::Backward(const linalg::Matrix& grad_out,
                                bool accumulate) {
  P3GM_CHECK(grad_out.rows() == cached_input_.rows());
  P3GM_CHECK(grad_out.cols() == out_features());
  if (accumulate) {
    // gW += X^T dY ; gb += column sums of dY.
    weight_.grad += linalg::MatmulTransA(cached_input_, grad_out);
    for (std::size_t i = 0; i < grad_out.rows(); ++i) {
      const double* row = grad_out.row_data(i);
      double* gb = bias_.grad.row_data(0);
      for (std::size_t j = 0; j < out_features(); ++j) gb[j] += row[j];
    }
  } else {
    cached_grad_out_ = grad_out;
  }
  // dX = dY W^T.
  return linalg::MatmulTransB(grad_out, weight_.value);
}

void Linear::AddPerExampleSquaredGradNorms(
    std::vector<double>* sq_norms) const {
  P3GM_CHECK(cached_grad_out_.rows() == cached_input_.rows());
  P3GM_CHECK(sq_norms->size() == cached_input_.rows());
  const std::vector<double> x_sq = linalg::RowSquaredNorms(cached_input_);
  const std::vector<double> dy_sq = linalg::RowSquaredNorms(cached_grad_out_);
  // Weight contribution ||x_i||^2 ||dy_i||^2 plus bias ||dy_i||^2; each
  // worker writes a disjoint slice of sq_norms.
  util::ParallelFor(0, x_sq.size(), 256,
                    [&](std::size_t rb, std::size_t re) {
                      for (std::size_t i = rb; i < re; ++i) {
                        (*sq_norms)[i] += (x_sq[i] + 1.0) * dy_sq[i];
                      }
                    });
}

void Linear::AccumulateClippedGrads(const std::vector<double>& scale) {
  P3GM_CHECK(scale.size() == cached_input_.rows());
  P3GM_CHECK(cached_grad_out_.rows() == cached_input_.rows());
  linalg::Matrix scaled = cached_grad_out_;
  linalg::ScaleRows(scale, &scaled);
  weight_.grad += linalg::MatmulTransA(cached_input_, scaled);
  for (std::size_t i = 0; i < scaled.rows(); ++i) {
    const double* row = scaled.row_data(i);
    double* gb = bias_.grad.row_data(0);
    for (std::size_t j = 0; j < out_features(); ++j) gb[j] += row[j];
  }
}

}  // namespace nn
}  // namespace p3gm
