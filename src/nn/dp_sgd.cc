#include "nn/dp_sgd.h"

#include <cmath>

#include "audit/fault_injection.h"
#include "dp/mechanisms.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace nn {

DpSgdStep::DpSgdStep(const DpSgdOptions& options, util::Rng* rng)
    : options_(options), rng_(rng) {
  P3GM_CHECK(options.clip_norm > 0.0);
  P3GM_CHECK(options.noise_multiplier >= 0.0);
}

util::Status DpSgdStep::CollectSquaredNorms(const std::vector<Layer*>& stacks,
                                            std::size_t batch_size) {
  if (sq_norms_.size() != batch_size) sq_norms_.assign(batch_size, 0.0);
  for (Layer* stack : stacks) {
    if (!stack->SupportsPerExampleGrads() && !stack->Parameters().empty()) {
      return util::Status::Unimplemented(
          "DP-SGD: layer '" + stack->name() +
          "' has parameters but no per-example gradient path");
    }
    stack->AddPerExampleSquaredGradNorms(&sq_norms_);
  }
  scales_ready_ = false;
  return util::Status::OK();
}

void DpSgdStep::AddExternalSquaredNorms(const std::vector<double>& sq_norms) {
  if (sq_norms_.empty()) sq_norms_.assign(sq_norms.size(), 0.0);
  P3GM_CHECK(sq_norms.size() == sq_norms_.size());
  for (std::size_t i = 0; i < sq_norms.size(); ++i) {
    sq_norms_[i] += sq_norms[i];
  }
  scales_ready_ = false;
}

const std::vector<double>& DpSgdStep::clip_scales() {
  if (!scales_ready_) {
    P3GM_TRACE_SPAN("dpsgd.clip");
    scales_.resize(sq_norms_.size());
    util::ParallelFor(0, sq_norms_.size(), 256,
                      [&](std::size_t rb, std::size_t re) {
                        for (std::size_t i = rb; i < re; ++i) {
                          scales_[i] = dp::ClipFactor(
                              options_.clip_norm, std::sqrt(sq_norms_[i]));
                        }
                      });
    scales_ready_ = true;
    if (obs::Enabled()) {
      // Clip-rate telemetry: how often the per-example gradient actually
      // hit the clip bound (scale < 1), plus the scale distribution.
      static obs::Counter* examples =
          obs::Registry::Global().counter("dpsgd.examples");
      static obs::Counter* clipped =
          obs::Registry::Global().counter("dpsgd.examples_clipped");
      static obs::Histogram* scale_hist = obs::Registry::Global().histogram(
          "dpsgd.clip_scale",
          {0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99});
      std::uint64_t hit = 0;
      for (double s : scales_) {
        if (s < 1.0) ++hit;
        scale_hist->Observe(s);
      }
      examples->Add(scales_.size());
      clipped->Add(hit);
    }
  }
  return scales_;
}

void DpSgdStep::ApplyClippedAccumulation(const std::vector<Layer*>& stacks) {
  const std::vector<double>& scales = clip_scales();
  for (Layer* stack : stacks) stack->AccumulateClippedGrads(scales);
}

void DpSgdStep::AddNoiseAndAverage(const std::vector<Parameter*>& params,
                                   std::size_t batch_size) {
  P3GM_TRACE_SPAN("dpsgd.noise");
  static obs::Counter* steps = obs::Registry::Global().counter("dpsgd.steps");
  steps->Add();
  const std::size_t lot =
      options_.lot_size > 0 ? options_.lot_size : batch_size;
  P3GM_CHECK(lot > 0);
  const double stddev =
      audit::NoiseScale() * options_.noise_multiplier * options_.clip_norm;
  const double inv_lot = 1.0 / static_cast<double>(lot);
  // Deliberately serial: noise comes from the single shared Rng stream,
  // never from inside a parallel region. If this loop ever becomes hot
  // enough to parallelize, it must switch to per-coordinate
  // util::Rng::StreamAt streams to stay deterministic.
  for (Parameter* p : params) {
    double* grad = p->grad.data();
    for (std::size_t i = 0; i < p->size(); ++i) {
      if (stddev > 0.0) grad[i] += rng_->Normal(0.0, stddev);
      grad[i] *= inv_lot;
    }
  }
}

double DpSgdStep::MeanClipScale() const {
  if (scales_.empty()) return 0.0;
  double s = 0.0;
  for (double v : scales_) s += v;
  return s / static_cast<double>(scales_.size());
}

}  // namespace nn
}  // namespace p3gm
