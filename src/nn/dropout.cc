#include "nn/dropout.h"

namespace p3gm {
namespace nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  P3GM_CHECK(rate >= 0.0 && rate < 1.0);
}

linalg::Matrix Dropout::Forward(const linalg::Matrix& x, bool train) {
  // Honor the Layer::SetTraining contract: in eval mode the per-call
  // flag is ignored and the layer is a deterministic identity (no RNG
  // consumption), which is what the gradient checker requires.
  last_train_ = train && is_training();
  if (!last_train_ || rate_ == 0.0) return x;
  const double keep = 1.0 - rate_;
  mask_ = linalg::Matrix(x.rows(), x.cols());
  linalg::Matrix y = x;
  double* md = mask_.data();
  double* yd = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    md[i] = rng_.Bernoulli(keep) ? 1.0 / keep : 0.0;
    yd[i] *= md[i];
  }
  return y;
}

linalg::Matrix Dropout::Backward(const linalg::Matrix& grad_out,
                                 bool accumulate) {
  (void)accumulate;
  if (!last_train_ || rate_ == 0.0) return grad_out;
  P3GM_CHECK(grad_out.rows() == mask_.rows() &&
             grad_out.cols() == mask_.cols());
  linalg::Matrix g = grad_out;
  const double* md = mask_.data();
  double* gd = g.data();
  for (std::size_t i = 0; i < g.size(); ++i) gd[i] *= md[i];
  return g;
}

}  // namespace nn
}  // namespace p3gm
