#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace p3gm {
namespace nn {

void Sgd::Step(const std::vector<Parameter*>& params) {
  if (velocity_.empty() && momentum_ != 0.0) {
    for (Parameter* p : params) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    double* value = p->value.data();
    const double* grad = p->grad.data();
    if (momentum_ == 0.0) {
      for (std::size_t i = 0; i < p->size(); ++i) {
        value[i] -= lr_ * grad[i];
      }
    } else {
      P3GM_CHECK(k < velocity_.size() &&
                 velocity_[k].size() == p->size());
      double* vel = velocity_[k].data();
      for (std::size_t i = 0; i < p->size(); ++i) {
        vel[i] = momentum_ * vel[i] + grad[i];
        value[i] -= lr_ * vel[i];
      }
    }
  }
}

void Adam::Step(const std::vector<Parameter*>& params) {
  if (m_.empty()) {
    for (Parameter* p : params) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    P3GM_CHECK(k < m_.size() && m_[k].size() == p->size());
    double* value = p->value.data();
    const double* grad = p->grad.data();
    double* m = m_[k].data();
    double* v = v_[k].data();
    for (std::size_t i = 0; i < p->size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace p3gm
