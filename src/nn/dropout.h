#ifndef P3GM_NN_DROPOUT_H_
#define P3GM_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {

/// Inverted dropout: at train time each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate); identity at
/// eval time. Used by the CNN classifier's fully connected head.
class Dropout : public Layer {
 public:
  /// `rate` in [0, 1). `seed` fixes the mask stream.
  Dropout(double rate, std::uint64_t seed);

  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::string name() const override { return "dropout"; }

 private:
  double rate_;
  util::Rng rng_;
  linalg::Matrix mask_;  // Scaled keep mask of the last train Forward.
  bool last_train_ = false;
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_DROPOUT_H_
