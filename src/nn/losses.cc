#include "nn/losses.h"

#include <cmath>

#include "nn/activations.h"
#include "util/check.h"

namespace p3gm {
namespace nn {

LossResult MseLoss(const linalg::Matrix& pred, const linalg::Matrix& target,
                   bool mean) {
  P3GM_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  const std::size_t b = pred.rows();
  const double scale = mean ? 1.0 / static_cast<double>(b) : 1.0;
  LossResult out;
  out.grad = linalg::Matrix(pred.rows(), pred.cols());
  out.per_example.assign(b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    const double* p = pred.row_data(i);
    const double* t = target.row_data(i);
    double* g = out.grad.row_data(i);
    double ls = 0.0;
    for (std::size_t j = 0; j < pred.cols(); ++j) {
      const double diff = p[j] - t[j];
      ls += diff * diff;
      g[j] = 2.0 * diff * scale;
    }
    out.per_example[i] = ls;
    out.value += ls * scale;
  }
  return out;
}

LossResult BceWithLogitsLoss(const linalg::Matrix& logits,
                             const linalg::Matrix& target, bool mean) {
  P3GM_CHECK(logits.rows() == target.rows() &&
             logits.cols() == target.cols());
  const std::size_t b = logits.rows();
  const double scale = mean ? 1.0 / static_cast<double>(b) : 1.0;
  LossResult out;
  out.grad = linalg::Matrix(logits.rows(), logits.cols());
  out.per_example.assign(b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    const double* l = logits.row_data(i);
    const double* t = target.row_data(i);
    double* g = out.grad.row_data(i);
    double ls = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      ls += SoftplusScalar(l[j]) - t[j] * l[j];
      g[j] = (SigmoidScalar(l[j]) - t[j]) * scale;
    }
    out.per_example[i] = ls;
    out.value += ls * scale;
  }
  return out;
}

linalg::Matrix Softmax(const linalg::Matrix& logits) {
  linalg::Matrix probs = logits;
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    double* row = probs.row_data(i);
    double mx = row[0];
    for (std::size_t j = 1; j < probs.cols(); ++j) mx = std::max(mx, row[j]);
    double total = 0.0;
    for (std::size_t j = 0; j < probs.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      total += row[j];
    }
    for (std::size_t j = 0; j < probs.cols(); ++j) row[j] /= total;
  }
  return probs;
}

LossResult SoftmaxCrossEntropy(const linalg::Matrix& logits,
                               const std::vector<std::size_t>& labels,
                               bool mean) {
  P3GM_CHECK(logits.rows() == labels.size());
  const std::size_t b = logits.rows();
  const double scale = mean ? 1.0 / static_cast<double>(b) : 1.0;
  LossResult out;
  out.grad = Softmax(logits);
  out.per_example.assign(b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    P3GM_CHECK(labels[i] < logits.cols());
    double* g = out.grad.row_data(i);
    const double p = std::max(g[labels[i]], 1e-300);
    out.per_example[i] = -std::log(p);
    out.value += out.per_example[i] * scale;
    g[labels[i]] -= 1.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) g[j] *= scale;
  }
  return out;
}

KlResult StandardNormalKl(const linalg::Matrix& mu,
                          const linalg::Matrix& logvar, bool mean) {
  P3GM_CHECK(mu.rows() == logvar.rows() && mu.cols() == logvar.cols());
  const std::size_t b = mu.rows();
  const double scale = mean ? 1.0 / static_cast<double>(b) : 1.0;
  KlResult out;
  out.grad_mu = linalg::Matrix(mu.rows(), mu.cols());
  out.grad_logvar = linalg::Matrix(mu.rows(), mu.cols());
  out.per_example.assign(b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    const double* m = mu.row_data(i);
    const double* lv = logvar.row_data(i);
    double* gm = out.grad_mu.row_data(i);
    double* glv = out.grad_logvar.row_data(i);
    double kl = 0.0;
    for (std::size_t j = 0; j < mu.cols(); ++j) {
      const double ev = std::exp(lv[j]);
      kl += -0.5 * (1.0 + lv[j] - m[j] * m[j] - ev);
      gm[j] = m[j] * scale;
      glv[j] = 0.5 * (ev - 1.0) * scale;
    }
    out.per_example[i] = kl;
    out.value += kl * scale;
  }
  return out;
}

}  // namespace nn
}  // namespace p3gm
