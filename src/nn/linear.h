#ifndef P3GM_NN_LINEAR_H_
#define P3GM_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {

/// Fully connected affine layer: Y = X W + b, with W (in x out) and bias
/// b (1 x out).
///
/// Per-example DP-SGD support uses the factored form of affine-layer
/// gradients (Goodfellow 2015): example i's weight gradient is the outer
/// product x_i dy_i^T, so
///   ||gW_i||_F^2 = ||x_i||^2 * ||dy_i||^2,   ||gb_i||^2 = ||dy_i||^2,
/// and the clipped sum is X^T diag(c) dY — one matmul, no per-example
/// materialization.
class Linear : public Layer {
 public:
  /// He-normal weight init (ReLU default), zero bias. `rng` is only used
  /// during construction.
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         util::Rng* rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  bool SupportsPerExampleGrads() const override { return true; }
  void AddPerExampleSquaredGradNorms(
      std::vector<double>* sq_norms) const override;
  void AccumulateClippedGrads(const std::vector<double>& scale) override;
  std::string name() const override { return name_; }

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::string name_;
  Parameter weight_;  // in x out
  Parameter bias_;    // 1 x out
  linalg::Matrix cached_input_;     // B x in
  linalg::Matrix cached_grad_out_;  // B x out (per-example path)
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_LINEAR_H_
