#ifndef P3GM_NN_OPTIMIZER_H_
#define P3GM_NN_OPTIMIZER_H_

#include <vector>

#include "nn/parameter.h"

namespace p3gm {
namespace nn {

/// Base optimizer interface. Call Step with the same parameter list in the
/// same order every time — per-parameter state (momentum, Adam moments) is
/// keyed positionally and allocated lazily on the first step.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's accumulated `grad`, then
  /// leaves the gradients untouched (callers zero them).
  virtual void Step(const std::vector<Parameter*>& params) = 0;
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}

  void Step(const std::vector<Parameter*>& params) override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::vector<linalg::Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction. The paper trains every
/// model with learning rate 1e-3 (Table IV), which is Adam's default.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(const std::vector<Parameter*>& params) override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<linalg::Matrix> m_;
  std::vector<linalg::Matrix> v_;
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_OPTIMIZER_H_
