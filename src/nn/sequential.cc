#include "nn/sequential.h"

namespace p3gm {
namespace nn {

linalg::Matrix Sequential::Forward(const linalg::Matrix& x, bool train) {
  linalg::Matrix h = x;
  for (auto& layer : layers_) h = layer->Forward(h, train);
  return h;
}

linalg::Matrix Sequential::Backward(const linalg::Matrix& grad_out,
                                    bool accumulate) {
  linalg::Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g, accumulate);
  }
  return g;
}

void Sequential::SetTraining(bool training) {
  training_ = training;
  for (auto& layer : layers_) layer->SetTraining(training);
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

bool Sequential::SupportsPerExampleGrads() const {
  for (const auto& layer : layers_) {
    if (!layer->SupportsPerExampleGrads()) return false;
  }
  return true;
}

void Sequential::AddPerExampleSquaredGradNorms(
    std::vector<double>* sq_norms) const {
  for (const auto& layer : layers_) {
    layer->AddPerExampleSquaredGradNorms(sq_norms);
  }
}

void Sequential::AccumulateClippedGrads(const std::vector<double>& scale) {
  for (auto& layer : layers_) layer->AccumulateClippedGrads(scale);
}

void Sequential::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

std::size_t Sequential::NumParameters() {
  std::size_t total = 0;
  for (Parameter* p : Parameters()) total += p->size();
  return total;
}

}  // namespace nn
}  // namespace p3gm
