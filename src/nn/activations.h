#ifndef P3GM_NN_ACTIVATIONS_H_
#define P3GM_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace p3gm {
namespace nn {

/// Element-wise max(0, x).
class Relu : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::string name() const override { return "relu"; }

 private:
  linalg::Matrix cached_input_;
};

/// Element-wise logistic sigmoid 1 / (1 + exp(-x)).
class Sigmoid : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::string name() const override { return "sigmoid"; }

 private:
  linalg::Matrix cached_output_;
};

/// Element-wise tanh.
class Tanh : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::string name() const override { return "tanh"; }

 private:
  linalg::Matrix cached_output_;
};

/// Element-wise softplus log(1 + exp(x)); smooth positive map used for
/// variance heads.
class Softplus : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool train) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_out,
                          bool accumulate) override;
  std::string name() const override { return "softplus"; }

 private:
  linalg::Matrix cached_input_;
};

/// Numerically stable scalar sigmoid, shared with the loss functions.
double SigmoidScalar(double x);

/// Numerically stable scalar softplus log(1 + exp(x)).
double SoftplusScalar(double x);

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_ACTIVATIONS_H_
