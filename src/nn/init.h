#ifndef P3GM_NN_INIT_H_
#define P3GM_NN_INIT_H_

#include "linalg/matrix.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {

/// Weight initializers. `fan_in`/`fan_out` are the effective fan values
/// (for Conv2d: kernel_h * kernel_w * channels).

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// The right default for sigmoid/tanh nets (the VAE decoder output head).
void XavierUniform(std::size_t fan_in, std::size_t fan_out, linalg::Matrix* w,
                   util::Rng* rng);

/// He/Kaiming normal: N(0, 2 / fan_in). The right default for ReLU nets.
void HeNormal(std::size_t fan_in, linalg::Matrix* w, util::Rng* rng);

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_INIT_H_
