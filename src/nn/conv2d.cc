#include "nn/conv2d.h"

#include "linalg/ops.h"
#include "nn/init.h"

namespace p3gm {
namespace nn {

Conv2d::Conv2d(std::string name, std::size_t in_channels, std::size_t height,
               std::size_t width, std::size_t out_channels, std::size_t kernel,
               std::size_t padding, util::Rng* rng)
    : name_(std::move(name)),
      in_c_(in_channels),
      h_(height),
      w_(width),
      out_c_(out_channels),
      k_(kernel),
      pad_(padding),
      out_h_(height + 2 * padding - kernel + 1),
      out_w_(width + 2 * padding - kernel + 1),
      weight_(name_ + ".weight", in_channels * kernel * kernel, out_channels),
      bias_(name_ + ".bias", 1, out_channels) {
  P3GM_CHECK(kernel >= 1 && height + 2 * padding >= kernel &&
             width + 2 * padding >= kernel);
  HeNormal(in_channels * kernel * kernel, &weight_.value, rng);
}

void Conv2d::Im2Col(const double* image, linalg::Matrix* col) const {
  // col is (out_h*out_w) x (in_c*k*k).
  for (std::size_t oh = 0; oh < out_h_; ++oh) {
    for (std::size_t ow = 0; ow < out_w_; ++ow) {
      double* dst = col->row_data(oh * out_w_ + ow);
      std::size_t idx = 0;
      for (std::size_t c = 0; c < in_c_; ++c) {
        const double* plane = image + c * h_ * w_;
        for (std::size_t ki = 0; ki < k_; ++ki) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh + ki) -
              static_cast<std::ptrdiff_t>(pad_);
          for (std::size_t kj = 0; kj < k_; ++kj, ++idx) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow + kj) -
                static_cast<std::ptrdiff_t>(pad_);
            if (ih < 0 || iw < 0 || ih >= static_cast<std::ptrdiff_t>(h_) ||
                iw >= static_cast<std::ptrdiff_t>(w_)) {
              dst[idx] = 0.0;
            } else {
              dst[idx] = plane[static_cast<std::size_t>(ih) * w_ +
                               static_cast<std::size_t>(iw)];
            }
          }
        }
      }
    }
  }
}

linalg::Matrix Conv2d::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  P3GM_CHECK(x.cols() == in_c_ * h_ * w_);
  cached_input_ = x;
  const std::size_t patch = out_h_ * out_w_;
  linalg::Matrix out(x.rows(), out_c_ * patch);
  linalg::Matrix col(patch, in_c_ * k_ * k_);
  for (std::size_t b = 0; b < x.rows(); ++b) {
    Im2Col(x.row_data(b), &col);
    const linalg::Matrix y = linalg::Matmul(col, weight_.value);  // P x out_c
    double* orow = out.row_data(b);
    const double* brow = bias_.value.row_data(0);
    for (std::size_t c = 0; c < out_c_; ++c) {
      for (std::size_t p = 0; p < patch; ++p) {
        orow[c * patch + p] = y(p, c) + brow[c];
      }
    }
  }
  return out;
}

linalg::Matrix Conv2d::Backward(const linalg::Matrix& grad_out,
                                bool accumulate) {
  P3GM_CHECK(accumulate &&
             "Conv2d has no per-example gradient path (non-private use only)");
  const std::size_t patch = out_h_ * out_w_;
  P3GM_CHECK(grad_out.rows() == cached_input_.rows() &&
             grad_out.cols() == out_c_ * patch);
  linalg::Matrix grad_in(cached_input_.rows(), in_c_ * h_ * w_);
  linalg::Matrix col(patch, in_c_ * k_ * k_);
  linalg::Matrix dy(patch, out_c_);
  for (std::size_t b = 0; b < cached_input_.rows(); ++b) {
    const double* grow = grad_out.row_data(b);
    for (std::size_t c = 0; c < out_c_; ++c) {
      for (std::size_t p = 0; p < patch; ++p) dy(p, c) = grow[c * patch + p];
    }
    Im2Col(cached_input_.row_data(b), &col);
    weight_.grad += linalg::MatmulTransA(col, dy);
    double* gb = bias_.grad.row_data(0);
    for (std::size_t c = 0; c < out_c_; ++c) {
      double s = 0.0;
      for (std::size_t p = 0; p < patch; ++p) s += dy(p, c);
      gb[c] += s;
    }
    // dcol = dy W^T, scattered back (col2im).
    const linalg::Matrix dcol = linalg::MatmulTransB(dy, weight_.value);
    double* gin = grad_in.row_data(b);
    for (std::size_t oh = 0; oh < out_h_; ++oh) {
      for (std::size_t ow = 0; ow < out_w_; ++ow) {
        const double* src = dcol.row_data(oh * out_w_ + ow);
        std::size_t idx = 0;
        for (std::size_t c = 0; c < in_c_; ++c) {
          double* plane = gin + c * h_ * w_;
          for (std::size_t ki = 0; ki < k_; ++ki) {
            const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + ki) -
                                      static_cast<std::ptrdiff_t>(pad_);
            for (std::size_t kj = 0; kj < k_; ++kj, ++idx) {
              const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow + kj) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (ih < 0 || iw < 0 ||
                  ih >= static_cast<std::ptrdiff_t>(h_) ||
                  iw >= static_cast<std::ptrdiff_t>(w_)) {
                continue;
              }
              plane[static_cast<std::size_t>(ih) * w_ +
                    static_cast<std::size_t>(iw)] += src[idx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

MaxPool2d::MaxPool2d(std::size_t channels, std::size_t height,
                     std::size_t width)
    : c_(channels), h_(height), w_(width), out_h_(height / 2),
      out_w_(width / 2) {
  P3GM_CHECK(out_h_ >= 1 && out_w_ >= 1);
}

linalg::Matrix MaxPool2d::Forward(const linalg::Matrix& x, bool train) {
  (void)train;
  P3GM_CHECK(x.cols() == c_ * h_ * w_);
  const std::size_t patch = out_h_ * out_w_;
  linalg::Matrix out(x.rows(), c_ * patch);
  argmax_.assign(x.rows(), std::vector<std::size_t>(c_ * patch, 0));
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const double* in = x.row_data(b);
    double* orow = out.row_data(b);
    for (std::size_t c = 0; c < c_; ++c) {
      const double* plane = in + c * h_ * w_;
      for (std::size_t oh = 0; oh < out_h_; ++oh) {
        for (std::size_t ow = 0; ow < out_w_; ++ow) {
          std::size_t best_idx = (2 * oh) * w_ + 2 * ow;
          double best = plane[best_idx];
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              const std::size_t idx = (2 * oh + di) * w_ + (2 * ow + dj);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t o = c * patch + oh * out_w_ + ow;
          orow[o] = best;
          argmax_[b][o] = c * h_ * w_ + best_idx;
        }
      }
    }
  }
  return out;
}

linalg::Matrix MaxPool2d::Backward(const linalg::Matrix& grad_out,
                                   bool accumulate) {
  (void)accumulate;
  P3GM_CHECK(grad_out.rows() == argmax_.size());
  linalg::Matrix grad_in(grad_out.rows(), c_ * h_ * w_);
  for (std::size_t b = 0; b < grad_out.rows(); ++b) {
    const double* grow = grad_out.row_data(b);
    double* gin = grad_in.row_data(b);
    for (std::size_t o = 0; o < grad_out.cols(); ++o) {
      gin[argmax_[b][o]] += grow[o];
    }
  }
  return grad_in;
}

}  // namespace nn
}  // namespace p3gm
