#ifndef P3GM_NN_PARAMETER_H_
#define P3GM_NN_PARAMETER_H_

#include <string>

#include "linalg/matrix.h"

namespace p3gm {
namespace nn {

/// A trainable tensor together with its accumulated gradient. Layers own
/// their parameters; optimizers mutate `value` in place through the
/// pointers returned by Layer::Parameters().
struct Parameter {
  /// Human-readable identifier, e.g. "linear1.weight".
  std::string name;
  linalg::Matrix value;
  /// Accumulated gradient of the current step, same shape as `value`.
  linalg::Matrix grad;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  std::size_t size() const { return value.size(); }

  /// Resets the accumulated gradient to zero.
  void ZeroGrad() { grad.Fill(0.0); }
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_PARAMETER_H_
