#ifndef P3GM_NN_LOSSES_H_
#define P3GM_NN_LOSSES_H_

#include <vector>

#include "linalg/matrix.h"

namespace p3gm {
namespace nn {

/// Loss value plus the gradient with respect to the network output. All
/// losses are *per-example sums over features, averaged over the batch*,
/// except where a per-example breakdown is requested (DP-SGD needs
/// per-example gradients unaveraged; see the `mean` flags below).
struct LossResult {
  double value = 0.0;
  /// dL/d(input of the loss), same shape as the prediction.
  linalg::Matrix grad;
  /// Per-example loss values (length = batch size).
  std::vector<double> per_example;
};

/// Mean squared error 1/B sum_i ||pred_i - target_i||^2. When `mean` is
/// false the 1/B averaging is skipped (grads are per-example sums).
LossResult MseLoss(const linalg::Matrix& pred, const linalg::Matrix& target,
                   bool mean = true);

/// Bernoulli negative log-likelihood with logits input:
/// sum_j [softplus(l_j) - t_j * l_j], numerically stable for any logit.
/// This is the reconstruction term of the VAE/P3GM ELBO for binary-ish
/// features (targets in [0, 1]).
LossResult BceWithLogitsLoss(const linalg::Matrix& logits,
                             const linalg::Matrix& target, bool mean = true);

/// Softmax cross-entropy with integer class labels.
LossResult SoftmaxCrossEntropy(const linalg::Matrix& logits,
                               const std::vector<std::size_t>& labels,
                               bool mean = true);

/// Row-wise softmax probabilities of `logits`.
linalg::Matrix Softmax(const linalg::Matrix& logits);

/// Analytic KL(N(mu_i, diag(exp(logvar_i))) || N(0, I)) per batch row,
/// with gradients. The standard VAE regularizer.
/// value = 1/B sum_i -0.5 sum_j (1 + logvar - mu^2 - exp(logvar)).
struct KlResult {
  double value = 0.0;
  linalg::Matrix grad_mu;
  linalg::Matrix grad_logvar;
  std::vector<double> per_example;
};
KlResult StandardNormalKl(const linalg::Matrix& mu,
                          const linalg::Matrix& logvar, bool mean = true);

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_LOSSES_H_
