#ifndef P3GM_NN_DP_SGD_H_
#define P3GM_NN_DP_SGD_H_

#include <vector>

#include "nn/layer.h"
#include "nn/parameter.h"
#include "util/result.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {

/// Knobs of one DP-SGD training run (Abadi et al. 2016; paper Algorithm 1
/// lines 6-11).
struct DpSgdOptions {
  /// Gradient L2 clipping bound C.
  double clip_norm = 1.0;
  /// Noise multiplier sigma_s; the per-coordinate noise stddev is
  /// sigma_s * C.
  double noise_multiplier = 1.0;
  /// Expected lot size B used for averaging. 0 means "use the actual
  /// batch size of each step".
  std::size_t lot_size = 0;
};

/// Orchestrates the privatized gradient of one DP-SGD step. Usage per
/// batch, after Forward and Backward(grad, /*accumulate=*/false) over all
/// layer stacks that own parameters:
///
///   DpSgdStep step(options, rng);
///   step.CollectSquaredNorms(stacks, batch_size);   // Goodfellow trick
///   step.ApplyClippedAccumulation(stacks);          // sum_i c_i g_i
///   step.AddNoiseAndAverage(params, batch_size);    // + N(0, s^2 C^2), /B
///
/// Parameter::grad then holds the privatized averaged gradient and any
/// Optimizer can consume it.
class DpSgdStep {
 public:
  DpSgdStep(const DpSgdOptions& options, util::Rng* rng);

  /// Accumulates per-example squared gradient norms across `stacks` (each
  /// stack is typically a Sequential or single Linear that took part in
  /// the backward pass). Fails if any stack has parameters but no
  /// per-example path.
  util::Status CollectSquaredNorms(const std::vector<Layer*>& stacks,
                                   std::size_t batch_size);

  /// Adds externally computed per-example squared-norm contributions
  /// (for gradients handled outside the Layer interface).
  void AddExternalSquaredNorms(const std::vector<double>& sq_norms);

  /// Per-example clip factors min(1, C / ||g_i||), valid after
  /// CollectSquaredNorms.
  const std::vector<double>& clip_scales();

  /// Has every stack accumulate its clipped gradient sum.
  void ApplyClippedAccumulation(const std::vector<Layer*>& stacks);

  /// Adds N(0, (sigma C)^2) to every gradient coordinate and divides by
  /// the lot size (options.lot_size, or `batch_size` if 0).
  void AddNoiseAndAverage(const std::vector<Parameter*>& params,
                          std::size_t batch_size);

  /// Mean of the clip factors of this step — a useful diagnostic (values
  /// near 0 mean C is too small, near 1 mean clipping is inactive).
  double MeanClipScale() const;

 private:
  DpSgdOptions options_;
  util::Rng* rng_;
  std::vector<double> sq_norms_;
  std::vector<double> scales_;
  bool scales_ready_ = false;
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_DP_SGD_H_
