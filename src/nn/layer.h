#ifndef P3GM_NN_LAYER_H_
#define P3GM_NN_LAYER_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "nn/parameter.h"

namespace p3gm {
namespace nn {

/// Base class of all network layers. Data flows as batches: each row of
/// the (B x features) input matrix is one example. Layers cache whatever
/// they need in Forward for the subsequent Backward.
///
/// Two training modes are supported:
///
/// 1. Standard: Backward(grad_out, /*accumulate=*/true) propagates the
///    gradient and adds parameter gradients for the whole batch into
///    Parameter::grad.
/// 2. Per-example (DP-SGD): Backward(grad_out, /*accumulate=*/false)
///    only propagates (caching grad_out); the trainer then queries
///    AddPerExampleSquaredGradNorms() to obtain each example's gradient
///    norm across all layers, derives clip factors, and calls
///    AccumulateClippedGrads() so every layer adds the *clipped sum*
///    of per-example gradients (the Goodfellow outer-product trick for
///    affine layers — per-example gradients are never materialized).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch. `train` toggles
  /// train-time-only behaviour (e.g. dropout). The effective mode is
  /// `train && is_training()`: a layer put into eval mode with
  /// SetTraining(false) must ignore the per-call flag (see below).
  virtual linalg::Matrix Forward(const linalg::Matrix& x, bool train) = 0;

  /// Sets the layer mode. In eval mode (training = false) Forward must be
  /// a *deterministic, repeatable* function of its input regardless of the
  /// per-call `train` argument: stochastic layers (dropout) act as the
  /// identity and no layer may consume RNG state. This is the contract the
  /// finite-difference gradient checker (audit::CheckLayerGradients)
  /// relies on — it evaluates Forward many times and any hidden
  /// stochasticity or train-only behaviour would corrupt the numeric
  /// derivative. Containers must propagate the mode to their children.
  virtual void SetTraining(bool training) { training_ = training; }
  bool is_training() const { return training_; }

  /// Propagates `grad_out` (dL/d output) to dL/d input. When `accumulate`
  /// is true, also adds this batch's parameter gradients into the
  /// parameters. When false, caches grad_out for the per-example path.
  virtual linalg::Matrix Backward(const linalg::Matrix& grad_out,
                                  bool accumulate) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Whether the per-example gradient path (DP-SGD) is implemented. True
  /// for all parameterless layers.
  virtual bool SupportsPerExampleGrads() const { return true; }

  /// Adds this layer's per-example squared parameter-gradient norms into
  /// `sq_norms` (length = batch size of the last Forward/Backward pair).
  /// No-op for parameterless layers.
  virtual void AddPerExampleSquaredGradNorms(
      std::vector<double>* sq_norms) const {
    (void)sq_norms;
  }

  /// Accumulates sum_i scale[i] * grad_i into Parameter::grad, where
  /// grad_i is example i's parameter gradient from the cached
  /// forward/backward pair. No-op for parameterless layers.
  virtual void AccumulateClippedGrads(const std::vector<double>& scale) {
    (void)scale;
  }

  /// Layer name for diagnostics.
  virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

}  // namespace nn
}  // namespace p3gm

#endif  // P3GM_NN_LAYER_H_
