#include "infer/arena.h"

#include <cstdlib>
#include <new>

#include "util/check.h"

namespace p3gm {
namespace infer {

namespace {
constexpr std::size_t kAlignment = 64;
}  // namespace

Arena::~Arena() {
  if (data_ != nullptr) std::free(data_);
}

double* Arena::Reserve(std::size_t doubles) {
  if (doubles == 0) doubles = 1;
  if (doubles > capacity_) {
    // Grow geometrically so a batch-size ramp settles after O(log)
    // reallocations instead of one per batch.
    std::size_t want = capacity_ == 0 ? doubles : capacity_;
    while (want < doubles) want += want;
    std::size_t bytes = want * sizeof(double);
    // aligned_alloc requires size to be a multiple of the alignment.
    bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;
    double* grown = static_cast<double*>(std::aligned_alloc(kAlignment, bytes));
    P3GM_CHECK_MSG(grown != nullptr, "infer::Arena allocation failed");
    if (data_ != nullptr) std::free(data_);
    data_ = grown;
    capacity_ = bytes / sizeof(double);
  }
  return data_;
}

}  // namespace infer
}  // namespace p3gm
