#include "infer/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "nn/activations.h"
#include "util/check.h"

namespace p3gm {
namespace infer {

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kClamp01: return "clamp01";
  }
  return "?";
}

const char* TierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kAvx2: return "avx2";
  }
  return "?";
}

bool Avx2Supported() {
#if defined(P3GM_INFER_HAVE_AVX2)
  // __builtin_cpu_supports consults CPUID *and* XGETBV, so an OS that
  // does not save ymm state reports unsupported.
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

KernelTier ActiveTier() {
  if (!Avx2Supported()) return KernelTier::kScalar;
  // Re-read on every call (not cached) so tests and operators can flip
  // tiers mid-process; one getenv per forward pass is noise.
  const char* force = std::getenv("P3GM_INFER_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return KernelTier::kScalar;
  }
  return KernelTier::kAvx2;
}

PackedLayer PackLayer(const linalg::Matrix& weight,
                      const linalg::Matrix& bias, Activation act) {
  P3GM_CHECK(bias.rows() == 1 && bias.cols() == weight.cols());
  PackedLayer layer;
  layer.in = weight.rows();
  layer.out = weight.cols();
  layer.padded_out = PaddedWidth(layer.out);
  layer.act = act;
  layer.bias.assign(bias.data(), bias.data() + bias.cols());
  // Over-allocate by one panel row so the panel area can start on a
  // 64-byte boundary wherever the vector's buffer happens to land; a
  // panel row is exactly one cache line, so every slab load in the SIMD
  // tier then stays within a single line.
  layer.packed.assign(layer.in * layer.padded_out + kPanelWidth - 1, 0.0);
  const std::size_t misalign =
      reinterpret_cast<std::uintptr_t>(layer.packed.data()) % 64;
  layer.panel_pad = misalign == 0 ? 0 : (64 - misalign) / sizeof(double);
  const std::size_t k_dim = layer.in;
  for (std::size_t p = 0; p * kPanelWidth < layer.out; ++p) {
    const std::size_t j0 = p * kPanelWidth;
    const std::size_t width = std::min(kPanelWidth, layer.out - j0);
    double* panel = layer.packed.data() + layer.panel_pad +
                    p * k_dim * kPanelWidth;
    for (std::size_t k = 0; k < k_dim; ++k) {
      const double* wrow = weight.row_data(k);
      for (std::size_t jj = 0; jj < width; ++jj) {
        panel[k * kPanelWidth + jj] = wrow[j0 + jj];
      }
    }
  }
  return layer;
}

namespace internal {

void ApplyEpilogueRow(Activation act, const double* scratch,
                      const double* bias, std::size_t out, double* dst) {
  EpilogueRow(act, scratch, bias, out, dst);
}

void FusedLayerScalar(const double* a, std::size_t a_stride,
                      std::size_t rows, const PackedLayer& layer,
                      double* scratch, std::size_t c_stride, double* dst,
                      std::size_t dst_stride) {
  const std::size_t k_dim = layer.in;
  const std::size_t num_panels = layer.padded_out / kPanelWidth;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* arow = a + i * a_stride;
    double* crow = scratch + i * c_stride;
    for (std::size_t j = 0; j < layer.padded_out; ++j) crow[j] = 0.0;
    for (std::size_t p = 0; p < num_panels; ++p) {
      const double* panel = layer.panels() + p * k_dim * kPanelWidth;
      double* cpanel = crow + p * kPanelWidth;
      for (std::size_t k = 0; k < k_dim; ++k) {
        const double av = arow[k];
        // The reference gemm skips zero multipliers (linalg::Matmul);
        // the skip is part of the contract so NaN/Inf weights behave
        // identically, and it is what makes the post-ReLU layer cheap.
        if (av == 0.0) continue;
        const double* brow = panel + k * kPanelWidth;
        for (std::size_t jj = 0; jj < kPanelWidth; ++jj) {
          cpanel[jj] += av * brow[jj];
        }
      }
    }
    ApplyEpilogueRow(layer.act, crow, layer.bias.data(), layer.out,
                     dst + i * dst_stride);
  }
}

}  // namespace internal

void RunFusedLayer(KernelTier tier, const double* a, std::size_t a_stride,
                   std::size_t rows, const PackedLayer& layer,
                   double* scratch, std::size_t c_stride, double* dst,
                   std::size_t dst_stride) {
  P3GM_CHECK(a_stride >= layer.in && c_stride >= layer.padded_out &&
             dst_stride >= layer.out);
  if (rows == 0 || layer.out == 0) return;
#if defined(P3GM_INFER_HAVE_AVX2)
  if (tier == KernelTier::kAvx2) {
    internal::FusedLayerAvx2(a, a_stride, rows, layer, scratch, c_stride,
                             dst, dst_stride);
    return;
  }
#else
  (void)tier;
#endif
  internal::FusedLayerScalar(a, a_stride, rows, layer, scratch, c_stride,
                             dst, dst_stride);
}

}  // namespace infer
}  // namespace p3gm
