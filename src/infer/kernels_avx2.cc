// AVX2 tier of the fused decoder layer. Compiled as its own TU with
// -mavx2 -ffp-contract=off (see src/infer/CMakeLists.txt): the
// accumulation-order contract (docs/inference.md) requires every
// partial product to be rounded by a separate multiply and add — a
// fused multiply-add rounds once and would diverge from the scalar
// reference in the last ulp. -ffp-contract=off makes it impossible for
// the compiler to fuse the _mm256_mul_pd/_mm256_add_pd pairs below even
// though the CPU offers FMA.
//
// Vectorization is across output columns only: lane j of an
// accumulator register is exactly the scalar accumulator of output
// element (i, j), updated for k = 0, 1, ..., K-1 in ascending order, so
// the result is bit-identical to the scalar tier by construction.
//
// Two code paths, chosen per call by a density probe of the input
// block (bit-neutral either way — rows are independent and each output
// element sees the same ascending-k term sequence):
//
//  * Dense: a register tile of MR (<=4) rows by one 8-column panel.
//    The accumulators are individually named __m256d locals (8 live
//    accumulators + 2 panel loads + 1 broadcast inside the 16 ymm
//    registers) — an earlier array-of-__m256d formulation made the
//    compiler keep the tile on the stack, turning every accumulator
//    update into a load + store round-trip and halving throughput. The
//    k loop is blocked at kKc so one panel's k-slab (8 cols * kKc *
//    8 B = 32 KB) stays L1-resident while a row block streams over it,
//    and the accumulator spills to the arena scratch row between k
//    blocks (exact double stores/loads, so splitting k changes
//    nothing).
//
//  * Sparse: decoder hidden activations sit behind ReLU, so typically
//    half the input block is exactly 0.0 — terms the reference gemm
//    skips outright (`if (av == 0.0) continue`). When a pre-pass finds
//    the block sparse enough, each row's nonzero (value, panel-offset)
//    pairs are gathered once and every panel replays only those
//    entries, in the original ascending-k order. Skipping an exact
//    zero is bit-neutral for finite inputs (x + (+/-0.0 * b) == x for
//    every finite x accumulated from +0.0), the same finite-only
//    contract the dense path already relies on in reverse (it *adds*
//    the zero terms the scalar tier skips). See docs/inference.md.

#include "infer/kernels.h"

#if defined(P3GM_INFER_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace p3gm {
namespace infer {
namespace internal {

namespace {

constexpr std::size_t kKc = 512;  // k-block: 32 KB of panel slab.

// The pure-arithmetic activations can be applied in-register to an
// accumulator pair just before its store, which lets a single-k-pass
// layer skip the scratch round trip and the separate epilogue sweep.
// kSigmoid/kTanh call scalar libm and stay on the scratch + EpilogueRow
// path.
inline bool FusableAct(Activation act) {
  return act == Activation::kIdentity || act == Activation::kRelu ||
         act == Activation::kClamp01;
}

// In-register replica of EpilogueRow's activation formulas for one
// 8-column accumulator pair. Bit-identical to the scalar code including
// signed zeros and NaNs: relu's `v < 0.0 ? 0.0 : v` and std::clamp's
// ordered compares are reproduced with explicit compare + blend —
// max/min instructions have different zero-sign and NaN conventions
// and would diverge on those inputs.
inline void ApplyActPair(Activation act, __m256d* lo, __m256d* hi) {
  const __m256d zero = _mm256_setzero_pd();
  if (act == Activation::kRelu) {
    *lo = _mm256_blendv_pd(*lo, zero, _mm256_cmp_pd(*lo, zero, _CMP_LT_OQ));
    *hi = _mm256_blendv_pd(*hi, zero, _mm256_cmp_pd(*hi, zero, _CMP_LT_OQ));
  } else if (act == Activation::kClamp01) {
    const __m256d one = _mm256_set1_pd(1.0);
    *lo = _mm256_blendv_pd(*lo, zero, _mm256_cmp_pd(*lo, zero, _CMP_LT_OQ));
    *lo = _mm256_blendv_pd(*lo, one, _mm256_cmp_pd(one, *lo, _CMP_LT_OQ));
    *hi = _mm256_blendv_pd(*hi, zero, _mm256_cmp_pd(*hi, zero, _CMP_LT_OQ));
    *hi = _mm256_blendv_pd(*hi, one, _mm256_cmp_pd(one, *hi, _CMP_LT_OQ));
  }
}

// One register tile: MR rows x 8 columns of panel `pbase`, accumulating
// a[k] * b[k] for k in [kc, kc + klen). `first` selects zeroed
// accumulators (kc == 0) vs. continuing from the scratch row. Every
// accumulator is a distinct named local so the compiler keeps the whole
// tile in ymm registers.
// `fuse_bias`/`act` mirror SparseRowTile's fused epilogue; callers pass
// a non-null bias only on the k pass that completes the accumulation.
template <int MR>
inline void Tile(const double* a, std::size_t a_stride, const double* pbase,
                 std::size_t kc, std::size_t klen, bool first, double* c,
                 std::size_t c_stride, const double* fuse_bias = nullptr,
                 Activation act = Activation::kIdentity) {
  __m256d acc0l = _mm256_setzero_pd(), acc0h = _mm256_setzero_pd();
  __m256d acc1l = acc0l, acc1h = acc0l;
  __m256d acc2l = acc0l, acc2h = acc0l;
  __m256d acc3l = acc0l, acc3h = acc0l;
  if (!first) {
    acc0l = _mm256_loadu_pd(c);
    acc0h = _mm256_loadu_pd(c + 4);
    if constexpr (MR > 1) {
      acc1l = _mm256_loadu_pd(c + c_stride);
      acc1h = _mm256_loadu_pd(c + c_stride + 4);
    }
    if constexpr (MR > 2) {
      acc2l = _mm256_loadu_pd(c + 2 * c_stride);
      acc2h = _mm256_loadu_pd(c + 2 * c_stride + 4);
    }
    if constexpr (MR > 3) {
      acc3l = _mm256_loadu_pd(c + 3 * c_stride);
      acc3h = _mm256_loadu_pd(c + 3 * c_stride + 4);
    }
  }
  const double* bp = pbase + kc * kPanelWidth;
  const double* arow = a + kc;
  for (std::size_t k = 0; k < klen; ++k) {
    const __m256d b_lo = _mm256_loadu_pd(bp);
    const __m256d b_hi = _mm256_loadu_pd(bp + 4);
    bp += kPanelWidth;
    __m256d av = _mm256_broadcast_sd(arow + k);
    acc0l = _mm256_add_pd(acc0l, _mm256_mul_pd(av, b_lo));
    acc0h = _mm256_add_pd(acc0h, _mm256_mul_pd(av, b_hi));
    if constexpr (MR > 1) {
      av = _mm256_broadcast_sd(arow + a_stride + k);
      acc1l = _mm256_add_pd(acc1l, _mm256_mul_pd(av, b_lo));
      acc1h = _mm256_add_pd(acc1h, _mm256_mul_pd(av, b_hi));
    }
    if constexpr (MR > 2) {
      av = _mm256_broadcast_sd(arow + 2 * a_stride + k);
      acc2l = _mm256_add_pd(acc2l, _mm256_mul_pd(av, b_lo));
      acc2h = _mm256_add_pd(acc2h, _mm256_mul_pd(av, b_hi));
    }
    if constexpr (MR > 3) {
      av = _mm256_broadcast_sd(arow + 3 * a_stride + k);
      acc3l = _mm256_add_pd(acc3l, _mm256_mul_pd(av, b_lo));
      acc3h = _mm256_add_pd(acc3h, _mm256_mul_pd(av, b_hi));
    }
  }
  if (fuse_bias != nullptr) {
    const __m256d b_lo = _mm256_loadu_pd(fuse_bias);
    const __m256d b_hi = _mm256_loadu_pd(fuse_bias + 4);
    acc0l = _mm256_add_pd(acc0l, b_lo);
    acc0h = _mm256_add_pd(acc0h, b_hi);
    ApplyActPair(act, &acc0l, &acc0h);
    if constexpr (MR > 1) {
      acc1l = _mm256_add_pd(acc1l, b_lo);
      acc1h = _mm256_add_pd(acc1h, b_hi);
      ApplyActPair(act, &acc1l, &acc1h);
    }
    if constexpr (MR > 2) {
      acc2l = _mm256_add_pd(acc2l, b_lo);
      acc2h = _mm256_add_pd(acc2h, b_hi);
      ApplyActPair(act, &acc2l, &acc2h);
    }
    if constexpr (MR > 3) {
      acc3l = _mm256_add_pd(acc3l, b_lo);
      acc3h = _mm256_add_pd(acc3h, b_hi);
      ApplyActPair(act, &acc3l, &acc3h);
    }
  }
  _mm256_storeu_pd(c, acc0l);
  _mm256_storeu_pd(c + 4, acc0h);
  if constexpr (MR > 1) {
    _mm256_storeu_pd(c + c_stride, acc1l);
    _mm256_storeu_pd(c + c_stride + 4, acc1h);
  }
  if constexpr (MR > 2) {
    _mm256_storeu_pd(c + 2 * c_stride, acc2l);
    _mm256_storeu_pd(c + 2 * c_stride + 4, acc2h);
  }
  if constexpr (MR > 3) {
    _mm256_storeu_pd(c + 3 * c_stride, acc3l);
    _mm256_storeu_pd(c + 3 * c_stride + 4, acc3h);
  }
}

// Gathered nonzeros of the current input block, row-major with ragged
// row boundaries. Values and panel offsets (k * kPanelWidth doubles,
// which fits uint32 because the sparse path requires k_dim <= kKc) are
// parallel arrays rather than an array of structs: the panel loop
// re-streams this data padded_out/8 times, and the split layout cuts
// the stream from 16 to 12 bytes per entry — a measurable win in a
// loop that is otherwise bound by issue width. Thread-local: each
// ParallelFor worker gathers its own block, and the buffers reach
// steady-state capacity after the first pass.
struct SparseBlock {
  std::vector<double> values;
  std::vector<std::uint32_t> offsets;
  std::vector<std::size_t> row_end;  // entries index one past row i.
};

// Gathers the nonzeros of a[0..rows) x [0..k_dim) and reports whether
// the sparse path pays: below ~3/4 density the skipped multiplies beat
// the gather pre-pass (one read of the block, amortized over
// padded_out/8 panel replays).
//
// A cheap probe of the first few rows rejects dense inputs (e.g. the
// latent layer, whose Gaussian draws are never exactly zero) before
// paying for a full gather. The probe is only a heuristic: whichever
// path it picks, the result is bit-identical, so a misjudged block
// costs speed, never correctness. The gather itself is branchless —
// post-ReLU zeros are data-random, and a mispredicted branch per
// element would cost more than the gather's arithmetic.
bool GatherSparse(const double* a, std::size_t a_stride, std::size_t rows,
                  std::size_t k_dim, SparseBlock* block) {
  const std::size_t probe_rows = std::min<std::size_t>(rows, 8);
  std::size_t probe_nnz = 0;
  for (std::size_t i = 0; i < probe_rows; ++i) {
    const double* arow = a + i * a_stride;
    for (std::size_t k = 0; k < k_dim; ++k) {
      probe_nnz += (arow[k] != 0.0);
    }
  }
  if (probe_nnz * 4 >= probe_rows * k_dim * 3) return false;

  // Never shrink the buffers: the block is thread-local, and holding
  // steady-state capacity keeps every later gather allocation-free.
  if (block->values.size() < rows * k_dim) {
    block->values.resize(rows * k_dim);
    block->offsets.resize(rows * k_dim);
  }
  block->row_end.resize(rows);
  double* values = block->values.data();
  std::uint32_t* offsets = block->offsets.data();
  std::size_t n = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* arow = a + i * a_stride;
    for (std::size_t k = 0; k < k_dim; ++k) {
      values[n] = arow[k];
      offsets[n] = static_cast<std::uint32_t>(k * kPanelWidth);
      n += (arow[k] != 0.0);
    }
    block->row_end[i] = n;
  }
  return n * 4 < rows * k_dim * 3;
}

// One row x one panel over the row's nonzero entries, ascending k.
// Unrolled by four: the loop body is a handful of micro-ops around two
// mul/add pairs, so shaving the per-entry loop overhead matters.
// Unrolling does not touch the accumulation order — the same two
// accumulator chains see the same terms in the same ascending-k
// sequence. When `fuse_bias` is non-null the bias add and a fusable
// activation are applied in-register before the store (the single
// bias add EpilogueRow would have done, in the same place in the
// term sequence: after the full k accumulation).
inline void SparseRowTile(const double* v, const std::uint32_t* o,
                          std::size_t n, const double* pbase, double* c,
                          const double* fuse_bias = nullptr,
                          Activation act = Activation::kIdentity) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d av = _mm256_broadcast_sd(v + i);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i])));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i] + 4)));
    av = _mm256_broadcast_sd(v + i + 1);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i + 1])));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i + 1] + 4)));
    av = _mm256_broadcast_sd(v + i + 2);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i + 2])));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i + 2] + 4)));
    av = _mm256_broadcast_sd(v + i + 3);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i + 3])));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i + 3] + 4)));
  }
  for (; i < n; ++i) {
    const __m256d av = _mm256_broadcast_sd(v + i);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i])));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(av, _mm256_loadu_pd(pbase + o[i] + 4)));
  }
  if (fuse_bias != nullptr) {
    acc_lo = _mm256_add_pd(acc_lo, _mm256_loadu_pd(fuse_bias));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_loadu_pd(fuse_bias + 4));
    ApplyActPair(act, &acc_lo, &acc_hi);
  }
  _mm256_storeu_pd(c, acc_lo);
  _mm256_storeu_pd(c + 4, acc_hi);
}

}  // namespace

void FusedLayerAvx2(const double* a, std::size_t a_stride, std::size_t rows,
                    const PackedLayer& layer, double* scratch,
                    std::size_t c_stride, double* dst,
                    std::size_t dst_stride) {
  const std::size_t k_dim = layer.in;
  const std::size_t num_panels = layer.padded_out / kPanelWidth;

  // Sparse only when one k block covers the layer (the entry list then
  // never has to split at a spill boundary); k_dim == 0 stays on the
  // dense path, whose zeroing pass defines the output.
  static thread_local SparseBlock sparse_block;
  const bool sparse = k_dim > 0 && k_dim <= kKc &&
                      GatherSparse(a, a_stride, rows, k_dim, &sparse_block);

  // Fused-epilogue selection (bit-neutral either way — the fused store
  // applies the identical bias add and activation EpilogueRow would,
  // at the same point in each element's term sequence):
  //  * sparse: every full panel (all 8 columns inside layer.out) writes
  //    dst directly; only a ragged tail panel still accumulates in
  //    scratch and takes a partial EpilogueRow sweep.
  //  * dense: when one k pass covers the layer and dst doubles as the
  //    accumulator (the in-place configuration, padded == out so no
  //    tail exists), the tile stores carry the whole epilogue.
  // Skipping the scratch round trip and the separate sweep is worth a
  // few percent on the serving-size decode; kSigmoid/kTanh keep the
  // scratch + EpilogueRow path (scalar libm in the sweep).
  const bool fusable = FusableAct(layer.act);
  const bool fuse_sparse = sparse && fusable;
  const bool fuse_dense = !sparse && fusable && k_dim <= kKc &&
                          dst == scratch && dst_stride == c_stride &&
                          layer.padded_out == layer.out;

  for (std::size_t p = 0; p < num_panels; ++p) {
    const double* pbase = layer.panels() + p * k_dim * kPanelWidth;
    double* cpanel = scratch + p * kPanelWidth;
    if (sparse) {
      const double* values = sparse_block.values.data();
      const std::uint32_t* offsets = sparse_block.offsets.data();
      const bool full_panel =
          fuse_sparse && (p + 1) * kPanelWidth <= layer.out;
      const double* fuse_bias =
          full_panel ? layer.bias.data() + p * kPanelWidth : nullptr;
      double* const out_panel =
          full_panel ? dst + p * kPanelWidth : cpanel;
      const std::size_t out_stride = full_panel ? dst_stride : c_stride;
      std::size_t begin = 0;
      for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t end = sparse_block.row_end[i];
        SparseRowTile(values + begin, offsets + begin, end - begin, pbase,
                      out_panel + i * out_stride, fuse_bias, layer.act);
        begin = end;
      }
    } else {
      // At least one k pass even when k_dim == 0, so the first/zeroing
      // pass always runs and the scratch panel is well-defined.
      std::size_t kc = 0;
      bool first = true;
      do {
        const std::size_t klen = std::min(kKc, k_dim - kc);
        // Fused epilogue only on the pass that completes the
        // accumulation (with fuse_dense that is the only pass).
        const double* fuse_bias =
            fuse_dense ? layer.bias.data() + p * kPanelWidth : nullptr;
        std::size_t i = 0;
        for (; i + 4 <= rows; i += 4) {
          Tile<4>(a + i * a_stride, a_stride, pbase, kc, klen, first,
                  cpanel + i * c_stride, c_stride, fuse_bias, layer.act);
        }
        switch (rows - i) {
          case 3:
            Tile<3>(a + i * a_stride, a_stride, pbase, kc, klen, first,
                    cpanel + i * c_stride, c_stride, fuse_bias, layer.act);
            break;
          case 2:
            Tile<2>(a + i * a_stride, a_stride, pbase, kc, klen, first,
                    cpanel + i * c_stride, c_stride, fuse_bias, layer.act);
            break;
          case 1:
            Tile<1>(a + i * a_stride, a_stride, pbase, kc, klen, first,
                    cpanel + i * c_stride, c_stride, fuse_bias, layer.act);
            break;
          default:
            break;
        }
        kc += klen;
        first = false;
      } while (kc < k_dim);
    }
  }
  if (fuse_dense) return;  // Every column already has bias + activation.
  // Fused bias + activation, one sweep per row after every panel has
  // accumulated. Panels touch disjoint columns, so running the epilogue
  // after the panel loop instead of inside it reorders nothing — and
  // one inlined call per row beats padded_out/8 calls of 8 columns each
  // by a wide margin (the sweep auto-vectorizes for the pure-arithmetic
  // activations). When the sparse path fused its full panels, only the
  // ragged tail columns remain.
  const std::size_t epi_begin =
      fuse_sparse ? (layer.out / kPanelWidth) * kPanelWidth : 0;
  if (epi_begin >= layer.out) return;
  for (std::size_t i = 0; i < rows; ++i) {
    EpilogueRow(layer.act, scratch + i * c_stride + epi_begin,
                layer.bias.data() + epi_begin, layer.out - epi_begin,
                dst + i * dst_stride + epi_begin);
  }
}

}  // namespace internal
}  // namespace infer
}  // namespace p3gm

#endif  // P3GM_INFER_HAVE_AVX2
