#ifndef P3GM_INFER_ARENA_H_
#define P3GM_INFER_ARENA_H_

#include <cstddef>

namespace p3gm {
namespace infer {

/// Grow-only 64-byte-aligned scratch buffer for the planned decoder
/// runtime: one Reserve per batch covers every intermediate layer
/// buffer (the plan hands out offsets into it), so a forward pass makes
/// zero per-layer allocations. Capacity never shrinks; a thread that
/// decodes repeatedly reuses the same mapping, so steady-state batches
/// allocate nothing at all.
///
/// Alignment is a performance property only — the kernels use unaligned
/// loads/stores throughout, and the unit tests deliberately feed them
/// odd offsets.
class Arena {
 public:
  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a buffer of at least `doubles` doubles, reallocating only
  /// when the request exceeds the current capacity. Contents are
  /// unspecified. Returns a valid (non-null, aligned) pointer even for
  /// a zero-sized request.
  double* Reserve(std::size_t doubles);

  /// Current capacity in doubles.
  std::size_t capacity() const { return capacity_; }

  /// Current capacity in bytes (what the obs gauge reports).
  std::size_t capacity_bytes() const { return capacity_ * sizeof(double); }

 private:
  double* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace infer
}  // namespace p3gm

#endif  // P3GM_INFER_ARENA_H_
