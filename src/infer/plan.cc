#include "infer/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/registry.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace infer {

namespace {

// Row grain for the batch-level ParallelFor. Matches the reference
// gemm's row grain (linalg::kGemmRowGrain) so thread-count invariance
// holds under the same contract: every worker owns a disjoint block of
// rows and each row's arithmetic is fully sequential.
constexpr std::size_t kRowGrain = 8;

// Interior row-block size within one worker's range. The kernels sweep
// every output panel per call, re-reading the input block (or its
// gathered sparse form) once per panel, while the packed weight panels
// stream from cache once per block — so larger blocks amortize the
// panel streams and smaller blocks keep the per-panel re-read hot.
// 128 rows measured best on the serving-size decode (64 gives up ~3%
// to panel re-streaming, 256 pushes the sparse entry stream out of
// L2). Any chunking yields identical bits — rows are independent end
// to end.
constexpr std::size_t kRowBlock = 128;

std::atomic<int> g_planned_enabled{-1};  // -1: read env on first use.

bool EnvDisablesPlannedDecode() {
  const char* v = std::getenv("P3GM_NO_PLANNED_DECODE");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

// High-water mark across every thread's arena, mirrored to the
// infer.arena.bytes gauge.
std::atomic<std::size_t> g_arena_high_water{0};

void NoteArenaBytes(std::size_t bytes) {
  std::size_t prev = g_arena_high_water.load(std::memory_order_relaxed);
  while (bytes > prev &&
         !g_arena_high_water.compare_exchange_weak(
             prev, bytes, std::memory_order_relaxed)) {
  }
  if (bytes >= prev) {
    static obs::Gauge* arena_bytes =
        obs::Registry::Global().gauge("infer.arena.bytes");
    arena_bytes->Set(static_cast<double>(
        g_arena_high_water.load(std::memory_order_relaxed)));
  }
}

}  // namespace

bool PlannedDecodeEnabled() {
  int v = g_planned_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = EnvDisablesPlannedDecode() ? 0 : 1;
    g_planned_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetPlannedDecodeEnabled(bool enabled) {
  g_planned_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

util::Result<DecoderPlan> DecoderPlan::Compile(
    const std::vector<LayerSpec>& specs) {
  if (specs.empty()) {
    return util::Status::InvalidArgument(
        "DecoderPlan::Compile: empty layer list");
  }
  for (std::size_t l = 0; l < specs.size(); ++l) {
    const LayerSpec& s = specs[l];
    if (s.weight == nullptr || s.bias == nullptr) {
      return util::Status::InvalidArgument(
          "DecoderPlan::Compile: null weight/bias in layer " +
          std::to_string(l));
    }
    if (s.weight->rows() == 0 || s.weight->cols() == 0) {
      return util::Status::InvalidArgument(
          "DecoderPlan::Compile: layer " + std::to_string(l) +
          " has a zero dimension (" + std::to_string(s.weight->rows()) + "x" +
          std::to_string(s.weight->cols()) + ")");
    }
    if (s.bias->rows() != 1 || s.bias->cols() != s.weight->cols()) {
      return util::Status::InvalidArgument(
          "DecoderPlan::Compile: layer " + std::to_string(l) +
          " bias shape " + std::to_string(s.bias->rows()) + "x" +
          std::to_string(s.bias->cols()) + " does not match weight cols " +
          std::to_string(s.weight->cols()));
    }
    if (l > 0 && s.weight->rows() != specs[l - 1].weight->cols()) {
      return util::Status::InvalidArgument(
          "DecoderPlan::Compile: layer " + std::to_string(l) + " expects " +
          std::to_string(s.weight->rows()) + " inputs but layer " +
          std::to_string(l - 1) + " produces " +
          std::to_string(specs[l - 1].weight->cols()));
    }
  }

  DecoderPlan plan;
  plan.input_dim_ = specs.front().weight->rows();
  plan.output_dim_ = specs.back().weight->cols();
  plan.layers_.reserve(specs.size());
  for (std::size_t l = 0; l < specs.size(); ++l) {
    plan.layers_.push_back(
        PackLayer(*specs[l].weight, *specs[l].bias, specs[l].act));
    // Only intermediate outputs live in the arena; the final layer
    // writes straight into the caller's buffer.
    if (l + 1 < specs.size()) {
      const std::size_t slot = l % 2;
      plan.slot_width_[slot] =
          std::max(plan.slot_width_[slot], plan.layers_[l].padded_out);
    }
  }

  static obs::Counter* compiled =
      obs::Registry::Global().counter("infer.plan.compiled");
  compiled->Add();
  return plan;
}

std::size_t DecoderPlan::ArenaDoublesFor(std::size_t rows) const {
  // Two ping-pong intermediate slots plus the final layer's accumulator
  // (skipped at run time when the caller's buffer is dense and
  // panel-aligned, but always reserved so the layout is static).
  return rows *
         (slot_width_[0] + slot_width_[1] + layers_.back().padded_out);
}

util::Status DecoderPlan::ExecuteRaw(const double* in, std::size_t in_stride,
                                     std::size_t rows, double* out,
                                     std::size_t out_stride,
                                     Arena* arena) const {
  if (rows == 0) return util::Status::OK();
  P3GM_CHECK(in != nullptr && out != nullptr && arena != nullptr);
  if (in_stride < input_dim_ || out_stride < output_dim_) {
    return util::Status::InvalidArgument(
        "DecoderPlan::ExecuteRaw: stride smaller than layer width");
  }
  // The kernels accumulate into their destination, so input and output
  // aliasing silently corrupts the pass — make it loud instead.
  {
    const double* in_end = in + (rows - 1) * in_stride + input_dim_;
    const double* out_end = out + (rows - 1) * out_stride + output_dim_;
    P3GM_CHECK_MSG(out_end <= in || in_end <= out,
                   "DecoderPlan::ExecuteRaw: input and output buffers alias");
  }

  double* const slot0 = arena->Reserve(ArenaDoublesFor(rows));
  double* const slot1 = slot0 + rows * slot_width_[0];
  double* const slots[2] = {slot0, slot1};
  double* const final_scratch = slot1 + rows * slot_width_[1];
  NoteArenaBytes(arena->capacity_bytes());

  // Resolve the tier once so every row block of this pass — and every
  // layer — uses the same kernel even if the environment flips mid-call.
  const KernelTier tier = ActiveTier();

  static obs::Counter* plan_hits =
      obs::Registry::Global().counter("infer.plan.hits");
  static obs::Counter* rows_decoded =
      obs::Registry::Global().counter("infer.rows.decoded");
  static obs::Gauge* tier_gauge =
      obs::Registry::Global().gauge("infer.dispatch.tier");
  plan_hits->Add();
  rows_decoded->Add(rows);
  tier_gauge->Set(tier == KernelTier::kAvx2 ? 1.0 : 0.0);

  const std::size_t num_layers = layers_.size();
  // Rows are independent end-to-end, so each worker threads its block
  // through the whole layer chain: no inter-layer barrier and the
  // block's intermediates stay cache-warm. Slots are indexed by
  // absolute row, so blocks touch disjoint slices of the arena.
  util::ParallelFor(0, rows, kRowGrain, [&](std::size_t wb, std::size_t we) {
    for (std::size_t rb = wb; rb < we; rb += kRowBlock) {
      const std::size_t re = std::min(we, rb + kRowBlock);
      const std::size_t n = re - rb;
      const double* src = in + rb * in_stride;
      std::size_t src_stride = in_stride;
      for (std::size_t l = 0; l < num_layers; ++l) {
        const PackedLayer& layer = layers_[l];
        if (l + 1 == num_layers) {
          // Final layer: the fused epilogue writes the caller's buffer.
          // When that buffer is dense and panel-aligned it doubles as the
          // accumulator (RunFusedLayer allows dst == scratch); otherwise
          // the dedicated arena region accumulates the padded panels and
          // the epilogue copies out the valid columns.
          double* dst = out + rb * out_stride;
          const bool in_place =
              layer.padded_out == layer.out && out_stride == layer.out;
          double* scratch =
              in_place ? dst : final_scratch + rb * layer.padded_out;
          const std::size_t c_stride =
              in_place ? out_stride : layer.padded_out;
          RunFusedLayer(tier, src, src_stride, n, layer, scratch, c_stride,
                        dst, out_stride);
        } else {
          const std::size_t slot = l % 2;
          double* scratch = slots[slot] + rb * slot_width_[slot];
          RunFusedLayer(tier, src, src_stride, n, layer, scratch,
                        slot_width_[slot], scratch, slot_width_[slot]);
          src = scratch;
          src_stride = slot_width_[slot];
        }
      }
    }
  });
  return util::Status::OK();
}

util::Status DecoderPlan::Execute(const linalg::Matrix& input,
                                  linalg::Matrix* out) const {
  P3GM_CHECK(out != nullptr);
  if (input.cols() != input_dim_) {
    return util::Status::InvalidArgument(
        "DecoderPlan::Execute: input has " + std::to_string(input.cols()) +
        " columns, plan expects " + std::to_string(input_dim_));
  }
  if (out->rows() != input.rows() || out->cols() != output_dim_) {
    *out = linalg::Matrix(input.rows(), output_dim_);
  }
  if (input.rows() == 0) return util::Status::OK();
  // One arena per thread: grows to the steady-state batch size and then
  // every subsequent batch is allocation-free.
  static thread_local Arena arena;
  return ExecuteRaw(input.data(), input.cols(), input.rows(), out->data(),
                    out->cols(), &arena);
}

}  // namespace infer
}  // namespace p3gm
