#ifndef P3GM_INFER_PLAN_H_
#define P3GM_INFER_PLAN_H_

#include <cstddef>
#include <vector>

#include "infer/arena.h"
#include "infer/kernels.h"
#include "linalg/matrix.h"
#include "util/result.h"
#include "util/status.h"

namespace p3gm {
namespace infer {

/// One layer of a decoder forward pass, described by borrowed weight and
/// bias matrices. The matrices are only read during Compile (they are
/// packed into the plan's own storage), so they need not outlive it.
struct LayerSpec {
  const linalg::Matrix* weight = nullptr;  // in x out.
  const linalg::Matrix* bias = nullptr;    // 1 x out.
  Activation act = Activation::kIdentity;
};

/// A forward-only decoder execution plan, compiled once per model and
/// reused for every batch:
///
///  * weights pre-packed into the panel-major kernel layout,
///  * intermediate buffer sizes and offsets precomputed, so a batch
///    costs exactly one arena reservation (amortised to zero) and no
///    per-layer allocations,
///  * layers executed through the fused linear+bias+activation kernels
///    (RunFusedLayer) with runtime scalar/AVX2 dispatch.
///
/// Execute is bit-identical to running the same layers through
/// linalg::Matmul + AddRowVector + the scalar activations — see
/// docs/inference.md for the accumulation-order contract — and is safe
/// to call concurrently from many threads (the plan is immutable after
/// Compile; scratch space is per-thread).
class DecoderPlan {
 public:
  /// Validates the layer chain (non-empty, shapes compatible) and packs
  /// every layer. The spec matrices are copied from; they may be freed
  /// afterwards.
  static util::Result<DecoderPlan> Compile(const std::vector<LayerSpec>& specs);

  std::size_t num_layers() const { return layers_.size(); }
  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }
  const PackedLayer& layer(std::size_t l) const { return layers_[l]; }

  /// Scratch doubles Execute will reserve for a batch of `rows` rows
  /// (intermediate layer buffers only; a single-layer plan needs none).
  std::size_t ArenaDoublesFor(std::size_t rows) const;

  /// Runs the forward pass for `input` (rows x input_dim) into `*out`,
  /// which is resized to rows x output_dim. Uses the calling thread's
  /// arena. rows == 0 is a valid no-op.
  util::Status Execute(const linalg::Matrix& input, linalg::Matrix* out) const;

  /// Raw-buffer forward pass: `in` is rows x input_dim with row stride
  /// `in_stride` (>= input_dim), `out` is rows x output_dim with row
  /// stride `out_stride` (>= output_dim). `in` and `out` must not
  /// overlap (checked fatally — the kernels accumulate in place).
  /// `arena` supplies scratch; pass the same arena across calls to reuse
  /// its capacity. Thread-safe for distinct arenas.
  util::Status ExecuteRaw(const double* in, std::size_t in_stride,
                          std::size_t rows, double* out,
                          std::size_t out_stride, Arena* arena) const;

 private:
  DecoderPlan() = default;

  std::vector<PackedLayer> layers_;
  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;
  // Per-row doubles of the two ping-pong intermediate slots: layer l
  // (l < num_layers-1) writes slot l % 2, layer l+1 reads it back.
  std::size_t slot_width_[2] = {0, 0};
};

/// Process-wide switch consulted by core::ReleasePackage::DecodeLatent:
/// when false, packages fall back to the reference nn/linalg path even
/// if they carry a compiled plan. Initialised from the environment
/// (P3GM_NO_PLANNED_DECODE=1 disables) on first read; SetPlannedDecodeEnabled
/// overrides afterwards (used by `p3gm serve --no-planned-decode` and
/// the equivalence tests).
bool PlannedDecodeEnabled();
void SetPlannedDecodeEnabled(bool enabled);

}  // namespace infer
}  // namespace p3gm

#endif  // P3GM_INFER_PLAN_H_
