#ifndef P3GM_INFER_KERNELS_H_
#define P3GM_INFER_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "nn/activations.h"

namespace p3gm {
namespace infer {

/// Fused epilogue applied element-wise after the affine accumulation.
/// Every entry reproduces the exact scalar formula of its training-path
/// counterpart (see docs/inference.md §accumulation-order contract):
/// kRelu is `v < 0 ? 0 : v` (nn::Relu / ReleasePackage::DecodeLatent),
/// kSigmoid is nn::SigmoidScalar, kTanh is std::tanh, kClamp01 is
/// std::clamp(v, 0, 1) (the Gaussian decoder head).
enum class Activation { kIdentity, kRelu, kSigmoid, kTanh, kClamp01 };

const char* ActivationName(Activation act);

/// Kernel dispatch tier, resolved once per process from CPUID and
/// overridable per call via P3GM_INFER_FORCE_SCALAR=1 (the equivalence
/// suite pins both tiers bit-identical, so forcing scalar is a debug
/// aid, never a numerics switch).
enum class KernelTier { kScalar, kAvx2 };

const char* TierName(KernelTier tier);

/// True when this binary carries the AVX2 kernel TU and the CPU+OS
/// report AVX2 support.
bool Avx2Supported();

/// The tier Execute will use right now: Avx2 when supported and
/// P3GM_INFER_FORCE_SCALAR is unset/0, scalar otherwise. Reads the
/// environment on every call so tests can flip tiers at runtime.
KernelTier ActiveTier();

/// Column-panel width of the packed weight layout (doubles). The packed
/// buffer stores each panel of kPanelWidth output columns contiguously
/// and k-major: element (k, j) of panel p lives at
/// packed[p * K * kPanelWidth + k * kPanelWidth + (j - p * kPanelWidth)].
/// Ragged final panels are zero-padded so kernels always read and
/// accumulate full panels; only the leading `out` columns of the
/// scratch row are ever consumed.
constexpr std::size_t kPanelWidth = 8;

inline std::size_t PaddedWidth(std::size_t out) {
  return (out + kPanelWidth - 1) / kPanelWidth * kPanelWidth;
}

/// One decoder layer, pre-packed at plan-compile time: weights
/// rearranged into the panel-major layout above, bias flattened, and
/// the epilogue fused in.
struct PackedLayer {
  std::size_t in = 0;          // K: input features.
  std::size_t out = 0;         // N: output features.
  std::size_t padded_out = 0;  // N rounded up to kPanelWidth.
  /// Panel-major weights (in * padded_out doubles), preceded by up to
  /// kPanelWidth - 1 slack doubles so `panels()` starts on a 64-byte
  /// cache-line boundary: every panel row is then one full line and no
  /// 32-byte slab load in the SIMD tier straddles two lines. Access the
  /// panels only through `panels()`.
  std::vector<double> packed;
  std::size_t panel_pad = 0;  // slack doubles before the first panel.
  std::vector<double> bias;   // out.
  Activation act = Activation::kIdentity;

  /// Base of the panel-major weight area. Aligned to 64 bytes as packed
  /// by PackLayer; a copied PackedLayer keeps identical contents (and
  /// therefore identical results) but may lose the alignment, which
  /// only costs speed — kernels use unaligned accesses throughout.
  const double* panels() const { return packed.data() + panel_pad; }
};

/// Packs `weight` (in x out) and `bias` (1 x out) for the fused kernel.
PackedLayer PackLayer(const linalg::Matrix& weight,
                      const linalg::Matrix& bias, Activation act);

/// Runs `rows` rows of the fused layer: scratch = a * W (ascending-k
/// mul-then-add accumulation, bit-identical to linalg::Matmul), then
/// dst = act(scratch + bias) over the leading `out` columns.
///
///  * `a`: rows x layer.in, row stride `a_stride` (>= layer.in).
///  * `scratch`: rows x layer.padded_out accumulation buffer, row
///    stride `c_stride` (>= layer.padded_out). Contents clobbered.
///  * `dst`: rows x layer.out output, row stride `dst_stride`
///    (>= layer.out). May equal `scratch` (the in-place intermediate
///    case); any other overlap with `a` or `scratch` is the caller's
///    bug and is checked by the plan layer.
///
/// All pointers may be arbitrarily (8-byte) aligned; kernels use
/// unaligned accesses throughout.
void RunFusedLayer(KernelTier tier, const double* a, std::size_t a_stride,
                   std::size_t rows, const PackedLayer& layer,
                   double* scratch, std::size_t c_stride, double* dst,
                   std::size_t dst_stride);

namespace internal {

/// Portable reference tier; also the tail/remainder path of the SIMD
/// tier's contract tests. Defined in kernels.cc.
void FusedLayerScalar(const double* a, std::size_t a_stride,
                      std::size_t rows, const PackedLayer& layer,
                      double* scratch, std::size_t c_stride, double* dst,
                      std::size_t dst_stride);

/// AVX2 tier; only defined when the build carries the AVX2 TU
/// (P3GM_INFER_HAVE_AVX2). Compiled with -ffp-contract=off so no
/// mul+add pair is ever fused into an FMA — fusion rounds once where
/// the contract rounds twice.
void FusedLayerAvx2(const double* a, std::size_t a_stride, std::size_t rows,
                    const PackedLayer& layer, double* scratch,
                    std::size_t c_stride, double* dst,
                    std::size_t dst_stride);

/// Epilogue shared by every tier: dst[j] = act(scratch[j] + bias[j]).
/// The formulas are the bit-identity contract — each case is the exact
/// scalar expression of its training-path counterpart (see the
/// Activation enum above). Inline in the header so each kernel TU can
/// inline it into its own sweep; the compiler may auto-vectorize the
/// pure-arithmetic cases, which is safe because without -ffast-math it
/// only does so when the result is identical for every input, NaNs and
/// signed zeros included. Sigmoid/tanh go through libm/nn and stay
/// scalar calls.
inline void EpilogueRow(Activation act, const double* scratch,
                        const double* bias, std::size_t out, double* dst) {
  switch (act) {
    case Activation::kIdentity:
      for (std::size_t j = 0; j < out; ++j) dst[j] = scratch[j] + bias[j];
      break;
    case Activation::kRelu:
      for (std::size_t j = 0; j < out; ++j) {
        const double v = scratch[j] + bias[j];
        // Same comparison as nn::Relu / the reference decoder: negative
        // zero passes through untouched.
        dst[j] = v < 0.0 ? 0.0 : v;
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t j = 0; j < out; ++j) {
        dst[j] = nn::SigmoidScalar(scratch[j] + bias[j]);
      }
      break;
    case Activation::kTanh:
      for (std::size_t j = 0; j < out; ++j) {
        dst[j] = std::tanh(scratch[j] + bias[j]);
      }
      break;
    case Activation::kClamp01:
      for (std::size_t j = 0; j < out; ++j) {
        dst[j] = std::clamp(scratch[j] + bias[j], 0.0, 1.0);
      }
      break;
  }
}

/// Out-of-line wrapper around EpilogueRow (kept for tests and
/// non-kernel callers).
void ApplyEpilogueRow(Activation act, const double* scratch,
                      const double* bias, std::size_t out, double* dst);

}  // namespace internal

}  // namespace infer
}  // namespace p3gm

#endif  // P3GM_INFER_KERNELS_H_
