#include "obs/ledger.h"

#include <cstdio>
#include <fstream>

namespace p3gm {
namespace obs {

namespace {

thread_local const char* t_phase = nullptr;

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

PrivacyLedger& PrivacyLedger::Global() {
  // Leaked on purpose, like Registry::Global: entries may be recorded by
  // accountants unwinding late in process teardown.
  static PrivacyLedger* global = new PrivacyLedger();
  return *global;
}

void PrivacyLedger::SetDelta(double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_ = delta;
}

double PrivacyLedger::delta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_;
}

void PrivacyLedger::Record(LedgerEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
}

std::vector<LedgerEntry> PrivacyLedger::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::size_t PrivacyLedger::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

double PrivacyLedger::CumulativeEpsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.empty() ? 0.0 : entries_.back().cumulative_epsilon;
}

void PrivacyLedger::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::string PrivacyLedger::ToCsv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out =
      "index,run,phase,mechanism,count,sigma,sampling_rate,pure_eps,"
      "cumulative_epsilon,best_order,delta\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const LedgerEntry& e = entries_[i];
    out += std::to_string(i) + "," + std::to_string(e.run) + "," + e.phase +
           "," + e.mechanism + "," + std::to_string(e.count) + "," +
           FormatValue(e.sigma) + "," + FormatValue(e.sampling_rate) + "," +
           FormatValue(e.pure_eps) + "," + FormatValue(e.cumulative_epsilon) +
           "," + FormatValue(e.best_order) + "," + FormatValue(e.delta) + "\n";
  }
  return out;
}

std::string PrivacyLedger::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const LedgerEntry& e = entries_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"index\": " + std::to_string(i) +
           ", \"run\": " + std::to_string(e.run) + ", \"phase\": \"" +
           JsonEscape(e.phase) + "\", \"mechanism\": \"" +
           JsonEscape(e.mechanism) +
           "\", \"count\": " + std::to_string(e.count) +
           ", \"sigma\": " + FormatValue(e.sigma) +
           ", \"sampling_rate\": " + FormatValue(e.sampling_rate) +
           ", \"pure_eps\": " + FormatValue(e.pure_eps) +
           ", \"cumulative_epsilon\": " + FormatValue(e.cumulative_epsilon) +
           ", \"best_order\": " + FormatValue(e.best_order) +
           ", \"delta\": " + FormatValue(e.delta) + ", \"rdp_orders\": [";
    for (std::size_t j = 0; j < e.rdp_orders.size(); ++j) {
      if (j > 0) out += ", ";
      out += FormatValue(e.rdp_orders[j]);
    }
    out += "], \"rdp_cost\": [";
    for (std::size_t j = 0; j < e.rdp_cost.size(); ++j) {
      if (j > 0) out += ", ";
      out += FormatValue(e.rdp_cost[j]);
    }
    out += "]}";
  }
  out += entries_.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool PrivacyLedger::WriteCsv(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

bool PrivacyLedger::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

PhaseScope::PhaseScope(const char* phase) : previous_(t_phase) {
  t_phase = phase;
}

PhaseScope::~PhaseScope() { t_phase = previous_; }

const char* PhaseScope::Current() {
  return t_phase == nullptr ? "" : t_phase;
}

}  // namespace obs
}  // namespace p3gm
