#ifndef P3GM_OBS_JSON_H_
#define P3GM_OBS_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace p3gm {
namespace obs {
namespace json {

/// JSON utilities shared by every obs exporter (registry, trace, bench
/// schema) and by the BENCH_*.json readers (tools/bench_compare). The
/// parser is deliberately minimal — it exists to read back files this
/// repo writes, not to be a general JSON library — but it accepts the
/// full grammar (nested containers, all escapes, \uXXXX incl. surrogate
/// pairs, scientific-notation numbers).

/// Escapes `s` for embedding between double quotes in a JSON document:
/// `"` `\` and control characters (the latter as \u00XX, with the
/// common \n \t \r \b \f short forms).
std::string Escape(const std::string& s);

/// Parsed JSON value. A tagged aggregate rather than a class hierarchy:
/// the schema-reading code pattern-matches on `kind` and the Find/At
/// helpers, and invalid accesses just see the zero value of the field.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> items;                              // kArray
  std::vector<std::pair<std::string, Value>> members;    // kObject, ordered

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
  /// Find + kind check conveniences for schema readers.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
};

/// Parses `text` into `*out`. Returns false (with a position-carrying
/// message in `*error` when non-null) on malformed input or trailing
/// garbage.
bool Parse(const std::string& text, Value* out, std::string* error);

}  // namespace json
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_JSON_H_
