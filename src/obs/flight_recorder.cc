#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define P3GM_HAVE_EXECINFO 1
#else
#define P3GM_HAVE_EXECINFO 0
#endif

#include "obs/observability.h"

namespace p3gm {
namespace obs {

namespace {

thread_local void* t_ring = nullptr;

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// --- async-signal-safe formatting: write(2) + stack buffers only ---

void WriteRaw(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // Best effort; we may be mid-crash.
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void WriteStr(int fd, const char* s) { WriteRaw(fd, s, ::strlen(s)); }

void WriteU64(int fd, std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof buf;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteRaw(fd, p, static_cast<std::size_t>(buf + sizeof buf - p));
}

void WriteHex16(int fd, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xf];
    v >>= 4;
  }
  WriteRaw(fd, buf, sizeof buf);
}

// Prints the 16 message-prefix bytes packed into (a, b), with
// non-printable bytes as '.'; stops at the first NUL.
void WritePackedText(int fd, std::uint64_t a, std::uint64_t b) {
  char buf[16];
  std::size_t len = 0;
  const std::uint64_t words[2] = {a, b};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 8; ++i) {
      const char c = static_cast<char>((words[w] >> (8 * i)) & 0xff);
      if (c == '\0') {
        WriteRaw(fd, buf, len);
        return;
      }
      buf[len++] = (c >= 0x20 && c < 0x7f) ? c : '.';
    }
  }
  WriteRaw(fd, buf, len);
}

const char* KindName(std::uint32_t kind) {
  switch (static_cast<FlightRecorder::EventKind>(kind)) {
    case FlightRecorder::EventKind::kSpanEnd:
      return "span";
    case FlightRecorder::EventKind::kLog:
      return "log";
    case FlightRecorder::EventKind::kQueueDepth:
      return "queue";
    case FlightRecorder::EventKind::kRequest:
      return "request";
  }
  return "?";
}

// --- signal handlers ---

char g_dump_path[512] = {0};
std::atomic<bool> g_in_fatal_handler{false};

void DumpWithBacktrace(int fd, int signo) {
  FlightRecorder::Global().DumpToFd(fd);
  WriteStr(fd, "signal ");
  WriteU64(fd, static_cast<std::uint64_t>(signo));
  WriteStr(fd, "\nbacktrace:\n");
#if P3GM_HAVE_EXECINFO
  void* frames[64];
  const int depth = ::backtrace(frames, 64);
  ::backtrace_symbols_fd(frames, depth, fd);
#else
  WriteStr(fd, "  (unavailable on this platform)\n");
#endif
}

int OpenDumpFile() {
  if (g_dump_path[0] == '\0') return -1;
  return ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

void QuitHandler(int signo) {
  const int saved_errno = errno;
  const int fd = OpenDumpFile();
  if (fd >= 0) {
    DumpWithBacktrace(fd, signo);
    ::close(fd);
  }
  errno = saved_errno;  // Dump-and-continue: don't perturb the thread.
}

void FatalHandler(int signo) {
  // A crash inside the handler (or a second crashing thread) must not
  // recurse forever; the first one in wins and the rest die immediately.
  if (!g_in_fatal_handler.exchange(true)) {
    const int fd = OpenDumpFile();
    if (fd >= 0) {
      DumpWithBacktrace(fd, signo);
      ::close(fd);
    }
    DumpWithBacktrace(STDERR_FILENO, signo);
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder::FlightRecorder() {
  for (auto& slot : rings_) slot.store(nullptr, std::memory_order_relaxed);
  const char* env = std::getenv("P3GM_FLIGHT_RECORDER");
  if (env != nullptr &&
      (::strcmp(env, "0") == 0 || ::strcmp(env, "off") == 0 ||
       ::strcmp(env, "false") == 0)) {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* global = new FlightRecorder();
  return *global;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  if (t_ring == nullptr) {
    const int index = ring_count_.fetch_add(1, std::memory_order_relaxed);
    if (index >= kMaxRings) return nullptr;  // Thread #257+: unrecorded.
    auto* ring = new Ring();  // Leaked: crash handlers walk rings forever.
    ring->tid = static_cast<std::uint32_t>(index);
    ring->capacity = RoundUpPow2(
        capacity_per_thread_.load(std::memory_order_relaxed));
    ring->words = std::make_unique<std::atomic<std::uint64_t>[]>(
        ring->capacity * kWordsPerEvent);
    rings_[index].store(ring, std::memory_order_release);
    t_ring = ring;
  }
  return static_cast<Ring*>(t_ring);
}

void FlightRecorder::Record(EventKind kind, const char* label,
                            std::uint64_t a, std::uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = RingForThisThread();
  if (ring == nullptr) return;
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* w =
      ring->words.get() + (seq & (ring->capacity - 1)) * kWordsPerEvent;
  w[0].store(NowNs(), std::memory_order_relaxed);
  w[1].store(reinterpret_cast<std::uintptr_t>(label),
             std::memory_order_relaxed);
  w[2].store(a, std::memory_order_relaxed);
  w[3].store(b, std::memory_order_relaxed);
  w[4].store((static_cast<std::uint64_t>(kind) << 32) | ring->tid,
             std::memory_order_relaxed);
  ring->head.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::RecordLog(const char* level_label, const char* message,
                               std::size_t message_len) {
  std::uint64_t packed[2] = {0, 0};
  if (message_len > 16) message_len = 16;
  ::memcpy(packed, message, message_len);
  Record(EventKind::kLog, level_label, packed[0], packed[1]);
}

std::uint64_t FlightRecorder::RecordedCount() const {
  std::uint64_t total = 0;
  const int count = ring_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < count && i < kMaxRings; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) {
      total += ring->head.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t FlightRecorder::OverwrittenCount() const {
  std::uint64_t total = 0;
  const int count = ring_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < count && i < kMaxRings; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->capacity) total += head - ring->capacity;
  }
  return total;
}

void FlightRecorder::DumpToFd(int fd) const {
  WriteStr(fd, "=== p3gm flight recorder ===\nrecorded ");
  WriteU64(fd, RecordedCount());
  WriteStr(fd, " overwritten ");
  WriteU64(fd, OverwrittenCount());
  WriteStr(fd, "\n");
  const int count = ring_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < count && i < kMaxRings; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = head < ring->capacity ? head : ring->capacity;
    WriteStr(fd, "-- thread ");
    WriteU64(fd, ring->tid);
    WriteStr(fd, " events ");
    WriteU64(fd, n);
    WriteStr(fd, "\n");
    for (std::uint64_t seq = head - n; seq != head; ++seq) {
      const std::atomic<std::uint64_t>* w =
          ring->words.get() +
          (seq & (ring->capacity - 1)) * kWordsPerEvent;
      const std::uint64_t t_ns = w[0].load(std::memory_order_relaxed);
      const auto* label = reinterpret_cast<const char*>(
          static_cast<std::uintptr_t>(
              w[1].load(std::memory_order_relaxed)));
      const std::uint64_t a = w[2].load(std::memory_order_relaxed);
      const std::uint64_t b = w[3].load(std::memory_order_relaxed);
      const std::uint64_t meta = w[4].load(std::memory_order_relaxed);
      const std::uint32_t kind = static_cast<std::uint32_t>(meta >> 32);
      WriteStr(fd, "[");
      WriteU64(fd, t_ns);
      WriteStr(fd, "] ");
      WriteStr(fd, KindName(kind));
      WriteStr(fd, " ");
      WriteStr(fd, label != nullptr ? label : "(null)");
      if (static_cast<EventKind>(kind) == EventKind::kLog) {
        WriteStr(fd, " \"");
        WritePackedText(fd, a, b);
        WriteStr(fd, "\"");
      } else {
        WriteStr(fd, " a=");
        if (static_cast<EventKind>(kind) == EventKind::kQueueDepth) {
          WriteU64(fd, a);
        } else {
          WriteHex16(fd, a);
        }
        WriteStr(fd, " b=");
        WriteHex16(fd, b);
      }
      WriteStr(fd, "\n");
    }
  }
  WriteStr(fd, "=== end flight recorder ===\n");
}

bool FlightRecorder::DumpToFile(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpToFd(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::SetCapacityPerThread(std::size_t capacity) {
  if (capacity < 16) capacity = 16;
  capacity_per_thread_.store(RoundUpPow2(capacity),
                             std::memory_order_relaxed);
}

void InstallFlightDumpHandlers(const std::string& path) {
  ::strncpy(g_dump_path, path.c_str(), sizeof g_dump_path - 1);
  g_dump_path[sizeof g_dump_path - 1] = '\0';
#if P3GM_HAVE_EXECINFO
  // backtrace() may lazily dlopen libgcc on first use, which is not
  // signal-safe — take the first call here, outside any handler.
  void* warmup[4];
  ::backtrace(warmup, 4);
#endif
  struct sigaction quit_action;
  ::memset(&quit_action, 0, sizeof quit_action);
  quit_action.sa_handler = QuitHandler;
  ::sigemptyset(&quit_action.sa_mask);
  quit_action.sa_flags = SA_RESTART;
  ::sigaction(SIGQUIT, &quit_action, nullptr);

  struct sigaction fatal_action;
  ::memset(&fatal_action, 0, sizeof fatal_action);
  fatal_action.sa_handler = FatalHandler;
  ::sigemptyset(&fatal_action.sa_mask);
  fatal_action.sa_flags = 0;
  ::sigaction(SIGSEGV, &fatal_action, nullptr);
  ::sigaction(SIGABRT, &fatal_action, nullptr);
  ::sigaction(SIGBUS, &fatal_action, nullptr);
}

const char* FlightDumpPath() { return g_dump_path; }

}  // namespace obs
}  // namespace p3gm
