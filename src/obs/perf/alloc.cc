#include "obs/perf/alloc.h"

#if P3GM_ALLOC_TRACKING_ENABLED

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/profile/heap.h"

#if defined(__GLIBC__)
#include <malloc.h>
#define P3GM_HAVE_USABLE_SIZE 1
#else
#define P3GM_HAVE_USABLE_SIZE 0
#endif

namespace p3gm {
namespace obs {
namespace perf {
namespace {

// Constant-initialized atomics: safe for allocations that happen during
// static initialization, before any constructor runs.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_free_count{0};
std::atomic<std::uint64_t> g_bytes_allocated{0};
std::atomic<std::uint64_t> g_bytes_freed{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live_bytes{0};

inline std::uint64_t UsableSize(void* p) {
#if P3GM_HAVE_USABLE_SIZE
  return static_cast<std::uint64_t>(malloc_usable_size(p));
#else
  (void)p;
  return 0;
#endif
}

inline void RecordAlloc(void* p) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t sz = UsableSize(p);
  if (sz == 0) return;
  g_bytes_allocated.fetch_add(sz, std::memory_order_relaxed);
  const std::uint64_t live =
      g_live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::uint64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void RecordFree(void* p) {
  if (p == nullptr) return;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t sz = UsableSize(p);
  if (sz == 0) return;
  g_bytes_freed.fetch_add(sz, std::memory_order_relaxed);
  g_live_bytes.fetch_sub(sz, std::memory_order_relaxed);
}

void* TrackedNew(std::size_t size) {
  if (size == 0) size = 1;
  while (true) {
    void* p = std::malloc(size);
    if (p != nullptr) {
      RecordAlloc(p);
      // Sampled heap profiling rides the same hook; a single relaxed
      // load when the profiler is idle (obs/profile/heap.h).
      const std::uint64_t usable = UsableSize(p);
      profile::HeapSampleHook(
          usable != 0 ? static_cast<std::size_t>(usable) : size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

AllocStats CurrentAllocStats() {
  AllocStats s;
  s.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  s.free_count = g_free_count.load(std::memory_order_relaxed);
  s.bytes_allocated = g_bytes_allocated.load(std::memory_order_relaxed);
  s.bytes_freed = g_bytes_freed.load(std::memory_order_relaxed);
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
  return s;
}

AllocScope::AllocScope() : start_(CurrentAllocStats()) {
  // Reset the window's high-water mark to the current live level so the
  // reported peak is attributable to this region. Concurrent regions
  // share the process-wide mark; last reset wins, which is the intended
  // semantics for the single-threaded bench driver.
  g_peak_live_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

AllocStats AllocScope::Delta() const {
  const AllocStats now = CurrentAllocStats();
  AllocStats d;
  d.alloc_count = now.alloc_count - start_.alloc_count;
  d.free_count = now.free_count - start_.free_count;
  d.bytes_allocated = now.bytes_allocated - start_.bytes_allocated;
  d.bytes_freed = now.bytes_freed - start_.bytes_freed;
  d.live_bytes =
      now.live_bytes > start_.live_bytes ? now.live_bytes - start_.live_bytes
                                         : 0;
  d.peak_live_bytes = now.peak_live_bytes > start_.live_bytes
                          ? now.peak_live_bytes - start_.live_bytes
                          : 0;
  return d;
}

}  // namespace perf
}  // namespace obs
}  // namespace p3gm

// Global operator new/delete replacements. Each simply wraps malloc/free
// plus the relaxed-atomic bookkeeping above; size, alignment (default)
// and failure semantics match the standard library's.

void* operator new(std::size_t size) {
  return p3gm::obs::perf::TrackedNew(size);
}
void* operator new[](std::size_t size) {
  return p3gm::obs::perf::TrackedNew(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return p3gm::obs::perf::TrackedNew(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return p3gm::obs::perf::TrackedNew(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept {
  p3gm::obs::perf::RecordFree(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  p3gm::obs::perf::RecordFree(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  p3gm::obs::perf::RecordFree(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  p3gm::obs::perf::RecordFree(p);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  p3gm::obs::perf::RecordFree(p);
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  p3gm::obs::perf::RecordFree(p);
  std::free(p);
}

#else  // !P3GM_ALLOC_TRACKING_ENABLED

namespace p3gm {
namespace obs {
namespace perf {

AllocStats CurrentAllocStats() { return AllocStats(); }
AllocScope::AllocScope() = default;
AllocStats AllocScope::Delta() const { return AllocStats(); }

}  // namespace perf
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_ALLOC_TRACKING_ENABLED
