#ifndef P3GM_OBS_PERF_ALLOC_H_
#define P3GM_OBS_PERF_ALLOC_H_

#include <cstdint>

/// Heap-allocation tracking behind -DP3GM_ALLOC_TRACKING (CMake option,
/// default OFF). When ON, alloc.cc replaces the global operator
/// new/delete family with counting wrappers (relaxed atomics, no
/// allocation inside the hooks, safe before main). When OFF — the
/// default — no operator is replaced, so the build is bit-identical to
/// one that never heard of this header; only the inert query API below
/// is compiled, mirroring the P3GM_OBSERVABILITY compile-out contract.
///
/// Tracking is strictly passive either way: it never changes an
/// allocation's size, alignment or address, so enabling it cannot change
/// any computed value.

#ifndef P3GM_ALLOC_TRACKING_ENABLED
#define P3GM_ALLOC_TRACKING_ENABLED 0
#endif

namespace p3gm {
namespace obs {
namespace perf {

/// Monotone process-wide allocation totals. Byte figures use the
/// allocator's usable size (malloc_usable_size) so frees can be
/// attributed exactly; on libcs without it, byte fields stay zero and
/// only the counts move.
struct AllocStats {
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_freed = 0;
  std::uint64_t live_bytes = 0;       // bytes_allocated - bytes_freed
  std::uint64_t peak_live_bytes = 0;  // high-water mark of live_bytes
};

/// True when the hooks are compiled in (-DP3GM_ALLOC_TRACKING=ON).
inline constexpr bool AllocTrackingCompiledIn() {
  return P3GM_ALLOC_TRACKING_ENABLED != 0;
}

/// Current process-wide totals; all-zero when compiled out.
AllocStats CurrentAllocStats();

/// Measures the allocation activity of a region: Delta() returns the
/// counts/bytes since construction, with `live_bytes` the net change
/// (may wrap below zero conceptually — reported as 0 then) and
/// `peak_live_bytes` the process high-water mark observed since
/// construction minus the live bytes at construction (0 when the region
/// never grew the heap). Zeros when compiled out.
class AllocScope {
 public:
  AllocScope();
  AllocStats Delta() const;

 private:
  AllocStats start_;
};

}  // namespace perf
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PERF_ALLOC_H_
