#include "obs/perf/counters.h"

#include <cstdlib>
#include <cstring>

#include "obs/observability.h"
#include "obs/registry.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace p3gm {
namespace obs {
namespace perf {

void PerfSample::Accumulate(const PerfSample& other) {
  // A region is "hardware-measured" only if every accumulated piece was.
  hw_available = hw_available && other.hw_available;
  cycles += other.cycles;
  instructions += other.instructions;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  wall_seconds += other.wall_seconds;
  user_seconds += other.user_seconds;
  sys_seconds += other.sys_seconds;
  minor_faults += other.minor_faults;
  major_faults += other.major_faults;
  if (other.max_rss_kb > max_rss_kb) max_rss_kb = other.max_rss_kb;
}

namespace {

bool ForceFallback() {
  const char* env = std::getenv("P3GM_PERF_NO_HW");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(__linux__)

const std::uint64_t kHwConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

int OpenHwCounter(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // Leader starts the group.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

// Opens the four-event group into fds[4]; all-or-nothing.
bool OpenHwGroup(int fds[4]) {
  for (int i = 0; i < 4; ++i) fds[i] = -1;
  for (int i = 0; i < 4; ++i) {
    fds[i] = OpenHwCounter(kHwConfigs[i], i == 0 ? -1 : fds[0]);
    if (fds[i] < 0) {
      for (int j = 0; j < i; ++j) close(fds[j]);
      fds[0] = -1;
      return false;
    }
  }
  return true;
}

void CloseHwGroup(int fds[4]) {
  for (int i = 0; i < 4; ++i) {
    if (fds[i] >= 0) close(fds[i]);
    fds[i] = -1;
  }
}

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

// One syscall probe per process; the environment override is layered on
// top per call so tests can flip it after the probe ran.
bool ProbeHwOnce() {
  static const bool available = [] {
    int fds[4];
    if (!OpenHwGroup(fds)) return false;
    CloseHwGroup(fds);
    return true;
  }();
  return available;
}

#endif  // defined(__linux__)

}  // namespace

bool HardwareCountersAvailable() {
#if defined(__linux__)
  return !ForceFallback() && ProbeHwOnce();
#else
  return false;
#endif
}

PerfCounters::PerfCounters() {
#if defined(__linux__)
  hw_ = HardwareCountersAvailable() && OpenHwGroup(fds_);
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  if (hw_) CloseHwGroup(fds_);
#endif
}

void PerfCounters::Start() {
  start_ns_ = NowNs();
#if defined(__linux__)
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    start_user_ = TimevalSeconds(ru.ru_utime);
    start_sys_ = TimevalSeconds(ru.ru_stime);
    start_minflt_ = static_cast<std::uint64_t>(ru.ru_minflt);
    start_majflt_ = static_cast<std::uint64_t>(ru.ru_majflt);
  }
  if (hw_) {
    ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
}

PerfSample PerfCounters::Stop() {
  PerfSample s;
  s.wall_seconds = static_cast<double>(NowNs() - start_ns_) * 1e-9;
#if defined(__linux__)
  if (hw_) {
    ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    // PERF_FORMAT_GROUP layout: nr, then one value per event in open
    // order.
    std::uint64_t buf[1 + 4] = {0};
    const ssize_t n = read(fds_[0], buf, sizeof buf);
    if (n == static_cast<ssize_t>(sizeof buf) && buf[0] == 4) {
      s.hw_available = true;
      s.cycles = buf[1];
      s.instructions = buf[2];
      s.cache_misses = buf[3];
      s.branch_misses = buf[4];
    }
  }
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.user_seconds = TimevalSeconds(ru.ru_utime) - start_user_;
    s.sys_seconds = TimevalSeconds(ru.ru_stime) - start_sys_;
    s.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt) - start_minflt_;
    s.major_faults = static_cast<std::uint64_t>(ru.ru_majflt) - start_majflt_;
    s.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
  }
#endif
  return s;
}

PerfScope::PerfScope(const char* label) {
  if (!Enabled()) return;
  label_ = label;
  counters_.Start();
}

PerfScope::~PerfScope() {
  if (label_ == nullptr) return;
  const PerfSample s = counters_.Stop();
  Registry& registry = Registry::Global();
  const std::string prefix = std::string("perf.") + label_ + ".";
  // Histograms with no bounds act as (count, sum) accumulators: count is
  // the number of scope executions, sum the accumulated seconds.
  registry.histogram(prefix + "wall_seconds")->Observe(s.wall_seconds);
  registry.histogram(prefix + "user_seconds")->Observe(s.user_seconds);
  registry.histogram(prefix + "sys_seconds")->Observe(s.sys_seconds);
  if (s.hw_available) {
    registry.counter(prefix + "cycles")->Add(s.cycles);
    registry.counter(prefix + "instructions")->Add(s.instructions);
    registry.counter(prefix + "cache_misses")->Add(s.cache_misses);
    registry.counter(prefix + "branch_misses")->Add(s.branch_misses);
  }
}

}  // namespace perf
}  // namespace obs
}  // namespace p3gm
