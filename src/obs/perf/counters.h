#ifndef P3GM_OBS_PERF_COUNTERS_H_
#define P3GM_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace p3gm {
namespace obs {
namespace perf {

/// Hardware/software cost sample for a measured region. Two tiers:
///
///  * Hardware tier — cycles / instructions / cache-misses /
///    branch-misses via perf_event_open, when the kernel grants access
///    (bare metal, perf_event_paranoid permitting). `hw_available` says
///    whether these four fields carry data.
///  * Portable tier — always filled: wall time (steady clock),
///    user/system CPU time and fault counts (getrusage deltas), and the
///    process peak RSS at sample end. This is the tier containers and CI
///    run on; the BENCH schema marks the hardware fields unavailable
///    rather than fabricating them.
struct PerfSample {
  bool hw_available = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  double wall_seconds = 0.0;
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t max_rss_kb = 0;  // Process high-water mark, not a delta.

  /// Field-wise accumulation (wall/CPU/fault deltas add; max_rss and
  /// hw_available combine as max/and). Used to aggregate repetitions.
  void Accumulate(const PerfSample& other);
};

/// True when the hardware tier works in this process: a probe
/// perf_event_open succeeds and P3GM_PERF_NO_HW is not set. The syscall
/// probe runs once per process; the environment override is re-read on
/// every call so tests can force the fallback path.
bool HardwareCountersAvailable();

/// Start/Stop sampler around a measured region. Usable whether or not
/// the hardware tier is available — Stop() always returns a valid
/// portable-tier sample. Not reentrant; one in-flight measurement per
/// instance.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  void Start();
  PerfSample Stop();

 private:
  // Group fds in event order cycles/instructions/cache/branch; -1 when
  // the hardware tier is off.
  int fds_[4] = {-1, -1, -1, -1};
  bool hw_ = false;
  std::uint64_t start_ns_ = 0;
  double start_user_ = 0.0;
  double start_sys_ = 0.0;
  std::uint64_t start_minflt_ = 0;
  std::uint64_t start_majflt_ = 0;
};

/// RAII region sampler feeding the metrics registry, mirroring
/// P3GM_TRACE_SPAN's shape: inert unless obs::Enabled(). On destruction
/// publishes, under "perf.<label>.":
///
///   calls (counter), wall_seconds_total / user_seconds_total /
///   sys_seconds_total (gauges, accumulated), and — when the hardware
///   tier is live — cycles / instructions / cache_misses /
///   branch_misses (counters).
///
/// `label` follows the registry naming convention and must outlive the
/// scope (string literals at call sites).
class PerfScope {
 public:
  explicit PerfScope(const char* label);
  ~PerfScope();
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  const char* label_ = nullptr;  // nullptr = disabled at construction.
  PerfCounters counters_;
};

}  // namespace perf
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PERF_COUNTERS_H_
