#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace p3gm {
namespace obs {
namespace json {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const Value* Value::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

bool Value::BoolOr(const std::string& key, bool fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->bool_value : fallback;
}

namespace {

// Recursive-descent parser over the raw text. Depth-limited so a
// corrupted file cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Run(Value* out, std::string* error) {
    bool ok = ParseValue(out, 0);
    if (ok) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        ok = false;
        error_ = "trailing characters";
      }
    }
    if (!ok && error != nullptr) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " at offset %zu", pos_);
      *error = error_ + buf;
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const char* what) {
    error_ = what;
    return false;
  }

  bool Consume(char c, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != c) return Fail(what);
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"', "expected string")) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            unsigned cp = 0;
            if (!ParseHex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF &&
                text_.compare(pos_, 2, "\\u") == 0) {
              pos_ += 2;
              unsigned lo = 0;
              if (!ParseHex4(&lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return Fail("bad surrogate pair");
              }
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Value::Kind::kObject;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWhitespace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWhitespace();
        if (!Consume(':', "expected ':'")) return false;
        Value member;
        if (!ParseValue(&member, depth + 1)) return false;
        out->members.emplace_back(std::move(key), std::move(member));
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume('}', "expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = Value::Kind::kArray;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Value item;
        if (!ParseValue(&item, depth + 1)) return false;
        out->items.push_back(std::move(item));
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume(']', "expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->kind = Value::Kind::kBool;
      out->bool_value = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      out->kind = Value::Kind::kBool;
      out->bool_value = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      out->kind = Value::Kind::kNull;
      return ConsumeLiteral("null");
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text_.c_str() + pos_;
      char* end = nullptr;
      out->kind = Value::Kind::kNumber;
      out->number_value = std::strtod(start, &end);
      if (end == start) return Fail("bad number");
      pos_ += static_cast<std::size_t>(end - start);
      return true;
    }
    return Fail("unexpected character");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  *out = Value();
  return Parser(text).Run(out, error);
}

}  // namespace json
}  // namespace obs
}  // namespace p3gm
