#include "obs/observability.h"

#include <atomic>
#include <chrono>

namespace p3gm {
namespace obs {

namespace {
// Trivially destructible, so it is safe to read at any point of process
// teardown (e.g. from thread-pool workers unwinding after main).
std::atomic<bool> g_enabled{false};
}  // namespace

#if P3GM_OBSERVABILITY_ENABLED
namespace internal {
bool EnabledImpl() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabledImpl(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
}  // namespace internal
#endif

std::uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

}  // namespace obs
}  // namespace p3gm
