#ifndef P3GM_OBS_FLIGHT_RECORDER_H_
#define P3GM_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace p3gm {
namespace obs {

/// Black-box flight recorder: a fixed-size per-thread ring buffer of
/// recent structured events (span ends, log records, queue-depth
/// transitions) that keeps recording even when tracing is disabled, so
/// there is always a record of the last moments before a crash or stall.
///
/// Hot path: single-writer per ring — five relaxed atomic word stores
/// plus one release store of the head, no locks, no allocation after a
/// thread's first event. Readers (metrics, dumps) tolerate torn events
/// at the wrap point; a post-mortem tool does not need perfection.
///
/// Dumping is async-signal-safe: DumpToFd formats with write(2) and
/// stack buffers only (no malloc, no stdio), so the fatal-signal
/// handlers installed by InstallFlightDumpHandlers can call it from a
/// SIGSEGV context. Labels must be string literals or interned strings
/// (stored by pointer).
///
/// Unlike the tracing and metrics instruments this is NOT gated on
/// obs::Enabled(); opt out with the P3GM_FLIGHT_RECORDER=0 env var or
/// SetEnabled(false).
class FlightRecorder {
 public:
  enum class EventKind : std::uint32_t {
    kSpanEnd = 1,     // a = start_ns, b = span id
    kLog = 2,         // a, b = first 16 bytes of the message
    kQueueDepth = 3,  // a = new depth, b = queue limit
    kRequest = 4,     // a = span id, b = endpoint-specific detail
  };

  /// The process-wide recorder (never destroyed; rings leak on purpose
  /// so a crash handler can always walk them).
  static FlightRecorder& Global();

  /// Appends one event to the calling thread's ring, overwriting the
  /// oldest once the ring is full. `label` is stored by pointer.
  void Record(EventKind kind, const char* label, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Record(kLog, ...) with the message's first 16 bytes packed into
  /// the payload words so dumps show a prefix of what was logged.
  void RecordLog(const char* level_label, const char* message,
                 std::size_t message_len);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Total events recorded / lost to ring wrap, summed over threads.
  std::uint64_t RecordedCount() const;
  std::uint64_t OverwrittenCount() const;

  /// Writes a human-readable dump of every ring (oldest event first per
  /// ring) to `fd`. Async-signal-safe.
  void DumpToFd(int fd) const;

  /// DumpToFd into `path` (created/truncated, mode 0644). Also
  /// async-signal-safe. Returns false if the file cannot be opened.
  bool DumpToFile(const char* path) const;

  /// Ring size for threads that have not yet recorded (rounded up to a
  /// power of two; existing rings keep their size). Default 4096.
  void SetCapacityPerThread(std::size_t capacity);

 private:
  // One slot = kWordsPerEvent atomic words:
  //   [0] timestamp (obs::NowNs), [1] label pointer, [2] a, [3] b,
  //   [4] kind << 32 | tid.
  static constexpr std::size_t kWordsPerEvent = 5;
  static constexpr int kMaxRings = 256;

  struct Ring {
    std::uint32_t tid = 0;
    std::size_t capacity = 0;  // Power of two.
    std::atomic<std::uint64_t> head{0};  // Total events ever recorded.
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };

  FlightRecorder();
  Ring* RingForThisThread();

  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> capacity_per_thread_{4096};
  // Lock-free registration list so a signal handler can walk the rings
  // without taking a mutex: slots are published once with a release
  // store and never removed.
  std::atomic<Ring*> rings_[kMaxRings];
  std::atomic<int> ring_count_{0};
};

/// Installs signal handlers that dump the flight recorder to `path`:
/// SIGQUIT dumps and continues running (kill -QUIT = "show me the last
/// N events"); SIGSEGV / SIGABRT / SIGBUS dump, append a backtrace, and
/// re-raise with the default disposition so the process still dies (and
/// still cores, where enabled). Safe to call more than once; the last
/// path wins.
void InstallFlightDumpHandlers(const std::string& path);

/// The path registered with InstallFlightDumpHandlers ("" if none).
const char* FlightDumpPath();

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_FLIGHT_RECORDER_H_
