#include "obs/process_stats.h"

#include <cstdio>
#include <cstring>
#include <string>

#if __has_include(<unistd.h>)
#include <unistd.h>
#define P3GM_HAVE_UNISTD 1
#else
#define P3GM_HAVE_UNISTD 0
#endif
#if __has_include(<dirent.h>)
#include <dirent.h>
#define P3GM_HAVE_DIRENT 1
#else
#define P3GM_HAVE_DIRENT 0
#endif

#include "obs/perf/alloc.h"
#include "obs/registry.h"

namespace p3gm {
namespace obs {

namespace {

bool ReadWholeFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  out->assign(buf, n);
  return true;
}

// Kernel boot time (seconds since the epoch) from the /proc/stat
// "btime" line; starttime in /proc/self/stat is relative to it.
double BootTimeSeconds() {
  std::FILE* f = std::fopen("/proc/stat", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double btime = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "btime %llu", &value) == 1) {
      btime = static_cast<double>(value);
      break;
    }
  }
  std::fclose(f);
  return btime;
}

double CountOpenFds() {
#if P3GM_HAVE_DIRENT
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0.0;
  double count = 0.0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    count += 1.0;  // Includes the dirfd itself; one-off, stable.
  }
  ::closedir(dir);
  return count;
#else
  return 0.0;
#endif
}

}  // namespace

ProcessStats ReadProcessStats() {
  ProcessStats stats;
#if P3GM_HAVE_UNISTD
  std::string stat;
  if (!ReadWholeFile("/proc/self/stat", &stat)) return stats;
  // The comm field "(name)" may contain spaces; parse after the last ')'.
  const std::size_t close = stat.rfind(')');
  if (close == std::string::npos) return stats;
  // 1-based /proc/self/stat fields: utime=14 stime=15 num_threads=20
  // starttime=22 vsize=23 rss=24. Tokens after ')' start at field 3.
  unsigned long long fields[24 - 3 + 1] = {0};
  int index = 0;
  const char* p = stat.c_str() + close + 1;
  char state = ' ';
  // Field 3 is a single char; the rest parse as integers (signed fields
  // in this range are non-negative for a live process).
  if (std::sscanf(p, " %c%n", &state, &index) < 1) return stats;
  p += index;
  for (std::size_t i = 1; i < sizeof(fields) / sizeof(fields[0]); ++i) {
    if (std::sscanf(p, " %llu%n", &fields[i], &index) < 1) return stats;
    p += index;
  }
  const double clk_tck =
      static_cast<double>(::sysconf(_SC_CLK_TCK) > 0
                              ? ::sysconf(_SC_CLK_TCK)
                              : 100);
  const double page_size =
      static_cast<double>(::sysconf(_SC_PAGESIZE) > 0
                              ? ::sysconf(_SC_PAGESIZE)
                              : 4096);
  const double utime = static_cast<double>(fields[14 - 3]);
  const double stime = static_cast<double>(fields[15 - 3]);
  stats.threads = static_cast<double>(fields[20 - 3]);
  const double starttime = static_cast<double>(fields[22 - 3]);
  stats.virtual_memory_bytes = static_cast<double>(fields[23 - 3]);
  stats.resident_memory_bytes =
      static_cast<double>(fields[24 - 3]) * page_size;
  stats.cpu_seconds_total = (utime + stime) / clk_tck;
  const double btime = BootTimeSeconds();
  if (btime > 0.0) {
    stats.start_time_seconds = btime + starttime / clk_tck;
  }
  stats.open_fds = CountOpenFds();
  stats.valid = true;
#endif
  return stats;
}

void PublishProcessGauges() {
  const ProcessStats stats = ReadProcessStats();
  Registry& registry = Registry::Global();
  registry.gauge("p3gm.process.resident_memory_bytes")
      ->Set(stats.resident_memory_bytes);
  registry.gauge("p3gm.process.virtual_memory_bytes")
      ->Set(stats.virtual_memory_bytes);
  registry.gauge("p3gm.process.open_fds")->Set(stats.open_fds);
  registry.gauge("p3gm.process.cpu_seconds_total")
      ->Set(stats.cpu_seconds_total);
  registry.gauge("p3gm.process.start_time_seconds")
      ->Set(stats.start_time_seconds);
  registry.gauge("p3gm.process.threads")->Set(stats.threads);

  // Satellite of the same scrape: alloc-tracking totals, when the
  // operator-new hooks are compiled in (-DP3GM_ALLOC_TRACKING=ON).
  // Compiled out, CurrentAllocStats() is all-zero and publishing zeros
  // would misread as "no allocation"; skip the family instead.
  if (perf::AllocTrackingCompiledIn()) {
    const perf::AllocStats alloc = perf::CurrentAllocStats();
    registry.gauge("p3gm.alloc.alloc_count")
        ->Set(static_cast<double>(alloc.alloc_count));
    registry.gauge("p3gm.alloc.free_count")
        ->Set(static_cast<double>(alloc.free_count));
    registry.gauge("p3gm.alloc.bytes_allocated")
        ->Set(static_cast<double>(alloc.bytes_allocated));
    registry.gauge("p3gm.alloc.bytes_freed")
        ->Set(static_cast<double>(alloc.bytes_freed));
    registry.gauge("p3gm.alloc.live_bytes")
        ->Set(static_cast<double>(alloc.live_bytes));
    registry.gauge("p3gm.alloc.peak_live_bytes")
        ->Set(static_cast<double>(alloc.peak_live_bytes));
  }
}

}  // namespace obs
}  // namespace p3gm
