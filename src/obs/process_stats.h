#ifndef P3GM_OBS_PROCESS_STATS_H_
#define P3GM_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace p3gm {
namespace obs {

/// Standard process-level gauges sourced from /proc/self, exported on
/// the Prometheus scrape as the conventional p3gm_process_* family
/// (docs/observability.md "Process gauges"). All fields are zero with
/// `valid == false` on platforms without procfs — the scrape then
/// simply omits nothing but reports zeros, keeping the exposition shape
/// stable for the golden test.
struct ProcessStats {
  bool valid = false;
  double resident_memory_bytes = 0.0;  // RSS.
  double virtual_memory_bytes = 0.0;
  double open_fds = 0.0;
  double cpu_seconds_total = 0.0;    // utime + stime.
  double start_time_seconds = 0.0;   // Unix epoch.
  double threads = 0.0;
};

/// Reads /proc/self/stat, /proc/stat (boot time) and /proc/self/fd.
/// Cheap enough to call per scrape (~3 small reads + one dirent walk).
ProcessStats ReadProcessStats();

/// Publishes ReadProcessStats() into the registry as
/// p3gm.process.{resident_memory_bytes,virtual_memory_bytes,open_fds,
/// cpu_seconds_total,start_time_seconds,threads} gauges. No-op when the
/// observability layer is compiled out. Call before snapshotting a
/// scrape so the exposition carries fresh values.
void PublishProcessGauges();

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PROCESS_STATS_H_
