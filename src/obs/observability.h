#ifndef P3GM_OBS_OBSERVABILITY_H_
#define P3GM_OBS_OBSERVABILITY_H_

/// Master switches of the observability layer (docs/observability.md).
///
/// Compile-time: the CMake option P3GM_OBSERVABILITY (default ON) defines
/// P3GM_OBSERVABILITY_ENABLED to 1/0. With the layer compiled out the
/// instrumentation macros expand to nothing and Enabled() is a constant
/// false, so instrument updates guarded on it are dead-code eliminated —
/// the zero-overhead path.
///
/// Runtime: recording defaults to OFF and costs one relaxed atomic load
/// per instrumentation site until SetEnabled(true). Observation is
/// strictly passive either way: no instrument ever feeds back into a
/// computation or consumes RNG, so enabling the layer cannot change any
/// computed value (the determinism contract of util/thread_pool.h).

#include <cstdint>

#ifndef P3GM_OBSERVABILITY_ENABLED
#define P3GM_OBSERVABILITY_ENABLED 1
#endif

namespace p3gm {
namespace obs {

/// True when the layer is compiled in (-DP3GM_OBSERVABILITY=ON).
inline constexpr bool kCompiledIn = P3GM_OBSERVABILITY_ENABLED != 0;

#if P3GM_OBSERVABILITY_ENABLED
namespace internal {
bool EnabledImpl();
void SetEnabledImpl(bool on);
}  // namespace internal

/// True when recording is on. One relaxed atomic load.
inline bool Enabled() { return internal::EnabledImpl(); }

/// Turns recording on/off process-wide. Safe from any thread.
inline void SetEnabled(bool on) { internal::SetEnabledImpl(on); }
#else
inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#endif

/// Nanoseconds since the process-wide observability epoch (steady clock).
/// All trace spans and pool busy/idle timings share this timebase.
std::uint64_t NowNs();

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_OBSERVABILITY_H_
