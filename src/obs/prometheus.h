#ifndef P3GM_OBS_PROMETHEUS_H_
#define P3GM_OBS_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace p3gm {
namespace obs {

/// Prometheus text exposition format v0.0.4 for a registry Snapshot.
///
/// Registry names may carry labels in the canonical form produced by
/// LabeledName ("base{k=\"v\",...}"); the exporter splits the base name
/// from the label set, sanitizes the base to the Prometheus charset
/// ([a-zA-Z0-9_:], '.' and '-' become '_'), escapes label values, and
/// groups all series of one base name under a single # TYPE line.
/// Histograms expand to cumulative `le` buckets (ending with +Inf) plus
/// the `_sum` and `_count` series.
std::string ToPrometheusText(const Snapshot& snapshot);

/// The Content-Type a scrape endpoint must answer with for this format.
const char* PrometheusContentType();

/// Canonical labeled series name: `base{k1="v1",k2="v2"}` with label
/// values escaped. Use this to key registry instruments that carry
/// labels so JSON export stays flat while the Prometheus exporter can
/// recover the label set:
///
///   static obs::Histogram* h = obs::Registry::Global().histogram(
///       obs::LabeledName("serve.request.latency_seconds",
///                        {{"endpoint", "/v1/sample"}}), bounds);
std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels);

/// Prometheus metric-name sanitization: '.' and every other character
/// outside [a-zA-Z0-9_:] maps to '_'; a leading digit gains a '_'
/// prefix. Exposed for tests.
std::string SanitizeMetricName(const std::string& name);

/// Label-value escaping per the text format: backslash, double-quote
/// and newline are escaped. Exposed for tests.
std::string EscapeLabelValue(const std::string& value);

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PROMETHEUS_H_
