#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "obs/json.h"
#include "util/check.h"

namespace p3gm {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// Shortest round-trippable formatting for JSON/CSV values.
std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string FormatValue(std::uint64_t v) {
  return std::to_string(v);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    P3GM_CHECK(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double HistogramSample::Quantile(double q) const {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (count == 0 || bounds.empty() ||
      bucket_counts.size() != bounds.size() + 1) {
    return nan;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank within the cumulative distribution, in [0, count].
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::uint64_t in_bucket = bucket_counts[i];
    if (in_bucket > 0 &&
        rank <= static_cast<double>(cumulative + in_bucket)) {
      const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double upper = bounds[i];
      const double into =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      // Rank 0 (q == 0 with a leading empty region) still lands at the
      // bucket's lower edge, which is the most honest point estimate.
      return lower + (upper - lower) * std::max(0.0, into);
    }
    cumulative += in_bucket;
  }
  // Rank falls in the overflow bucket: the upper edge is unknown, so
  // clamp to the largest finite bound.
  return bounds.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  // Leaked on purpose: instrument pointers cached at call sites (and
  // thread-pool workers unwinding late in shutdown) must never dangle.
  static Registry* global = new Registry();
  return *global;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string Snapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json::Escape(c.name) + "\": " + FormatValue(c.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json::Escape(g.name) + "\": " + FormatValue(g.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json::Escape(h.name) +
           "\": {\"count\": " + FormatValue(h.count) +
           ", \"sum\": " + FormatValue(h.sum) + ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatValue(h.bounds[i]);
    }
    out += "], \"bucket_counts\": [";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatValue(h.bucket_counts[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string Snapshot::ToCsv() const {
  std::string out = "kind,name,field,value\n";
  for (const auto& c : counters) {
    out += "counter," + c.name + ",value," + FormatValue(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    out += "gauge," + g.name + ",value," + FormatValue(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    out += "histogram," + h.name + ",count," + FormatValue(h.count) + "\n";
    out += "histogram," + h.name + ",sum," + FormatValue(h.sum) + "\n";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? FormatValue(h.bounds[i]) : "inf";
      out += "histogram," + h.name + ",le_" + le + "," +
             FormatValue(h.bucket_counts[i]) + "\n";
    }
  }
  return out;
}

namespace {
bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}
}  // namespace

bool Snapshot::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

bool Snapshot::WriteCsv(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

}  // namespace obs
}  // namespace p3gm
