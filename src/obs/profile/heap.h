#ifndef P3GM_OBS_PROFILE_HEAP_H_
#define P3GM_OBS_PROFILE_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf/alloc.h"
#include "obs/profile/profiler.h"
#include "util/result.h"

namespace p3gm {
namespace obs {
namespace profile {

/// Sampled heap profiler: stack-attributed allocation sampling layered
/// on the P3GM_ALLOC_TRACKING operator-new hooks (obs/perf/alloc.h).
///
/// Sampling is a deterministic byte stride, not a Poisson draw: each
/// thread counts allocated bytes down from `stride_bytes` and captures
/// one stack every time the counter crosses zero, attributing
/// `crossings * stride_bytes` to that stack. Identical runs produce
/// identical profiles (per thread), and the profiler consumes no
/// randomness — it can never perturb util::Rng streams.
///
/// The hook path is allocation-free: samples land in a fixed
/// CAS-claimed hash table of pre-sized entries, collisions and table
/// overflow are counted as drops, and a thread-local guard makes the
/// hook re-entrancy safe (a sampled allocation inside the hook itself
/// is ignored). Requires -DP3GM_ALLOC_TRACKING=ON; Start reports
/// Unimplemented when the hooks are compiled out.

/// Fixed capacity of the sample table (entries, power of two). Each
/// entry is one unique call stack; typical processes populate a few
/// dozen.
constexpr std::size_t kHeapTableSize = 1024;

struct HeapProfileOptions {
  /// Bytes between samples per thread. Smaller = finer attribution,
  /// more hook work. The default samples every 512 KiB, which keeps the
  /// steady-state cost well under the 2% bench gate.
  std::uint64_t stride_bytes = 512 * 1024;
};

/// A snapshot of attributed allocation stacks. Weights are bytes, so
/// the folded text renders as a bytes-flamegraph.
struct HeapProfile {
  std::uint64_t samples = 0;        // Stack captures that landed.
  std::uint64_t dropped = 0;        // Lost to table collisions/overflow.
  std::uint64_t sampled_bytes = 0;  // Total attributed bytes.
  std::uint64_t stride_bytes = 0;
  std::vector<FoldedStack> folded;  // weight = attributed bytes.

  std::string ToFoldedText() const;
};

/// Process-wide sampled heap profiler. Start enables the hook; the
/// profile accumulates until Stop. Snapshot may be taken while running.
class HeapProfiler {
 public:
  static HeapProfiler& Global();

  /// Resets the table and enables sampling. FailedPrecondition when
  /// already running, Unimplemented when P3GM_ALLOC_TRACKING is
  /// compiled out, InvalidArgument for a zero stride.
  util::Status Start(const HeapProfileOptions& options);

  bool running() const;

  /// Aggregates and symbolizes the table without stopping sampling.
  /// FailedPrecondition when not running.
  util::Result<HeapProfile> Snapshot() const;

  /// Disables sampling. The table keeps its contents until the next
  /// Start, so a final Snapshot-after-Stop pattern needs Snapshot first.
  void Stop();

 private:
  HeapProfiler() = default;
};

/// The sampling hook. Called by the alloc-tracking operator-new wrapper
/// for every allocation with its usable size; a single relaxed load
/// when sampling is off. Not for direct use elsewhere.
void HeapSampleHook(std::size_t size);

}  // namespace profile
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PROFILE_HEAP_H_
