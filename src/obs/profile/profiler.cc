#include "obs/profile/profiler.h"

#include <signal.h>
#include <string.h>
#include <sys/time.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <map>
#include <mutex>
#include <vector>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define P3GM_HAVE_EXECINFO 1
#else
#define P3GM_HAVE_EXECINFO 0
#endif

#include "obs/observability.h"
#include "obs/profile/symbolize.h"
#include "obs/registry.h"

namespace p3gm {
namespace obs {
namespace profile {

namespace {

// ---------------------------------------------------------------------
// Sampling state. Everything the SIGPROF handler touches is a
// constant-initialized atomic or pre-allocated memory: the handler
// performs no allocation, takes no lock and makes no syscall.
// ---------------------------------------------------------------------

// One slot = kWordsPerSample words: [0] depth, [1..depth] pcs.
constexpr std::size_t kWordsPerSample = 1 + kMaxStackDepth;

struct Ring {
  std::size_t capacity = 0;            // Samples; power of two.
  std::atomic<std::uint64_t> head{0};  // Samples ever written.
  std::atomic<std::uint64_t>* words = nullptr;
};

// Claim array, flight-recorder style: rings are allocated in normal
// context (Start), published once with a release store, and leaked on
// purpose so a handler can always walk them. A thread claims one ring
// on its first sample and keeps it for the life of the process.
std::atomic<Ring*> g_rings[kMaxProfiledThreads];
std::atomic<int> g_allocated{0};  // Rings ready in g_rings.
std::atomic<int> g_claimed{0};    // Rings handed to threads.
thread_local Ring* t_ring = nullptr;

std::atomic<bool> g_collecting{false};
std::atomic<bool> g_use_frame_pointers{false};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_dropped{0};

std::mutex g_lifecycle_mutex;  // Serializes Start/Stop (cold path).
bool g_handler_installed = false;
std::uint64_t g_start_ns = 0;
int g_hz = 0;

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

Ring* ClaimRingForThisThread() {
  if (t_ring != nullptr) return t_ring;
  const int index = g_claimed.fetch_add(1, std::memory_order_relaxed);
  if (index >= g_allocated.load(std::memory_order_acquire)) {
    // Pool exhausted: more threads than pre-allocated rings. The sample
    // is dropped (counted); the next Start tops the pool back up.
    return nullptr;
  }
  t_ring = g_rings[index].load(std::memory_order_acquire);
  return t_ring;
}

}  // namespace

// --- stack capture -----------------------------------------------------
// External linkage on purpose: CMAKE_ENABLE_EXPORTS puts these names in
// the dynamic table, so dladdr can recognize the handler's own frames at
// dump time and strip them off the leaf end of every sample (the
// "obs::profile::" test in StripHandlerFrames below). In an anonymous
// namespace they would symbolize as bare hex and pollute the flamegraph.

// Frame-pointer walk: follows the saved-rbp chain from this frame
// upward. Only yields useful stacks in -fno-omit-frame-pointer builds
// (the sanitizer presets); the Start-time probe decides whether to
// trust it. Bounds checks keep a garbage chain from faulting the
// handler: each frame must move strictly upward, stay 8-byte aligned
// and advance less than 1 MiB per hop.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
int ProfilerFramePointerWalk(std::uintptr_t* pcs, int max_depth) {
  int depth = 0;
  std::uintptr_t fp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  while (depth < max_depth) {
    if (fp == 0 || (fp & 0x7) != 0) break;
    const std::uintptr_t* frame =
        reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret < 0x1000) break;
    pcs[depth++] = ret;
    if (next_fp <= fp || next_fp - fp > (1u << 20)) break;
    fp = next_fp;
  }
  return depth;
}

// Captures the current stack, leaf-first. In backtrace mode the
// unwinder crosses the kernel signal frame (its unwind info is marked),
// so samples see the interrupted application stack, not just the
// handler; glibc's lazy libgcc dlopen is taken once at Start, outside
// any handler, exactly like flight_recorder.cc pre-warms its dump path.
int ProfilerCaptureStack(std::uintptr_t* pcs, int max_depth) {
  if (g_use_frame_pointers.load(std::memory_order_relaxed)) {
    return ProfilerFramePointerWalk(pcs, max_depth);
  }
#if P3GM_HAVE_EXECINFO
  void* frames[kMaxStackDepth];
  const int depth = ::backtrace(frames, max_depth);
  for (int i = 0; i < depth; ++i) {
    pcs[i] = reinterpret_cast<std::uintptr_t>(frames[i]);
  }
  return depth;
#else
  return ProfilerFramePointerWalk(pcs, max_depth);
#endif
}

void ProfilerHandleSample() {
  Ring* ring = ClaimRingForThisThread();
  if (ring == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uintptr_t pcs[kMaxStackDepth];
  const int depth =
      ProfilerCaptureStack(pcs, static_cast<int>(kMaxStackDepth));
  if (depth <= 0) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* slot =
      ring->words + (seq & (ring->capacity - 1)) * kWordsPerSample;
  slot[0].store(static_cast<std::uint64_t>(depth),
                std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    slot[1 + i].store(pcs[i], std::memory_order_relaxed);
  }
  ring->head.store(seq + 1, std::memory_order_release);
  g_samples.fetch_add(1, std::memory_order_relaxed);
}

void ProfilerSignalHandler(int) {
  if (!g_collecting.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  ProfilerHandleSample();
  errno = saved_errno;
}

namespace {

// Pre-allocates rings so the handler never has to: keeps at least
// `headroom` unclaimed rings available. Runs under the lifecycle mutex
// in normal context.
void TopUpRingPool(std::size_t capacity, int headroom) {
  const int claimed = g_claimed.load(std::memory_order_relaxed);
  const int want = std::min(claimed + headroom, kMaxProfiledThreads);
  int allocated = g_allocated.load(std::memory_order_relaxed);
  while (allocated < want) {
    auto* ring = new Ring();  // Leaked: handlers may walk rings forever.
    ring->capacity = capacity;
    ring->words = new std::atomic<std::uint64_t>[ring->capacity *
                                                 kWordsPerSample]();
    g_rings[allocated].store(ring, std::memory_order_release);
    ++allocated;
    g_allocated.store(allocated, std::memory_order_release);
  }
}

// Start-time probe: trust the frame-pointer walk only when it can see
// through a small noinline call chain in this build.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
int ProbeDepth2(std::uintptr_t* pcs) {
  return ProfilerFramePointerWalk(pcs, static_cast<int>(kMaxStackDepth));
}
#if defined(__GNUC__)
__attribute__((noinline))
#endif
int ProbeDepth1(std::uintptr_t* pcs) { return ProbeDepth2(pcs); }

bool ProbeFramePointers() {
  std::uintptr_t pcs[kMaxStackDepth];
  return ProbeDepth1(pcs) >= 3;
}

// Profiler-internal frames captured below the interrupted pc (the
// handler itself plus the signal trampoline) are stripped at fold time
// so flamegraphs show only application stacks.
bool IsProfilerInternalFrame(const std::string& name) {
  return name.find("obs::profile::") != std::string::npos ||
         name.find("__restore_rt") != std::string::npos ||
         name.find("killpg") != std::string::npos;
}

}  // namespace

bool UsingFramePointerWalk() {
  return g_use_frame_pointers.load(std::memory_order_relaxed);
}

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* global = new CpuProfiler();
  return *global;
}

bool CpuProfiler::running() const {
  return g_collecting.load(std::memory_order_acquire);
}

std::uint64_t CpuProfiler::SamplesCaptured() const {
  return g_samples.load(std::memory_order_relaxed);
}

std::uint64_t CpuProfiler::SamplesDropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

util::Status CpuProfiler::Start(const CpuProfileOptions& options) {
  if (options.hz < 1 || options.hz > 1000) {
    return util::Status::InvalidArgument(
        "CpuProfiler: hz must be in [1, 1000]");
  }
  if (options.ring_capacity < 64 || options.ring_capacity > (1u << 20)) {
    return util::Status::InvalidArgument(
        "CpuProfiler: ring_capacity must be in [64, 1048576]");
  }
  std::lock_guard<std::mutex> lock(g_lifecycle_mutex);
  if (g_collecting.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition(
        "CpuProfiler: a profile is already running");
  }

#if P3GM_HAVE_EXECINFO
  // backtrace() may lazily dlopen libgcc on first use, which is not
  // signal-safe — take that hit here, outside any handler.
  void* warmup[4];
  ::backtrace(warmup, 4);
  g_use_frame_pointers.store(ProbeFramePointers(),
                             std::memory_order_relaxed);
#else
  if (!ProbeFramePointers()) {
    return util::Status::Unimplemented(
        "CpuProfiler: no usable stack walker on this platform");
  }
  g_use_frame_pointers.store(true, std::memory_order_relaxed);
#endif

  TopUpRingPool(RoundUpPow2(options.ring_capacity), /*headroom=*/8);
  const int allocated = g_allocated.load(std::memory_order_relaxed);
  for (int i = 0; i < allocated; ++i) {
    g_rings[i].load(std::memory_order_acquire)
        ->head.store(0, std::memory_order_relaxed);
  }
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_hz = options.hz;
  g_start_ns = NowNs();

  // Installed once, never restored: the handler gates on g_collecting,
  // so a straggler SIGPROF after Stop is a no-op instead of a crash.
  if (!g_handler_installed) {
    struct sigaction action;
    ::memset(&action, 0, sizeof action);
    action.sa_handler = ProfilerSignalHandler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    if (::sigaction(SIGPROF, &action, nullptr) != 0) {
      return util::Status::IoError("CpuProfiler: sigaction failed");
    }
    g_handler_installed = true;
  }
  g_collecting.store(true, std::memory_order_release);

  struct itimerval interval;
  ::memset(&interval, 0, sizeof interval);
  const long usec = std::max(1000000L / options.hz, 1L);
  interval.it_interval.tv_sec = usec / 1000000;
  interval.it_interval.tv_usec = usec % 1000000;
  interval.it_value = interval.it_interval;
  if (::setitimer(ITIMER_PROF, &interval, nullptr) != 0) {
    g_collecting.store(false, std::memory_order_release);
    return util::Status::IoError("CpuProfiler: setitimer failed");
  }
  return util::Status::OK();
}

util::Result<CpuProfile> CpuProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_lifecycle_mutex);
  if (!g_collecting.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition(
        "CpuProfiler: no profile is running");
  }
  struct itimerval disarm;
  ::memset(&disarm, 0, sizeof disarm);
  ::setitimer(ITIMER_PROF, &disarm, nullptr);
  g_collecting.store(false, std::memory_order_release);
  // A tick delivered just before the disarm may still be executing its
  // handler on another thread; give it a moment so the merge below sees
  // at most one torn sample per ring (which it tolerates anyway).
  struct timespec settle = {0, 2 * 1000 * 1000};
  ::nanosleep(&settle, nullptr);

  CpuProfile profile;
  profile.hz = g_hz;
  profile.duration_seconds =
      static_cast<double>(NowNs() - g_start_ns) * 1e-9;
  profile.samples = g_samples.load(std::memory_order_relaxed);
  profile.dropped = g_dropped.load(std::memory_order_relaxed);

  // Merge: aggregate identical raw stacks first so each unique stack is
  // symbolized exactly once.
  std::map<std::vector<std::uintptr_t>, std::uint64_t> raw;
  const int allocated = g_allocated.load(std::memory_order_acquire);
  for (int i = 0; i < allocated; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, ring->capacity);
    if (head > ring->capacity) {
      profile.dropped += head - ring->capacity;  // Ring-wrap loss.
    }
    for (std::uint64_t seq = head - n; seq != head; ++seq) {
      const std::atomic<std::uint64_t>* slot =
          ring->words + (seq & (ring->capacity - 1)) * kWordsPerSample;
      const std::uint64_t depth =
          slot[0].load(std::memory_order_relaxed);
      if (depth == 0 || depth > kMaxStackDepth) {
        profile.dropped += 1;  // Torn slot at the wrap point.
        continue;
      }
      std::vector<std::uintptr_t> pcs(depth);
      for (std::uint64_t d = 0; d < depth; ++d) {
        pcs[d] = static_cast<std::uintptr_t>(
            slot[1 + d].load(std::memory_order_relaxed));
      }
      raw[pcs] += 1;
    }
  }

  // Symbolize at dump time, strip the handler's own frames off the leaf
  // end, and fold equal stacks (two raw stacks can collapse to one
  // folded line once addresses resolve to the same symbols).
  std::map<std::string, std::uint64_t> folded;
  for (const auto& [pcs, count] : raw) {
    std::size_t begin = 0;
    while (begin < pcs.size() &&
           IsProfilerInternalFrame(SymbolizePc(
               begin == 0 ? pcs[0] : AdjustReturnAddress(pcs[begin])))) {
      ++begin;
    }
    // Directly outside the handler sits the kernel signal trampoline;
    // when it resolves (__restore_rt) the loop above ate it, when it
    // doesn't it is the single unresolvable frame left on the leaf end.
    if (begin > 0 && begin < pcs.size() &&
        SymbolizePc(AdjustReturnAddress(pcs[begin])).compare(0, 2, "0x") ==
            0) {
      ++begin;
    }
    if (begin >= pcs.size()) begin = 0;  // Keep rather than lose.
    folded[FoldStack(pcs.data() + begin, pcs.size() - begin)] += count;
  }
  profile.folded.reserve(folded.size());
  for (auto& [stack, weight] : folded) {
    profile.folded.push_back(FoldedStack{stack, weight});
  }
  std::sort(profile.folded.begin(), profile.folded.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.stack < b.stack;
            });

  Registry::Global().gauge("obs.profile.samples")
      ->Set(static_cast<double>(profile.samples));
  Registry::Global().gauge("obs.profile.dropped")
      ->Set(static_cast<double>(profile.dropped));
  return profile;
}

std::string CpuProfile::ToFoldedText() const {
  std::string out;
  for (const FoldedStack& fs : folded) {
    out += fs.stack;
    out += ' ';
    out += std::to_string(fs.weight);
    out += '\n';
  }
  return out;
}

}  // namespace profile
}  // namespace obs
}  // namespace p3gm
