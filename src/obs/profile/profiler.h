#ifndef P3GM_OBS_PROFILE_PROFILER_H_
#define P3GM_OBS_PROFILE_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace p3gm {
namespace obs {
namespace profile {

/// In-process sampling CPU profiler (docs/observability.md "Profiling").
///
/// A SIGPROF interval timer (setitimer(ITIMER_PROF)) fires at `hz` per
/// second of consumed process CPU time; the kernel delivers each tick to
/// a thread that is currently running, so samples are CPU-weighted
/// across threads for free. The handler captures a raw program-counter
/// stack into the calling thread's lock-free ring and returns — zero
/// locks, zero allocation, zero syscalls on the sampling path. Rings
/// follow the flight-recorder slot pattern (obs/flight_recorder.h): a
/// fixed claim array published with release stores, one writer per ring,
/// torn-tolerant readers, loss accounted instead of blocked.
///
/// Symbolization (dladdr + demangling) happens exclusively at collection
/// time, never in the handler. The collected profile renders as folded
/// stacks — `frame;frame;...;leaf <count>` — the format flamegraph.pl
/// and the existing tools/trace_to_folded pipeline consume.
///
/// Like the flight recorder, the profiler is NOT gated on
/// obs::Enabled(): it is strictly passive (never feeds a computation,
/// never consumes util::Rng), so it is available even in
/// -DP3GM_OBSERVABILITY=OFF builds; only the obs.profile.* registry
/// gauges become no-ops there.

/// Hard compile-time caps of the sampling path.
constexpr std::size_t kMaxStackDepth = 64;  // Frames kept per sample.
constexpr int kMaxProfiledThreads = 64;     // Rings claimable at once.

struct CpuProfileOptions {
  /// Samples per second of CPU time, [1, 1000]. 99 (not 100) keeps the
  /// sampler out of lockstep with 10ms-periodic application timers.
  int hz = 99;
  /// Samples each thread's ring holds before the oldest is overwritten
  /// (rounded up to a power of two). At the default hz a ring covers
  /// ~40s of one saturated core.
  std::size_t ring_capacity = 4096;
};

/// One aggregated, symbolized stack with its sample count.
struct FoldedStack {
  std::string stack;  // "outer;inner;leaf" — root frame first.
  std::uint64_t weight = 0;
};

/// A finished CPU profile.
struct CpuProfile {
  std::uint64_t samples = 0;  // Captured into rings.
  std::uint64_t dropped = 0;  // Lost: ring wrap, pool exhaustion, walk
                              // failure. samples+dropped = timer ticks.
  double duration_seconds = 0.0;  // Wall time Start -> Stop.
  int hz = 0;
  std::vector<FoldedStack> folded;  // Sorted by descending weight.

  /// Folded-stack text: one "stack <weight>" line per entry, the exact
  /// shape `tools/trace_to_folded` emits and flamegraph.pl consumes.
  std::string ToFoldedText() const;
};

/// The process-wide sampling profiler. One profile at a time: Start
/// while running fails with FailedPrecondition (the serve endpoint maps
/// this to 503). Thread-safe; Start/Stop may be called from any thread.
class CpuProfiler {
 public:
  static CpuProfiler& Global();

  /// Validates options, arms the SIGPROF timer and begins sampling.
  /// FailedPrecondition when a profile is already running,
  /// InvalidArgument on out-of-range options, Unavailable when the
  /// platform lacks both stack walkers.
  util::Status Start(const CpuProfileOptions& options);

  bool running() const;

  /// Disarms the timer, merges every ring, symbolizes at dump time and
  /// returns the aggregated profile. Also publishes the final
  /// obs.profile.samples / obs.profile.dropped registry gauges.
  /// FailedPrecondition when no profile is running.
  util::Result<CpuProfile> Stop();

  /// Live loss accounting for the in-flight profile (both 0 when idle).
  std::uint64_t SamplesCaptured() const;
  std::uint64_t SamplesDropped() const;

 private:
  CpuProfiler() = default;
};

/// True when the signal handler walks frame pointers; false when it
/// uses the pre-warmed backtrace() unwinder. Decided once per Start by
/// probing whether this build carries usable frame pointers. Exposed
/// for tests and the runinfo line.
bool UsingFramePointerWalk();

}  // namespace profile
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PROFILE_PROFILER_H_
