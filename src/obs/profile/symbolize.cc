#include "obs/profile/symbolize.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#if __has_include(<dlfcn.h>)
#include <dlfcn.h>
#define P3GM_HAVE_DLADDR 1
#else
#define P3GM_HAVE_DLADDR 0
#endif

#if __has_include(<cxxabi.h>)
#include <cxxabi.h>
#define P3GM_HAVE_CXA_DEMANGLE 1
#else
#define P3GM_HAVE_CXA_DEMANGLE 0
#endif

namespace p3gm {
namespace obs {
namespace profile {

namespace {

std::string HexPc(std::uintptr_t pc) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

// Folded-stack separators inside a frame name would corrupt the format;
// flamegraph.pl treats ';' as the frame separator and ' ' as the weight
// separator. Demangled names contain spaces ("operator()", template
// args), so both are rewritten.
std::string SanitizeFrame(std::string name) {
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return name;
}

std::mutex g_cache_mutex;
std::map<std::uintptr_t, std::string>& Cache() {
  static auto* cache = new std::map<std::uintptr_t, std::string>();
  return *cache;
}

}  // namespace

std::string Demangle(const char* name) {
  if (name == nullptr) return std::string();
#if P3GM_HAVE_CXA_DEMANGLE
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out(demangled);
    std::free(demangled);
    return out;
  }
  std::free(demangled);
#endif
  return name;
}

std::string SymbolizePc(std::uintptr_t pc) {
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    const auto it = Cache().find(pc);
    if (it != Cache().end()) return it->second;
  }
  std::string name;
#if P3GM_HAVE_DLADDR
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    name = SanitizeFrame(Demangle(info.dli_sname));
  }
#endif
  if (name.empty()) name = HexPc(pc);
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  Cache().emplace(pc, name);
  return name;
}

std::string FoldStack(const std::uintptr_t* pcs, std::size_t depth) {
  std::string out;
  out.reserve(depth * 24);
  // Walkers store leaf-first; folded stacks read root-first. Frame 0 is
  // the interrupted pc, every outer frame is a return address.
  for (std::size_t i = depth; i-- > 0;) {
    const std::uintptr_t pc = i == 0 ? pcs[0] : AdjustReturnAddress(pcs[i]);
    if (!out.empty()) out += ';';
    out += SymbolizePc(pc);
  }
  return out;
}

}  // namespace profile
}  // namespace obs
}  // namespace p3gm
