#ifndef P3GM_OBS_PROFILE_SYMBOLIZE_H_
#define P3GM_OBS_PROFILE_SYMBOLIZE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p3gm {
namespace obs {
namespace profile {

/// Dump-time symbolization for raw program counters (never called from
/// the signal handler — it allocates freely and caches results).
///
/// Resolution goes through dladdr, so function names are only available
/// for symbols in the dynamic table; the build exports executable
/// symbols (CMAKE_ENABLE_EXPORTS / -rdynamic) precisely so the repo's
/// own hot paths — infer::DecoderPlan::Execute, the serve batcher —
/// show up by name. Unresolvable counters render as "0x<hex>".

/// Demangles an Itanium-ABI mangled name; returns `name` unchanged when
/// it is not mangled (or demangling fails).
std::string Demangle(const char* name);

/// "qualified::function" for the instruction at `pc`, or "0x<hex>".
/// Results are cached process-wide (the cache is never invalidated;
/// code does not move). `pc` should already be adjusted for
/// return-address semantics by the caller (see AdjustReturnAddress).
std::string SymbolizePc(std::uintptr_t pc);

/// Return addresses point one past the call; subtract one byte so the
/// lookup lands inside the calling function even when the call is its
/// final instruction. The leaf frame (an interrupted pc, not a return
/// address) must NOT be adjusted.
inline std::uintptr_t AdjustReturnAddress(std::uintptr_t pc) {
  return pc > 0 ? pc - 1 : pc;
}

/// Renders a leaf-first pc stack (what the stack walkers produce) as a
/// root-first folded stack string "outer;inner;leaf". Frames that
/// symbolize to the same name as their immediate parent are kept —
/// recursion is real signal in a flamegraph.
std::string FoldStack(const std::uintptr_t* pcs, std::size_t depth);

}  // namespace profile
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_PROFILE_SYMBOLIZE_H_
