#include "obs/profile/heap.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define P3GM_HAVE_EXECINFO 1
#else
#define P3GM_HAVE_EXECINFO 0
#endif

#include "obs/profile/symbolize.h"

namespace p3gm {
namespace obs {
namespace profile {

namespace {

// One unique call stack. Claimed empty -> claiming -> published with a
// CAS + release store so concurrent hooks either see a fully written
// entry or probe past it; count/bytes accumulate with relaxed adds.
struct HeapEntry {
  std::atomic<std::uint32_t> state{0};  // 0 empty, 1 claiming, 2 live.
  std::uint64_t hash = 0;
  std::uint32_t depth = 0;
  std::uintptr_t pcs[kMaxStackDepth];
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
};

constexpr int kProbeLimit = 16;

// Constant-initialized statics: the hook may fire for allocations made
// during static initialization, before any constructor runs.
HeapEntry g_table[kHeapTableSize];
std::atomic<std::uint64_t> g_stride{0};  // 0 = sampling off.
std::atomic<std::uint64_t> g_heap_samples{0};
std::atomic<std::uint64_t> g_heap_dropped{0};
thread_local std::int64_t t_countdown = 0;
thread_local bool t_in_hook = false;

std::mutex g_heap_lifecycle_mutex;

std::uint64_t HashStack(const std::uintptr_t* pcs, std::uint32_t depth) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a.
  for (std::uint32_t i = 0; i < depth; ++i) {
    h = (h ^ pcs[i]) * 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

void RecordHeapSample(const std::uintptr_t* pcs, std::uint32_t depth,
                      std::uint64_t attributed_bytes) {
  const std::uint64_t hash = HashStack(pcs, depth);
  std::size_t index = hash & (kHeapTableSize - 1);
  for (int probe = 0; probe < kProbeLimit; ++probe) {
    HeapEntry& entry = g_table[index];
    std::uint32_t state = entry.state.load(std::memory_order_acquire);
    if (state == 0) {
      std::uint32_t expected = 0;
      if (entry.state.compare_exchange_strong(expected, 1,
                                              std::memory_order_acquire)) {
        entry.hash = hash;
        entry.depth = depth;
        for (std::uint32_t i = 0; i < depth; ++i) entry.pcs[i] = pcs[i];
        entry.state.store(2, std::memory_order_release);
        state = 2;
      } else {
        state = expected;
      }
    }
    if (state == 2 && entry.hash == hash && entry.depth == depth &&
        std::memcmp(entry.pcs, pcs, depth * sizeof(pcs[0])) == 0) {
      entry.count.fetch_add(1, std::memory_order_relaxed);
      entry.bytes.fetch_add(attributed_bytes, std::memory_order_relaxed);
      g_heap_samples.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // state == 1 (mid-claim by another thread) or a different stack:
    // linear-probe onward.
    index = (index + 1) & (kHeapTableSize - 1);
  }
  g_heap_dropped.fetch_add(1, std::memory_order_relaxed);
}

// Hook-internal and allocator frames on the leaf end carry no
// attribution value; stripping stops at the first application frame.
bool IsHeapInternalFrame(const std::string& name) {
  return name.find("obs::profile::") != std::string::npos ||
         name.find("obs::perf::") != std::string::npos ||
         name.find("operator_new") != std::string::npos;
}

}  // namespace

void HeapSampleHook(std::size_t size) {
  const std::uint64_t stride = g_stride.load(std::memory_order_relaxed);
  if (stride == 0 || t_in_hook) return;
  if (t_countdown == 0) t_countdown = static_cast<std::int64_t>(stride);
  t_countdown -= static_cast<std::int64_t>(size);
  if (t_countdown > 0) return;
  // Crossed one or more stride boundaries: attribute whole strides so
  // total attributed bytes track total allocated bytes in expectation.
  const std::uint64_t crossings =
      1 + static_cast<std::uint64_t>(-t_countdown) / stride;
  t_countdown += static_cast<std::int64_t>(crossings * stride);
  t_in_hook = true;  // backtrace/symbol machinery may itself allocate.
#if P3GM_HAVE_EXECINFO
  void* frames[kMaxStackDepth];
  const int depth =
      ::backtrace(frames, static_cast<int>(kMaxStackDepth));
  if (depth > 0) {
    std::uintptr_t pcs[kMaxStackDepth];
    for (int i = 0; i < depth; ++i) {
      pcs[i] = reinterpret_cast<std::uintptr_t>(frames[i]);
    }
    RecordHeapSample(pcs, static_cast<std::uint32_t>(depth),
                     crossings * stride);
  } else {
    g_heap_dropped.fetch_add(1, std::memory_order_relaxed);
  }
#else
  g_heap_dropped.fetch_add(1, std::memory_order_relaxed);
#endif
  t_in_hook = false;
}

HeapProfiler& HeapProfiler::Global() {
  static HeapProfiler* global = new HeapProfiler();
  return *global;
}

bool HeapProfiler::running() const {
  return g_stride.load(std::memory_order_relaxed) != 0;
}

util::Status HeapProfiler::Start(const HeapProfileOptions& options) {
  if (!perf::AllocTrackingCompiledIn()) {
    return util::Status::Unimplemented(
        "HeapProfiler: requires -DP3GM_ALLOC_TRACKING=ON");
  }
  if (options.stride_bytes == 0) {
    return util::Status::InvalidArgument(
        "HeapProfiler: stride_bytes must be positive");
  }
  std::lock_guard<std::mutex> lock(g_heap_lifecycle_mutex);
  if (g_stride.load(std::memory_order_relaxed) != 0) {
    return util::Status::FailedPrecondition(
        "HeapProfiler: already running");
  }
#if P3GM_HAVE_EXECINFO
  // First backtrace() may dlopen libgcc; take it here, not inside
  // operator new of some arbitrary caller.
  void* warmup[4];
  ::backtrace(warmup, 4);
#endif
  // stride == 0 means no hook can be mid-record, so a plain reset is
  // race-free.
  for (HeapEntry& entry : g_table) {
    entry.state.store(0, std::memory_order_relaxed);
    entry.count.store(0, std::memory_order_relaxed);
    entry.bytes.store(0, std::memory_order_relaxed);
  }
  g_heap_samples.store(0, std::memory_order_relaxed);
  g_heap_dropped.store(0, std::memory_order_relaxed);
  g_stride.store(options.stride_bytes, std::memory_order_release);
  return util::Status::OK();
}

void HeapProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_heap_lifecycle_mutex);
  g_stride.store(0, std::memory_order_release);
}

util::Result<HeapProfile> HeapProfiler::Snapshot() const {
  const std::uint64_t stride = g_stride.load(std::memory_order_relaxed);
  if (stride == 0) {
    return util::Status::FailedPrecondition(
        "HeapProfiler: not running");
  }
  HeapProfile profile;
  profile.stride_bytes = stride;
  profile.samples = g_heap_samples.load(std::memory_order_relaxed);
  profile.dropped = g_heap_dropped.load(std::memory_order_relaxed);

  std::map<std::string, std::uint64_t> folded;
  for (const HeapEntry& entry : g_table) {
    if (entry.state.load(std::memory_order_acquire) != 2) continue;
    const std::uint64_t bytes =
        entry.bytes.load(std::memory_order_relaxed);
    if (bytes == 0) continue;
    // Strip the hook/allocator prefix off the leaf end. The anonymous
    // TrackedNew between HeapSampleHook and operator new symbolizes as
    // bare hex, so exactly one hex frame is strippable too — a budget,
    // not a scan, because operator new itself is often tail-called out
    // of the backtrace and any further unresolved frame is a real
    // (static) caller that must stay.
    std::size_t begin = 0;
    int hex_budget = 1;
    while (begin < entry.depth) {
      const std::string name = SymbolizePc(
          begin == 0 ? entry.pcs[0]
                     : AdjustReturnAddress(entry.pcs[begin]));
      if (!IsHeapInternalFrame(name)) {
        const bool hex = name.compare(0, 2, "0x") == 0;
        if (!(hex && begin > 0 && hex_budget-- > 0)) break;
      }
      ++begin;
    }
    if (begin >= entry.depth) begin = 0;  // Keep rather than lose.
    folded[FoldStack(entry.pcs + begin, entry.depth - begin)] += bytes;
    profile.sampled_bytes += bytes;
  }
  profile.folded.reserve(folded.size());
  for (auto& [stack, weight] : folded) {
    profile.folded.push_back(FoldedStack{stack, weight});
  }
  std::sort(profile.folded.begin(), profile.folded.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.stack < b.stack;
            });
  return profile;
}

std::string HeapProfile::ToFoldedText() const {
  std::string out;
  for (const FoldedStack& fs : folded) {
    out += fs.stack;
    out += ' ';
    out += std::to_string(fs.weight);
    out += '\n';
  }
  return out;
}

}  // namespace profile
}  // namespace obs
}  // namespace p3gm
