#include "obs/quality/sketch.h"

#include <algorithm>
#include <cmath>

namespace p3gm {
namespace obs {
namespace quality {

void MomentsSketch::Merge(const MomentsSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::uint64_t n_old = n_;
  n_ += other.n_;
  const double total = static_cast<double>(n_);
  mean_ += delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_old) *
                         static_cast<double>(other.n_) / total;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double MomentsSketch::stddev() const { return std::sqrt(variance()); }

QuantileSketch::QuantileSketch(std::size_t k) : k_(k < 8 ? 8 : k) {
  levels_.emplace_back();
  levels_[0].reserve(k_);
}

void QuantileSketch::CompactLevel(std::size_t level) {
  while (level < levels_.size() && levels_[level].size() >= k_) {
    // Swap the buffer out first: growing `levels_` below may reallocate
    // the outer vector, so a reference into it must not be held across
    // the emplace_back.
    std::vector<double> buf;
    buf.swap(levels_[level]);
    std::sort(buf.begin(), buf.end());
    if (level + 1 >= levels_.size()) {
      levels_.emplace_back();
      levels_[level + 1].reserve(k_);
    }
    // Keep every other element; the starting parity alternates with the
    // compaction counter so the retained rank bias averages out while
    // staying fully deterministic.
    const std::size_t start = static_cast<std::size_t>(compactions_++ & 1);
    for (std::size_t i = start; i < buf.size(); i += 2) {
      levels_[level + 1].push_back(buf[i]);
    }
    // Hand the (cleared) storage back so the level keeps its capacity.
    buf.clear();
    levels_[level].swap(buf);
    ++level;
  }
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  n_ += other.n_;
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                      other.levels_[l].end());
  }
  // A level may now exceed k; cascade from the bottom.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() >= k_) CompactLevel(l);
  }
}

std::vector<std::pair<double, std::uint64_t>> QuantileSketch::SortedItems()
    const {
  std::vector<std::pair<double, std::uint64_t>> items;
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  items.reserve(total);
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t weight = static_cast<std::uint64_t>(1) << l;
    for (double v : levels_[l]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end(),
            [](const std::pair<double, std::uint64_t>& a,
               const std::pair<double, std::uint64_t>& b) {
              return a.first < b.first;
            });
  return items;
}

double QuantileSketch::Quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const auto items = SortedItems();
  std::uint64_t retained = 0;
  for (const auto& item : items) retained += item.second;
  // Rank against the *retained* weight: compaction can drop the sketch's
  // total weight slightly below n_, and ranking against n_ would push
  // high quantiles past the last item.
  const double target_rank = std::ceil(q * static_cast<double>(retained));
  const std::uint64_t target =
      target_rank < 1.0 ? 1 : static_cast<std::uint64_t>(target_rank);
  std::uint64_t cum = 0;
  for (const auto& item : items) {
    cum += item.second;
    if (cum >= target) return item.first;
  }
  return items.back().first;
}

double QuantileSketch::Cdf(double x) const {
  if (n_ == 0) return 0.0;
  std::uint64_t below = 0;
  std::uint64_t retained = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t weight = static_cast<std::uint64_t>(1) << l;
    for (double v : levels_[l]) {
      retained += weight;
      if (v <= x) below += weight;
    }
  }
  if (retained == 0) return 0.0;
  return static_cast<double>(below) / static_cast<double>(retained);
}

std::size_t QuantileSketch::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& level : levels_) bytes += level.capacity() * sizeof(double);
  return bytes;
}

CategoricalSketch::CategoricalSketch(std::size_t num_bins)
    : counts_(num_bins, 0) {}

void CategoricalSketch::Add(std::size_t value) {
  ++n_;
  if (value < counts_.size()) {
    ++counts_[value];
  } else {
    ++overflow_;
  }
}

void CategoricalSketch::Merge(const CategoricalSketch& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  overflow_ += other.overflow_;
  n_ += other.n_;
}

std::vector<double> CategoricalSketch::Probabilities() const {
  std::vector<double> probs(counts_.size(), 0.0);
  if (n_ == 0) return probs;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    probs[i] = static_cast<double>(counts_[i]) / static_cast<double>(n_);
  }
  return probs;
}

double CategoricalSketch::TotalVariation(
    const std::vector<double>& reference_probs) const {
  if (n_ == 0 || reference_probs.empty()) return 0.0;
  const std::vector<double> live = Probabilities();
  const std::size_t arity = std::max(live.size(), reference_probs.size());
  double l1 = 0.0;
  for (std::size_t i = 0; i < arity; ++i) {
    const double p = i < live.size() ? live[i] : 0.0;
    const double q = i < reference_probs.size() ? reference_probs[i] : 0.0;
    l1 += std::fabs(p - q);
  }
  // Overflowed live mass has no matching reference bin.
  l1 += static_cast<double>(overflow_) / static_cast<double>(n_);
  return 0.5 * l1;
}

}  // namespace quality
}  // namespace obs
}  // namespace p3gm
