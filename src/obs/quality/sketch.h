#ifndef P3GM_OBS_QUALITY_SKETCH_H_
#define P3GM_OBS_QUALITY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace p3gm {
namespace obs {
namespace quality {

/// Streaming sketches for the synthesis-quality monitor
/// (docs/observability.md "Synthesis quality"). All three are
///
///   - fixed-memory: bounds independent of the stream length,
///   - mergeable: Merge(other) yields the sketch of the concatenated
///     streams, and
///   - deterministic: the merged state is a pure function of the input
///     partition and the merge order (no RNG, no clocks), so a fixed
///     per-thread data split merged in a fixed order is bit-reproducible
///     regardless of thread scheduling.
///
/// None of them are internally synchronized; the serving monitor shards
/// one sketch set per thread and merges on scrape (quality/monitor.h).

/// Count / mean / variance (Welford) / min / max. Memory: O(1).
class MomentsSketch {
 public:
  /// Inline: this runs once per feature per sampled row on the serving
  /// hot path (bench_quality holds the fold under 3% of decode cost).
  void Add(double v) {
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  /// Chan et al. pairwise update; exact in counts, deterministic in
  /// floating point for a fixed merge order.
  void Merge(const MomentsSketch& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (division by n).
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// KLL-style quantile sketch with deterministic compaction.
///
/// Values enter a level-0 buffer of capacity k; a full level sorts
/// itself and promotes every other element (the survivor parity
/// alternates with a per-sketch compaction counter — no randomness) to
/// the next level, where each element carries twice the weight. Memory
/// is bounded by k doubles per level times O(log2(n / k)) levels. While
/// n < k no compaction has happened and every rank query is exact —
/// the property the `quality` ctest label pins against sorted arrays;
/// beyond that the rank error grows like O(log(n/k) / k) (the classic
/// deterministic-compactor bound), which at the default k = 64 stays
/// well under the drift thresholds the monitor alarms on.
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t k = 64);

  /// Inline fast path: append to the level-0 buffer (capacity is
  /// reserved up front, so this is a store + size bump); the amortized
  /// compaction stays out of line.
  void Add(double v) {
    ++n_;
    levels_[0].push_back(v);
    if (levels_[0].size() >= k_) CompactLevel(0);
  }

  void Merge(const QuantileSketch& other);

  std::uint64_t count() const { return n_; }

  /// The smallest retained value whose weighted rank reaches
  /// max(1, ceil(q * retained_weight)) — the lower weighted quantile,
  /// exact while no compaction has occurred (n < k). Returns 0 on an
  /// empty sketch; q is clamped into [0, 1].
  double Quantile(double q) const;

  /// Fraction of ingested weight <= x (empirical CDF estimate).
  double Cdf(double x) const;

  /// Current footprint of the level buffers, for the memory-bound test
  /// and the monitor's bookkeeping gauge.
  std::size_t MemoryBytes() const;

  std::size_t capacity_per_level() const { return k_; }

 private:
  void CompactLevel(std::size_t level);
  /// All retained (value, weight) pairs sorted by value.
  std::vector<std::pair<double, std::uint64_t>> SortedItems() const;

  std::size_t k_;
  std::uint64_t n_ = 0;
  std::uint64_t compactions_ = 0;  // Drives the survivor-parity alternation.
  std::vector<std::vector<double>> levels_;  // Level i items weigh 2^i.
};

/// Bounded histogram over small integer values (class labels,
/// discretized features): exact counts for values in [0, num_bins),
/// one overflow bin for the rest. Memory: O(num_bins).
class CategoricalSketch {
 public:
  explicit CategoricalSketch(std::size_t num_bins = 0);

  void Add(std::size_t value);
  void Merge(const CategoricalSketch& other);

  std::uint64_t count() const { return n_; }
  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t overflow() const { return overflow_; }

  /// Per-bin probabilities (empty sketch yields all zeros).
  std::vector<double> Probabilities() const;

  /// Total-variation distance (0.5 * L1) to a reference distribution of
  /// the same arity; reference bins beyond num_bins() count as missing
  /// mass. Returns 0 when either side is empty.
  double TotalVariation(const std::vector<double>& reference_probs) const;

 private:
  std::uint64_t n_ = 0;
  std::uint64_t overflow_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace quality
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_QUALITY_SKETCH_H_
