#include "obs/quality/monitor.h"

#include <algorithm>
#include <cmath>

namespace p3gm {
namespace obs {
namespace quality {

namespace {

/// Process-wide thread index, flight-recorder style: stable for the
/// thread's lifetime, assigned on first use.
std::size_t ThreadIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// F_ref(x) estimated from the fingerprint's evenly rank-spaced
/// quantile values: the fraction of grid values <= x. Correct up to
/// grid resolution even when the reference has atoms.
double ReferenceCdf(const FeatureFingerprint& ref, double x) {
  std::size_t below = 0;
  for (double q : ref.quantiles) {
    if (q <= x) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(ref.quantiles.size());
}

}  // namespace

QualityMonitor::QualityMonitor(std::shared_ptr<const Fingerprint> fingerprint,
                               std::size_t feature_dim,
                               std::size_t num_classes, MonitorOptions options)
    : fingerprint_(std::move(fingerprint)),
      feature_dim_(feature_dim),
      num_classes_(num_classes),
      options_(options) {
  if (options_.stride == 0) options_.stride = 1;
  for (auto& slot : slots_) slot.store(nullptr, std::memory_order_relaxed);
}

QualityMonitor::~QualityMonitor() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_acquire);
  }
}

QualityMonitor::SketchSet QualityMonitor::NewSketchSet() const {
  SketchSet set;
  set.quantiles.reserve(feature_dim_);
  set.moments.resize(feature_dim_);
  for (std::size_t i = 0; i < feature_dim_; ++i) {
    set.quantiles.emplace_back(options_.quantile_k);
  }
  set.labels = CategoricalSketch(num_classes_);
  return set;
}

QualityMonitor::Slot* QualityMonitor::LocalSlot() {
  const std::size_t index = ThreadIndex() % kMaxSlots;
  Slot* slot = slots_[index].load(std::memory_order_acquire);
  if (slot != nullptr) return slot;
  Slot* fresh = new Slot;
  fresh->set = NewSketchSet();
  Slot* expected = nullptr;
  if (slots_[index].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // Another thread mapped to the same slot first.
  return expected;
}

void QualityMonitor::FoldDecodedRow(SketchSet* set, const double* row,
                                    std::size_t feature_dim,
                                    std::size_t num_classes) {
  for (std::size_t c = 0; c < feature_dim; ++c) {
    set->quantiles[c].Add(row[c]);
    set->moments[c].Add(row[c]);
  }
  if (num_classes > 0) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes; ++c) {
      if (row[feature_dim + c] > row[feature_dim + best]) best = c;
    }
    set->labels.Add(best);
  }
  ++set->rows;
}

void QualityMonitor::ObserveDecoded(const linalg::Matrix& outputs) {
  if (outputs.cols() != feature_dim_ + num_classes_) return;
  const std::uint64_t start =
      rows_seen_.fetch_add(outputs.rows(), std::memory_order_relaxed);
  // Global-counter stride: fold rows whose absolute index is a multiple
  // of the stride, so the sampling phase rotates across batches instead
  // of always picking the same positions within each batch.
  const std::uint64_t stride = options_.stride;
  std::uint64_t next = ((start + stride - 1) / stride) * stride;
  if (next >= start + outputs.rows()) return;
  Slot* slot = LocalSlot();
  std::lock_guard<std::mutex> lock(slot->mu);
  for (; next < start + outputs.rows(); next += stride) {
    FoldDecodedRow(&slot->set,
                   outputs.row_data(static_cast<std::size_t>(next - start)),
                   feature_dim_, num_classes_);
  }
}

void QualityMonitor::ObserveDataset(const linalg::Matrix& features,
                                    const std::vector<std::size_t>& labels) {
  if (features.cols() != feature_dim_) return;
  rows_seen_.fetch_add(features.rows(), std::memory_order_relaxed);
  Slot* slot = LocalSlot();
  std::lock_guard<std::mutex> lock(slot->mu);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.row_data(r);
    for (std::size_t c = 0; c < feature_dim_; ++c) {
      slot->set.quantiles[c].Add(row[c]);
      slot->set.moments[c].Add(row[c]);
    }
    if (num_classes_ > 0 && r < labels.size()) {
      slot->set.labels.Add(labels[r]);
    }
    ++slot->set.rows;
  }
}

QualityMonitor::SketchSet QualityMonitor::MergedSnapshot() const {
  SketchSet merged = NewSketchSet();
  for (const auto& entry : slots_) {
    const Slot* slot = entry.load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    std::lock_guard<std::mutex> lock(slot->mu);
    for (std::size_t c = 0; c < feature_dim_; ++c) {
      merged.quantiles[c].Merge(slot->set.quantiles[c]);
      merged.moments[c].Merge(slot->set.moments[c]);
    }
    merged.labels.Merge(slot->set.labels);
    merged.rows += slot->set.rows;
  }
  return merged;
}

DriftReport QualityMonitor::Score() const {
  DriftReport report;
  report.rows_seen = rows_seen();
  const SketchSet merged = MergedSnapshot();
  report.rows_observed = merged.rows;
  report.has_fingerprint = fingerprint_ != nullptr &&
                           fingerprint_->feature_dim() == feature_dim_;
  report.features.resize(feature_dim_);
  for (std::size_t c = 0; c < feature_dim_; ++c) {
    FeatureDrift& drift = report.features[c];
    drift.live_mean = merged.moments[c].mean();
    drift.live_stddev = merged.moments[c].stddev();
    if (!report.has_fingerprint) continue;
    const FeatureFingerprint& ref = fingerprint_->feature(c);
    drift.ref_mean = ref.mean;
    drift.ref_stddev = ref.stddev;
    if (merged.rows == 0) continue;
    for (double x : ref.quantiles) {
      const double gap =
          std::fabs(merged.quantiles[c].Cdf(x) - ReferenceCdf(ref, x));
      if (gap > drift.ks) drift.ks = gap;
    }
    drift.mean_z = std::fabs(drift.live_mean - ref.mean) /
                   std::max(ref.stddev, 1e-9);
    drift.sigma_ratio = drift.live_stddev / std::max(ref.stddev, 1e-12);
    if (drift.ks > report.worst_ks) {
      report.worst_ks = drift.ks;
      report.worst_feature = c;
    }
    if (drift.mean_z > report.mean_z_max) report.mean_z_max = drift.mean_z;
  }
  if (report.has_fingerprint && merged.rows > 0 && num_classes_ > 0 &&
      fingerprint_->num_classes() == num_classes_) {
    report.label_tv = merged.labels.TotalVariation(fingerprint_->label_probs());
  }
  return report;
}

std::size_t QualityMonitor::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& entry : slots_) {
    const Slot* slot = entry.load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    std::lock_guard<std::mutex> lock(slot->mu);
    for (const QuantileSketch& q : slot->set.quantiles) {
      bytes += q.MemoryBytes();
    }
    bytes += slot->set.moments.size() * sizeof(MomentsSketch);
    bytes += slot->set.labels.num_bins() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace quality
}  // namespace obs
}  // namespace p3gm
