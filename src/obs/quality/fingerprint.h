#ifndef P3GM_OBS_QUALITY_FINGERPRINT_H_
#define P3GM_OBS_QUALITY_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"
#include "util/serialize.h"

namespace p3gm {
namespace obs {
namespace quality {

/// Per-feature reference marginal: moments plus an evenly spaced
/// quantile grid computed *exactly* (sorted array) over the reference
/// draw.
struct FeatureFingerprint {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Quantiles at q_i = i / (Fingerprint::kGridSize - 1), i = 0..G-1.
  std::vector<double> quantiles;
};

/// Reference fingerprint of a released model's output distribution,
/// computed at release time from a large synthetic draw. It only ever
/// sees synthetic samples, so it is pure post-processing under DP —
/// zero additional ε. Embedded in core::ReleasePackage files (format
/// v2); the serve-path QualityMonitor scores live sketches against it.
class Fingerprint {
 public:
  /// Number of quantile-grid points per feature. 33 gives ~3% rank
  /// resolution — finer than the default drift thresholds by an order
  /// of magnitude — at 264 bytes/feature.
  static constexpr std::size_t kGridSize = 33;

  Fingerprint() = default;

  /// Builds a fingerprint from a decoded output matrix as produced by
  /// core::ReleasePackage::DecodeLatent: `num_classes > 0` means the
  /// trailing num_classes columns are a one-hot label block (labels are
  /// derived by argmax, matching data::OneHotToLabels); the remaining
  /// leading columns are real-valued features.
  static Fingerprint FromDecoded(const linalg::Matrix& outputs,
                                 std::size_t num_classes, std::uint64_t seed);

  /// Builds a fingerprint from an already-split dataset (feature matrix
  /// plus integer labels) — the `p3gm quality --score` CSV path.
  static Fingerprint FromDataset(const linalg::Matrix& features,
                                 const std::vector<std::size_t>& labels,
                                 std::size_t num_classes, std::uint64_t seed);

  std::size_t feature_dim() const { return features_.size(); }
  std::size_t num_classes() const { return label_probs_.size(); }
  std::uint64_t reference_rows() const { return reference_rows_; }
  std::uint64_t seed() const { return seed_; }
  const FeatureFingerprint& feature(std::size_t i) const {
    return features_[i];
  }
  const std::vector<double>& label_probs() const { return label_probs_; }

  /// Grid position of quantile index i, in [0, 1].
  static double GridPoint(std::size_t i) {
    return static_cast<double>(i) / static_cast<double>(kGridSize - 1);
  }

  /// Serializes into an already-open writer (the release-package format
  /// owns the header; this is one nested section of it).
  void WriteTo(util::BinaryWriter* writer) const;
  static util::Result<Fingerprint> ReadFrom(util::BinaryReader* reader);

  bool operator==(const Fingerprint& other) const;

 private:
  std::uint64_t reference_rows_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<FeatureFingerprint> features_;
  std::vector<double> label_probs_;  // Empty when the model is unlabelled.
};

/// Exact lower quantile of a sorted array: the value at weighted rank
/// max(1, ceil(q * n)), the same convention QuantileSketch::Quantile
/// uses — shared so sketch-exactness tests compare like with like.
double ExactQuantileSorted(const std::vector<double>& sorted, double q);

}  // namespace quality
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_QUALITY_FINGERPRINT_H_
