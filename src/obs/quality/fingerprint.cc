#include "obs/quality/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace p3gm {
namespace obs {
namespace quality {

double ExactQuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  std::size_t index = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

namespace {

FeatureFingerprint FingerprintColumn(std::vector<double> column) {
  FeatureFingerprint fp;
  if (column.empty()) {
    fp.quantiles.assign(Fingerprint::kGridSize, 0.0);
    return fp;
  }
  double sum = 0.0;
  for (double v : column) sum += v;
  const double n = static_cast<double>(column.size());
  fp.mean = sum / n;
  double m2 = 0.0;
  for (double v : column) {
    const double d = v - fp.mean;
    m2 += d * d;
  }
  fp.stddev = std::sqrt(m2 / n);
  std::sort(column.begin(), column.end());
  fp.min = column.front();
  fp.max = column.back();
  fp.quantiles.resize(Fingerprint::kGridSize);
  for (std::size_t i = 0; i < Fingerprint::kGridSize; ++i) {
    fp.quantiles[i] = ExactQuantileSorted(column, Fingerprint::GridPoint(i));
  }
  return fp;
}

}  // namespace

Fingerprint Fingerprint::FromDataset(const linalg::Matrix& features,
                                     const std::vector<std::size_t>& labels,
                                     std::size_t num_classes,
                                     std::uint64_t seed) {
  Fingerprint fp;
  fp.reference_rows_ = features.rows();
  fp.seed_ = seed;
  fp.features_.reserve(features.cols());
  for (std::size_t c = 0; c < features.cols(); ++c) {
    fp.features_.push_back(FingerprintColumn(features.Col(c)));
  }
  if (num_classes > 0) {
    fp.label_probs_.assign(num_classes, 0.0);
    if (!labels.empty()) {
      for (std::size_t label : labels) {
        if (label < num_classes) fp.label_probs_[label] += 1.0;
      }
      for (double& p : fp.label_probs_) {
        p /= static_cast<double>(labels.size());
      }
    }
  }
  return fp;
}

Fingerprint Fingerprint::FromDecoded(const linalg::Matrix& outputs,
                                     std::size_t num_classes,
                                     std::uint64_t seed) {
  const std::size_t feature_dim =
      num_classes > 0 && outputs.cols() > num_classes
          ? outputs.cols() - num_classes
          : outputs.cols();
  linalg::Matrix features(outputs.rows(), feature_dim);
  std::vector<std::size_t> labels;
  const bool labelled = num_classes > 0 && outputs.cols() > num_classes;
  if (labelled) labels.reserve(outputs.rows());
  for (std::size_t r = 0; r < outputs.rows(); ++r) {
    const double* row = outputs.row_data(r);
    std::copy(row, row + feature_dim, features.row_data(r));
    if (labelled) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < num_classes; ++c) {
        if (row[feature_dim + c] > row[feature_dim + best]) best = c;
      }
      labels.push_back(best);
    }
  }
  return FromDataset(features, labels, labelled ? num_classes : 0, seed);
}

void Fingerprint::WriteTo(util::BinaryWriter* writer) const {
  writer->WriteU64(reference_rows_);
  writer->WriteU64(seed_);
  writer->WriteU64(features_.size());
  writer->WriteU64(kGridSize);
  for (const FeatureFingerprint& f : features_) {
    writer->WriteDouble(f.mean);
    writer->WriteDouble(f.stddev);
    writer->WriteDouble(f.min);
    writer->WriteDouble(f.max);
    writer->WriteDoubles(f.quantiles);
  }
  writer->WriteDoubles(label_probs_);
}

util::Result<Fingerprint> Fingerprint::ReadFrom(util::BinaryReader* reader) {
  Fingerprint fp;
  P3GM_ASSIGN_OR_RETURN(fp.reference_rows_, reader->ReadU64());
  P3GM_ASSIGN_OR_RETURN(fp.seed_, reader->ReadU64());
  P3GM_ASSIGN_OR_RETURN(std::uint64_t dim, reader->ReadU64());
  P3GM_ASSIGN_OR_RETURN(std::uint64_t grid, reader->ReadU64());
  if (grid != kGridSize) {
    return util::Status::InvalidArgument(
        "fingerprint quantile grid size mismatch");
  }
  if (dim > (1u << 20)) {
    return util::Status::InvalidArgument("fingerprint dimension implausible");
  }
  fp.features_.resize(static_cast<std::size_t>(dim));
  for (FeatureFingerprint& f : fp.features_) {
    P3GM_ASSIGN_OR_RETURN(f.mean, reader->ReadDouble());
    P3GM_ASSIGN_OR_RETURN(f.stddev, reader->ReadDouble());
    P3GM_ASSIGN_OR_RETURN(f.min, reader->ReadDouble());
    P3GM_ASSIGN_OR_RETURN(f.max, reader->ReadDouble());
    P3GM_ASSIGN_OR_RETURN(f.quantiles, reader->ReadDoubles());
    if (f.quantiles.size() != kGridSize) {
      return util::Status::InvalidArgument(
          "fingerprint feature grid size mismatch");
    }
  }
  P3GM_ASSIGN_OR_RETURN(fp.label_probs_, reader->ReadDoubles());
  return fp;
}

bool Fingerprint::operator==(const Fingerprint& other) const {
  if (reference_rows_ != other.reference_rows_ || seed_ != other.seed_ ||
      features_.size() != other.features_.size() ||
      label_probs_ != other.label_probs_) {
    return false;
  }
  for (std::size_t i = 0; i < features_.size(); ++i) {
    const FeatureFingerprint& a = features_[i];
    const FeatureFingerprint& b = other.features_[i];
    if (a.mean != b.mean || a.stddev != b.stddev || a.min != b.min ||
        a.max != b.max || a.quantiles != b.quantiles) {
      return false;
    }
  }
  return true;
}

}  // namespace quality
}  // namespace obs
}  // namespace p3gm
