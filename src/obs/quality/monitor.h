#ifndef P3GM_OBS_QUALITY_MONITOR_H_
#define P3GM_OBS_QUALITY_MONITOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/matrix.h"
#include "obs/quality/fingerprint.h"
#include "obs/quality/sketch.h"

namespace p3gm {
namespace obs {
namespace quality {

struct MonitorOptions {
  /// Fold 1 of every `stride` rows into the sketches (1 = every row).
  /// Row selection uses a global row counter, so a batch of b rows
  /// contributes ~b/stride sampled rows regardless of batch boundaries.
  /// The stride is the ingest-cost lever: folding one row costs a KLL
  /// add per feature (~compaction-sort dominated), so the default
  /// samples 1-in-64 to keep sketch ingest well under the 3%-of-decode
  /// bar that bench_quality asserts; drift at fingerprint-grid
  /// resolution needs a few hundred sampled rows, not every row.
  std::size_t stride = 64;
  /// Per-level capacity of the quantile sketches.
  std::size_t quantile_k = 64;
};

/// Drift of one feature's live marginal against its fingerprint.
struct FeatureDrift {
  /// max over the fingerprint quantile grid x_i of
  /// |F_live(x_i) - F_ref(x_i)| — a grid-resolution KS statistic. F_ref
  /// is estimated from the quantile vector itself (fraction of grid
  /// values <= x_i), which stays correct when the reference
  /// distribution has atoms (e.g. clamped values piling up at 0/1).
  double ks = 0.0;
  /// |mean_live - mean_ref| / max(stddev_ref, 1e-9).
  double mean_z = 0.0;
  /// stddev_live / max(stddev_ref, 1e-12).
  double sigma_ratio = 1.0;
  double live_mean = 0.0;
  double live_stddev = 0.0;
  double ref_mean = 0.0;
  double ref_stddev = 0.0;
};

struct DriftReport {
  bool has_fingerprint = false;
  std::uint64_t rows_seen = 0;      // Rows passed to Observe*.
  std::uint64_t rows_observed = 0;  // Rows folded into sketches.
  std::vector<FeatureDrift> features;
  double worst_ks = 0.0;
  std::size_t worst_feature = 0;
  double mean_z_max = 0.0;
  double label_tv = 0.0;

  /// The scalar alarm signal: worst KS across features, or the label
  /// total-variation if that is larger.
  double drift() const { return worst_ks > label_tv ? worst_ks : label_tv; }
};

/// Streaming quality monitor for one served model. Writers (the batcher
/// worker, or many threads in tests) fold decoded rows into per-thread
/// sketch slots — flight-recorder style, each thread owns a slot keyed
/// by a process-wide thread index, so concurrent writers never contend
/// with each other; a slot's mutex is only ever contested by the rare
/// scrape that merges all slots into a snapshot. Memory is bounded:
/// at most kMaxSlots slots, each O(feature_dim * quantile_k * log n).
class QualityMonitor {
 public:
  static constexpr std::size_t kMaxSlots = 64;

  /// `fingerprint` may be null: the monitor still accumulates sketches
  /// (rows_observed, live marginals) but Score() reports
  /// has_fingerprint = false and zero drift.
  QualityMonitor(std::shared_ptr<const Fingerprint> fingerprint,
                 std::size_t feature_dim, std::size_t num_classes,
                 MonitorOptions options = {});
  ~QualityMonitor();

  QualityMonitor(const QualityMonitor&) = delete;
  QualityMonitor& operator=(const QualityMonitor&) = delete;

  /// Serve hot path: folds a decoded output matrix (feature columns
  /// followed by a one-hot label block when num_classes > 0, the exact
  /// shape ReleasePackage::DecodeLatentInto produces). Applies stride
  /// subsampling. Ignores matrices whose width does not match.
  void ObserveDecoded(const linalg::Matrix& outputs);

  /// Offline path (`p3gm quality --score`): folds every row of an
  /// already-split dataset, no subsampling.
  void ObserveDataset(const linalg::Matrix& features,
                      const std::vector<std::size_t>& labels);

  /// Merges all slots and scores the merged sketches against the
  /// fingerprint. Safe to call concurrently with writers.
  DriftReport Score() const;

  std::uint64_t rows_seen() const {
    return rows_seen_.load(std::memory_order_relaxed);
  }

  /// Current footprint of all slot sketches, for the bookkeeping gauge.
  std::size_t MemoryBytes() const;

  const Fingerprint* fingerprint() const { return fingerprint_.get(); }
  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t num_classes() const { return num_classes_; }
  const MonitorOptions& options() const { return options_; }

 private:
  struct SketchSet {
    std::vector<QuantileSketch> quantiles;
    std::vector<MomentsSketch> moments;
    CategoricalSketch labels;
    std::uint64_t rows = 0;
  };
  struct Slot {
    mutable std::mutex mu;
    SketchSet set;
  };

  Slot* LocalSlot();
  SketchSet NewSketchSet() const;
  SketchSet MergedSnapshot() const;
  /// Folds one decoded row (features + optional one-hot block).
  static void FoldDecodedRow(SketchSet* set, const double* row,
                             std::size_t feature_dim,
                             std::size_t num_classes);

  std::shared_ptr<const Fingerprint> fingerprint_;
  std::size_t feature_dim_;
  std::size_t num_classes_;
  MonitorOptions options_;
  std::atomic<std::uint64_t> rows_seen_{0};
  std::atomic<Slot*> slots_[kMaxSlots];
};

}  // namespace quality
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_QUALITY_MONITOR_H_
