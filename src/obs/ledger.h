#ifndef P3GM_OBS_LEDGER_H_
#define P3GM_OBS_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observability.h"

namespace p3gm {
namespace obs {

/// Privacy-budget ledger: an append-only record of every differentially
/// private mechanism invocation composed during a run, making the
/// composition trajectory (paper Fig. 6) observable from any run.
///
/// The ledger itself is a passive sink; entries are produced by
/// dp::RdpAccountant when its ledger hook is enabled (see
/// RdpAccountant::set_ledger_enabled). Each entry carries the mechanism
/// identity and parameters, the per-order RDP cost of the invocation
/// batch, and the *recording accountant's* cumulative (epsilon, delta)
/// guarantee after the entry — so interleaved runs (distinguished by
/// `run`) each trace their own monotone epsilon curve.

struct LedgerEntry {
  /// Mechanism identity: "wishart", "dp_em_gaussian", "sampled_gaussian",
  /// "gaussian", "pure_dp", or "rdp" for raw per-order costs.
  std::string mechanism;
  /// Training phase attribution from the innermost PhaseScope
  /// ("dp_pca", "dp_em", "dp_sgd"; empty outside any scope).
  std::string phase;
  /// Id of the recording accountant (one per training run).
  std::uint64_t run = 0;
  /// Invocations composed by this entry (e.g. DP-SGD steps).
  std::size_t count = 1;
  /// Noise multiplier, 0 when not applicable.
  double sigma = 0.0;
  /// Poisson sampling rate of the subsampled Gaussian, 0 otherwise.
  double sampling_rate = 0.0;
  /// Pure-DP epsilon for (eps, 0)-DP mechanisms, 0 otherwise.
  double pure_eps = 0.0;
  /// RDP order grid and this entry's total per-order cost (count
  /// invocations).
  std::vector<double> rdp_orders;
  std::vector<double> rdp_cost;
  /// Cumulative guarantee of the recording accountant after this entry,
  /// evaluated at `delta`.
  double cumulative_epsilon = 0.0;
  double best_order = 0.0;
  double delta = 0.0;
};

class PrivacyLedger {
 public:
  /// The process-wide ledger (never destroyed).
  static PrivacyLedger& Global();

  /// The delta at which recording accountants evaluate cumulative
  /// epsilon. Defaults to 1e-5 (the paper's setting).
  void SetDelta(double delta);
  double delta() const;

  void Record(LedgerEntry entry);

  std::vector<LedgerEntry> Entries() const;
  std::size_t size() const;

  /// Cumulative epsilon of the most recent entry (0 when empty). With a
  /// single recording run this is the run's total spend.
  double CumulativeEpsilon() const;

  void Clear();

  /// Export: CSV is one row per entry (without the order curve); JSON
  /// includes the full per-order RDP curve.
  std::string ToCsv() const;
  std::string ToJson() const;
  bool WriteCsv(const std::string& path) const;
  bool WriteJson(const std::string& path) const;

 private:
  PrivacyLedger() = default;

  mutable std::mutex mutex_;
  std::vector<LedgerEntry> entries_;
  double delta_ = 1e-5;
};

/// RAII phase attribution for ledger entries and trace readability:
/// entries recorded while a PhaseScope is alive on the current thread
/// carry its name. Nests; inner scope wins.
class PhaseScope {
 public:
  explicit PhaseScope(const char* phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// The innermost active phase on this thread ("" when none).
  static const char* Current();

 private:
  const char* previous_;
};

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_LEDGER_H_
