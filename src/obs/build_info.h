#ifndef P3GM_OBS_BUILD_INFO_H_
#define P3GM_OBS_BUILD_INFO_H_

#include <string>

namespace p3gm {
namespace obs {

/// Build provenance burned in at compile time (the same configure-time
/// values the bench harness stamps into BENCH_*.json _runinfo).
struct BuildInfo {
  std::string version;     // Project version (CMake PROJECT_VERSION).
  std::string git_sha;     // Short sha at configure time, or "unknown".
  std::string build_type;  // CMAKE_BUILD_TYPE.
  std::string flags;       // Effective CXX flags.
};

const BuildInfo& GetBuildInfo();

/// Registers the Prometheus info-style gauge
/// `p3gm_build_info{version,git_sha,build_type,flags} 1` in the global
/// registry, so every scrape self-describes the binary that produced
/// it. Idempotent; a no-op when observability is disabled.
void RegisterBuildInfoGauge();

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_BUILD_INFO_H_
