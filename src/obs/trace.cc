#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace p3gm {
namespace obs {

namespace {

// Owned by the recorder; the thread-local pointer stays valid after the
// owning thread exits (its events survive into the export, which matters
// for short-lived thread-pool workers).
thread_local void* t_buffer = nullptr;

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose, like Registry::Global: per-thread buffers must
  // outlive any late-exiting instrumented thread.
  static TraceRecorder* global = new TraceRecorder();
  return *global;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    t_buffer = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return static_cast<ThreadBuffer*>(t_buffer);
}

void TraceRecorder::Append(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns) {
  Append(name, start_ns, end_ns, TraceContext{});
}

void TraceRecorder::Append(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns, const TraceContext& ctx) {
  ThreadBuffer* buffer = BufferForThisThread();
  const std::size_t capacity =
      capacity_per_thread_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (buffer->events.size() >= capacity) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back({name, start_ns, end_ns, buffer->tid,
                            ctx.trace_hi, ctx.trace_lo, ctx.span_id,
                            ctx.parent_span_id});
}

const char* TraceRecorder::InternName(const std::string& name) {
  std::lock_guard<std::mutex> lock(intern_mutex_);
  return interned_names_.insert(name).first->c_str();
}

std::vector<TraceRecorder::Event> TraceRecorder::Events() const {
  std::vector<Event> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.tid != b.tid ? a.tid < b.tid
                                           : a.start_ns < b.start_ns;
                   });
  return out;
}

std::size_t TraceRecorder::EventCount() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::uint64_t TraceRecorder::DroppedCount() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

void TraceRecorder::SetCapacityPerThread(std::size_t capacity) {
  capacity_per_thread_.store(capacity, std::memory_order_relaxed);
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<Event> events = Events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[320];
  for (const Event& e : events) {
    // Span names are string literals (or interned) by contract, but
    // harden the export anyway: a quote or backslash in a name must not
    // corrupt the JSON.
    const std::string name = json::Escape(e.name);
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"name\": \"%s\", \"cat\": \"p3gm\", "
                  "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f",
                  first ? "" : ",", name.c_str(), e.tid,
                  static_cast<double>(e.start_ns) * 1e-3,
                  static_cast<double>(e.end_ns - e.start_ns) * 1e-3);
    out += buf;
    if (e.has_context()) {
      TraceContext ctx;
      ctx.trace_hi = e.trace_hi;
      ctx.trace_lo = e.trace_lo;
      std::snprintf(buf, sizeof buf,
                    ", \"args\": {\"trace_id\": \"%s\", \"span_id\": "
                    "\"%s\", \"parent_id\": \"%s\"}",
                    TraceIdHex(ctx).c_str(), SpanIdHex(e.span_id).c_str(),
                    SpanIdHex(e.parent_id).c_str());
      out += buf;
    }
    out += '}';
    first = false;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToChromeJson();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace p3gm
