#include "obs/prometheus.h"

#include <cstdio>
#include <map>

namespace p3gm {
namespace obs {

namespace {

// Registry names carry labels inline as `base{k="v",...}` (the
// LabeledName convention). Splits off the label block, brace-less;
// returns an empty label string for plain names.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string FormatBound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// "name" or "name{labels}" with an optional extra label appended.
std::string SeriesRef(const std::string& base, const std::string& labels,
                      const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return base;
  std::string out = base;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

// Groups samples of one kind by sanitized base name so each base gets
// exactly one # TYPE line even when label variants interleave with
// other names in the snapshot's flat sort order.
template <typename Sample>
std::map<std::string, std::vector<std::pair<std::string, const Sample*>>>
GroupByBase(const std::vector<Sample>& samples) {
  std::map<std::string, std::vector<std::pair<std::string, const Sample*>>>
      groups;
  for (const Sample& sample : samples) {
    std::string base, labels;
    SplitName(sample.name, &base, &labels);
    groups[SanitizeMetricName(base)].emplace_back(labels, &sample);
  }
  return groups;
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return base;
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ',';
    out += kv.first;
    out += "=\"";
    out += EscapeLabelValue(kv.second);
    out += '"';
    first = false;
  }
  out += '}';
  return out;
}

std::string ToPrometheusText(const Snapshot& snapshot) {
  std::string out;
  char buf[64];

  for (const auto& group : GroupByBase(snapshot.counters)) {
    out += "# TYPE " + group.first + " counter\n";
    for (const auto& entry : group.second) {
      std::snprintf(buf, sizeof buf, " %llu\n",
                    static_cast<unsigned long long>(entry.second->value));
      out += SeriesRef(group.first, entry.first);
      out += buf;
    }
  }

  for (const auto& group : GroupByBase(snapshot.gauges)) {
    out += "# TYPE " + group.first + " gauge\n";
    for (const auto& entry : group.second) {
      out += SeriesRef(group.first, entry.first);
      out += ' ';
      out += FormatDouble(entry.second->value);
      out += '\n';
    }
  }

  for (const auto& group : GroupByBase(snapshot.histograms)) {
    out += "# TYPE " + group.first + " histogram\n";
    for (const auto& entry : group.second) {
      const HistogramSample& h = *entry.second;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        if (i < h.bucket_counts.size()) cumulative += h.bucket_counts[i];
        out += SeriesRef(group.first + "_bucket", entry.first,
                         "le=\"" + FormatBound(h.bounds[i]) + "\"");
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(cumulative));
        out += buf;
      }
      // The +Inf bucket equals the total count by definition (it also
      // absorbs the implicit overflow bucket).
      out += SeriesRef(group.first + "_bucket", entry.first,
                       "le=\"+Inf\"");
      std::snprintf(buf, sizeof buf, " %llu\n",
                    static_cast<unsigned long long>(h.count));
      out += buf;
      out += SeriesRef(group.first + "_sum", entry.first);
      out += ' ';
      out += FormatDouble(h.sum);
      out += '\n';
      out += SeriesRef(group.first + "_count", entry.first);
      std::snprintf(buf, sizeof buf, " %llu\n",
                    static_cast<unsigned long long>(h.count));
      out += buf;
    }
  }
  return out;
}

const char* PrometheusContentType() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace obs
}  // namespace p3gm
