#include "obs/trace_context.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace p3gm {
namespace obs {

namespace {

// Id entropy is deliberately NOT util::Rng: trace ids must never consume
// model randomness. A per-thread splitmix64 stream seeded from the
// clock, a process-wide counter and the thread id gives unique,
// unpredictable-enough ids with one add + a few shifts per draw.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t ThreadSeed() {
  static std::atomic<std::uint64_t> counter{0x9e3779b97f4a7c15ULL};
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto wall = std::chrono::system_clock::now().time_since_epoch();
  std::uint64_t seed = counter.fetch_add(0xd1b54a32d192ed03ULL,
                                         std::memory_order_relaxed);
  seed ^= static_cast<std::uint64_t>(now.count());
  seed ^= static_cast<std::uint64_t>(wall.count()) << 17;
  seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
  return seed;
}

std::uint64_t NextId() {
  thread_local std::uint64_t state = ThreadSeed();
  std::uint64_t id;
  do {
    id = SplitMix64(&state);
  } while (id == 0);  // Zero means "absent" on the wire.
  return id;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;  // Uppercase is invalid in traceparent per the W3C spec.
}

// Parses exactly `digits` lowercase hex chars; false on any bad byte.
bool ParseHex(const char* s, int digits, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int i = 0; i < digits; ++i) {
    const int nibble = HexNibble(s[i]);
    if (nibble < 0) return false;
    v = (v << 4) | static_cast<std::uint64_t>(nibble);
  }
  *out = v;
  return true;
}

void AppendHex(std::string* out, std::uint64_t v, int digits) {
  static const char* kHex = "0123456789abcdef";
  for (int i = digits - 1; i >= 0; --i) {
    out->push_back(kHex[(v >> (4 * i)) & 0xf]);
  }
}

thread_local TraceContext t_current;

}  // namespace

TraceContext MakeRootContext() {
  TraceContext ctx;
  ctx.trace_hi = NextId();
  ctx.trace_lo = NextId();
  ctx.span_id = NextId();
  ctx.parent_span_id = 0;
  return ctx;
}

TraceContext ChildOf(const TraceContext& parent) {
  if (!parent.valid()) return MakeRootContext();
  TraceContext ctx;
  ctx.trace_hi = parent.trace_hi;
  ctx.trace_lo = parent.trace_lo;
  ctx.span_id = NextId();
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

std::uint64_t NextSpanId() { return NextId(); }

bool ParseTraceparent(const std::string& header, TraceContext* out) {
  // 00-<32 hex trace id>-<16 hex parent id>-<2 hex flags>[-...].
  // Version ff is forbidden; any other version is accepted as long as
  // the 00-prefix layout holds (future versions may only append fields).
  if (header.size() < 55) return false;
  if (header.size() > 55 && header[55] != '-') return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return false;
  }
  std::uint64_t version = 0, hi = 0, lo = 0, parent = 0, flags = 0;
  if (!ParseHex(header.data(), 2, &version) || version == 0xff) {
    return false;
  }
  if (!ParseHex(header.data() + 3, 16, &hi) ||
      !ParseHex(header.data() + 19, 16, &lo) ||
      !ParseHex(header.data() + 36, 16, &parent) ||
      !ParseHex(header.data() + 53, 2, &flags)) {
    return false;
  }
  if ((hi | lo) == 0 || parent == 0) return false;  // All-zero = invalid.
  out->trace_hi = hi;
  out->trace_lo = lo;
  out->span_id = NextId();  // Our own span within the remote trace.
  out->parent_span_id = parent;
  return true;
}

std::string FormatTraceparent(const TraceContext& ctx) {
  std::string out;
  out.reserve(55);
  out += "00-";
  AppendHex(&out, ctx.trace_hi, 16);
  AppendHex(&out, ctx.trace_lo, 16);
  out += '-';
  AppendHex(&out, ctx.span_id, 16);
  out += "-01";
  return out;
}

std::string TraceIdHex(const TraceContext& ctx) {
  std::string out;
  out.reserve(32);
  AppendHex(&out, ctx.trace_hi, 16);
  AppendHex(&out, ctx.trace_lo, 16);
  return out;
}

std::string SpanIdHex(std::uint64_t span_id) {
  std::string out;
  out.reserve(16);
  AppendHex(&out, span_id, 16);
  return out;
}

const TraceContext& CurrentContext() { return t_current; }

RequestScope::RequestScope(const TraceContext& ctx) : saved_(t_current) {
  t_current = ctx;
}

RequestScope::~RequestScope() { t_current = saved_; }

}  // namespace obs
}  // namespace p3gm
