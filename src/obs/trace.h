#ifndef P3GM_OBS_TRACE_H_
#define P3GM_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/observability.h"
#include "obs/trace_context.h"

namespace p3gm {
namespace obs {

/// Scoped trace spans exported in the chrome://tracing / Perfetto JSON
/// format. Instrument a region with the RAII macro:
///
///   void Matmul(...) {
///     P3GM_TRACE_SPAN("linalg.gemm");
///     ...
///   }
///
/// Each span records (name, begin, end, thread) into a per-thread buffer:
/// no cross-thread synchronization on the hot path beyond one relaxed
/// atomic load (the enabled flag) and one uncontended per-thread mutex
/// lock at span end. Span names must be string literals (or otherwise
/// outlive the recorder) — they are stored by pointer, not copied.
/// Nested spans nest naturally in the viewer ("X" complete events).
///
/// With P3GM_OBSERVABILITY=OFF the macro expands to nothing; with the
/// runtime flag off a span costs one atomic load and records nothing.

class TraceRecorder {
 public:
  struct Event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t end_ns;
    std::uint32_t tid;  // Stable per-thread display index.
    // Request attribution (all zero for spans outside a request scope):
    // the owning trace id, this span's id, and its parent span id —
    // exported as chrome-JSON "args" so a batched decode span links back
    // to every coalesced request in the Perfetto view.
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;

    bool has_context() const { return (trace_hi | trace_lo) != 0; }
  };

  /// The process-wide recorder (never destroyed).
  static TraceRecorder& Global();

  /// Appends one completed span for the calling thread. Drops (and
  /// counts) events beyond the per-thread capacity.
  void Append(const char* name, std::uint64_t start_ns,
              std::uint64_t end_ns);

  /// As above, stamped with an explicit trace context: the span records
  /// ctx's trace id and span id, and parent_id = ctx.parent_span_id.
  void Append(const char* name, std::uint64_t start_ns,
              std::uint64_t end_ns, const TraceContext& ctx);

  /// Interns a dynamic span name (e.g. "serve.decode:alpha") so it can
  /// be stored by pointer like a literal. Idempotent per distinct string;
  /// interned names live for the process lifetime.
  const char* InternName(const std::string& name);

  /// Copies out every buffered event, ordered by (tid, start).
  std::vector<Event> Events() const;

  std::size_t EventCount() const;
  std::uint64_t DroppedCount() const;

  /// Discards buffered events (buffers and registered threads persist).
  void Clear();

  /// Per-thread event cap; guards against unbounded growth on long runs.
  void SetCapacityPerThread(std::size_t capacity);

  /// Serializes to the chrome://tracing "traceEvents" JSON format
  /// (load in chrome://tracing or https://ui.perfetto.dev). Timestamps
  /// are microseconds on the shared obs::NowNs timebase.
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
  };

  TraceRecorder() = default;
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mutex_;  // Guards the buffer list, not the buffers.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::size_t> capacity_per_thread_{1 << 20};

  // Interned dynamic span names; unordered_set node storage keeps the
  // c_str() pointers stable across rehash, and entries are never erased.
  std::mutex intern_mutex_;
  std::unordered_set<std::string> interned_names_;
};

/// RAII span; prefer the P3GM_TRACE_SPAN macro. Spans opened inside a
/// RequestScope inherit the scope's trace context automatically, so
/// existing instrumentation gains request attribution for free.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Enabled()) {
      name_ = name;
      ctx_ = CurrentContext();
      start_ns_ = NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Append(name_, start_ns_, NowNs(), ctx_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  TraceContext ctx_;
};

}  // namespace obs
}  // namespace p3gm

#define P3GM_OBS_CONCAT_INNER(a, b) a##b
#define P3GM_OBS_CONCAT(a, b) P3GM_OBS_CONCAT_INNER(a, b)

#if P3GM_OBSERVABILITY_ENABLED
#define P3GM_TRACE_SPAN(name) \
  ::p3gm::obs::TraceSpan P3GM_OBS_CONCAT(p3gm_trace_span_, __LINE__)(name)
#else
#define P3GM_TRACE_SPAN(name) \
  do {                        \
  } while (0)
#endif

#endif  // P3GM_OBS_TRACE_H_
