#ifndef P3GM_OBS_BENCH_STATS_H_
#define P3GM_OBS_BENCH_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace p3gm {
namespace obs {
namespace bench {

/// Robust summary statistics for benchmark timing samples. Medians and
/// MAD rather than mean/stddev because timing noise is one-sided (a
/// descheduled rep only ever adds time); bootstrap confidence intervals
/// because the sample counts are small and nothing here is normal.
/// Everything is deterministic: the bootstrap uses a seeded splitmix64
/// stream, never the global RNG.

/// Median of `v` (averaged middle pair for even sizes). NaN when empty.
double Median(std::vector<double> v);

/// Median absolute deviation around `center`. NaN when empty.
double Mad(const std::vector<double>& v, double center);

/// Drops samples with |x - median| > k * 1.4826 * MAD (the
/// normal-consistent MAD scale). With MAD == 0 (constant samples, or
/// n < 3) nothing is dropped. Returns the kept samples in input order.
std::vector<double> RejectOutliers(const std::vector<double>& v, double k);

struct Ci {
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap confidence interval for the median: `reps`
/// resamples with replacement, interval between the (1-conf)/2 and
/// 1-(1-conf)/2 empirical quantiles. Degenerates to [x, x] for n == 1.
Ci BootstrapMedianCi(const std::vector<double>& v, int reps, double conf,
                     std::uint64_t seed);

/// Per-benchmark summary, as serialized into BENCH_*.json.
struct SampleStats {
  std::size_t n = 0;         // Samples summarized (after rejection).
  std::size_t rejected = 0;  // Outliers dropped before summarizing.
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;
  double ci95_lo = 0.0;
  double ci95_hi = 0.0;
};

/// Outlier rejection (optional) followed by the full summary. Empty
/// input returns a zero struct with n == 0.
SampleStats Summarize(const std::vector<double>& samples,
                      bool reject_outliers = true,
                      std::uint64_t bootstrap_seed = 42,
                      int bootstrap_reps = 2000);

}  // namespace bench
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_BENCH_STATS_H_
