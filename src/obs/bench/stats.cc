#include "obs/bench/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace p3gm {
namespace obs {
namespace bench {

namespace {

// splitmix64: tiny, seedable, and good enough for bootstrap index draws.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double MedianOfSorted(const std::vector<double>& v) {
  const std::size_t n = v.size();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return MedianOfSorted(v);
}

double Mad(const std::vector<double>& v, double center) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::fabs(x - center));
  return Median(std::move(dev));
}

std::vector<double> RejectOutliers(const std::vector<double>& v, double k) {
  if (v.size() < 3) return v;
  const double med = Median(v);
  const double scaled_mad = 1.4826 * Mad(v, med);
  if (scaled_mad <= 0.0) return v;
  std::vector<double> kept;
  kept.reserve(v.size());
  for (double x : v) {
    if (std::fabs(x - med) <= k * scaled_mad) kept.push_back(x);
  }
  return kept;
}

Ci BootstrapMedianCi(const std::vector<double>& v, int reps, double conf,
                     std::uint64_t seed) {
  Ci ci;
  const std::size_t n = v.size();
  if (n == 0) return ci;
  if (n == 1) {
    ci.lo = ci.hi = v[0];
    return ci;
  }
  std::uint64_t state = seed;
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(reps));
  std::vector<double> resample(n);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = v[SplitMix64(&state) % n];
    }
    medians.push_back(Median(resample));
  }
  std::sort(medians.begin(), medians.end());
  const double tail = 0.5 * (1.0 - conf);
  const auto rank = [&](double q) {
    const double pos = q * static_cast<double>(medians.size() - 1);
    return medians[static_cast<std::size_t>(pos + 0.5)];
  };
  ci.lo = rank(tail);
  ci.hi = rank(1.0 - tail);
  return ci;
}

SampleStats Summarize(const std::vector<double>& samples,
                      bool reject_outliers, std::uint64_t bootstrap_seed,
                      int bootstrap_reps) {
  SampleStats stats;
  if (samples.empty()) return stats;
  const std::vector<double> kept =
      reject_outliers ? RejectOutliers(samples, 5.0) : samples;
  stats.n = kept.size();
  stats.rejected = samples.size() - kept.size();
  stats.min = *std::min_element(kept.begin(), kept.end());
  stats.max = *std::max_element(kept.begin(), kept.end());
  double sum = 0.0;
  for (double x : kept) sum += x;
  stats.mean = sum / static_cast<double>(kept.size());
  stats.median = Median(kept);
  stats.mad = Mad(kept, stats.median);
  const Ci ci =
      BootstrapMedianCi(kept, bootstrap_reps, 0.95, bootstrap_seed);
  stats.ci95_lo = ci.lo;
  stats.ci95_hi = ci.hi;
  return stats;
}

}  // namespace bench
}  // namespace obs
}  // namespace p3gm
