#include "obs/bench/compare.h"

#include <cmath>
#include <cstdio>

namespace p3gm {
namespace obs {
namespace bench {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kSame:
      return "same";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kRegressed:
      return "REGRESSED";
    case Verdict::kMissing:
      return "missing";
    case Verdict::kNew:
      return "new";
  }
  return "?";
}

Comparison CompareEntry(const BenchResult& base, const BenchResult& cand,
                        const CompareOptions& options, double drift) {
  Comparison c;
  c.name = base.name;
  c.base_median = base.stats.median;
  c.cand_median = cand.stats.median;
  c.ratio = base.stats.median > 0.0 ? cand.stats.median / base.stats.median
                                    : 0.0;
  c.drift = drift;
  // Judge the drift-normalized candidate: the common machine-speed
  // factor is divided out of both the median and its CI before either
  // leg fires.
  const double norm_median = cand.stats.median / drift;
  const double norm_ci_lo = cand.stats.ci95_lo / drift;
  const double norm_ci_hi = cand.stats.ci95_hi / drift;
  const double slack = 1.0 + options.min_rel_regress;
  const bool slower_beyond_slack = norm_median > base.stats.median * slack;
  const bool ci_disjoint_slow = norm_ci_lo > base.stats.ci95_hi;
  const bool faster_beyond_slack = norm_median * slack < base.stats.median;
  const bool ci_disjoint_fast = norm_ci_hi < base.stats.ci95_lo;
  if (slower_beyond_slack && ci_disjoint_slow) {
    c.verdict = Verdict::kRegressed;
  } else if (faster_beyond_slack && ci_disjoint_fast) {
    c.verdict = Verdict::kImproved;
  } else {
    c.verdict = Verdict::kSame;
  }
  return c;
}

double DriftFactor(const BenchFileData& base, const BenchFileData& cand) {
  double log_sum = 0.0;
  int shared = 0;
  for (const BenchResult& b : base.benchmarks) {
    const BenchResult* c = cand.Find(b.name);
    if (c == nullptr || b.stats.median <= 0.0 || c->stats.median <= 0.0) {
      continue;
    }
    log_sum += std::log(c->stats.median / b.stats.median);
    ++shared;
  }
  // One shared benchmark cannot be told apart from the machine; leave
  // it un-normalized so a genuine single-bench regression still gates.
  if (shared < 2) return 1.0;
  return std::exp(log_sum / static_cast<double>(shared));
}

std::vector<Comparison> CompareFiles(const BenchFileData& base,
                                     const BenchFileData& cand,
                                     const CompareOptions& options) {
  const double drift =
      options.normalize_drift ? DriftFactor(base, cand) : 1.0;
  std::vector<Comparison> out;
  for (const BenchResult& b : base.benchmarks) {
    const BenchResult* c = cand.Find(b.name);
    if (c == nullptr) {
      Comparison missing;
      missing.name = b.name;
      missing.verdict = Verdict::kMissing;
      missing.base_median = b.stats.median;
      missing.drift = drift;
      out.push_back(missing);
      continue;
    }
    out.push_back(CompareEntry(b, *c, options, drift));
  }
  for (const BenchResult& c : cand.benchmarks) {
    if (base.Find(c.name) != nullptr) continue;
    Comparison fresh;
    fresh.name = c.name;
    fresh.verdict = Verdict::kNew;
    fresh.cand_median = c.stats.median;
    fresh.drift = drift;
    out.push_back(fresh);
  }
  return out;
}

bool GateFails(const std::vector<Comparison>& comparisons,
               const CompareOptions& options) {
  for (const Comparison& c : comparisons) {
    if (c.verdict == Verdict::kRegressed) return true;
    if (options.fail_on_missing && c.verdict == Verdict::kMissing) {
      return true;
    }
  }
  return false;
}

std::string FormatReport(const std::vector<Comparison>& comparisons,
                         const BenchFileData& base,
                         const BenchFileData& cand) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "baseline: %s (%s, %d threads)\ncandidate: %s (%s, %d "
                "threads)\n",
                base.runinfo.git_sha.c_str(),
                base.runinfo.cpu_model.c_str(), base.runinfo.threads,
                cand.runinfo.git_sha.c_str(),
                cand.runinfo.cpu_model.c_str(), cand.runinfo.threads);
  out += buf;
  if (base.runinfo.cpu_model != cand.runinfo.cpu_model) {
    out += "WARNING: different CPU models — medians are not directly "
           "comparable\n";
  }
  const double drift = comparisons.empty() ? 1.0 : comparisons[0].drift;
  if (drift != 1.0) {
    std::snprintf(buf, sizeof buf,
                  "machine drift factor %.3f divided out of candidate "
                  "medians (uniform suite-wide slowdowns beyond this are "
                  "not gated)\n",
                  drift);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%-40s %12s %12s %8s  %s\n", "benchmark",
                "base_median", "cand_median", "ratio", "verdict");
  out += buf;
  for (const Comparison& c : comparisons) {
    if (c.verdict == Verdict::kMissing) {
      std::snprintf(buf, sizeof buf, "%-40s %12.6f %12s %8s  %s\n",
                    c.name.c_str(), c.base_median, "-", "-",
                    VerdictName(c.verdict));
    } else if (c.verdict == Verdict::kNew) {
      std::snprintf(buf, sizeof buf, "%-40s %12s %12.6f %8s  %s\n",
                    c.name.c_str(), "-", c.cand_median, "-",
                    VerdictName(c.verdict));
    } else {
      std::snprintf(buf, sizeof buf, "%-40s %12.6f %12.6f %8.3f  %s\n",
                    c.name.c_str(), c.base_median, c.cand_median, c.ratio,
                    VerdictName(c.verdict));
    }
    out += buf;
  }
  return out;
}

}  // namespace bench
}  // namespace obs
}  // namespace p3gm
