#ifndef P3GM_OBS_BENCH_HARNESS_H_
#define P3GM_OBS_BENCH_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/bench/stats.h"
#include "obs/perf/alloc.h"
#include "obs/perf/counters.h"

namespace p3gm {
namespace obs {
namespace bench {

/// Statistical bench harness: warmup + repeated measurement with robust
/// summary statistics, hardware-counter and allocation attribution, and
/// a versioned JSON trajectory file (BENCH_<name>.json) that
/// tools/bench_compare diffs across commits. Two usage modes share one
/// schema:
///
///  * Closure mode — `suite.Run("gemm.256", fn)` runs warmup + reps of
///    `fn`, each rep individually timed and counter-sampled.
///  * Recording mode — `suite.RecordSample("privbayes", secs, &counters)`
///    appends one externally timed sample (the paper-table benches,
///    where a "rep" is minutes of training and sections are timed by
///    bench::Section).
///
/// The suite is single-threaded by design: one driver thread measures,
/// the measured code may be internally parallel.

constexpr const char* kBenchSchemaVersion = "p3gm-bench-v1";

struct BenchOptions {
  int warmup = 1;
  int reps = 5;
  bool reject_outliers = true;
  std::uint64_t bootstrap_seed = 42;
  int bootstrap_reps = 2000;

  /// Defaults overridden by P3GM_BENCH_REPS / P3GM_BENCH_WARMUP
  /// (non-negative integers; invalid values are ignored).
  static BenchOptions FromEnv();
};

struct BenchResult {
  std::string name;
  std::vector<double> samples_seconds;  // One entry per measured rep.
  SampleStats stats;
  perf::PerfSample counters;  // Accumulated over measured reps.
  perf::AllocStats alloc;     // Accumulated over measured reps.
};

/// Provenance block serialized as "_runinfo" — the same sentinel the CSV
/// provenance rows use. git sha / build type / flags are burned in at
/// configure time; cpu model is read from /proc/cpuinfo; threads and
/// wall_seconds are caller-set (the obs layer cannot depend on
/// util::NumThreads without a cycle).
struct RunInfo {
  std::string suite;
  std::string schema = kBenchSchemaVersion;
  std::string git_sha;
  std::string cpu_model;
  std::string build_type;
  std::string cxx_flags;
  int threads = 0;
  double wall_seconds = 0.0;
  bool hw_counters = false;
  bool alloc_tracking = false;
};

/// Fills the compile-time and probed fields for suite `name`.
RunInfo CollectRunInfo(const std::string& name);

class BenchSuite {
 public:
  explicit BenchSuite(std::string name);

  /// Closure mode: warmup + reps of `fn`; returns the finished entry.
  const BenchResult& Run(const std::string& bench_name,
                         const std::function<void()>& fn,
                         BenchOptions options = BenchOptions::FromEnv());

  /// Closure mode over a whole suite, sampled in interleaved rounds:
  /// after a warmup pass, round r measures every benchmark once before
  /// any benchmark gets rep r+1. Each benchmark's samples therefore span
  /// the full suite wall-window instead of one tight burst, so slow
  /// phases of a noisy (shared/container) machine hit all benchmarks
  /// alike — which is what lets a comparator cancel machine drift as a
  /// common factor. Prefer this over per-bench Run() loops whenever all
  /// closures are known upfront.
  struct NamedBench {
    std::string name;
    std::function<void()> fn;
  };
  void RunInterleaved(const std::vector<NamedBench>& benches,
                      BenchOptions options = BenchOptions::FromEnv());

  /// Recording mode: appends one externally timed sample (creating the
  /// entry on first use; stats are recomputed at export).
  void RecordSample(const std::string& bench_name, double seconds,
                    const perf::PerfSample* counters = nullptr,
                    const perf::AllocStats* alloc = nullptr);

  RunInfo& runinfo() { return runinfo_; }
  const std::vector<BenchResult>& results() const { return results_; }
  bool empty() const { return results_.empty(); }

  /// The full BENCH_*.json document (schema above; see
  /// docs/observability.md for the field reference).
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  BenchResult* FindOrCreate(const std::string& bench_name);

  RunInfo runinfo_;
  std::vector<BenchResult> results_;  // Insertion order.
  BenchOptions stats_options_;        // Stats knobs for recorded samples.
};

/// Loaded-back view of a BENCH_*.json file, for comparison tooling.
struct BenchFileData {
  RunInfo runinfo;
  std::vector<BenchResult> benchmarks;  // counters/alloc left empty.

  const BenchResult* Find(const std::string& name) const;
};

/// Parses a BENCH_*.json document / file. Returns false with a message
/// in `*error` on malformed input or a schema-version mismatch.
bool ParseBenchJson(const std::string& text, BenchFileData* out,
                    std::string* error);
bool LoadBenchFile(const std::string& path, BenchFileData* out,
                   std::string* error);

}  // namespace bench
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_BENCH_HARNESS_H_
