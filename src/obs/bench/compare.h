#ifndef P3GM_OBS_BENCH_COMPARE_H_
#define P3GM_OBS_BENCH_COMPARE_H_

#include <string>
#include <vector>

#include "obs/bench/harness.h"

namespace p3gm {
namespace obs {
namespace bench {

/// Perf-regression gate between two BENCH_*.json files (baseline vs
/// candidate). A benchmark counts as REGRESSED only when both hold:
///
///   1. the candidate median exceeds the baseline median by more than
///      `min_rel_regress` (relative slack for between-run machine
///      drift), and
///   2. the pooled 95% confidence intervals are disjoint in the slow
///      direction (cand.ci95_lo > base.ci95_hi) — a shift that bootstrap
///      noise cannot explain.
///
/// Both legs are needed: leg 2 alone flags microsecond-tight kernels
/// whose CIs are razor thin; leg 1 alone flags noise on jittery
/// machines. Improvements use the mirrored rule and are reported but
/// never fail the gate.

struct CompareOptions {
  // Slack on the drift-normalized median ratio. Sized to the residual
  // between-run noise left after drift normalization (below), which the
  // bootstrap CI cannot see (it only resamples within one run). The
  // default passes same-machine reruns on a noisy shared builder while
  // still catching a 2x regression outright; tighten with --max-regress
  // on quiet bare metal.
  double min_rel_regress = 0.35;
  bool fail_on_missing = false;  // Baseline benchmark absent from cand.
  // Cancel uniform machine drift before judging: divide every candidate
  // median (and CI) by the geometric mean of the cand/base median
  // ratios over the shared benchmarks. On shared/container builders the
  // whole suite runs 1.3-1.7x slower in some phases (host contention) —
  // a common factor that would otherwise swamp any per-benchmark rule.
  // Blind spot, by construction: a change that slows *every* benchmark
  // by the same factor is indistinguishable from machine drift and is
  // reported (as the drift factor) but not gated.
  bool normalize_drift = true;
};

enum class Verdict {
  kSame,       // Neither rule fired.
  kImproved,   // Mirrored rule fired in the fast direction.
  kRegressed,  // Both regression legs fired.
  kMissing,    // In baseline only.
  kNew,        // In candidate only.
};

const char* VerdictName(Verdict v);

struct Comparison {
  std::string name;
  Verdict verdict = Verdict::kSame;
  double base_median = 0.0;
  double cand_median = 0.0;
  double ratio = 0.0;  // cand/base, raw; 0 when either side is missing.
  double drift = 1.0;  // Suite-wide factor divided out before judging.
};

/// The decision rule for one benchmark present in both files. `drift`
/// is the suite-wide machine-speed factor divided out of the candidate
/// before both legs (1.0 = no normalization).
Comparison CompareEntry(const BenchResult& base, const BenchResult& cand,
                        const CompareOptions& options, double drift = 1.0);

/// Geometric mean of the cand/base median ratios over benchmarks
/// present in both files (1.0 when fewer than 2 are shared — one
/// benchmark cannot be told apart from the machine).
double DriftFactor(const BenchFileData& base, const BenchFileData& cand);

/// Full diff in baseline order, with candidate-only entries appended.
/// Applies drift normalization per `options.normalize_drift`.
std::vector<Comparison> CompareFiles(const BenchFileData& base,
                                     const BenchFileData& cand,
                                     const CompareOptions& options);

/// Gate predicate: any kRegressed (or kMissing with fail_on_missing).
bool GateFails(const std::vector<Comparison>& comparisons,
               const CompareOptions& options);

/// Human-readable report table (one line per comparison).
std::string FormatReport(const std::vector<Comparison>& comparisons,
                         const BenchFileData& base,
                         const BenchFileData& cand);

}  // namespace bench
}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_BENCH_COMPARE_H_
