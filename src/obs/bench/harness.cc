#include "obs/bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/observability.h"

// Burned in by src/obs/CMakeLists.txt at configure time; the fallbacks
// keep non-CMake compiles (tooling, IDE) working.
#ifndef P3GM_GIT_SHA
#define P3GM_GIT_SHA "unknown"
#endif
#ifndef P3GM_BUILD_TYPE
#define P3GM_BUILD_TYPE "unknown"
#endif
#ifndef P3GM_CXX_FLAGS
#define P3GM_CXX_FLAGS ""
#endif

namespace p3gm {
namespace obs {
namespace bench {

namespace {

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0 || v > 1000000) return fallback;
  return static_cast<int>(v);
}

std::string ReadCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

}  // namespace

BenchOptions BenchOptions::FromEnv() {
  BenchOptions opt;
  opt.reps = EnvInt("P3GM_BENCH_REPS", opt.reps);
  opt.warmup = EnvInt("P3GM_BENCH_WARMUP", opt.warmup);
  return opt;
}

RunInfo CollectRunInfo(const std::string& name) {
  RunInfo info;
  info.suite = name;
  info.git_sha = P3GM_GIT_SHA;
  info.cpu_model = ReadCpuModel();
  info.build_type = P3GM_BUILD_TYPE;
  info.cxx_flags = P3GM_CXX_FLAGS;
  info.hw_counters = perf::HardwareCountersAvailable();
  info.alloc_tracking = perf::AllocTrackingCompiledIn();
  return info;
}

BenchSuite::BenchSuite(std::string name)
    : runinfo_(CollectRunInfo(std::move(name))),
      stats_options_(BenchOptions::FromEnv()) {}

BenchResult* BenchSuite::FindOrCreate(const std::string& bench_name) {
  for (auto& r : results_) {
    if (r.name == bench_name) return &r;
  }
  results_.push_back({});
  results_.back().name = bench_name;
  results_.back().counters.hw_available = true;  // Until an && says no.
  return &results_.back();
}

const BenchResult& BenchSuite::Run(const std::string& bench_name,
                                   const std::function<void()>& fn,
                                   BenchOptions options) {
  BenchResult* result = FindOrCreate(bench_name);
  for (int i = 0; i < options.warmup; ++i) fn();
  for (int i = 0; i < options.reps; ++i) {
    perf::AllocScope alloc_scope;
    perf::PerfCounters counters;
    counters.Start();
    fn();
    const perf::PerfSample sample = counters.Stop();
    result->samples_seconds.push_back(sample.wall_seconds);
    result->counters.Accumulate(sample);
    const perf::AllocStats alloc = alloc_scope.Delta();
    result->alloc.alloc_count += alloc.alloc_count;
    result->alloc.free_count += alloc.free_count;
    result->alloc.bytes_allocated += alloc.bytes_allocated;
    result->alloc.bytes_freed += alloc.bytes_freed;
    if (alloc.peak_live_bytes > result->alloc.peak_live_bytes) {
      result->alloc.peak_live_bytes = alloc.peak_live_bytes;
    }
  }
  result->stats =
      Summarize(result->samples_seconds, options.reject_outliers,
                options.bootstrap_seed, options.bootstrap_reps);
  return *result;
}

void BenchSuite::RunInterleaved(const std::vector<NamedBench>& benches,
                                BenchOptions options) {
  for (const NamedBench& b : benches) {
    FindOrCreate(b.name);  // Stable output order = input order.
    for (int i = 0; i < options.warmup; ++i) b.fn();
  }
  for (int rep = 0; rep < options.reps; ++rep) {
    for (const NamedBench& b : benches) {
      BenchResult* result = FindOrCreate(b.name);
      perf::AllocScope alloc_scope;
      perf::PerfCounters counters;
      counters.Start();
      b.fn();
      const perf::PerfSample sample = counters.Stop();
      result->samples_seconds.push_back(sample.wall_seconds);
      result->counters.Accumulate(sample);
      const perf::AllocStats alloc = alloc_scope.Delta();
      result->alloc.alloc_count += alloc.alloc_count;
      result->alloc.free_count += alloc.free_count;
      result->alloc.bytes_allocated += alloc.bytes_allocated;
      result->alloc.bytes_freed += alloc.bytes_freed;
      if (alloc.peak_live_bytes > result->alloc.peak_live_bytes) {
        result->alloc.peak_live_bytes = alloc.peak_live_bytes;
      }
    }
  }
  for (const NamedBench& b : benches) {
    BenchResult* result = FindOrCreate(b.name);
    result->stats =
        Summarize(result->samples_seconds, options.reject_outliers,
                  options.bootstrap_seed, options.bootstrap_reps);
  }
}

void BenchSuite::RecordSample(const std::string& bench_name, double seconds,
                              const perf::PerfSample* counters,
                              const perf::AllocStats* alloc) {
  BenchResult* result = FindOrCreate(bench_name);
  result->samples_seconds.push_back(seconds);
  if (counters != nullptr) {
    result->counters.Accumulate(*counters);
  } else {
    result->counters.hw_available = false;
  }
  if (alloc != nullptr) {
    result->alloc.alloc_count += alloc->alloc_count;
    result->alloc.free_count += alloc->free_count;
    result->alloc.bytes_allocated += alloc->bytes_allocated;
    result->alloc.bytes_freed += alloc->bytes_freed;
    if (alloc->peak_live_bytes > result->alloc.peak_live_bytes) {
      result->alloc.peak_live_bytes = alloc->peak_live_bytes;
    }
  }
  result->stats =
      Summarize(result->samples_seconds, stats_options_.reject_outliers,
                stats_options_.bootstrap_seed,
                stats_options_.bootstrap_reps);
}

std::string BenchSuite::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"" + json::Escape(runinfo_.schema) + "\",\n";
  out += "  \"_runinfo\": {\n";
  out += "    \"suite\": \"" + json::Escape(runinfo_.suite) + "\",\n";
  out += "    \"git_sha\": \"" + json::Escape(runinfo_.git_sha) + "\",\n";
  out +=
      "    \"cpu_model\": \"" + json::Escape(runinfo_.cpu_model) + "\",\n";
  out += "    \"build_type\": \"" + json::Escape(runinfo_.build_type) +
         "\",\n";
  out +=
      "    \"cxx_flags\": \"" + json::Escape(runinfo_.cxx_flags) + "\",\n";
  out += "    \"threads\": " + std::to_string(runinfo_.threads) + ",\n";
  out += "    \"wall_seconds\": " + FormatValue(runinfo_.wall_seconds) +
         ",\n";
  out += std::string("    \"hw_counters\": ") +
         (runinfo_.hw_counters ? "true" : "false") + ",\n";
  out += std::string("    \"alloc_tracking\": ") +
         (runinfo_.alloc_tracking ? "true" : "false") + "\n";
  out += "  },\n";
  out += "  \"benchmarks\": [";
  bool first = true;
  for (const BenchResult& r : results_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json::Escape(r.name) + "\",\n";
    out += "     \"samples_seconds\": [";
    for (std::size_t i = 0; i < r.samples_seconds.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatValue(r.samples_seconds[i]);
    }
    out += "],\n";
    const SampleStats& s = r.stats;
    out += "     \"stats\": {\"n\": " + std::to_string(s.n) +
           ", \"rejected\": " + std::to_string(s.rejected) +
           ", \"min\": " + FormatValue(s.min) +
           ", \"max\": " + FormatValue(s.max) +
           ", \"mean\": " + FormatValue(s.mean) +
           ", \"median\": " + FormatValue(s.median) +
           ", \"mad\": " + FormatValue(s.mad) +
           ", \"ci95_lo\": " + FormatValue(s.ci95_lo) +
           ", \"ci95_hi\": " + FormatValue(s.ci95_hi) + "},\n";
    const perf::PerfSample& c = r.counters;
    out += std::string("     \"counters\": {\"hw_available\": ") +
           (c.hw_available ? "true" : "false");
    if (c.hw_available) {
      out += ", \"cycles\": " + std::to_string(c.cycles) +
             ", \"instructions\": " + std::to_string(c.instructions) +
             ", \"cache_misses\": " + std::to_string(c.cache_misses) +
             ", \"branch_misses\": " + std::to_string(c.branch_misses);
    }
    out += ", \"user_seconds\": " + FormatValue(c.user_seconds) +
           ", \"sys_seconds\": " + FormatValue(c.sys_seconds) +
           ", \"minor_faults\": " + std::to_string(c.minor_faults) +
           ", \"major_faults\": " + std::to_string(c.major_faults) +
           ", \"max_rss_kb\": " + std::to_string(c.max_rss_kb) + "},\n";
    const perf::AllocStats& a = r.alloc;
    out += std::string("     \"alloc\": {\"available\": ") +
           (perf::AllocTrackingCompiledIn() ? "true" : "false") +
           ", \"alloc_count\": " + std::to_string(a.alloc_count) +
           ", \"bytes_allocated\": " + std::to_string(a.bytes_allocated) +
           ", \"peak_live_bytes\": " + std::to_string(a.peak_live_bytes) +
           "}}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool BenchSuite::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

const BenchResult* BenchFileData::Find(const std::string& name) const {
  for (const auto& b : benchmarks) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

bool ParseBenchJson(const std::string& text, BenchFileData* out,
                    std::string* error) {
  json::Value root;
  if (!json::Parse(text, &root, error)) return false;
  if (!root.is_object()) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const std::string schema = root.StringOr("schema", "");
  if (schema != kBenchSchemaVersion) {
    if (error != nullptr) {
      *error = "unsupported schema \"" + schema + "\" (want " +
               std::string(kBenchSchemaVersion) + ")";
    }
    return false;
  }
  *out = BenchFileData();
  out->runinfo.schema = schema;
  if (const json::Value* ri = root.Find("_runinfo")) {
    out->runinfo.suite = ri->StringOr("suite", "");
    out->runinfo.git_sha = ri->StringOr("git_sha", "unknown");
    out->runinfo.cpu_model = ri->StringOr("cpu_model", "unknown");
    out->runinfo.build_type = ri->StringOr("build_type", "unknown");
    out->runinfo.cxx_flags = ri->StringOr("cxx_flags", "");
    out->runinfo.threads = static_cast<int>(ri->NumberOr("threads", 0));
    out->runinfo.wall_seconds = ri->NumberOr("wall_seconds", 0.0);
    out->runinfo.hw_counters = ri->BoolOr("hw_counters", false);
    out->runinfo.alloc_tracking = ri->BoolOr("alloc_tracking", false);
  }
  const json::Value* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    if (error != nullptr) *error = "missing \"benchmarks\" array";
    return false;
  }
  for (const json::Value& b : benchmarks->items) {
    if (!b.is_object()) continue;
    BenchResult r;
    r.name = b.StringOr("name", "");
    if (r.name.empty()) {
      if (error != nullptr) *error = "benchmark entry without a name";
      return false;
    }
    if (const json::Value* samples = b.Find("samples_seconds");
        samples != nullptr && samples->is_array()) {
      for (const json::Value& s : samples->items) {
        if (s.is_number()) r.samples_seconds.push_back(s.number_value);
      }
    }
    if (const json::Value* stats = b.Find("stats")) {
      r.stats.n = static_cast<std::size_t>(stats->NumberOr("n", 0));
      r.stats.rejected =
          static_cast<std::size_t>(stats->NumberOr("rejected", 0));
      r.stats.min = stats->NumberOr("min", 0.0);
      r.stats.max = stats->NumberOr("max", 0.0);
      r.stats.mean = stats->NumberOr("mean", 0.0);
      r.stats.median = stats->NumberOr("median", 0.0);
      r.stats.mad = stats->NumberOr("mad", 0.0);
      r.stats.ci95_lo = stats->NumberOr("ci95_lo", 0.0);
      r.stats.ci95_hi = stats->NumberOr("ci95_hi", 0.0);
    }
    out->benchmarks.push_back(std::move(r));
  }
  return true;
}

bool LoadBenchFile(const std::string& path, BenchFileData* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBenchJson(buffer.str(), out, error);
}

}  // namespace bench
}  // namespace obs
}  // namespace p3gm
