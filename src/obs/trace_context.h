#ifndef P3GM_OBS_TRACE_CONTEXT_H_
#define P3GM_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

#include "obs/observability.h"

namespace p3gm {
namespace obs {

/// Request-scoped trace identity, propagated through the serving path
/// (accept -> parse -> queue -> batch -> decode -> respond) so one
/// coalesced decoder pass can be attributed back to every request it
/// served. The wire format is W3C Trace Context ("traceparent"):
///
///   00-0123456789abcdef0123456789abcdef-0123456789abcdef-01
///      \______ 128-bit trace id ______/ \_ 64-bit span _/
///
/// Identity generation is independent of util::Rng — creating a context
/// never consumes model randomness, so tracing cannot perturb sampled
/// output (the determinism contract of obs/observability.h). The ids
/// themselves are protocol-level plumbing and stay functional in
/// -DP3GM_OBSERVABILITY=OFF builds (the daemon still answers with an
/// X-Request-Id); only span *recording* compiles out.

struct TraceContext {
  /// 128-bit trace id, split big-endian: hex = hi then lo. All-zero is
  /// "absent" (per the W3C spec, an invalid trace id).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  /// This unit of work's span id; 0 = absent.
  std::uint64_t span_id = 0;
  /// Enclosing span (the ingested remote parent, or a local parent span);
  /// 0 = this is a root span.
  std::uint64_t parent_span_id = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0 && span_id != 0; }
};

/// A fresh root context: new 128-bit trace id, new span id, no parent.
TraceContext MakeRootContext();

/// A child of `parent`: same trace id, fresh span id, parent_span_id =
/// parent.span_id. Given an invalid parent, equivalent to
/// MakeRootContext().
TraceContext ChildOf(const TraceContext& parent);

/// A fresh process-unique nonzero span id.
std::uint64_t NextSpanId();

/// Parses a W3C traceparent header value (version 00; future versions
/// are accepted if they carry the same prefix layout, per spec). On
/// success fills *out with the header's trace id, a FRESH local span id,
/// and parent_span_id = the header's parent-id field. Returns false (and
/// leaves *out untouched) on malformed input or all-zero ids.
bool ParseTraceparent(const std::string& header, TraceContext* out);

/// Serializes `ctx` as a version-00 traceparent value (sampled flag 01).
std::string FormatTraceparent(const TraceContext& ctx);

/// Lowercase hex forms: 32 chars for the trace id, 16 for a span id.
std::string TraceIdHex(const TraceContext& ctx);
std::string SpanIdHex(std::uint64_t span_id);

/// The calling thread's innermost active request context (invalid when
/// outside any RequestScope). util::LogMessage reads this to attach
/// trace/span ids to every record emitted inside a request scope.
const TraceContext& CurrentContext();

/// RAII: makes `ctx` the calling thread's current context for the
/// lifetime of the scope (nestable; restores the previous context).
class RequestScope {
 public:
  explicit RequestScope(const TraceContext& ctx);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_TRACE_CONTEXT_H_
