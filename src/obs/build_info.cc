#include "obs/build_info.h"

#include "obs/prometheus.h"
#include "obs/registry.h"

#ifndef P3GM_VERSION
#define P3GM_VERSION "unknown"
#endif
#ifndef P3GM_GIT_SHA
#define P3GM_GIT_SHA "unknown"
#endif
#ifndef P3GM_BUILD_TYPE
#define P3GM_BUILD_TYPE "unknown"
#endif
#ifndef P3GM_CXX_FLAGS
#define P3GM_CXX_FLAGS ""
#endif

namespace p3gm {
namespace obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{P3GM_VERSION, P3GM_GIT_SHA, P3GM_BUILD_TYPE,
                              P3GM_CXX_FLAGS};
  return info;
}

void RegisterBuildInfoGauge() {
  const BuildInfo& info = GetBuildInfo();
  static Gauge* gauge = Registry::Global().gauge(
      LabeledName("p3gm.build_info", {{"version", info.version},
                                      {"git_sha", info.git_sha},
                                      {"build_type", info.build_type},
                                      {"flags", info.flags}}));
  gauge->Set(1.0);
}

}  // namespace obs
}  // namespace p3gm
