#ifndef P3GM_OBS_REGISTRY_H_
#define P3GM_OBS_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observability.h"

namespace p3gm {
namespace obs {

/// Metrics registry: named Counter/Gauge/Histogram instruments with
/// lock-free updates on the hot path and a consistent snapshot/export
/// side (JSON + CSV).
///
/// Usage pattern at instrumentation sites — resolve once, update often:
///
///   static obs::Counter* steps =
///       obs::Registry::Global().counter("dpsgd.steps");
///   steps->Add();
///
/// Lookup takes a mutex (cold path, typically hit once per site thanks to
/// the function-local static); updates are relaxed atomics. Instrument
/// pointers stay valid for the life of the process — Reset() zeroes
/// values but never invalidates instruments. Every update is a no-op
/// unless obs::Enabled(), so a disabled run leaves all values at zero.
/// Naming convention: lowercase dot-separated "<subsystem>.<what>[.unit]"
/// (see docs/observability.md for the catalog).

/// Monotonically increasing integer value.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written floating-point value.
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at the
/// first registration of the name.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; empty means a single overflow
  /// bucket (count/sum only).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, length bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Estimated q-quantile (q in [0, 1]) from the bucket counts, with
  /// linear interpolation inside the containing bucket (the Prometheus
  /// histogram_quantile convention): the first bucket's lower edge is
  /// min(0, bounds[0]), and any rank landing in the overflow bucket
  /// clamps to bounds.back(). Returns NaN when the histogram is empty
  /// (count == 0) or has no bounds (nothing to interpolate against), and
  /// clamps q itself into [0, 1].
  double Quantile(double q) const;
};

/// Point-in-time copy of every instrument, sorted by name (deterministic
/// export order).
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  std::string ToJson() const;
  /// Long-format CSV: kind,name,field,value (histograms emit one row per
  /// bucket plus count and sum).
  std::string ToCsv() const;
  bool WriteJson(const std::string& path) const;
  bool WriteCsv(const std::string& path) const;
};

class Registry {
 public:
  /// The process-wide registry (never destroyed).
  static Registry& Global();

  /// Finds or creates the named instrument. For histograms, `bounds` is
  /// used only on first registration.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  Snapshot TakeSnapshot() const;

  /// Zeroes every value. Instruments (and cached pointers) stay valid.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace p3gm

#endif  // P3GM_OBS_REGISTRY_H_
