#ifndef P3GM_LINALG_COVARIANCE_H_
#define P3GM_LINALG_COVARIANCE_H_

#include <vector>

#include "linalg/matrix.h"

namespace p3gm {
namespace linalg {

/// Returns the (d x d) sample covariance of the (n x d) data matrix `x`
/// around the given `mean` (length d), normalized by n (not n-1) to match
/// the scatter-matrix convention the DP-PCA sensitivity analysis uses.
Matrix CovarianceWithMean(const Matrix& x, const std::vector<double>& mean);

/// Covariance around the empirical column means, normalized by n.
Matrix Covariance(const Matrix& x);

/// Unnormalized scatter matrix X_c^T X_c around `mean`.
Matrix ScatterWithMean(const Matrix& x, const std::vector<double>& mean);

/// Subtracts `mean` from every row of `x` in place.
void CenterRows(const std::vector<double>& mean, Matrix* x);

}  // namespace linalg
}  // namespace p3gm

#endif  // P3GM_LINALG_COVARIANCE_H_
