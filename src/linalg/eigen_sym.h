#ifndef P3GM_LINALG_EIGEN_SYM_H_
#define P3GM_LINALG_EIGEN_SYM_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace p3gm {
namespace linalg {

/// Full eigendecomposition of a real symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Computes all eigenpairs of the symmetric matrix `a` via Householder
/// tridiagonalization followed by the implicit-shift QL iteration (the
/// classic tred2/tql2 pair). O(n^3), accurate to machine precision for
/// well-conditioned inputs.
///
/// Returns InvalidArgument for non-square input and NumericError if QL
/// fails to converge within 50 iterations per eigenvalue (essentially
/// impossible for finite symmetric input).
util::Result<EigenDecomposition> EigenSym(const Matrix& a);

/// Computes the top-`k` eigenpairs of the symmetric PSD matrix `a` by
/// power iteration with Hotelling deflation; cheaper than EigenSym when
/// k << n. `iters` power steps are used per component.
///
/// Intended for large covariance matrices where only the leading principal
/// components are needed (the DP-PCA path).
util::Result<EigenDecomposition> TopKEigenSym(const Matrix& a, std::size_t k,
                                              std::size_t iters = 200,
                                              std::uint64_t seed = 7);

}  // namespace linalg
}  // namespace p3gm

#endif  // P3GM_LINALG_EIGEN_SYM_H_
