#ifndef P3GM_LINALG_OPS_H_
#define P3GM_LINALG_OPS_H_

#include <vector>

#include "linalg/matrix.h"

namespace p3gm {
namespace linalg {

/// Dense kernels shared by the NN layers and the statistical models. All
/// shape mismatches are programming errors and abort via P3GM_CHECK; these
/// functions sit on hot paths and deliberately do not return Status.
///
/// The batch-shaped kernels (gemm variants, Syrk, RowSquaredNorms,
/// ScaleRows, AddRowVector, MaxAbsDiff) run on the util::ParallelFor
/// thread pool, blocked over rows with each worker writing a disjoint
/// output slice. Results are bit-identical for any thread count,
/// including 1 (see util/thread_pool.h for the determinism contract).

/// C = A * B, with A (m x k) and B (k x n). Cache-friendly i-k-j order.
Matrix Matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B, with A (k x m) and B (k x n). Avoids materializing A^T.
Matrix MatmulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T, with A (m x k) and B (n x k). Avoids materializing B^T.
Matrix MatmulTransB(const Matrix& a, const Matrix& b);

/// y = A * x.
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// y = A^T * x.
std::vector<double> MatVecTransA(const Matrix& a,
                                 const std::vector<double>& x);

/// Inner product <a, b>.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm of `a`.
double Norm2(const std::vector<double>& a);

/// Squared Euclidean norm of `a`.
double SquaredNorm2(const std::vector<double>& a);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>* x);

/// Rank-1 matrix a * b^T.
Matrix Outer(const std::vector<double>& a, const std::vector<double>& b);

/// Adds the row vector `v` to every row of `m` in place.
void AddRowVector(const std::vector<double>& v, Matrix* m);

/// Column means of `m` (length cols()).
std::vector<double> ColMeans(const Matrix& m);

/// Per-row squared L2 norms of `m` (length rows()).
std::vector<double> RowSquaredNorms(const Matrix& m);

/// Scales each row i of `m` by s[i] in place.
void ScaleRows(const std::vector<double>& s, Matrix* m);

/// Symmetric rank-k: returns A^T A (cols x cols), exploiting symmetry.
Matrix Syrk(const Matrix& a);

/// Max absolute difference between equally shaped matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace linalg
}  // namespace p3gm

#endif  // P3GM_LINALG_OPS_H_
