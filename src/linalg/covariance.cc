#include "linalg/covariance.h"

#include "linalg/ops.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace linalg {

void CenterRows(const std::vector<double>& mean, Matrix* x) {
  P3GM_CHECK(mean.size() == x->cols());
  util::ParallelFor(0, x->rows(), 64, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      double* row = x->row_data(i);
      for (std::size_t j = 0; j < mean.size(); ++j) row[j] -= mean[j];
    }
  });
}

Matrix ScatterWithMean(const Matrix& x, const std::vector<double>& mean) {
  Matrix centered = x;
  CenterRows(mean, &centered);
  return Syrk(centered);
}

Matrix CovarianceWithMean(const Matrix& x, const std::vector<double>& mean) {
  P3GM_CHECK(x.rows() > 0);
  Matrix s = ScatterWithMean(x, mean);
  s *= 1.0 / static_cast<double>(x.rows());
  return s;
}

Matrix Covariance(const Matrix& x) {
  return CovarianceWithMean(x, ColMeans(x));
}

}  // namespace linalg
}  // namespace p3gm
