#ifndef P3GM_LINALG_CHOLESKY_H_
#define P3GM_LINALG_CHOLESKY_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace p3gm {
namespace linalg {

/// Computes the lower-triangular Cholesky factor L with A = L L^T.
/// `a` must be symmetric; returns NumericError if a non-positive pivot is
/// encountered (A not positive definite beyond `jitter`).
///
/// `jitter` is added to the diagonal before factorization, the standard
/// regularization for near-singular covariance estimates from EM.
util::Result<Matrix> Cholesky(const Matrix& a, double jitter = 0.0);

/// Solves L y = b for lower-triangular L by forward substitution.
std::vector<double> ForwardSolve(const Matrix& l,
                                 const std::vector<double>& b);

/// Solves L^T x = y for lower-triangular L by backward substitution.
std::vector<double> BackwardSolveTrans(const Matrix& l,
                                       const std::vector<double>& y);

/// Solves A x = b given the Cholesky factor L of A.
std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b);

/// log(det(A)) given the Cholesky factor L of A (= 2 * sum log L_ii).
double CholeskyLogDet(const Matrix& l);

}  // namespace linalg
}  // namespace p3gm

#endif  // P3GM_LINALG_CHOLESKY_H_
