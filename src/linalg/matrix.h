#ifndef P3GM_LINALG_MATRIX_H_
#define P3GM_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/result.h"
#include "util/status.h"

namespace p3gm {
namespace linalg {

/// Dense row-major matrix of doubles. This is the single numeric container
/// shared by the linear-algebra kernels, the neural-network layers and the
/// statistical models. Datasets are stored as (n_samples x n_features)
/// matrices.
///
/// Element access is bounds-checked in debug builds only; the kernels in
/// ops.h operate on the raw buffer.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists; all rows must have equal
  /// length. Intended for tests and small literals.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix from a row-major flat buffer. Fails if
  /// `flat.size() != rows * cols`.
  static util::Result<Matrix> FromFlat(std::size_t rows, std::size_t cols,
                                       std::vector<double> flat);

  /// Builds a matrix from a vector of equally sized rows. Fails on ragged
  /// input.
  static util::Result<Matrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix Identity(std::size_t n);

  /// Diagonal matrix from `diag`.
  static Matrix Diagonal(const std::vector<double>& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Raw pointer to the start of row `r`.
  double* row_data(std::size_t r) {
    P3GM_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row_data(std::size_t r) const {
    P3GM_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  double& operator()(std::size_t r, std::size_t c) {
    P3GM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    P3GM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Copies row `r` out into a vector.
  std::vector<double> Row(std::size_t r) const;

  /// Copies column `c` out into a vector.
  std::vector<double> Col(std::size_t c) const;

  /// Overwrites row `r` with `values` (must match cols()).
  void SetRow(std::size_t r, const std::vector<double>& values);

  /// Returns a new matrix containing the rows listed in `indices`
  /// (duplicates allowed, order preserved).
  Matrix SelectRows(const std::vector<std::size_t>& indices) const;

  /// Returns the submatrix of the first `k` columns (k <= cols()).
  Matrix FirstCols(std::size_t k) const;

  /// Horizontal concatenation [*this | other]; row counts must match.
  Matrix ConcatCols(const Matrix& other) const;

  /// Vertical concatenation; column counts must match.
  Matrix ConcatRows(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Resizes destructively (contents unspecified afterwards).
  void Resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Sets every element to `value`.
  void Fill(double value);

  // Element-wise arithmetic. Shapes must match for the matrix forms.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Exact element-wise equality (tests only).
  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest absolute element.
  double MaxAbs() const;

  /// Multi-line human-readable rendering (small matrices / debugging).
  std::string ToString(int digits = 4) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace linalg
}  // namespace p3gm

#endif  // P3GM_LINALG_MATRIX_H_
