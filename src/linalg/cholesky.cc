#include "linalg/cholesky.h"

#include <cmath>

namespace p3gm {
namespace linalg {

util::Result<Matrix> Cholesky(const Matrix& a, double jitter) {
  if (a.rows() != a.cols()) {
    return util::Status::InvalidArgument("Cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return util::Status::NumericError(
          "Cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

std::vector<double> ForwardSolve(const Matrix& l,
                                 const std::vector<double>& b) {
  P3GM_CHECK(l.rows() == l.cols() && l.rows() == b.size());
  const std::size_t n = b.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l.row_data(i);
    for (std::size_t k = 0; k < i; ++k) s -= row[k] * y[k];
    y[i] = s / row[i];
  }
  return y;
}

std::vector<double> BackwardSolveTrans(const Matrix& l,
                                       const std::vector<double>& y) {
  P3GM_CHECK(l.rows() == l.cols() && l.rows() == y.size());
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b) {
  return BackwardSolveTrans(l, ForwardSolve(l, b));
}

double CholeskyLogDet(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

}  // namespace linalg
}  // namespace p3gm
