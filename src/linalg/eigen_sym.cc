#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/ops.h"
#include "util/rng.h"

namespace p3gm {
namespace linalg {

namespace {

// Householder reduction of the symmetric matrix stored in `v` (n x n) to
// tridiagonal form; diagonal in `d`, subdiagonal in `e` (e[0] unused).
// On exit `v` holds the accumulated orthogonal transformation Q with
// A = Q * T * Q^T. Port of the EISPACK tred2 routine (0-based).
void Tred2(Matrix* v, std::vector<double>* d, std::vector<double>* e) {
  const std::size_t n = v->rows();
  Matrix& a = *v;
  d->assign(n, 0.0);
  e->assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) (*d)[j] = a(n - 1, j);

  for (std::size_t i = n - 1; i > 0; --i) {
    // Scale to avoid under/overflow.
    double scale = 0.0;
    double h = 0.0;
    if (i > 1) {
      for (std::size_t k = 0; k < i; ++k) scale += std::fabs((*d)[k]);
    }
    if (scale == 0.0) {
      (*e)[i] = (i > 0) ? (*d)[i - 1] : 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        (*d)[j] = a(i - 1, j);
        a(i, j) = 0.0;
        a(j, i) = 0.0;
      }
    } else {
      for (std::size_t k = 0; k < i; ++k) {
        (*d)[k] /= scale;
        h += (*d)[k] * (*d)[k];
      }
      double f = (*d)[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      (*e)[i] = scale * g;
      h -= f * g;
      (*d)[i - 1] = f - g;
      for (std::size_t j = 0; j < i; ++j) (*e)[j] = 0.0;

      // Apply similarity transformation to remaining rows.
      for (std::size_t j = 0; j < i; ++j) {
        f = (*d)[j];
        a(j, i) = f;
        g = (*e)[j] + a(j, j) * f;
        for (std::size_t k = j + 1; k <= i - 1; ++k) {
          g += a(k, j) * (*d)[k];
          (*e)[k] += a(k, j) * f;
        }
        (*e)[j] = g;
      }
      f = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        (*e)[j] /= h;
        f += (*e)[j] * (*d)[j];
      }
      const double hh = f / (h + h);
      for (std::size_t j = 0; j < i; ++j) (*e)[j] -= hh * (*d)[j];
      for (std::size_t j = 0; j < i; ++j) {
        f = (*d)[j];
        g = (*e)[j];
        for (std::size_t k = j; k <= i - 1; ++k) {
          a(k, j) -= f * (*e)[k] + g * (*d)[k];
        }
        (*d)[j] = a(i - 1, j);
        a(i, j) = 0.0;
      }
    }
    (*d)[i] = h;
  }

  // Accumulate transformations.
  for (std::size_t i = 0; i < n - 1; ++i) {
    a(n - 1, i) = a(i, i);
    a(i, i) = 1.0;
    const double h = (*d)[i + 1];
    if (h != 0.0) {
      for (std::size_t k = 0; k <= i; ++k) (*d)[k] = a(k, i + 1) / h;
      for (std::size_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k <= i; ++k) g += a(k, i + 1) * a(k, j);
        for (std::size_t k = 0; k <= i; ++k) a(k, j) -= g * (*d)[k];
      }
    }
    for (std::size_t k = 0; k <= i; ++k) a(k, i + 1) = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) {
    (*d)[j] = a(n - 1, j);
    a(n - 1, j) = 0.0;
  }
  a(n - 1, n - 1) = 1.0;
  (*e)[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal (d, e); eigenvectors are
// accumulated into `v`. Port of the EISPACK tql2 routine (0-based).
// Returns false if an eigenvalue fails to converge in 50 iterations.
bool Tql2(Matrix* v, std::vector<double>* d, std::vector<double>* e) {
  const std::size_t n = v->rows();
  Matrix& a = *v;
  for (std::size_t i = 1; i < n; ++i) (*e)[i - 1] = (*e)[i];
  (*e)[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::pow(2.0, -52.0);
  for (std::size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::fabs((*d)[l]) + std::fabs((*e)[l]));
    std::size_t m = l;
    while (m < n) {
      if (std::fabs((*e)[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > 50) return false;
        // Compute implicit shift.
        double g = (*d)[l];
        double p = ((*d)[l + 1] - g) / (2.0 * (*e)[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        (*d)[l] = (*e)[l] / (p + r);
        (*d)[l + 1] = (*e)[l] * (p + r);
        const double dl1 = (*d)[l + 1];
        double h = g - (*d)[l];
        for (std::size_t i = l + 2; i < n; ++i) (*d)[i] -= h;
        f += h;

        // QL transformation.
        p = (*d)[m];
        double c = 1.0;
        double c2 = c, c3 = c;
        const double el1 = (*e)[l + 1];
        double s = 0.0, s2 = 0.0;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * (*e)[i];
          h = c * p;
          r = std::hypot(p, (*e)[i]);
          (*e)[i + 1] = s * r;
          s = (*e)[i] / r;
          c = p / r;
          p = c * (*d)[i] - s * g;
          (*d)[i + 1] = h + s * (c * g + s * (*d)[i]);
          // Accumulate eigenvectors.
          for (std::size_t k = 0; k < n; ++k) {
            h = a(k, i + 1);
            a(k, i + 1) = s * a(k, i) + c * h;
            a(k, i) = c * a(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * (*e)[l] / dl1;
        (*e)[l] = s * p;
        (*d)[l] = c * p;
      } while (std::fabs((*e)[l]) > eps * tst1);
    }
    (*d)[l] += f;
    (*e)[l] = 0.0;
  }
  return true;
}

}  // namespace

util::Result<EigenDecomposition> EigenSym(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return util::Status::InvalidArgument("EigenSym: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (n == 0) return EigenDecomposition{{}, Matrix()};
  if (n == 1) {
    return EigenDecomposition{{a(0, 0)}, Matrix::Identity(1)};
  }

  EigenDecomposition out;
  out.vectors = a;  // tred2 works in place on a copy.
  std::vector<double> d, e;
  Tred2(&out.vectors, &d, &e);
  if (!Tql2(&out.vectors, &d, &e)) {
    return util::Status::NumericError("EigenSym: QL failed to converge");
  }

  // Sort eigenpairs descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] > d[y]; });
  out.values.resize(n);
  Matrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) sorted(i, j) = out.vectors(i, order[j]);
  }
  out.vectors = std::move(sorted);
  return out;
}

util::Result<EigenDecomposition> TopKEigenSym(const Matrix& a, std::size_t k,
                                              std::size_t iters,
                                              std::uint64_t seed) {
  if (a.rows() != a.cols()) {
    return util::Status::InvalidArgument(
        "TopKEigenSym: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (k > n) {
    return util::Status::InvalidArgument("TopKEigenSym: k exceeds dimension");
  }
  util::Rng rng(seed);
  Matrix work = a;  // Deflated in place.
  EigenDecomposition out;
  out.values.reserve(k);
  out.vectors = Matrix(n, k);

  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.Normal();
    double norm = Norm2(v);
    for (double& x : v) x /= norm;
    double lambda = 0.0;
    for (std::size_t it = 0; it < iters; ++it) {
      std::vector<double> w = MatVec(work, v);
      norm = Norm2(w);
      if (norm < 1e-300) {  // Matrix is (numerically) zero after deflation.
        w.assign(n, 0.0);
        w[c % n] = 1.0;
        norm = 1.0;
      }
      for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
      lambda = Dot(v, MatVec(work, v));
    }
    out.values.push_back(lambda);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, c) = v[i];
    // Hotelling deflation: work -= lambda v v^T.
    for (std::size_t i = 0; i < n; ++i) {
      double* row = work.row_data(i);
      const double vi = lambda * v[i];
      for (std::size_t j = 0; j < n; ++j) row[j] -= vi * v[j];
    }
  }
  return out;
}

}  // namespace linalg
}  // namespace p3gm
