#include "linalg/ops.h"

#include <cmath>

namespace p3gm {
namespace linalg {

Matrix Matmul(const Matrix& a, const Matrix& b) {
  P3GM_CHECK(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.row_data(p);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatmulTransA(const Matrix& a, const Matrix& b) {
  P3GM_CHECK(a.rows() == b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.row_data(p);
    const double* brow = b.row_data(p);
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.row_data(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatmulTransB(const Matrix& a, const Matrix& b) {
  P3GM_CHECK(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.row_data(j);
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  P3GM_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> MatVecTransA(const Matrix& a,
                                 const std::vector<double>& x) {
  P3GM_CHECK(a.rows() == x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    const double xv = x[i];
    if (xv == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xv * arow[j];
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  P3GM_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredNorm2(const std::vector<double>& a) { return Dot(a, a); }

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const std::vector<double>& x,
          std::vector<double>* y) {
  P3GM_CHECK(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (double& v : *x) v *= alpha;
}

Matrix Outer(const std::vector<double>& a, const std::vector<double>& b) {
  Matrix m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    double* row = m.row_data(i);
    for (std::size_t j = 0; j < b.size(); ++j) row[j] = a[i] * b[j];
  }
  return m;
}

void AddRowVector(const std::vector<double>& v, Matrix* m) {
  P3GM_CHECK(v.size() == m->cols());
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* row = m->row_data(i);
    for (std::size_t j = 0; j < v.size(); ++j) row[j] += v[j];
  }
}

std::vector<double> ColMeans(const Matrix& m) {
  std::vector<double> mean(m.cols(), 0.0);
  if (m.rows() == 0) return mean;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j) mean[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(m.rows());
  for (double& v : mean) v *= inv;
  return mean;
}

std::vector<double> RowSquaredNorms(const Matrix& m) {
  std::vector<double> out(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    double s = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) s += row[j] * row[j];
    out[i] = s;
  }
  return out;
}

void ScaleRows(const std::vector<double>& s, Matrix* m) {
  P3GM_CHECK(s.size() == m->rows());
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* row = m->row_data(i);
    for (std::size_t j = 0; j < m->cols(); ++j) row[j] *= s[i];
  }
}

Matrix Syrk(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix c(n, n);
  for (std::size_t p = 0; p < a.rows(); ++p) {
    const double* row = a.row_data(p);
    for (std::size_t i = 0; i < n; ++i) {
      const double av = row[i];
      if (av == 0.0) continue;
      double* crow = c.row_data(i);
      for (std::size_t j = i; j < n; ++j) crow[j] += av * row[j];
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = c(i, j);
  }
  return c;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  P3GM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ra = a.row_data(i);
    const double* rb = b.row_data(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(ra[j] - rb[j]));
    }
  }
  return m;
}

}  // namespace linalg
}  // namespace p3gm
