#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace linalg {

namespace {

// Minimum rows per worker for the O(rows * k * n) gemm kernels and for
// the O(rows * cols) element-wise kernels. Small enough to engage the
// pool on training-size batches, large enough that a block amortizes the
// dispatch cost.
constexpr std::size_t kGemmRowGrain = 8;
constexpr std::size_t kRowGrain = 64;

}  // namespace

Matrix Matmul(const Matrix& a, const Matrix& b) {
  P3GM_TRACE_SPAN("linalg.gemm");
  P3GM_CHECK(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // Each worker owns a disjoint block of output rows; per element the
  // accumulation order over p is ascending, so the result is
  // bit-identical for any thread count.
  util::ParallelFor(0, m, kGemmRowGrain, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const double* arow = a.row_data(i);
      double* crow = c.row_data(i);
      for (std::size_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        const double* brow = b.row_data(p);
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Matrix MatmulTransA(const Matrix& a, const Matrix& b) {
  P3GM_TRACE_SPAN("linalg.gemm_ta");
  P3GM_CHECK(a.rows() == b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  // Parallel over output rows (columns of A); p stays the outer serial
  // loop inside each block so every element still accumulates over p in
  // ascending order and B's rows are streamed sequentially.
  util::ParallelFor(0, m, kGemmRowGrain, [&](std::size_t rb, std::size_t re) {
    for (std::size_t p = 0; p < k; ++p) {
      const double* arow = a.row_data(p);
      const double* brow = b.row_data(p);
      for (std::size_t i = rb; i < re; ++i) {
        const double av = arow[i];
        if (av == 0.0) continue;
        double* crow = c.row_data(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Matrix MatmulTransB(const Matrix& a, const Matrix& b) {
  P3GM_TRACE_SPAN("linalg.gemm_tb");
  P3GM_CHECK(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  util::ParallelFor(0, m, kGemmRowGrain, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const double* arow = a.row_data(i);
      double* crow = c.row_data(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double* brow = b.row_data(j);
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        crow[j] = s;
      }
    }
  });
  return c;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  P3GM_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> MatVecTransA(const Matrix& a,
                                 const std::vector<double>& x) {
  P3GM_CHECK(a.rows() == x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    const double xv = x[i];
    if (xv == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xv * arow[j];
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  P3GM_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredNorm2(const std::vector<double>& a) { return Dot(a, a); }

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const std::vector<double>& x,
          std::vector<double>* y) {
  P3GM_CHECK(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (double& v : *x) v *= alpha;
}

Matrix Outer(const std::vector<double>& a, const std::vector<double>& b) {
  Matrix m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    double* row = m.row_data(i);
    for (std::size_t j = 0; j < b.size(); ++j) row[j] = a[i] * b[j];
  }
  return m;
}

void AddRowVector(const std::vector<double>& v, Matrix* m) {
  P3GM_CHECK(v.size() == m->cols());
  util::ParallelFor(0, m->rows(), kRowGrain,
                    [&](std::size_t rb, std::size_t re) {
                      for (std::size_t i = rb; i < re; ++i) {
                        double* row = m->row_data(i);
                        for (std::size_t j = 0; j < v.size(); ++j) {
                          row[j] += v[j];
                        }
                      }
                    });
}

std::vector<double> ColMeans(const Matrix& m) {
  std::vector<double> mean(m.cols(), 0.0);
  if (m.rows() == 0) return mean;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j) mean[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(m.rows());
  for (double& v : mean) v *= inv;
  return mean;
}

std::vector<double> RowSquaredNorms(const Matrix& m) {
  std::vector<double> out(m.rows(), 0.0);
  util::ParallelFor(0, m.rows(), kRowGrain,
                    [&](std::size_t rb, std::size_t re) {
                      for (std::size_t i = rb; i < re; ++i) {
                        const double* row = m.row_data(i);
                        double s = 0.0;
                        for (std::size_t j = 0; j < m.cols(); ++j) {
                          s += row[j] * row[j];
                        }
                        out[i] = s;
                      }
                    });
  return out;
}

void ScaleRows(const std::vector<double>& s, Matrix* m) {
  P3GM_CHECK(s.size() == m->rows());
  util::ParallelFor(0, m->rows(), kRowGrain,
                    [&](std::size_t rb, std::size_t re) {
                      for (std::size_t i = rb; i < re; ++i) {
                        double* row = m->row_data(i);
                        for (std::size_t j = 0; j < m->cols(); ++j) {
                          row[j] *= s[i];
                        }
                      }
                    });
}

Matrix Syrk(const Matrix& a) {
  P3GM_TRACE_SPAN("linalg.syrk");
  const std::size_t n = a.cols();
  Matrix c(n, n);
  // Parallel over disjoint blocks of output rows; inside a block the
  // accumulation over data rows p is the serial ascending order, so the
  // result matches the single-threaded kernel bit-for-bit. Row blocks of
  // the upper triangle shrink with i, so use a small grain to keep the
  // static assignment roughly balanced.
  util::ParallelFor(0, n, 4, [&](std::size_t rb, std::size_t re) {
    for (std::size_t p = 0; p < a.rows(); ++p) {
      const double* row = a.row_data(p);
      for (std::size_t i = rb; i < re; ++i) {
        const double av = row[i];
        if (av == 0.0) continue;
        double* crow = c.row_data(i);
        for (std::size_t j = i; j < n; ++j) crow[j] += av * row[j];
      }
    }
  });
  // Mirror the upper triangle. Each worker writes a disjoint block of
  // rows of the lower triangle.
  util::ParallelFor(0, n, kRowGrain, [&](std::size_t rb, std::size_t re) {
    for (std::size_t j = std::max<std::size_t>(rb, 1); j < re; ++j) {
      double* crow = c.row_data(j);
      for (std::size_t i = 0; i < j; ++i) crow[i] = c(i, j);
    }
  });
  return c;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  P3GM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  // max is exactly associative, so the chunked reduction is bit-identical
  // to the serial scan for any grain and thread count.
  return util::ParallelReduce(
      0, a.rows(), kRowGrain, 0.0,
      [&](std::size_t rb, std::size_t re) {
        double m = 0.0;
        for (std::size_t i = rb; i < re; ++i) {
          const double* ra = a.row_data(i);
          const double* rb_row = b.row_data(i);
          for (std::size_t j = 0; j < a.cols(); ++j) {
            m = std::max(m, std::fabs(ra[j] - rb_row[j]));
          }
        }
        return m;
      },
      [](double* acc, double partial) { *acc = std::max(*acc, partial); });
}

}  // namespace linalg
}  // namespace p3gm
