#include "linalg/matrix.h"

#include <cmath>
#include <sstream>

#include "util/string_utils.h"

namespace p3gm {
namespace linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  if (rows_ == 0) return;
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    P3GM_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

util::Result<Matrix> Matrix::FromFlat(std::size_t rows, std::size_t cols,
                                      std::vector<double> flat) {
  if (flat.size() != rows * cols) {
    return util::Status::InvalidArgument(
        "FromFlat: buffer size does not match rows*cols");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

util::Result<Matrix> Matrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const std::size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != cols) {
      return util::Status::InvalidArgument("FromRows: ragged rows");
    }
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

std::vector<double> Matrix::Row(std::size_t r) const {
  P3GM_CHECK(r < rows_);
  return std::vector<double>(row_data(r), row_data(r) + cols_);
}

std::vector<double> Matrix::Col(std::size_t c) const {
  P3GM_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

void Matrix::SetRow(std::size_t r, const std::vector<double>& values) {
  P3GM_CHECK(r < rows_ && values.size() == cols_);
  for (std::size_t j = 0; j < cols_; ++j) (*this)(r, j) = values[j];
}

Matrix Matrix::SelectRows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    P3GM_CHECK(indices[i] < rows_);
    const double* src = row_data(indices[i]);
    double* dst = out.row_data(i);
    for (std::size_t j = 0; j < cols_; ++j) dst[j] = src[j];
  }
  return out;
}

Matrix Matrix::FirstCols(std::size_t k) const {
  P3GM_CHECK(k <= cols_);
  Matrix out(rows_, k);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = row_data(i);
    double* dst = out.row_data(i);
    for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  P3GM_CHECK(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double* dst = out.row_data(i);
    const double* a = row_data(i);
    const double* b = other.row_data(i);
    for (std::size_t j = 0; j < cols_; ++j) dst[j] = a[j];
    for (std::size_t j = 0; j < other.cols_; ++j) dst[cols_ + j] = b[j];
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  P3GM_CHECK(cols_ == other.cols_);
  Matrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(data_.size()));
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::Fill(double value) {
  for (double& v : data_) v = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  P3GM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  P3GM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::ToString(int digits) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")\n";
  for (std::size_t i = 0; i < rows_; ++i) {
    os << "  [";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << util::FormatDouble((*this)(i, j), digits);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace linalg
}  // namespace p3gm
