#include <cmath>

#include "gtest/gtest.h"
#include "linalg/ops.h"
#include "pca/pca.h"
#include "util/rng.h"

namespace p3gm {
namespace pca {
namespace {

// Data concentrated along a known direction plus small isotropic noise.
linalg::Matrix LineData(std::size_t n, util::Rng* rng) {
  linalg::Matrix x(n, 3);
  // Dominant direction (1, 2, -1)/sqrt(6).
  const double dir[3] = {1.0 / std::sqrt(6.0), 2.0 / std::sqrt(6.0),
                         -1.0 / std::sqrt(6.0)};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng->Normal(0.0, 3.0);
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = t * dir[j] + rng->Normal(0.0, 0.05);
    }
  }
  return x;
}

TEST(PcaTest, ValidatesInput) {
  EXPECT_FALSE(FitPca(linalg::Matrix(), 1).ok());
  EXPECT_FALSE(FitPca(linalg::Matrix(5, 3, 1.0), 0).ok());
  EXPECT_FALSE(FitPca(linalg::Matrix(5, 3, 1.0), 4).ok());
}

TEST(PcaTest, FindsDominantDirection) {
  util::Rng rng(3);
  auto model = FitPca(LineData(500, &rng), 1);
  ASSERT_TRUE(model.ok());
  const double dir[3] = {1.0 / std::sqrt(6.0), 2.0 / std::sqrt(6.0),
                         -1.0 / std::sqrt(6.0)};
  double dot = 0.0;
  for (std::size_t j = 0; j < 3; ++j) dot += model->components()(j, 0) * dir[j];
  EXPECT_NEAR(std::fabs(dot), 1.0, 1e-3);
}

TEST(PcaTest, FullRankReconstructsExactly) {
  util::Rng rng(5);
  linalg::Matrix x(50, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  auto model = FitPca(x, 4);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->ReconstructionError(x), 0.0, 1e-12);
}

TEST(PcaTest, ReconstructionErrorDecreasesWithComponents) {
  util::Rng rng(7);
  linalg::Matrix x(200, 6);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  double prev = 1e18;
  for (std::size_t k = 1; k <= 6; ++k) {
    auto model = FitPca(x, k);
    ASSERT_TRUE(model.ok());
    const double err = model->ReconstructionError(x);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

TEST(PcaTest, ExplainedVarianceDescending) {
  util::Rng rng(9);
  auto model = FitPca(LineData(300, &rng), 3);
  ASSERT_TRUE(model.ok());
  const auto& ev = model->explained_variance();
  EXPECT_GE(ev[0], ev[1]);
  EXPECT_GE(ev[1], ev[2]);
  // Dominant component carries nearly all variance.
  EXPECT_GT(ev[0] / (ev[0] + ev[1] + ev[2]), 0.95);
}

TEST(PcaTest, TransformRowMatchesTransform) {
  util::Rng rng(11);
  linalg::Matrix x = LineData(20, &rng);
  auto model = FitPca(x, 2);
  ASSERT_TRUE(model.ok());
  linalg::Matrix z = model->Transform(x);
  for (std::size_t i = 0; i < 20; ++i) {
    auto zr = model->TransformRow(x.Row(i));
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(zr[j], z(i, j), 1e-12);
  }
}

TEST(PcaTest, HighDimensionUsesRandomizedPath) {
  // d > 160 triggers TopKEigenSym; verify the projection still captures a
  // planted low-rank structure.
  util::Rng rng(13);
  const std::size_t d = 200, n = 150;
  std::vector<double> dir(d);
  for (double& v : dir) v = rng.Normal();
  double norm = 0;
  for (double v : dir) norm += v * v;
  norm = std::sqrt(norm);
  for (double& v : dir) v /= norm;
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.Normal(0.0, 5.0);
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = t * dir[j] + rng.Normal(0.0, 0.05);
    }
  }
  auto model = FitPca(x, 2);
  ASSERT_TRUE(model.ok());
  double dot = 0.0;
  for (std::size_t j = 0; j < d; ++j) dot += model->components()(j, 0) * dir[j];
  EXPECT_NEAR(std::fabs(dot), 1.0, 1e-2);
}

// ----------------------------------------------------------------- DP-PCA

TEST(DpPcaTest, ValidatesInput) {
  util::Rng rng(17);
  DpPcaOptions opt;
  EXPECT_FALSE(FitDpPca(linalg::Matrix(), opt, &rng).ok());
  opt.epsilon = 0.0;
  EXPECT_FALSE(FitDpPca(linalg::Matrix(5, 3, 0.1), opt, &rng).ok());
  opt.epsilon = 1.0;
  opt.num_components = 9;
  EXPECT_FALSE(FitDpPca(linalg::Matrix(5, 3, 0.1), opt, &rng).ok());
}

TEST(DpPcaTest, LargeEpsilonApproachesExactPca) {
  util::Rng data_rng(19), mech_rng(23);
  linalg::Matrix x = LineData(2000, &data_rng);
  auto exact = FitPca(x, 1);
  DpPcaOptions opt;
  opt.num_components = 1;
  opt.epsilon = 1000.0;  // Essentially no noise.
  auto priv = FitDpPca(x, opt, &mech_rng);
  ASSERT_TRUE(exact.ok() && priv.ok());
  double dot = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    dot += exact->components()(j, 0) * priv->components()(j, 0);
  }
  EXPECT_NEAR(std::fabs(dot), 1.0, 0.05);
}

TEST(DpPcaTest, SmallEpsilonDegradesDirection) {
  util::Rng data_rng(29), mech_rng(31);
  linalg::Matrix x = LineData(200, &data_rng);
  auto exact = FitPca(x, 1);
  DpPcaOptions opt;
  opt.num_components = 1;
  opt.epsilon = 0.001;  // Huge Wishart noise for tiny n.
  auto priv = FitDpPca(x, opt, &mech_rng);
  ASSERT_TRUE(exact.ok() && priv.ok());
  double dot = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    dot += exact->components()(j, 0) * priv->components()(j, 0);
  }
  EXPECT_LT(std::fabs(dot), 0.999);
}

TEST(DpPcaTest, ComponentsAreUnitNorm) {
  util::Rng data_rng(37), mech_rng(41);
  linalg::Matrix x = LineData(300, &data_rng);
  DpPcaOptions opt;
  opt.num_components = 2;
  opt.epsilon = 0.5;
  auto model = FitDpPca(x, opt, &mech_rng);
  ASSERT_TRUE(model.ok());
  for (std::size_t c = 0; c < 2; ++c) {
    double norm2 = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      norm2 += model->components()(j, c) * model->components()(j, c);
    }
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(DpPcaTest, DeterministicGivenRngState) {
  util::Rng data_rng(43);
  linalg::Matrix x = LineData(100, &data_rng);
  DpPcaOptions opt;
  opt.num_components = 1;
  opt.epsilon = 0.2;
  util::Rng r1(47), r2(47);
  auto a = FitDpPca(x, opt, &r1);
  auto b = FitDpPca(x, opt, &r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->components(), b->components());
}

}  // namespace
}  // namespace pca
}  // namespace p3gm
