#include <cmath>
#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "data/images.h"

namespace p3gm {
namespace data {
namespace {

TEST(ImagesTest, MnistLikeShape) {
  Dataset d = MakeMnistLike(50, 3);
  EXPECT_EQ(d.dim(), kImagePixels);
  EXPECT_EQ(d.num_classes, 10u);
  EXPECT_EQ(d.size(), 50u);
}

TEST(ImagesTest, PixelsInUnitInterval) {
  for (const Dataset& d : {MakeMnistLike(30, 5), MakeFashionLike(30, 5)}) {
    for (std::size_t i = 0; i < d.features.size(); ++i) {
      EXPECT_GE(d.features.data()[i], 0.0);
      EXPECT_LE(d.features.data()[i], 1.0);
    }
  }
}

TEST(ImagesTest, GlyphsHaveInk) {
  // Every rendered glyph must contain a meaningful amount of bright ink.
  Dataset d = MakeMnistLike(60, 7);
  for (std::size_t i = 0; i < d.size(); ++i) {
    double ink = 0.0;
    for (std::size_t j = 0; j < kImagePixels; ++j) {
      ink += d.features(i, j);
    }
    EXPECT_GT(ink, 10.0) << "image " << i << " label " << d.labels[i];
    EXPECT_LT(ink, 500.0);
  }
}

TEST(ImagesTest, ClassesAreVisuallyDistinct) {
  // Mean images of different digits must differ substantially — this is
  // the "ten distinct modes" property Fig. 2 relies on.
  Dataset d = MakeMnistLike(600, 11);
  std::vector<std::vector<double>> means(10,
                                         std::vector<double>(kImagePixels));
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    ++counts[d.labels[i]];
    for (std::size_t j = 0; j < kImagePixels; ++j) {
      means[d.labels[i]][j] += d.features(i, j);
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    ASSERT_GT(counts[c], 0u);
    for (double& v : means[c]) v /= static_cast<double>(counts[c]);
  }
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      double dist = 0.0;
      for (std::size_t j = 0; j < kImagePixels; ++j) {
        const double diff = means[a][j] - means[b][j];
        dist += diff * diff;
      }
      EXPECT_GT(std::sqrt(dist), 1.0) << "digits " << a << " vs " << b;
    }
  }
}

TEST(ImagesTest, WithinClassDiversity) {
  // Jitter must create within-class variation (anti-mode-collapse
  // reference point): two samples of the same digit are not identical.
  Dataset d = MakeMnistLike(100, 13);
  for (std::size_t c = 0; c < 10; ++c) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d.labels[i] == c) idx.push_back(i);
    }
    if (idx.size() < 2) continue;
    double dist = 0.0;
    for (std::size_t j = 0; j < kImagePixels; ++j) {
      const double diff = d.features(idx[0], j) - d.features(idx[1], j);
      dist += diff * diff;
    }
    EXPECT_GT(dist, 0.1) << "class " << c;
  }
}

TEST(ImagesTest, AsciiImageDimensions) {
  Dataset d = MakeMnistLike(10, 17);
  const std::string art = AsciiImage(d.features.row_data(0));
  EXPECT_EQ(art.size(), kImageSide * (kImageSide + 1));
  std::size_t newlines = 0;
  for (char ch : art) newlines += (ch == '\n');
  EXPECT_EQ(newlines, kImageSide);
}

TEST(ImagesTest, SavePgmWritesValidHeader) {
  Dataset d = MakeMnistLike(12, 19);
  const linalg::Matrix six = d.features.SelectRows({0, 1, 2, 3, 4, 5});
  const std::string path = ::testing::TempDir() + "/p3gm_grid.pgm";
  ASSERT_TRUE(SaveImageGridPgm(six, 3, path).ok());
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  std::size_t w, h, maxv;
  f >> w >> h >> maxv;
  EXPECT_EQ(w, 3u * 29 - 1);
  EXPECT_EQ(h, 2u * 29 - 1);
  EXPECT_EQ(maxv, 255u);
}

TEST(ImagesTest, SavePgmValidatesInput) {
  EXPECT_FALSE(SaveImageGridPgm(linalg::Matrix(2, 10), 2, "/tmp/x.pgm").ok());
  EXPECT_FALSE(
      SaveImageGridPgm(linalg::Matrix(2, kImagePixels), 0, "/tmp/x.pgm").ok());
}

TEST(ImagesTest, FashionClassesDistinct) {
  Dataset d = MakeFashionLike(400, 23);
  // Trouser (1) and bag (8) silhouettes must differ.
  std::vector<double> m1(kImagePixels, 0.0), m8(kImagePixels, 0.0);
  std::size_t n1 = 0, n8 = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 1) {
      ++n1;
      for (std::size_t j = 0; j < kImagePixels; ++j) m1[j] += d.features(i, j);
    } else if (d.labels[i] == 8) {
      ++n8;
      for (std::size_t j = 0; j < kImagePixels; ++j) m8[j] += d.features(i, j);
    }
  }
  ASSERT_GT(n1, 0u);
  ASSERT_GT(n8, 0u);
  double dist = 0.0;
  for (std::size_t j = 0; j < kImagePixels; ++j) {
    const double diff = m1[j] / n1 - m8[j] / n8;
    dist += diff * diff;
  }
  EXPECT_GT(std::sqrt(dist), 1.0);
}

TEST(ImagesTest, DeterministicInSeed) {
  Dataset a = MakeMnistLike(20, 29);
  Dataset b = MakeMnistLike(20, 29);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace data
}  // namespace p3gm
