// Unit tests for the infer kernel layer: packed layout, arena, edge
// shapes (0/1 dims, remainder tiles on every edge), unaligned buffers,
// scalar/SIMD tier agreement, plan-compile validation, and the fatal
// aliasing check. The oracle is an in-test naive implementation of the
// accumulation-order contract, written against linalg::Matmul's
// semantics rather than the kernel's own panel loop.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "infer/arena.h"
#include "infer/kernels.h"
#include "infer/plan.h"
#include "linalg/matrix.h"
#include "nn/activations.h"
#include "util/rng.h"

namespace p3gm {
namespace {

using infer::Activation;
using infer::KernelTier;
using infer::PackedLayer;

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                            util::Rng* rng, double zero_fraction = 0.0) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform() < zero_fraction ? 0.0 : rng->Normal();
  }
  return m;
}

double ApplyAct(Activation act, double v) {
  switch (act) {
    case Activation::kIdentity:
      return v;
    case Activation::kRelu:
      return v < 0.0 ? 0.0 : v;
    case Activation::kSigmoid:
      return nn::SigmoidScalar(v);
    case Activation::kTanh:
      return std::tanh(v);
    case Activation::kClamp01:
      return std::clamp(v, 0.0, 1.0);
  }
  return v;
}

// Independent oracle: the exact reference op sequence (ascending-k
// mul-then-add from +0.0 with the zero-multiplier skip, bias after the
// full accumulation, then the scalar activation).
linalg::Matrix NaiveFused(const linalg::Matrix& a, const linalg::Matrix& w,
                          const linalg::Matrix& bias, Activation act) {
  linalg::Matrix y(a.rows(), w.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < w.rows(); ++k) {
      const double av = a(i, k);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < w.cols(); ++j) {
        y(i, j) += av * w(k, j);
      }
    }
    for (std::size_t j = 0; j < w.cols(); ++j) {
      y(i, j) = ApplyAct(act, y(i, j) + bias(0, j));
    }
  }
  return y;
}

// Runs RunFusedLayer on `tier` with configurable extra strides/offsets
// and compares bit-for-bit against the oracle.
void CheckFusedLayer(KernelTier tier, const linalg::Matrix& a,
                     const linalg::Matrix& w, const linalg::Matrix& bias,
                     Activation act, std::size_t a_pad = 0,
                     std::size_t c_pad = 0, std::size_t dst_pad = 0,
                     std::size_t misalign = 0) {
  const PackedLayer layer = infer::PackLayer(w, bias, act);
  const std::size_t rows = a.rows();
  const std::size_t a_stride = layer.in + a_pad;
  const std::size_t c_stride = layer.padded_out + c_pad;
  const std::size_t dst_stride = layer.out + dst_pad;

  std::vector<double> a_buf(rows * a_stride + misalign + 1, -7.0);
  for (std::size_t i = 0; i < rows; ++i) {
    std::memcpy(a_buf.data() + misalign + i * a_stride, a.row_data(i),
                layer.in * sizeof(double));
  }
  std::vector<double> scratch(rows * c_stride + misalign + 1, -7.0);
  std::vector<double> dst(rows * dst_stride + misalign + 1, -7.0);

  infer::RunFusedLayer(tier, a_buf.data() + misalign, a_stride, rows, layer,
                       scratch.data() + misalign, c_stride,
                       dst.data() + misalign, dst_stride);

  const linalg::Matrix want = NaiveFused(a, w, bias, act);
  for (std::size_t i = 0; i < rows; ++i) {
    ASSERT_EQ(std::memcmp(dst.data() + misalign + i * dst_stride,
                          want.row_data(i), layer.out * sizeof(double)),
              0)
        << infer::TierName(tier) << " row " << i << " (shape " << rows << "x"
        << layer.in << "x" << layer.out << ", act "
        << infer::ActivationName(act) << ", pads " << a_pad << "/" << c_pad
        << "/" << dst_pad << ", misalign " << misalign << ")";
  }
  // Row padding past `out` must be untouched in dst.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = layer.out; j < dst_stride; ++j) {
      if (misalign + i * dst_stride + j < dst.size() - 1) {
        ASSERT_EQ(dst[misalign + i * dst_stride + j], -7.0)
            << "dst row padding clobbered at row " << i << " col " << j;
      }
    }
  }
}

std::vector<KernelTier> TiersToTest() {
  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  if (infer::Avx2Supported()) tiers.push_back(KernelTier::kAvx2);
  return tiers;
}

// --- packing -------------------------------------------------------------

TEST(InferPack, PanelMajorLayoutAndRaggedPadding) {
  linalg::Matrix w(3, 11);  // 11 cols: one full panel + ragged panel of 3.
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < 11; ++j) {
      w(k, j) = 100.0 * static_cast<double>(k) + static_cast<double>(j);
    }
  }
  linalg::Matrix bias(1, 11);
  for (std::size_t j = 0; j < 11; ++j) bias(0, j) = static_cast<double>(j);

  const PackedLayer layer = infer::PackLayer(w, bias, Activation::kRelu);
  EXPECT_EQ(layer.in, 3u);
  EXPECT_EQ(layer.out, 11u);
  EXPECT_EQ(layer.padded_out, 16u);
  // The buffer carries up to one panel row of alignment slack ahead of
  // the panel area; panels() must start on a cache-line boundary.
  ASSERT_GE(layer.packed.size(), 3u * 16u);
  ASSERT_LE(layer.packed.size(), 3u * 16u + infer::kPanelWidth - 1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(layer.panels()) % 64, 0u);
  ASSERT_EQ(layer.bias.size(), 11u);

  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t k = 0; k < 3; ++k) {
      for (std::size_t jj = 0; jj < infer::kPanelWidth; ++jj) {
        const std::size_t j = p * infer::kPanelWidth + jj;
        const double got =
            layer.panels()[p * 3 * infer::kPanelWidth +
                           k * infer::kPanelWidth + jj];
        if (j < 11) {
          EXPECT_EQ(got, w(k, j)) << "panel " << p << " k " << k << " jj "
                                  << jj;
        } else {
          EXPECT_EQ(got, 0.0) << "ragged panel not zero-padded at k " << k
                              << " jj " << jj;
        }
      }
    }
  }
}

// --- edge shapes ---------------------------------------------------------

TEST(InferKernels, ZeroAndOneDims) {
  util::Rng rng(1);
  for (KernelTier tier : TiersToTest()) {
    // rows == 0: no-op (nothing readable to assert beyond not crashing).
    {
      linalg::Matrix a(0, 4), w = RandomMatrix(4, 5, &rng);
      linalg::Matrix b = RandomMatrix(1, 5, &rng);
      CheckFusedLayer(tier, a, w, b, Activation::kRelu);
    }
    // K == 0 is exercised at the RunFusedLayer level with in == 0:
    // output is act(bias) exactly.
    {
      linalg::Matrix a(3, 0), w(0, 5);
      linalg::Matrix b = RandomMatrix(1, 5, &rng);
      CheckFusedLayer(tier, a, w, b, Activation::kSigmoid);
    }
    // N == 0: no output columns, must not touch dst.
    {
      linalg::Matrix a = RandomMatrix(3, 4, &rng), w(4, 0), b(1, 0);
      CheckFusedLayer(tier, a, w, b, Activation::kIdentity, 0, 0, 2);
    }
    // All-ones shape.
    {
      linalg::Matrix a = RandomMatrix(1, 1, &rng);
      linalg::Matrix w = RandomMatrix(1, 1, &rng);
      linalg::Matrix b = RandomMatrix(1, 1, &rng);
      CheckFusedLayer(tier, a, w, b, Activation::kTanh);
    }
  }
}

TEST(InferKernels, RemainderTilesOnEveryEdge) {
  util::Rng rng(2);
  // Rows around the 4-row register tile, widths around the 8-col panel.
  const std::size_t kRows[] = {1, 2, 3, 4, 5, 7, 8, 9};
  const std::size_t kCols[] = {1, 7, 8, 9, 15, 16, 17};
  const std::size_t kDepth[] = {1, 2, 5, 8};
  for (KernelTier tier : TiersToTest()) {
    for (std::size_t m : kRows) {
      for (std::size_t n : kCols) {
        for (std::size_t k : kDepth) {
          linalg::Matrix a = RandomMatrix(m, k, &rng, 0.3);
          linalg::Matrix w = RandomMatrix(k, n, &rng);
          linalg::Matrix b = RandomMatrix(1, n, &rng);
          CheckFusedLayer(tier, a, w, b, Activation::kRelu);
        }
      }
    }
  }
}

// K crossing the AVX2 kernel's k-block boundary: the accumulator spills
// to scratch and reloads between blocks, which must be exact.
TEST(InferKernels, KBlockBoundary) {
  util::Rng rng(3);
  for (KernelTier tier : TiersToTest()) {
    for (std::size_t k : {511u, 512u, 513u, 1024u, 1030u}) {
      linalg::Matrix a = RandomMatrix(5, k, &rng, 0.4);
      linalg::Matrix w = RandomMatrix(k, 9, &rng);
      linalg::Matrix b = RandomMatrix(1, 9, &rng);
      CheckFusedLayer(tier, a, w, b, Activation::kSigmoid);
    }
  }
}

TEST(InferKernels, UnalignedBuffersAndPaddedStrides) {
  util::Rng rng(4);
  for (KernelTier tier : TiersToTest()) {
    for (std::size_t misalign : {1u, 3u, 5u}) {
      linalg::Matrix a = RandomMatrix(6, 10, &rng, 0.2);
      linalg::Matrix w = RandomMatrix(10, 13, &rng);
      linalg::Matrix b = RandomMatrix(1, 13, &rng);
      // Odd row strides on every buffer plus a non-16-byte-aligned base.
      CheckFusedLayer(tier, a, w, b, Activation::kRelu, /*a_pad=*/3,
                      /*c_pad=*/1, /*dst_pad=*/5, misalign);
    }
  }
}

TEST(InferKernels, InPlaceDstEqualsScratch) {
  util::Rng rng(5);
  for (KernelTier tier : TiersToTest()) {
    linalg::Matrix a = RandomMatrix(7, 6, &rng);
    linalg::Matrix w = RandomMatrix(6, 12, &rng);
    linalg::Matrix b = RandomMatrix(1, 12, &rng);
    const PackedLayer layer = infer::PackLayer(w, b, Activation::kTanh);
    std::vector<double> buf(7 * layer.padded_out, 0.0);
    infer::RunFusedLayer(tier, a.data(), 6, 7, layer, buf.data(),
                         layer.padded_out, buf.data(), layer.padded_out);
    const linalg::Matrix want = NaiveFused(a, w, b, Activation::kTanh);
    for (std::size_t i = 0; i < 7; ++i) {
      ASSERT_EQ(std::memcmp(buf.data() + i * layer.padded_out,
                            want.row_data(i), 12 * sizeof(double)),
                0)
          << infer::TierName(tier) << " row " << i;
    }
  }
}

// Scalar and AVX2 tiers must agree bit-for-bit on identical inputs —
// the per-lane accumulation is the same scalar recurrence.
TEST(InferKernels, TiersAgreeBitForBit) {
  if (!infer::Avx2Supported()) {
    GTEST_SKIP() << "no AVX2 tier in this build/CPU";
  }
  util::Rng rng(6);
  for (std::size_t n : {1u, 8u, 9u, 24u, 57u}) {
    linalg::Matrix a = RandomMatrix(11, 33, &rng, 0.5);
    linalg::Matrix w = RandomMatrix(33, n, &rng);
    linalg::Matrix b = RandomMatrix(1, n, &rng);
    const PackedLayer layer = infer::PackLayer(w, b, Activation::kSigmoid);
    std::vector<double> s1(11 * layer.padded_out), d1(11 * n);
    std::vector<double> s2(11 * layer.padded_out), d2(11 * n);
    infer::RunFusedLayer(KernelTier::kScalar, a.data(), 33, 11, layer,
                         s1.data(), layer.padded_out, d1.data(), n);
    infer::RunFusedLayer(KernelTier::kAvx2, a.data(), 33, 11, layer,
                         s2.data(), layer.padded_out, d2.data(), n);
    ASSERT_EQ(std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(double)),
              0)
        << "n=" << n;
  }
}

// --- arena ---------------------------------------------------------------

TEST(InferArena, GrowthAlignmentAndReuse) {
  infer::Arena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  double* p0 = arena.Reserve(0);
  EXPECT_NE(p0, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p0) % 64, 0u);

  double* p1 = arena.Reserve(100);
  EXPECT_GE(arena.capacity(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, 0u);
  const std::size_t cap = arena.capacity();

  // Smaller request: no reallocation, same mapping.
  double* p2 = arena.Reserve(50);
  EXPECT_EQ(p2, p1);
  EXPECT_EQ(arena.capacity(), cap);

  // Larger request: grows geometrically.
  double* p3 = arena.Reserve(cap + 1);
  EXPECT_GE(arena.capacity(), cap + 1);
  EXPECT_GE(arena.capacity(), 2 * cap);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p3) % 64, 0u);
  EXPECT_EQ(arena.capacity_bytes(), arena.capacity() * sizeof(double));
}

// --- plan validation -----------------------------------------------------

TEST(InferPlan, CompileRejectsBadSpecs) {
  util::Rng rng(7);
  linalg::Matrix w1 = RandomMatrix(4, 6, &rng);
  linalg::Matrix b1 = RandomMatrix(1, 6, &rng);
  linalg::Matrix w2 = RandomMatrix(6, 3, &rng);
  linalg::Matrix b2 = RandomMatrix(1, 3, &rng);

  EXPECT_FALSE(infer::DecoderPlan::Compile({}).ok());
  EXPECT_FALSE(
      infer::DecoderPlan::Compile({{nullptr, &b1, Activation::kRelu}}).ok());
  EXPECT_FALSE(
      infer::DecoderPlan::Compile({{&w1, nullptr, Activation::kRelu}}).ok());
  // Bias shape mismatch.
  EXPECT_FALSE(
      infer::DecoderPlan::Compile({{&w1, &b2, Activation::kRelu}}).ok());
  // Chain mismatch: layer 1 expects 6 inputs, gets 3.
  EXPECT_FALSE(infer::DecoderPlan::Compile({{&w2, &b2, Activation::kRelu},
                                            {&w2, &b2, Activation::kRelu}})
                   .ok());
  // Zero-dimension layer.
  linalg::Matrix w0(0, 5), b0(1, 5);
  EXPECT_FALSE(
      infer::DecoderPlan::Compile({{&w0, &b0, Activation::kRelu}}).ok());

  // The happy path compiles and reports its dimensions.
  auto plan = infer::DecoderPlan::Compile(
      {{&w1, &b1, Activation::kRelu}, {&w2, &b2, Activation::kSigmoid}});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->input_dim(), 4u);
  EXPECT_EQ(plan->output_dim(), 3u);
  EXPECT_EQ(plan->num_layers(), 2u);
  EXPECT_GT(plan->ArenaDoublesFor(10), 0u);
}

TEST(InferPlan, ExecuteRejectsWrongInputWidth) {
  util::Rng rng(8);
  linalg::Matrix w = RandomMatrix(4, 6, &rng);
  linalg::Matrix b = RandomMatrix(1, 6, &rng);
  auto plan = infer::DecoderPlan::Compile({{&w, &b, Activation::kRelu}});
  ASSERT_TRUE(plan.ok());
  linalg::Matrix x = RandomMatrix(2, 5, &rng);
  linalg::Matrix out;
  EXPECT_FALSE(plan->Execute(x, &out).ok());
}

// Overlapping input/output buffers corrupt the in-place accumulation;
// the plan layer makes that a loud contract violation, not silent
// garbage.
TEST(InferPlanDeathTest, AliasedBuffersAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  util::Rng rng(9);
  linalg::Matrix w = RandomMatrix(4, 4, &rng);
  linalg::Matrix b = RandomMatrix(1, 4, &rng);
  auto plan = infer::DecoderPlan::Compile({{&w, &b, Activation::kRelu}});
  ASSERT_TRUE(plan.ok());
  std::vector<double> buf(3 * 4 + 2, 0.5);
  infer::Arena arena;
  EXPECT_DEATH(
      {
        auto st = plan->ExecuteRaw(buf.data(), 4, 3, buf.data() + 2, 4,
                                   &arena);
        (void)st;
      },
      "alias");
}

}  // namespace
}  // namespace p3gm
