#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "audit/stat_tests.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {
namespace {

// ------------------------------------------------------ special functions

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(util::NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(util::NormalCdf(1.96), 0.9750021048517795, 1e-9);
  EXPECT_NEAR(util::NormalCdf(-1.0), 1.0 - util::NormalCdf(1.0), 1e-12);
  EXPECT_NEAR(util::NormalCdf(2.0, 2.0, 3.0), 0.5, 1e-12);
}

TEST(DistributionsTest, LaplaceCdfKnownValues) {
  EXPECT_NEAR(util::LaplaceCdf(0.0, 0.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(util::LaplaceCdf(1.0, 0.0, 1.0), 1.0 - 0.5 * std::exp(-1.0),
              1e-12);
  EXPECT_NEAR(util::LaplaceCdf(-1.0, 0.0, 1.0), 0.5 * std::exp(-1.0), 1e-12);
}

TEST(DistributionsTest, GammaCdfMatchesExponential) {
  // Gamma(1, scale) is Exponential(1/scale).
  for (double x : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(util::GammaCdf(x, 1.0, 2.0), 1.0 - std::exp(-x / 2.0), 1e-10);
  }
}

TEST(DistributionsTest, ChiSquaredCdfKnownValues) {
  // chi^2(2) is Exponential(1/2): CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(util::ChiSquaredCdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  // Median of chi^2(1) is ~0.4549.
  EXPECT_NEAR(util::ChiSquaredCdf(0.454936, 1.0), 0.5, 1e-5);
}

TEST(DistributionsTest, IncompleteBetaRoundTrip) {
  for (double a : {0.5, 2.0, 17.0}) {
    for (double b : {1.0, 3.0, 40.0}) {
      for (double p : {0.05, 0.5, 0.95}) {
        const double x = util::IncompleteBetaInv(a, b, p);
        EXPECT_NEAR(util::RegularizedIncompleteBeta(a, b, x), p, 1e-9)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

// ------------------------------------------------------------------- KS

TEST(KsTest, ExactUniformGridHasTinyStatistic) {
  // Points at the (i+0.5)/n quantiles minimize the KS statistic (1/2n).
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = (static_cast<double>(i) + 0.5) / 100.0;
  }
  const GofResult r = KolmogorovSmirnovTest(xs, [](double x) { return x; });
  EXPECT_NEAR(r.statistic, 0.005, 1e-12);
  EXPECT_GT(r.p_value, 0.999);
}

TEST(KsTest, ShiftedDistributionRejected) {
  util::Rng rng(7);
  std::vector<double> xs(2000);
  for (double& x : xs) x = rng.Normal() + 0.5;  // Wrong mean.
  const GofResult r = KolmogorovSmirnovTest(
      std::move(xs), [](double x) { return util::NormalCdf(x); });
  EXPECT_LT(r.p_value, 1e-8);
  EXPECT_FALSE(r.Pass());
}

TEST(KsTest, CorrectDistributionAccepted) {
  util::Rng rng(7);
  std::vector<double> xs(2000);
  for (double& x : xs) x = rng.Normal();
  const GofResult r = KolmogorovSmirnovTest(
      std::move(xs), [](double x) { return util::NormalCdf(x); });
  EXPECT_TRUE(r.Pass()) << r.Summary();
}

TEST(KsTest, KolmogorovSurvivalKnownValues) {
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.05, 2e-3);  // Classic 5% point.
  EXPECT_NEAR(KolmogorovSurvival(1.63), 0.01, 1e-3);  // Classic 1% point.
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
}

// ------------------------------------------------------------ chi-squared

TEST(ChiSquaredGofTest, PerfectFitHasZeroStatistic) {
  const std::vector<double> obs{10, 20, 30};
  const GofResult r = ChiSquaredGofTest(obs, obs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(ChiSquaredGofTest, GrossMismatchRejected) {
  const GofResult r =
      ChiSquaredGofTest({100, 0, 0, 0}, {25, 25, 25, 25});
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(BinnedChiSquaredTest, UniformSamplesPass) {
  util::Rng rng(11);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.Uniform();
  const GofResult r =
      BinnedChiSquaredTest(xs, [](double p) { return p; }, 20);
  EXPECT_TRUE(r.Pass()) << r.Summary();
}

TEST(BinnedChiSquaredTest, SkewedSamplesFail) {
  util::Rng rng(11);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.Uniform() * rng.Uniform();  // Not uniform.
  const GofResult r =
      BinnedChiSquaredTest(xs, [](double p) { return p; }, 20);
  EXPECT_FALSE(r.Pass());
}

// -------------------------------------------------------- Clopper-Pearson

TEST(ClopperPearsonTest, BoundsBracketTheMle) {
  const double lo = ClopperPearsonLower(80, 100, 0.95);
  const double hi = ClopperPearsonUpper(80, 100, 0.95);
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 0.8);
  // Textbook two-sided 90% interval for 80/100 is roughly (0.72, 0.86).
  EXPECT_NEAR(lo, 0.7253, 5e-3);
  EXPECT_NEAR(hi, 0.8609, 5e-3);
}

TEST(ClopperPearsonTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ClopperPearsonLower(0, 50, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(ClopperPearsonUpper(50, 50, 0.95), 1.0);
  // Rule of three: upper bound of 0/n at 95% is ~3/n.
  EXPECT_NEAR(ClopperPearsonUpper(0, 100, 0.95), 0.0295, 2e-3);
  EXPECT_NEAR(ClopperPearsonLower(100, 100, 0.95), 1.0 - 0.0295, 2e-3);
}

TEST(ClopperPearsonTest, HigherConfidenceIsWider) {
  EXPECT_LT(ClopperPearsonLower(40, 100, 0.99),
            ClopperPearsonLower(40, 100, 0.9));
  EXPECT_GT(ClopperPearsonUpper(40, 100, 0.99),
            ClopperPearsonUpper(40, 100, 0.9));
}

TEST(ClopperPearsonTest, CoverageOnSimulatedBinomials) {
  // The lower bound must sit below the true p in ~confidence of runs;
  // with 200 runs at 95% we allow up to 10% misses (binomial slack).
  util::Rng rng(13);
  const double p = 0.3;
  std::size_t misses = 0;
  for (int run = 0; run < 200; ++run) {
    std::size_t k = 0;
    for (int i = 0; i < 60; ++i) k += rng.Bernoulli(p) ? 1 : 0;
    if (ClopperPearsonLower(k, 60, 0.95) > p) ++misses;
  }
  EXPECT_LE(misses, 20u);
}

}  // namespace
}  // namespace audit
}  // namespace p3gm
