// Tests of the Gaussian observation model (DecoderType::kGaussian) in
// VAE and PGM, plus its propagation through the release package.

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "core/pgm.h"
#include "core/release.h"
#include "core/synthesizer.h"
#include "core/vae.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace p3gm {
namespace core {
namespace {

// Continuous data concentrated around 0.3/0.7 — awkward for a Bernoulli
// likelihood, natural for a Gaussian one.
linalg::Matrix MidRangeData(std::size_t n, util::Rng* rng) {
  linalg::Matrix x(n, 5);
  for (std::size_t i = 0; i < n; ++i) {
    const bool mode = rng->Bernoulli(0.5);
    for (std::size_t j = 0; j < 5; ++j) {
      x(i, j) = std::clamp(
          rng->Normal(mode ? 0.7 : 0.3, 0.03), 0.0, 1.0);
    }
  }
  return x;
}

TEST(GaussianDecoderTest, VaeLearnsMidRangeModes) {
  util::Rng rng(3);
  linalg::Matrix x = MidRangeData(400, &rng);
  VaeOptions opt;
  opt.hidden = 32;
  opt.latent_dim = 2;
  opt.epochs = 30;
  opt.batch_size = 50;
  opt.decoder = DecoderType::kGaussian;
  Vae vae(opt);
  ASSERT_TRUE(vae.Fit(x).ok());
  util::Rng srng(5);
  linalg::Matrix s = vae.Sample(400, &srng);
  // Sample mean near the data mean, and both modes represented.
  double mean = 0.0;
  std::size_t hi = 0, lo = 0;
  for (std::size_t i = 0; i < s.rows(); ++i) {
    mean += s(i, 0);
    hi += (s(i, 0) > 0.55);
    lo += (s(i, 0) < 0.45);
  }
  mean /= static_cast<double>(s.rows());
  EXPECT_NEAR(mean, 0.5, 0.08);
  EXPECT_GT(hi, 50u);
  EXPECT_GT(lo, 50u);
}

TEST(GaussianDecoderTest, OutputsClampedToUnitInterval) {
  util::Rng rng(7);
  linalg::Matrix x = MidRangeData(200, &rng);
  PgmOptions opt;
  opt.hidden = 16;
  opt.latent_dim = 2;
  opt.mog_components = 2;
  opt.epochs = 5;
  opt.batch_size = 50;
  opt.decoder = DecoderType::kGaussian;
  Pgm pgm(opt);
  ASSERT_TRUE(pgm.Fit(x).ok());
  util::Rng srng(9);
  linalg::Matrix s = pgm.Sample(100, &srng);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s.data()[i], 0.0);
    EXPECT_LE(s.data()[i], 1.0);
  }
}

TEST(GaussianDecoderTest, BothDecodersRecoverMidRangeModes) {
  // On data away from {0,1}, both observation models must place samples
  // tightly around the true modes (the Gaussian decoder is the natural
  // choice there, but the Bernoulli one remains usable).
  util::Rng rng(11);
  linalg::Matrix x = MidRangeData(600, &rng);
  auto mode_spread = [&](DecoderType type) {
    PgmOptions opt;
    opt.hidden = 32;
    opt.latent_dim = 2;
    opt.mog_components = 2;
    opt.epochs = 40;
    opt.batch_size = 60;
    opt.decoder = type;
    opt.seed = 13;
    Pgm pgm(opt);
    P3GM_CHECK(pgm.Fit(x).ok());
    util::Rng srng(15);
    linalg::Matrix s = pgm.Sample(300, &srng);
    // Mean absolute distance of feature 0 from the nearer mode.
    double total = 0.0;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      total += std::min(std::fabs(s(i, 0) - 0.3), std::fabs(s(i, 0) - 0.7));
    }
    return total / static_cast<double>(s.rows());
  };
  const double gaussian = mode_spread(DecoderType::kGaussian);
  const double bernoulli = mode_spread(DecoderType::kBernoulli);
  EXPECT_LT(gaussian, 0.1);
  EXPECT_LT(bernoulli, 0.1);
}

TEST(GaussianDecoderTest, ReleasePackagePreservesDecoderType) {
  data::Dataset train = data::MakeAdultLike(300, 17);
  PgmOptions opt;
  opt.hidden = 16;
  opt.latent_dim = 3;
  opt.mog_components = 2;
  opt.epochs = 4;
  opt.batch_size = 50;
  opt.decoder = DecoderType::kGaussian;
  PgmSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  auto pkg = ReleasePackage::FromPgm(&synth.model(), train.num_classes,
                                     "gaussian-test");
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(pkg->decoder_type(), DecoderType::kGaussian);
  const std::string path = ::testing::TempDir() + "/gauss_pkg.release";
  ASSERT_TRUE(pkg->Save(path).ok());
  auto loaded = ReleasePackage::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->decoder_type(), DecoderType::kGaussian);
  // Same RNG state => identical samples through save/load.
  util::Rng r1(19), r2(19);
  auto a = pkg->Generate(40, &r1);
  auto b = loaded->Generate(40, &r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

}  // namespace
}  // namespace core
}  // namespace p3gm
