// End-to-end integration tests: the full paper pipeline at reduced scale.
// These are the slowest tests in the suite (a few seconds each) and guard
// the qualitative claims the benches rely on.

#include <cmath>

#include "gtest/gtest.h"
#include "baselines/dp_gm.h"
#include "baselines/privbayes.h"
#include "core/pgm.h"
#include "core/synthesizer.h"
#include "core/vae.h"
#include "data/images.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "util/rng.h"

namespace p3gm {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new data::Dataset(data::MakeAdultLike(2500, 7));
    auto split = data::StratifiedSplit(*data_, 0.25, 11);
    ASSERT_TRUE(split.ok());
    split_ = new data::Split(std::move(split).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete split_;
    data_ = nullptr;
    split_ = nullptr;
  }

  static core::PgmOptions BaseOptions() {
    core::PgmOptions opt;
    opt.hidden = 200;
    opt.latent_dim = 8;
    opt.mog_components = 3;
    opt.epochs = 50;
    opt.batch_size = 100;
    return opt;
  }

  static double RunProtocol(core::Synthesizer* synth) {
    EXPECT_TRUE(synth->Fit(split_->train).ok());
    util::Rng rng(3);
    auto gen = core::GenerateWithLabelRatio(synth, split_->train.size(),
                                            split_->train, &rng);
    EXPECT_TRUE(gen.ok());
    auto res = eval::EvaluateSyntheticData(*gen, split_->test, /*fast=*/true);
    EXPECT_TRUE(res.ok());
    return res->mean_auroc;
  }

  static data::Dataset* data_;
  static data::Split* split_;
};

data::Dataset* PipelineTest::data_ = nullptr;
data::Split* PipelineTest::split_ = nullptr;

TEST_F(PipelineTest, OriginalDataBeatsChance) {
  auto res = eval::EvaluateSyntheticData(split_->train, split_->test, true);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->mean_auroc, 0.85);
}

TEST_F(PipelineTest, NonPrivatePgmIsUseful) {
  core::PgmSynthesizer pgm(BaseOptions());
  EXPECT_GT(RunProtocol(&pgm), 0.75);
}

TEST_F(PipelineTest, P3gmAtEpsilonOneStillUseful) {
  core::PgmOptions opt = BaseOptions();
  opt.differentially_private = true;
  auto sigma = core::Pgm::CalibrateSigma(opt, split_->train.size(), 1.0, 1e-5);
  ASSERT_TRUE(sigma.ok());
  opt.sgd_sigma = *sigma;
  core::PgmSynthesizer p3gm(opt);
  const double auroc = RunProtocol(&p3gm);
  EXPECT_GT(auroc, 0.65);
  // Accounting invariant: the performed run meets its epsilon budget.
  EXPECT_LE(p3gm.ComputeEpsilon(1e-5).epsilon, 1.0 + 1e-6);
}

TEST_F(PipelineTest, P3gmBeatsDpGmOnThisData) {
  // The headline Table VI ordering, at test scale and fixed seeds.
  core::PgmOptions popt = BaseOptions();
  popt.differentially_private = true;
  auto psigma =
      core::Pgm::CalibrateSigma(popt, split_->train.size(), 1.0, 1e-5);
  ASSERT_TRUE(psigma.ok());
  popt.sgd_sigma = *psigma;
  core::PgmSynthesizer p3gm(popt);
  const double p3gm_auroc = RunProtocol(&p3gm);

  baselines::DpGmOptions gopt;
  gopt.num_clusters = 4;
  gopt.vae.hidden = 100;
  gopt.vae.latent_dim = 8;
  gopt.vae.epochs = 20;
  gopt.vae.batch_size = 50;
  auto gsigma =
      baselines::DpGmSynthesizer::CalibrateSigma(gopt, split_->train.size(),
                                                 1.0, 1e-5);
  ASSERT_TRUE(gsigma.ok());
  gopt.vae.sgd_sigma = *gsigma;
  baselines::DpGmSynthesizer dpgm(gopt);
  const double dpgm_auroc = RunProtocol(&dpgm);

  EXPECT_GT(p3gm_auroc, dpgm_auroc);
}

TEST_F(PipelineTest, PrivBayesRunsEndToEnd) {
  baselines::PrivBayesOptions opt;
  opt.epsilon = 1.0;
  opt.bins = 8;
  baselines::PrivBayesSynthesizer pb(opt);
  const double auroc = RunProtocol(&pb);
  EXPECT_GT(auroc, 0.55);  // Adult-like is PrivBayes-friendly.
}

TEST(IntegrationTest, ImagePipelineGeneratesPlausibleDigits) {
  data::Dataset train = data::MakeMnistLike(600, 3);
  core::PgmOptions opt;
  opt.hidden = 64;
  opt.latent_dim = 10;
  opt.mog_components = 5;
  opt.epochs = 12;
  opt.batch_size = 60;
  core::PgmSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(5);
  auto gen = synth.Generate(100, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->dim(), data::kImagePixels);
  // Generated images must have sane ink mass (neither blank nor white).
  double total_ink = 0.0;
  for (std::size_t i = 0; i < gen->size(); ++i) {
    for (std::size_t j = 0; j < gen->dim(); ++j) {
      total_ink += gen->features(i, j);
    }
  }
  const double mean_ink = total_ink / static_cast<double>(gen->size());
  EXPECT_GT(mean_ink, 5.0);
  EXPECT_LT(mean_ink, 500.0);
}

TEST(IntegrationTest, VaeVsPgmSolutionSpaceClaim) {
  // Section V-B: PGM's search space is a subset of VAE's, so with ample
  // (non-private) training VAE's final reconstruction loss should be at
  // least as good (within noise). We check PGM is in the same ballpark —
  // the "similar expression power" claim of Table V.
  data::Dataset train = data::MakeAdultLike(1200, 13);
  const linalg::Matrix joint =
      data::AttachLabels(train.features, train.labels, 2);

  core::VaeOptions vopt;
  vopt.hidden = 64;
  vopt.latent_dim = 8;
  vopt.epochs = 20;
  vopt.batch_size = 100;
  core::Vae vae(vopt);
  double vae_loss = 0.0;
  ASSERT_TRUE(
      vae.Fit(joint, [&](const core::TrainProgress& p) {
        vae_loss = p.recon_loss;
      }).ok());

  core::PgmOptions popt;
  popt.hidden = 64;
  popt.latent_dim = 8;
  popt.mog_components = 3;
  popt.epochs = 20;
  popt.batch_size = 100;
  core::Pgm pgm(popt);
  double pgm_loss = 0.0;
  ASSERT_TRUE(
      pgm.Fit(joint, [&](const core::TrainProgress& p) {
        pgm_loss = p.recon_loss;
      }).ok());

  EXPECT_LT(pgm_loss, 2.0 * vae_loss + 1.0);
}

}  // namespace
}  // namespace p3gm
