#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "audit/gradient_check.h"
#include "core/mixture_kl.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/sequential.h"
#include "stats/gmm.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {
namespace {

// ------------------------------------------------------------ layers

TEST(GradCheckTest, Linear) {
  util::Rng rng(1);
  nn::Linear layer("fc", 7, 5, &rng);
  const GradientCheckReport r = CheckLayerGradients(&layer, 4, 7);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, Relu) {
  nn::Relu layer;
  const GradientCheckReport r = CheckLayerGradients(&layer, 6, 9);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, Sigmoid) {
  nn::Sigmoid layer;
  const GradientCheckReport r = CheckLayerGradients(&layer, 6, 9);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, Tanh) {
  nn::Tanh layer;
  const GradientCheckReport r = CheckLayerGradients(&layer, 6, 9);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, Softplus) {
  nn::Softplus layer;
  const GradientCheckReport r = CheckLayerGradients(&layer, 6, 9);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, DropoutInEvalModeIsIdentity) {
  // The checker runs in eval mode where dropout must be a deterministic
  // identity; a dropout that ignores SetTraining(false) fails here with
  // a stochastic numeric derivative.
  nn::Dropout layer(0.5, /*seed=*/99);
  const GradientCheckReport r = CheckLayerGradients(&layer, 6, 9);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, Conv2d) {
  util::Rng rng(2);
  nn::Conv2d layer("conv", /*in_channels=*/2, /*height=*/5, /*width=*/5,
                   /*out_channels=*/3, /*kernel=*/3, /*padding=*/1, &rng);
  const GradientCheckReport r = CheckLayerGradients(&layer, 2, 2 * 5 * 5);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, MaxPool2d) {
  nn::MaxPool2d layer(/*channels=*/2, /*height=*/6, /*width=*/6);
  const GradientCheckReport r = CheckLayerGradients(&layer, 3, 2 * 6 * 6);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, SequentialMlp) {
  util::Rng rng(3);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Linear>("fc1", 6, 8, &rng));
  net.Add(std::make_unique<nn::Tanh>());
  net.Add(std::make_unique<nn::Dropout>(0.3, /*seed=*/17));
  net.Add(std::make_unique<nn::Linear>("fc2", 8, 4, &rng));
  net.Add(std::make_unique<nn::Sigmoid>());
  const GradientCheckReport r = CheckLayerGradients(&net, 5, 6);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckTest, DetectsABrokenGradient) {
  // Sanity check on the checker itself: a deliberately wrong analytic
  // gradient must be flagged.
  util::Rng rng(4);
  linalg::Matrix x(3, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  linalg::Matrix wrong_grad(3, 4);
  for (std::size_t i = 0; i < wrong_grad.size(); ++i) {
    wrong_grad.data()[i] = 2.0 * x.data()[i] + 0.1;  // Off by +0.1.
  }
  const GradientCheckReport r = CheckFunctionGradient(
      [](const linalg::Matrix& m) {
        double s = 0.0;
        for (std::size_t i = 0; i < m.size(); ++i) {
          s += m.data()[i] * m.data()[i];
        }
        return s;
      },
      x, wrong_grad);
  EXPECT_FALSE(r.ok());
  EXPECT_GT(r.max_rel_err, 1e-2);
}

// ------------------------------------------------------------ losses

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal();
  return m;
}

TEST(GradCheckLossTest, Mse) {
  const linalg::Matrix pred = RandomMatrix(4, 6, 10);
  const linalg::Matrix target = RandomMatrix(4, 6, 11);
  const nn::LossResult loss = nn::MseLoss(pred, target);
  const GradientCheckReport r = CheckFunctionGradient(
      [&target](const linalg::Matrix& p) {
        return nn::MseLoss(p, target).value;
      },
      pred, loss.grad);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckLossTest, BceWithLogits) {
  const linalg::Matrix logits = RandomMatrix(4, 6, 12);
  linalg::Matrix target = RandomMatrix(4, 6, 13);
  for (std::size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = 1.0 / (1.0 + std::exp(-target.data()[i]));  // [0,1].
  }
  const nn::LossResult loss = nn::BceWithLogitsLoss(logits, target);
  const GradientCheckReport r = CheckFunctionGradient(
      [&target](const linalg::Matrix& l) {
        return nn::BceWithLogitsLoss(l, target).value;
      },
      logits, loss.grad);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckLossTest, SoftmaxCrossEntropy) {
  const linalg::Matrix logits = RandomMatrix(5, 4, 14);
  const std::vector<std::size_t> labels{0, 2, 3, 1, 2};
  const nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
  const GradientCheckReport r = CheckFunctionGradient(
      [&labels](const linalg::Matrix& l) {
        return nn::SoftmaxCrossEntropy(l, labels).value;
      },
      logits, loss.grad);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckLossTest, StandardNormalKl) {
  const linalg::Matrix mu = RandomMatrix(4, 5, 15);
  const linalg::Matrix logvar = RandomMatrix(4, 5, 16);
  const nn::KlResult kl = nn::StandardNormalKl(mu, logvar);
  const GradientCheckReport r_mu = CheckFunctionGradient(
      [&logvar](const linalg::Matrix& m) {
        return nn::StandardNormalKl(m, logvar).value;
      },
      mu, kl.grad_mu);
  EXPECT_TRUE(r_mu.ok()) << "grad_mu: " << r_mu.Summary();
  const GradientCheckReport r_lv = CheckFunctionGradient(
      [&mu](const linalg::Matrix& lv) {
        return nn::StandardNormalKl(mu, lv).value;
      },
      logvar, kl.grad_logvar);
  EXPECT_TRUE(r_lv.ok()) << "grad_logvar: " << r_lv.Summary();
}

TEST(GradCheckLossTest, MixturePriorKl) {
  // The P3GM decoding-phase KL against a MoG prior (Hershey-Olsen); the
  // gradient flows only to the log-variances (the encoder mean is frozen
  // to the PCA map).
  linalg::Matrix means(2, 3);
  means(0, 0) = -0.5;
  means(1, 1) = 0.8;
  means(1, 2) = -0.2;
  linalg::Matrix variances(2, 3);
  variances.Fill(0.7);
  variances(1, 0) = 1.4;
  auto prior = stats::GaussianMixture::Create({0.4, 0.6}, means, variances);
  ASSERT_TRUE(prior.ok());

  const linalg::Matrix mu = RandomMatrix(4, 3, 17);
  const linalg::Matrix logvar = RandomMatrix(4, 3, 18);
  const core::MixtureKlResult kl = core::MixturePriorKl(mu, logvar, *prior);
  const GradientCheckReport r = CheckFunctionGradient(
      [&mu, &prior](const linalg::Matrix& lv) {
        return core::MixturePriorKl(mu, lv, *prior).value;
      },
      logvar, kl.grad_logvar);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(GradCheckLossTest, MixturePriorKlPerExampleSums) {
  // The DP-SGD path (mean=false) must be the same gradient scaled by B.
  linalg::Matrix means(1, 2);
  linalg::Matrix variances(1, 2);
  variances.Fill(1.0);
  auto prior = stats::GaussianMixture::Create({1.0}, means, variances);
  ASSERT_TRUE(prior.ok());
  const linalg::Matrix mu = RandomMatrix(3, 2, 19);
  const linalg::Matrix logvar = RandomMatrix(3, 2, 20);
  const core::MixtureKlResult kl =
      core::MixturePriorKl(mu, logvar, *prior, /*mean=*/false);
  const GradientCheckReport r = CheckFunctionGradient(
      [&mu, &prior](const linalg::Matrix& lv) {
        return core::MixturePriorKl(mu, lv, *prior, /*mean=*/false).value;
      },
      logvar, kl.grad_logvar);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

// ------------------------------------------- SetTraining contract

/// Eval mode must make Forward deterministic and repeatable regardless of
/// the per-call train flag, with no RNG consumption between calls.
void ExpectEvalModeDeterministic(nn::Layer* layer, std::size_t batch,
                                 std::size_t features) {
  util::Rng rng(42);
  linalg::Matrix x(batch, features);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();

  layer->SetTraining(false);
  EXPECT_FALSE(layer->is_training());
  const linalg::Matrix y1 = layer->Forward(x, /*train=*/true);
  const linalg::Matrix y2 = layer->Forward(x, /*train=*/true);
  const linalg::Matrix y3 = layer->Forward(x, /*train=*/false);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_DOUBLE_EQ(y1.data()[i], y2.data()[i]) << layer->name();
    EXPECT_DOUBLE_EQ(y1.data()[i], y3.data()[i]) << layer->name();
  }
  layer->SetTraining(true);
  EXPECT_TRUE(layer->is_training());
}

TEST(SetTrainingContractTest, AllLayerTypes) {
  util::Rng rng(5);
  nn::Linear linear("fc", 4, 3, &rng);
  ExpectEvalModeDeterministic(&linear, 2, 4);
  nn::Relu relu;
  ExpectEvalModeDeterministic(&relu, 2, 4);
  nn::Sigmoid sigmoid;
  ExpectEvalModeDeterministic(&sigmoid, 2, 4);
  nn::Tanh tanh_layer;
  ExpectEvalModeDeterministic(&tanh_layer, 2, 4);
  nn::Softplus softplus;
  ExpectEvalModeDeterministic(&softplus, 2, 4);
  nn::Dropout dropout(0.5, /*seed=*/7);
  ExpectEvalModeDeterministic(&dropout, 2, 4);
  nn::Conv2d conv("conv", 1, 4, 4, 2, 3, 1, &rng);
  ExpectEvalModeDeterministic(&conv, 2, 16);
  nn::MaxPool2d pool(1, 4, 4);
  ExpectEvalModeDeterministic(&pool, 2, 16);
}

TEST(SetTrainingContractTest, DropoutEvalIsExactIdentity) {
  nn::Dropout dropout(0.9, /*seed=*/7);
  dropout.SetTraining(false);
  util::Rng rng(6);
  linalg::Matrix x(3, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  const linalg::Matrix y = dropout.Forward(x, /*train=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(y.data()[i], x.data()[i]);
  }
  // And Backward in eval mode is the identity too.
  const linalg::Matrix g = dropout.Backward(x, /*accumulate=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(g.data()[i], x.data()[i]);
  }
}

TEST(SetTrainingContractTest, SequentialPropagatesToChildren) {
  util::Rng rng(8);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Linear>("fc", 4, 4, &rng));
  auto dropout = std::make_unique<nn::Dropout>(0.5, /*seed=*/3);
  nn::Dropout* dropout_ptr = dropout.get();
  net.Add(std::move(dropout));
  net.SetTraining(false);
  EXPECT_FALSE(net.is_training());
  EXPECT_FALSE(dropout_ptr->is_training());
  ExpectEvalModeDeterministic(&net, 3, 4);
  net.SetTraining(true);
  EXPECT_TRUE(dropout_ptr->is_training());
}

TEST(SetTrainingContractTest, TrainingModeDropoutStillDrops) {
  // SetTraining(true) + train=true keeps the stochastic behaviour: two
  // forwards differ (rate 0.5, 15 coords -> collision probability ~0).
  nn::Dropout dropout(0.5, /*seed=*/21);
  dropout.SetTraining(true);
  linalg::Matrix x(3, 5);
  x.Fill(1.0);
  const linalg::Matrix y1 = dropout.Forward(x, /*train=*/true);
  const linalg::Matrix y2 = dropout.Forward(x, /*train=*/true);
  bool differs = false;
  for (std::size_t i = 0; i < y1.size(); ++i) {
    if (y1.data()[i] != y2.data()[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace audit
}  // namespace p3gm
