#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "core/pgm.h"
#include "core/synthesizer.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace p3gm {
namespace core {
namespace {

linalg::Matrix BimodalData(std::size_t n, util::Rng* rng) {
  linalg::Matrix x(n, 6);
  for (std::size_t i = 0; i < n; ++i) {
    const bool mode = rng->Bernoulli(0.5);
    for (std::size_t j = 0; j < 6; ++j) {
      const double base = mode ? (j < 3 ? 0.9 : 0.1) : (j < 3 ? 0.1 : 0.9);
      x(i, j) = std::clamp(base + rng->Normal(0.0, 0.05), 0.0, 1.0);
    }
  }
  return x;
}

PgmOptions SmallOptions() {
  PgmOptions opt;
  opt.hidden = 32;
  opt.latent_dim = 2;
  opt.mog_components = 2;
  opt.epochs = 60;
  opt.batch_size = 50;
  opt.seed = 3;
  return opt;
}

TEST(PgmTest, ValidatesInput) {
  Pgm pgm(SmallOptions());
  EXPECT_FALSE(pgm.Fit(linalg::Matrix()).ok());
  PgmOptions bad = SmallOptions();
  bad.latent_dim = 100;
  Pgm pgm2(bad);
  EXPECT_FALSE(pgm2.Fit(linalg::Matrix(50, 6, 0.5)).ok());
}

TEST(PgmTest, FitTwiceFails) {
  util::Rng rng(5);
  Pgm pgm(SmallOptions());
  ASSERT_TRUE(pgm.Fit(BimodalData(100, &rng)).ok());
  EXPECT_FALSE(pgm.Fit(BimodalData(100, &rng)).ok());
}

TEST(PgmTest, PriorHasRequestedComponents) {
  util::Rng rng(7);
  Pgm pgm(SmallOptions());
  ASSERT_TRUE(pgm.Fit(BimodalData(300, &rng)).ok());
  EXPECT_EQ(pgm.prior().num_components(), 2u);
  EXPECT_EQ(pgm.prior().dim(), 2u);
}

TEST(PgmTest, ReconstructionLossDecreases) {
  util::Rng rng(9);
  linalg::Matrix x = BimodalData(300, &rng);
  Pgm pgm(SmallOptions());
  std::vector<double> losses;
  ASSERT_TRUE(pgm.Fit(x, [&](const TrainProgress& p) {
                 losses.push_back(p.recon_loss);
               }).ok());
  EXPECT_LT(losses.back(), 0.7 * losses.front());
}

TEST(PgmTest, SamplesCoverBothModes) {
  util::Rng rng(11);
  linalg::Matrix x = BimodalData(400, &rng);
  Pgm pgm(SmallOptions());
  ASSERT_TRUE(pgm.Fit(x).ok());
  util::Rng srng(13);
  linalg::Matrix samples = pgm.Sample(400, &srng);
  std::size_t high = 0, low = 0;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    if (samples(i, 0) > 0.6) ++high;
    if (samples(i, 0) < 0.4) ++low;
  }
  EXPECT_GT(high, 40u);
  EXPECT_GT(low, 40u);
}

TEST(PgmTest, NoPcaUsesFullDimension) {
  util::Rng rng(17);
  PgmOptions opt = SmallOptions();
  opt.use_pca = false;
  opt.epochs = 3;
  Pgm pgm(opt);
  ASSERT_TRUE(pgm.Fit(BimodalData(100, &rng)).ok());
  EXPECT_EQ(pgm.prior().dim(), 6u);  // Latent = data dimension.
}

TEST(PgmTest, EncodeMeanMatchesPriorDomain) {
  util::Rng rng(19);
  linalg::Matrix x = BimodalData(100, &rng);
  Pgm pgm(SmallOptions());
  ASSERT_TRUE(pgm.Fit(x).ok());
  linalg::Matrix z = pgm.EncodeMean(x);
  EXPECT_EQ(z.cols(), pgm.prior().dim());
}

TEST(PgmTest, DpModeClipsEncodedRows) {
  util::Rng rng(23);
  linalg::Matrix x = BimodalData(200, &rng);
  PgmOptions opt = SmallOptions();
  opt.differentially_private = true;
  opt.sgd_sigma = 2.0;
  opt.epochs = 2;
  Pgm pgm(opt);
  ASSERT_TRUE(pgm.Fit(x).ok());
  linalg::Matrix z = pgm.EncodeMean(x);
  for (std::size_t i = 0; i < z.rows(); ++i) {
    double norm2 = 0.0;
    for (std::size_t j = 0; j < z.cols(); ++j) norm2 += z(i, j) * z(i, j);
    EXPECT_LE(std::sqrt(norm2), 1.0 + 1e-9);
  }
}

TEST(PgmTest, FreezeVarianceTrainsDecoderOnly) {
  util::Rng rng(29);
  linalg::Matrix x = BimodalData(200, &rng);
  PgmOptions opt = SmallOptions();
  opt.freeze_variance = true;
  opt.epochs = 10;
  Pgm pgm(opt);
  std::vector<double> kls;
  ASSERT_TRUE(pgm.Fit(x, [&](const TrainProgress& p) {
                 kls.push_back(p.kl_loss);
               }).ok());
  // With frozen variance the KL term is not computed (constant wrt the
  // trained parameters), reported as zero.
  for (double v : kls) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PgmTest, PrivacyParamsReflectRun) {
  util::Rng rng(31);
  linalg::Matrix x = BimodalData(200, &rng);
  PgmOptions opt = SmallOptions();
  opt.differentially_private = true;
  opt.sgd_sigma = 3.0;
  opt.epochs = 4;
  Pgm pgm(opt);
  ASSERT_TRUE(pgm.Fit(x).ok());
  const auto params = pgm.PrivacyParams();
  EXPECT_DOUBLE_EQ(params.pca_epsilon, opt.pca_epsilon);
  EXPECT_EQ(params.em_iters, opt.em_iters);
  EXPECT_EQ(params.sgd_steps, 4u * (200 / 50));
  EXPECT_NEAR(params.sgd_sampling_rate, 50.0 / 200.0, 1e-12);
}

TEST(PgmTest, EpsilonZeroWhenNonPrivate) {
  util::Rng rng(37);
  Pgm pgm(SmallOptions());
  ASSERT_TRUE(pgm.Fit(BimodalData(100, &rng)).ok());
  EXPECT_DOUBLE_EQ(pgm.ComputeEpsilon(1e-5).epsilon, 0.0);
}

TEST(PgmTest, EpsilonPositiveAndDecreasingInSigma) {
  util::Rng rng(41);
  linalg::Matrix x = BimodalData(200, &rng);
  double prev = 1e18;
  for (double sigma : {2.0, 8.0}) {
    PgmOptions opt = SmallOptions();
    opt.differentially_private = true;
    opt.sgd_sigma = sigma;
    opt.epochs = 3;
    Pgm pgm(opt);
    ASSERT_TRUE(pgm.Fit(x).ok());
    const double eps = pgm.ComputeEpsilon(1e-5).epsilon;
    EXPECT_GT(eps, 0.0);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(PgmTest, CalibrationMeetsTarget) {
  PgmOptions opt = SmallOptions();
  opt.differentially_private = true;
  opt.epochs = 10;
  auto sigma = Pgm::CalibrateSigma(opt, 1000, 1.0, 1e-5);
  ASSERT_TRUE(sigma.ok());
  opt.sgd_sigma = *sigma;
  util::Rng rng(43);
  linalg::Matrix x = BimodalData(1000, &rng);
  Pgm pgm(opt);
  ASSERT_TRUE(pgm.Fit(x).ok());
  EXPECT_LE(pgm.ComputeEpsilon(1e-5).epsilon, 1.0 + 1e-6);
}

// ------------------------------------------------------------ Synthesizer

TEST(PgmSynthesizerTest, RoundTripLabeledData) {
  data::Dataset train = data::MakeAdultLike(400, 7);
  PgmOptions opt = SmallOptions();
  opt.latent_dim = 4;
  opt.epochs = 8;
  PgmSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(11);
  auto gen = synth.Generate(200, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->size(), 200u);
  EXPECT_EQ(gen->dim(), train.dim());
  EXPECT_EQ(gen->num_classes, train.num_classes);
}

TEST(PgmSynthesizerTest, GenerateBeforeFitFails) {
  PgmSynthesizer synth(SmallOptions());
  util::Rng rng(13);
  EXPECT_FALSE(synth.Generate(10, &rng).ok());
}

TEST(PgmSynthesizerTest, NamesReflectVariant) {
  PgmOptions opt;
  EXPECT_EQ(PgmSynthesizer(opt).name(), "PGM");
  opt.differentially_private = true;
  EXPECT_EQ(PgmSynthesizer(opt).name(), "P3GM");
  opt.freeze_variance = true;
  EXPECT_EQ(PgmSynthesizer(opt).name(), "P3GM(AE)");
}

TEST(GenerateWithLabelRatioTest, MatchesReference) {
  data::Dataset train = data::MakeAdultLike(500, 17);
  PgmOptions opt = SmallOptions();
  opt.latent_dim = 4;
  opt.epochs = 8;
  PgmSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(19);
  auto gen = GenerateWithLabelRatio(&synth, 400, train, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->size(), 400u);
  EXPECT_NEAR(gen->PositiveRate(), train.PositiveRate(), 0.05);
}

}  // namespace
}  // namespace core
}  // namespace p3gm
