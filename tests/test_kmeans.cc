#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "stats/kmeans.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {
namespace {

linalg::Matrix Blobs(const std::vector<std::pair<double, double>>& centers,
                     std::size_t n_per, double spread, util::Rng* rng) {
  linalg::Matrix x(centers.size() * n_per, 2);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    for (std::size_t i = 0; i < n_per; ++i) {
      x(c * n_per + i, 0) = rng->Normal(centers[c].first, spread);
      x(c * n_per + i, 1) = rng->Normal(centers[c].second, spread);
    }
  }
  return x;
}

TEST(KMeansTest, ValidatesInput) {
  EXPECT_FALSE(KMeans(linalg::Matrix(), {}).ok());
  KMeansOptions opt;
  opt.num_clusters = 10;
  EXPECT_FALSE(KMeans(linalg::Matrix(3, 2, 0.0), opt).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  util::Rng rng(3);
  auto x = Blobs({{-5, -5}, {5, 5}, {-5, 5}}, 100, 0.3, &rng);
  KMeansOptions opt;
  opt.num_clusters = 3;
  auto r = KMeans(x, opt);
  ASSERT_TRUE(r.ok());
  // Each centroid should be within 0.5 of one true center.
  std::vector<std::pair<double, double>> truth = {{-5, -5}, {5, 5}, {-5, 5}};
  for (std::size_t k = 0; k < 3; ++k) {
    double best = 1e9;
    for (auto [cx, cy] : truth) {
      best = std::min(best, std::hypot(r->centroids(k, 0) - cx,
                                       r->centroids(k, 1) - cy));
    }
    EXPECT_LT(best, 0.5);
  }
  // Balanced assignment.
  std::vector<int> counts(3, 0);
  for (std::size_t a : r->assignment) ++counts[a];
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  util::Rng rng(5);
  auto x = Blobs({{-3, 0}, {3, 0}, {0, 4}}, 80, 0.8, &rng);
  KMeansOptions o1, o3;
  o1.num_clusters = 1;
  o3.num_clusters = 3;
  auto r1 = KMeans(x, o1);
  auto r3 = KMeans(x, o3);
  ASSERT_TRUE(r1.ok() && r3.ok());
  EXPECT_LT(r3->inertia, r1->inertia);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  util::Rng rng(7);
  auto x = Blobs({{2, -1}}, 200, 1.0, &rng);
  KMeansOptions opt;
  opt.num_clusters = 1;
  auto r = KMeans(x, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->centroids(0, 0), 2.0, 0.2);
  EXPECT_NEAR(r->centroids(0, 1), -1.0, 0.2);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  util::Rng rng(11);
  auto x = Blobs({{-2, 0}, {2, 0}}, 50, 0.5, &rng);
  KMeansOptions opt;
  opt.num_clusters = 2;
  opt.seed = 99;
  auto a = KMeans(x, opt);
  auto b = KMeans(x, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->centroids, b->centroids);
}

// --------------------------------------------------------------- DP mode

TEST(DpKMeansTest, ValidatesInput) {
  util::Rng rng(13);
  EXPECT_FALSE(DpKMeans(linalg::Matrix(), {}, &rng).ok());
  DpKMeansOptions bad;
  bad.noise_multiplier = -2.0;
  EXPECT_FALSE(DpKMeans(linalg::Matrix(5, 2, 0.1), bad, &rng).ok());
}

TEST(DpKMeansTest, NoNoiseSeparatesUnitBallBlobs) {
  util::Rng data_rng(17), mech_rng(19);
  auto x = Blobs({{-0.6, 0}, {0.6, 0}}, 300, 0.05, &data_rng);
  DpKMeansOptions opt;
  opt.num_clusters = 2;
  opt.iters = 15;
  opt.noise_multiplier = 0.0;
  auto r = DpKMeans(x, opt, &mech_rng);
  ASSERT_TRUE(r.ok());
  const double c0 = r->centroids(0, 0), c1 = r->centroids(1, 0);
  EXPECT_LT(std::min(c0, c1), -0.3);
  EXPECT_GT(std::max(c0, c1), 0.3);
}

TEST(DpKMeansTest, CentroidsStayInUnitBall) {
  util::Rng data_rng(23), mech_rng(29);
  auto x = Blobs({{0.5, 0.5}}, 50, 0.2, &data_rng);
  DpKMeansOptions opt;
  opt.num_clusters = 3;
  opt.noise_multiplier = 30.0;  // Heavy noise.
  auto r = DpKMeans(x, opt, &mech_rng);
  ASSERT_TRUE(r.ok());
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_LE(std::hypot(r->centroids(k, 0), r->centroids(k, 1)),
              1.0 + 1e-9);
  }
}

TEST(DpKMeansTest, AssignmentCoversAllPoints) {
  util::Rng data_rng(31), mech_rng(37);
  auto x = Blobs({{-0.5, 0}, {0.5, 0}}, 100, 0.1, &data_rng);
  DpKMeansOptions opt;
  opt.num_clusters = 2;
  opt.noise_multiplier = 2.0;
  auto r = DpKMeans(x, opt, &mech_rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment.size(), x.rows());
  for (std::size_t a : r->assignment) EXPECT_LT(a, 2u);
}

}  // namespace
}  // namespace stats
}  // namespace p3gm
