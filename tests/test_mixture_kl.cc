#include <cmath>

#include "gtest/gtest.h"
#include "core/mixture_kl.h"
#include "stats/gmm.h"
#include "util/rng.h"

namespace p3gm {
namespace core {
namespace {

stats::GaussianMixture MakePrior() {
  linalg::Matrix means = {{-1.0, 0.0}, {1.0, 0.5}};
  linalg::Matrix vars = {{0.5, 1.0}, {2.0, 0.3}};
  auto g = stats::GaussianMixture::Create({0.3, 0.7}, means, vars);
  P3GM_CHECK(g.ok());
  return std::move(g).ValueOrDie();
}

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c, util::Rng* rng) {
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Normal(0.0, 0.7);
  }
  return m;
}

TEST(MixtureKlTest, MatchesScalarHelper) {
  auto prior = MakePrior();
  util::Rng rng(3);
  linalg::Matrix mu = RandomMatrix(5, 2, &rng);
  linalg::Matrix logvar = RandomMatrix(5, 2, &rng);
  auto kl = MixturePriorKl(mu, logvar, prior, /*mean=*/false);
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<double> var(2);
    for (std::size_t j = 0; j < 2; ++j) var[j] = std::exp(logvar(i, j));
    EXPECT_NEAR(kl.per_example[i],
                stats::GaussianToMixtureKl(mu.Row(i), var, prior), 1e-9);
  }
}

TEST(MixtureKlTest, ValueIsSumOrMeanOfPerExample) {
  auto prior = MakePrior();
  util::Rng rng(5);
  linalg::Matrix mu = RandomMatrix(4, 2, &rng);
  linalg::Matrix logvar = RandomMatrix(4, 2, &rng);
  auto sum = MixturePriorKl(mu, logvar, prior, false);
  auto mean = MixturePriorKl(mu, logvar, prior, true);
  double total = 0.0;
  for (double v : sum.per_example) total += v;
  EXPECT_NEAR(sum.value, total, 1e-9);
  EXPECT_NEAR(mean.value, total / 4.0, 1e-9);
}

TEST(MixtureKlTest, GradientMatchesFiniteDifference) {
  auto prior = MakePrior();
  util::Rng rng(7);
  linalg::Matrix mu = RandomMatrix(3, 2, &rng);
  linalg::Matrix logvar = RandomMatrix(3, 2, &rng);
  auto kl = MixturePriorKl(mu, logvar, prior, false);
  const double h = 1e-6;
  for (std::size_t k = 0; k < logvar.size(); ++k) {
    linalg::Matrix lp = logvar, lm = logvar;
    lp.data()[k] += h;
    lm.data()[k] -= h;
    const double num = (MixturePriorKl(mu, lp, prior, false).value -
                        MixturePriorKl(mu, lm, prior, false).value) /
                       (2 * h);
    EXPECT_NEAR(kl.grad_logvar.data()[k], num,
                1e-4 * std::max(1.0, std::fabs(num)));
  }
}

TEST(MixtureKlTest, SittingOnComponentIsCheap) {
  auto prior = MakePrior();
  // Gaussian matching component 1 exactly: D ≈ -log(0.7).
  linalg::Matrix mu = {{1.0, 0.5}};
  linalg::Matrix logvar = {{std::log(2.0), std::log(0.3)}};
  auto kl = MixturePriorKl(mu, logvar, prior, false);
  EXPECT_NEAR(kl.per_example[0], -std::log(0.7), 0.05);
  // Far from both components: much larger.
  linalg::Matrix far_mu = {{10.0, -10.0}};
  auto far = MixturePriorKl(far_mu, logvar, prior, false);
  EXPECT_GT(far.per_example[0], 10.0);
}

TEST(MixtureKlTest, SingleComponentReducesToClosedForm) {
  linalg::Matrix means = {{0.0}};
  linalg::Matrix vars = {{1.0}};
  auto prior = stats::GaussianMixture::Create({1.0}, means, vars);
  ASSERT_TRUE(prior.ok());
  // KL(N(1, 1) || N(0, 1)) = 0.5 and weight term log(1) = 0.
  linalg::Matrix mu = {{1.0}};
  linalg::Matrix logvar = {{0.0}};
  auto kl = MixturePriorKl(mu, logvar, *prior, false);
  EXPECT_NEAR(kl.per_example[0], 0.5, 1e-9);
}

TEST(MixtureKlTest, GradientPushesVarianceTowardPrior) {
  // With mean on a component, optimal variance equals the component's;
  // the gradient sign must point that way.
  linalg::Matrix means = {{0.0}};
  linalg::Matrix vars = {{1.0}};
  auto prior = stats::GaussianMixture::Create({1.0}, means, vars);
  ASSERT_TRUE(prior.ok());
  linalg::Matrix mu = {{0.0}};
  linalg::Matrix too_small = {{-2.0}};  // var = e^-2 < 1.
  linalg::Matrix too_big = {{2.0}};     // var = e^2 > 1.
  EXPECT_LT(MixturePriorKl(mu, too_small, *prior, false)
                .grad_logvar(0, 0),
            0.0);
  EXPECT_GT(MixturePriorKl(mu, too_big, *prior, false).grad_logvar(0, 0),
            0.0);
}

}  // namespace
}  // namespace core
}  // namespace p3gm
