#include <cmath>

#include "gtest/gtest.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace p3gm {
namespace eval {
namespace {

// ----------------------------------------------------------------- AUROC

TEST(AurocTest, ValidatesInput) {
  EXPECT_FALSE(Auroc({}, {}).ok());
  EXPECT_FALSE(Auroc({0.5}, {1, 0}).ok());
  EXPECT_FALSE(Auroc({0.5, 0.6}, {1, 1}).ok());  // One class only.
}

TEST(AurocTest, PerfectSeparationIsOne) {
  auto a = Auroc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 1.0);
}

TEST(AurocTest, ReversedSeparationIsZero) {
  auto a = Auroc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 0.0);
}

TEST(AurocTest, ConstantScoresGiveHalf) {
  auto a = Auroc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 0.5);
}

TEST(AurocTest, KnownHandComputedValue) {
  // Scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs: (0.8>0.6), (0.8>0.2),
  // (0.4<0.6), (0.4>0.2) -> 3/4 = 0.75.
  auto a = Auroc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 0.75);
}

TEST(AurocTest, TieBetweenClassesCountsHalf) {
  // One pos at 0.5, one neg at 0.5 -> AUROC 0.5.
  auto a = Auroc({0.5, 0.5}, {1, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 0.5);
}

TEST(AurocTest, InvariantToMonotoneTransform) {
  util::Rng rng(3);
  std::vector<double> scores(100);
  std::vector<std::size_t> labels(100);
  for (std::size_t i = 0; i < 100; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.3);
  }
  labels[0] = 1;
  labels[1] = 0;
  std::vector<double> transformed(100);
  for (std::size_t i = 0; i < 100; ++i) {
    transformed[i] = std::exp(3.0 * scores[i]);
  }
  EXPECT_NEAR(*Auroc(scores, labels), *Auroc(transformed, labels), 1e-12);
}

// ----------------------------------------------------------------- AUPRC

TEST(AuprcTest, ValidatesInput) {
  EXPECT_FALSE(Auprc({}, {}).ok());
  EXPECT_FALSE(Auprc({0.5, 0.6}, {0, 0}).ok());
}

TEST(AuprcTest, PerfectSeparationIsOne) {
  auto a = Auprc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 1.0);
}

TEST(AuprcTest, RandomScoresApproachBaseRate) {
  util::Rng rng(5);
  const std::size_t n = 20000;
  std::vector<double> scores(n);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.2);
  }
  auto a = Auprc(scores, labels);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(*a, 0.2, 0.02);
}

TEST(AuprcTest, KnownHandComputedValue) {
  // Descending scores: labels 1, 0, 1, 0.
  // k=1: R=0.5, P=1 -> +0.5*1. k=3: R=1, P=2/3 -> +0.5*2/3. AP = 0.8333.
  auto a = Auprc({0.9, 0.8, 0.7, 0.6}, {1, 0, 1, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(*a, 0.5 + 0.5 * 2.0 / 3.0, 1e-12);
}

TEST(AuprcTest, AllPositivesGiveOne) {
  // With all-positive among scored items precision is always 1... use
  // one negative ranked last.
  auto a = Auprc({0.9, 0.8, 0.1}, {1, 1, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 1.0);
}

// ------------------------------------------------------------- Accuracy

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {0}), 1.0);
}

TEST(F1Test, KnownValues) {
  // TP=1, FP=1, FN=1 -> F1 = 2/4 = 0.5.
  EXPECT_DOUBLE_EQ(F1Score({1, 1, 0}, {1, 0, 1}), 0.5);
  // No predicted/actual positives -> 0.
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);
  // Perfect.
  EXPECT_DOUBLE_EQ(F1Score({1, 0}, {1, 0}), 1.0);
}

TEST(ConfusionMatrixTest, CountsCells) {
  auto cm = ConfusionMatrix({0, 1, 1, 2}, {0, 1, 2, 2}, 3);
  EXPECT_EQ(cm[0 * 3 + 0], 1u);
  EXPECT_EQ(cm[1 * 3 + 1], 1u);
  EXPECT_EQ(cm[2 * 3 + 1], 1u);
  EXPECT_EQ(cm[2 * 3 + 2], 1u);
  std::size_t total = 0;
  for (std::size_t v : cm) total += v;
  EXPECT_EQ(total, 4u);
}

}  // namespace
}  // namespace eval
}  // namespace p3gm
