// Cross-module property tests: randomized invariants swept over seeds
// with TEST_P, complementing the example-based unit tests.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "data/transforms.h"
#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "eval/metrics.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "nn/losses.h"
#include "stats/gmm.h"
#include "util/rng.h"

namespace p3gm {
namespace {

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

linalg::Matrix RandomSpd(std::size_t n, util::Rng* rng) {
  linalg::Matrix b(n + 2, n);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng->Normal();
  linalg::Matrix a = linalg::MatmulTransA(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.1;
  return a;
}

// ------------------------------------------------------------- linalg

using LinalgProperty = SeededTest;

TEST_P(LinalgProperty, CholeskyReconstructsSpd) {
  linalg::Matrix a = RandomSpd(6, &rng_);
  auto l = linalg::Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_LT(linalg::MaxAbsDiff(linalg::MatmulTransB(*l, *l), a), 1e-9);
}

TEST_P(LinalgProperty, SpdEigenvaluesPositive) {
  linalg::Matrix a = RandomSpd(7, &rng_);
  auto e = linalg::EigenSym(a);
  ASSERT_TRUE(e.ok());
  for (double v : e->values) EXPECT_GT(v, 0.0);
}

TEST_P(LinalgProperty, LogDetAgreesBetweenCholeskyAndEigen) {
  linalg::Matrix a = RandomSpd(5, &rng_);
  auto l = linalg::Cholesky(a);
  auto e = linalg::EigenSym(a);
  ASSERT_TRUE(l.ok() && e.ok());
  double eig_logdet = 0.0;
  for (double v : e->values) eig_logdet += std::log(v);
  EXPECT_NEAR(linalg::CholeskyLogDet(*l), eig_logdet, 1e-8);
}

TEST_P(LinalgProperty, MatmulAssociativity) {
  auto random = [&](std::size_t r, std::size_t c) {
    linalg::Matrix m(r, c);
    for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng_.Normal();
    return m;
  };
  linalg::Matrix a = random(3, 4), b = random(4, 5), c = random(5, 2);
  EXPECT_LT(linalg::MaxAbsDiff(
                linalg::Matmul(linalg::Matmul(a, b), c),
                linalg::Matmul(a, linalg::Matmul(b, c))),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinalgProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ----------------------------------------------------------------- dp

using DpProperty = SeededTest;

TEST_P(DpProperty, ClippedVectorsNeverExceedBound) {
  const double c = 0.1 + rng_.Uniform() * 5.0;
  for (int t = 0; t < 50; ++t) {
    std::vector<double> v(1 + rng_.UniformInt(20));
    for (double& x : v) x = rng_.Normal(0.0, 4.0);
    dp::ClipL2(c, &v);
    EXPECT_LE(linalg::Norm2(v), c * (1.0 + 1e-12));
  }
}

TEST_P(DpProperty, CompositionOrderIrrelevant) {
  dp::RdpAccountant a, b;
  a.AddSampledGaussian(0.02, 1.5, 100);
  a.AddDpEm(50.0, 3, 10);
  a.AddPureDp(0.1);
  b.AddPureDp(0.1);
  b.AddDpEm(50.0, 3, 10);
  b.AddSampledGaussian(0.02, 1.5, 100);
  EXPECT_NEAR(a.GetEpsilon(1e-5).epsilon, b.GetEpsilon(1e-5).epsilon,
              1e-12);
}

TEST_P(DpProperty, AddingMechanismsNeverReducesEpsilon) {
  dp::RdpAccountant acc;
  double prev = acc.GetEpsilon(1e-5).epsilon;
  for (int t = 0; t < 5; ++t) {
    acc.AddSampledGaussian(0.01 + 0.01 * rng_.Uniform(),
                           1.0 + rng_.Uniform(), 10);
    const double eps = acc.GetEpsilon(1e-5).epsilon;
    EXPECT_GE(eps, prev - 1e-12);
    prev = eps;
  }
}

TEST_P(DpProperty, CalibrationInverseConsistency) {
  dp::P3gmPrivacyParams params;
  params.pca_epsilon = 0.05;
  params.em_sigma = 120.0;
  params.em_iters = 20;
  params.sgd_sampling_rate = 0.005 + 0.02 * rng_.Uniform();
  params.sgd_steps = 200 + rng_.UniformInt(2000);
  const double target = 0.8 + rng_.Uniform() * 2.0;
  auto sigma = dp::CalibrateSgdSigma(params, target, 1e-5);
  ASSERT_TRUE(sigma.ok());
  params.sgd_sigma = *sigma;
  const double achieved = dp::ComputeP3gmEpsilonRdp(params, 1e-5).epsilon;
  EXPECT_LE(achieved, target * (1.0 + 1e-6));
  EXPECT_GE(achieved, 0.9 * target);  // Not grossly over-noised.
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpProperty,
                         ::testing::Values(21, 22, 23, 25));

// ---------------------------------------------------------------- stats

using GmmProperty = SeededTest;

TEST_P(GmmProperty, SampleMomentsMatchRandomMixture) {
  const std::size_t k = 1 + rng_.UniformInt(3);
  linalg::Matrix means(k, 2), vars(k, 2);
  std::vector<double> weights(k);
  for (std::size_t c = 0; c < k; ++c) {
    weights[c] = 0.2 + rng_.Uniform();
    for (std::size_t j = 0; j < 2; ++j) {
      means(c, j) = rng_.Normal(0.0, 2.0);
      vars(c, j) = 0.2 + rng_.Uniform();
    }
  }
  auto g = stats::GaussianMixture::Create(weights, means, vars);
  ASSERT_TRUE(g.ok());
  const int n = 40000;
  util::Rng srng(GetParam() ^ 0xabc);
  double mean0 = 0.0;
  for (int i = 0; i < n; ++i) mean0 += g->Sample(&srng)[0];
  mean0 /= n;
  double expected = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    expected += g->weights()[c] * means(c, 0);
  }
  EXPECT_NEAR(mean0, expected, 0.05);
}

TEST_P(GmmProperty, LogPdfIntegratesToOneByMonteCarlo) {
  // E_{x~g}[1] trivially 1; instead check E_{x~g}[exp(-logpdf)] over a
  // box via importance identity is stable and finite.
  linalg::Matrix means = {{0.0}};
  linalg::Matrix vars = {{1.0 + rng_.Uniform()}};
  auto g = stats::GaussianMixture::Create({1.0}, means, vars);
  ASSERT_TRUE(g.ok());
  // Riemann sum of pdf over [-10, 10].
  double total = 0.0;
  const int steps = 4000;
  for (int i = 0; i < steps; ++i) {
    const double x = -10.0 + 20.0 * i / steps;
    total += std::exp(g->LogPdf({x})) * (20.0 / steps);
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST_P(GmmProperty, ResponsibilitiesAreDistribution) {
  linalg::Matrix means = {{-1.0, 0.0}, {1.0, 1.0}, {0.0, -1.0}};
  auto g = stats::GaussianMixture::Create({0.3, 0.3, 0.4}, means,
                                          linalg::Matrix(3, 2, 0.7));
  ASSERT_TRUE(g.ok());
  for (int t = 0; t < 30; ++t) {
    std::vector<double> x = {rng_.Normal(), rng_.Normal()};
    auto r = g->Responsibilities(x);
    double total = 0.0;
    for (double v : r) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmmProperty, ::testing::Values(31, 32, 33));

// ---------------------------------------------------------------- eval

using MetricProperty = SeededTest;

TEST_P(MetricProperty, AurocOfNegatedScoresIsComplement) {
  const std::size_t n = 200;
  std::vector<double> scores(n);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng_.Normal();
    labels[i] = rng_.Bernoulli(0.4);
  }
  labels[0] = 1;
  labels[1] = 0;
  std::vector<double> negated(n);
  for (std::size_t i = 0; i < n; ++i) negated[i] = -scores[i];
  EXPECT_NEAR(*eval::Auroc(scores, labels) + *eval::Auroc(negated, labels),
              1.0, 1e-10);
}

TEST_P(MetricProperty, MetricsBoundedInUnitInterval) {
  const std::size_t n = 100;
  std::vector<double> scores(n);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng_.Uniform();
    labels[i] = rng_.Bernoulli(0.2);
  }
  labels[0] = 1;
  labels[1] = 0;
  const double auroc = *eval::Auroc(scores, labels);
  const double auprc = *eval::Auprc(scores, labels);
  EXPECT_GE(auroc, 0.0);
  EXPECT_LE(auroc, 1.0);
  EXPECT_GE(auprc, 0.0);
  EXPECT_LE(auprc, 1.0);
}

TEST_P(MetricProperty, AuprcAtLeastBaseRateForInformativeScores) {
  // Scores equal to the label (perfect information) give AP = 1, far
  // above the base rate; random scores approach the base rate. Either
  // way AP of label-correlated scores >= AP of anti-correlated ones.
  const std::size_t n = 500;
  std::vector<double> good(n), bad(n);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng_.Bernoulli(0.3);
    const double noise = rng_.Normal(0.0, 0.4);
    good[i] = static_cast<double>(labels[i]) + noise;
    bad[i] = -static_cast<double>(labels[i]) + noise;
  }
  labels[0] = 1;
  EXPECT_GT(*eval::Auprc(good, labels), *eval::Auprc(bad, labels));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         ::testing::Values(41, 42, 43, 44));

// ------------------------------------------------------------------ nn

using LossProperty = SeededTest;

TEST_P(LossProperty, SoftmaxCrossEntropyNonNegative) {
  linalg::Matrix logits(8, 5);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = rng_.Normal(0.0, 3.0);
  }
  std::vector<std::size_t> labels(8);
  for (auto& l : labels) l = rng_.UniformInt(5);
  EXPECT_GE(nn::SoftmaxCrossEntropy(logits, labels).value, 0.0);
}

TEST_P(LossProperty, BceLowerBoundedByEntropyOfTargets) {
  // BCE(logits, t) >= H(t) element-wise, with equality at
  // sigmoid(logit) = t. Check the minimized value at the optimum.
  linalg::Matrix target(1, 6);
  for (std::size_t j = 0; j < 6; ++j) {
    target(0, j) = 0.05 + 0.9 * rng_.Uniform();
  }
  linalg::Matrix optimal(1, 6);
  for (std::size_t j = 0; j < 6; ++j) {
    const double t = target(0, j);
    optimal(0, j) = std::log(t / (1.0 - t));
  }
  const double at_optimum = nn::BceWithLogitsLoss(optimal, target).value;
  linalg::Matrix other = optimal;
  other(0, 0) += 1.0;
  EXPECT_LE(at_optimum, nn::BceWithLogitsLoss(other, target).value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossProperty, ::testing::Values(51, 52, 53));

// ---------------------------------------------------------------- data

using TransformProperty = SeededTest;

TEST_P(TransformProperty, MinMaxTransformAlwaysInUnitInterval) {
  linalg::Matrix x(40, 5);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = rng_.Normal(0.0, 10.0);
  }
  auto s = data::MinMaxScaler::Fit(x);
  ASSERT_TRUE(s.ok());
  linalg::Matrix t = s->Transform(x);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], -1e-12);
    EXPECT_LE(t.data()[i], 1.0 + 1e-12);
  }
}

TEST_P(TransformProperty, OneHotRowsSumToOne) {
  std::vector<std::size_t> labels(30);
  for (auto& l : labels) l = rng_.UniformInt(4);
  linalg::Matrix oh = data::LabelsToOneHot(labels, 4);
  for (std::size_t i = 0; i < oh.rows(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < 4; ++j) total += oh(i, j);
    EXPECT_DOUBLE_EQ(total, 1.0);
  }
}

TEST_P(TransformProperty, AttachDetachIsIdentityOnHardLabels) {
  linalg::Matrix features(20, 3);
  std::vector<std::size_t> labels(20);
  for (std::size_t i = 0; i < features.size(); ++i) {
    features.data()[i] = rng_.Uniform();
  }
  for (auto& l : labels) l = rng_.UniformInt(3);
  auto joint = data::AttachLabels(features, labels, 3);
  auto rows = data::DetachLabels(joint, 3);
  EXPECT_EQ(rows.labels, labels);
  EXPECT_LT(linalg::MaxAbsDiff(rows.features, features), 1e-12);
}

// ------------------------------------------------------ seed stability

// Reproducibility contract: identical seeds must give identical outputs,
// bit for bit, for the RNG itself and for every noise mechanism. The
// thread-pool determinism guarantees (test_parallel_equivalence.cc) are
// only meaningful on top of this.

using SeedStabilityProperty = SeededTest;

TEST_P(SeedStabilityProperty, RngStreamsAreIdenticalForIdenticalSeeds) {
  util::Rng a(GetParam());
  util::Rng b(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Normal(), b.Normal());
    EXPECT_EQ(a.Uniform(), b.Uniform());
    EXPECT_EQ(a.Laplace(1.7), b.Laplace(1.7));
    EXPECT_EQ(a.Gamma(2.5, 0.8), b.Gamma(2.5, 0.8));
  }
}

TEST_P(SeedStabilityProperty, StreamAtIsAPureFunctionOfSeedAndIndex) {
  for (std::uint64_t index : {0ull, 1ull, 7ull, 1000000007ull}) {
    util::Rng a = util::Rng::StreamAt(GetParam(), index);
    util::Rng b = util::Rng::StreamAt(GetParam(), index);
    EXPECT_EQ(a.NextU64(), b.NextU64());
    EXPECT_EQ(a.Normal(), b.Normal());
  }
  // Adjacent streams must not collide.
  util::Rng s0 = util::Rng::StreamAt(GetParam(), 0);
  util::Rng s1 = util::Rng::StreamAt(GetParam(), 1);
  EXPECT_NE(s0.NextU64(), s1.NextU64());
}

TEST_P(SeedStabilityProperty, MechanismsAreIdenticalForIdenticalSeeds) {
  auto run = [&] {
    util::Rng rng(GetParam() + 1000);
    std::vector<double> out;
    std::vector<double> v(17, 0.25);
    dp::LaplaceMechanism(1.0, 0.7, &v, &rng);
    out.insert(out.end(), v.begin(), v.end());
    std::vector<double> g(17, -0.5);
    dp::GaussianMechanism(1.0, 1.3, &g, &rng);
    out.insert(out.end(), g.begin(), g.end());
    linalg::Matrix m(5, 4);
    dp::GaussianMechanism(2.0, 0.9, &m, &rng);
    out.insert(out.end(), m.data(), m.data() + m.size());
    auto pick = dp::ExponentialMechanism({0.1, 0.9, 0.4, 0.7}, 1.0, 2.0,
                                         &rng);
    EXPECT_TRUE(pick.ok());
    out.push_back(static_cast<double>(*pick));
    auto w = dp::SampleWishart(4, 5.0, 0.3, &rng);
    EXPECT_TRUE(w.ok());
    out.insert(out.end(), w->data(), w->data() + w->size());
    return out;
  };
  const std::vector<double> first = run();
  const std::vector<double> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStabilityProperty,
                         ::testing::Values(71, 72, 73));

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace p3gm
