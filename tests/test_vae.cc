#include <cmath>

#include "gtest/gtest.h"
#include "core/vae.h"
#include "util/rng.h"

namespace p3gm {
namespace core {
namespace {

// Bimodal binary-ish data in [0,1]^4: two prototype rows plus noise.
linalg::Matrix BimodalData(std::size_t n, util::Rng* rng) {
  linalg::Matrix x(n, 4);
  for (std::size_t i = 0; i < n; ++i) {
    const bool mode = rng->Bernoulli(0.5);
    for (std::size_t j = 0; j < 4; ++j) {
      const double base = mode ? (j < 2 ? 0.9 : 0.1) : (j < 2 ? 0.1 : 0.9);
      x(i, j) = std::clamp(base + rng->Normal(0.0, 0.05), 0.0, 1.0);
    }
  }
  return x;
}

VaeOptions SmallOptions() {
  VaeOptions opt;
  opt.hidden = 32;
  opt.latent_dim = 2;
  opt.epochs = 30;
  opt.batch_size = 50;
  opt.seed = 3;
  return opt;
}

TEST(VaeTest, ValidatesInput) {
  Vae vae(SmallOptions());
  EXPECT_FALSE(vae.Fit(linalg::Matrix()).ok());
  VaeOptions bad = SmallOptions();
  bad.batch_size = 0;
  Vae vae2(bad);
  EXPECT_FALSE(vae2.Fit(linalg::Matrix(10, 2, 0.5)).ok());
}

TEST(VaeTest, FitTwiceFails) {
  util::Rng rng(5);
  Vae vae(SmallOptions());
  ASSERT_TRUE(vae.Fit(BimodalData(100, &rng)).ok());
  EXPECT_FALSE(vae.Fit(BimodalData(100, &rng)).ok());
}

TEST(VaeTest, ReconstructionLossDecreases) {
  util::Rng rng(7);
  linalg::Matrix x = BimodalData(300, &rng);
  Vae vae(SmallOptions());
  std::vector<double> losses;
  ASSERT_TRUE(vae.Fit(x, [&](const TrainProgress& p) {
                 losses.push_back(p.recon_loss);
               }).ok());
  ASSERT_GE(losses.size(), 10u);
  EXPECT_LT(losses.back(), 0.7 * losses.front());
}

TEST(VaeTest, SamplesMatchDataModes) {
  util::Rng rng(9);
  linalg::Matrix x = BimodalData(400, &rng);
  Vae vae(SmallOptions());
  ASSERT_TRUE(vae.Fit(x).ok());
  util::Rng srng(11);
  linalg::Matrix samples = vae.Sample(500, &srng);
  EXPECT_EQ(samples.cols(), 4u);
  // Outputs are probabilities in (0, 1).
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_GT(samples.data()[i], 0.0);
    EXPECT_LT(samples.data()[i], 1.0);
  }
  // Both modes are generated: feature 0 high in some rows, low in others
  // (no mode collapse on this trivially bimodal data).
  std::size_t high = 0, low = 0;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    if (samples(i, 0) > 0.6) ++high;
    if (samples(i, 0) < 0.4) ++low;
  }
  EXPECT_GT(high, 50u);
  EXPECT_GT(low, 50u);
}

TEST(VaeTest, NonPrivateEpsilonIsZero) {
  util::Rng rng(13);
  Vae vae(SmallOptions());
  ASSERT_TRUE(vae.Fit(BimodalData(100, &rng)).ok());
  EXPECT_DOUBLE_EQ(vae.ComputeEpsilon(1e-5).epsilon, 0.0);
}

TEST(VaeTest, DpModeTrainsAndAccountsEpsilon) {
  util::Rng rng(17);
  linalg::Matrix x = BimodalData(300, &rng);
  VaeOptions opt = SmallOptions();
  opt.epochs = 5;
  opt.differentially_private = true;
  opt.sgd_sigma = 2.0;
  Vae vae(opt);
  ASSERT_TRUE(vae.Fit(x).ok());
  const auto g = vae.ComputeEpsilon(1e-5);
  EXPECT_GT(g.epsilon, 0.0);
  EXPECT_LT(g.epsilon, 50.0);
  // More noise => smaller epsilon for the same schedule.
  VaeOptions opt2 = opt;
  opt2.sgd_sigma = 8.0;
  Vae vae2(opt2);
  ASSERT_TRUE(vae2.Fit(x).ok());
  EXPECT_LT(vae2.ComputeEpsilon(1e-5).epsilon, g.epsilon);
}

TEST(VaeTest, DpTrainingStillLearns) {
  util::Rng rng(19);
  linalg::Matrix x = BimodalData(500, &rng);
  VaeOptions opt = SmallOptions();
  opt.epochs = 20;
  opt.differentially_private = true;
  opt.sgd_sigma = 1.0;  // Mild noise.
  Vae vae(opt);
  std::vector<double> losses;
  ASSERT_TRUE(vae.Fit(x, [&](const TrainProgress& p) {
                 losses.push_back(p.recon_loss);
               }).ok());
  EXPECT_LT(losses.back(), losses.front());
}

TEST(VaeTest, TraceRecordsEveryStep) {
  util::Rng rng(23);
  linalg::Matrix x = BimodalData(200, &rng);
  VaeOptions opt = SmallOptions();
  opt.epochs = 4;
  opt.batch_size = 50;
  Vae vae(opt);
  ASSERT_TRUE(vae.Fit(x).ok());
  EXPECT_EQ(vae.trace().recon_loss.size(), 4u * (200 / 50));
}

TEST(VaeTest, DeterministicGivenSeed) {
  util::Rng rng(29);
  linalg::Matrix x = BimodalData(150, &rng);
  VaeOptions opt = SmallOptions();
  opt.epochs = 3;
  Vae a(opt), b(opt);
  ASSERT_TRUE(a.Fit(x).ok());
  ASSERT_TRUE(b.Fit(x).ok());
  util::Rng s1(31), s2(31);
  EXPECT_EQ(a.Sample(10, &s1), b.Sample(10, &s2));
}

TEST(VaeTest, EncodeMeanShapes) {
  util::Rng rng(37);
  linalg::Matrix x = BimodalData(100, &rng);
  Vae vae(SmallOptions());
  ASSERT_TRUE(vae.Fit(x).ok());
  linalg::Matrix z = vae.EncodeMean(x);
  EXPECT_EQ(z.rows(), 100u);
  EXPECT_EQ(z.cols(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace p3gm
